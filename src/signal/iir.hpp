// 8th-order IIR benchmark (Nv = 5): four cascaded direct-form-I biquads.
//
// Word-length mapping (documented in DESIGN.md):
//   w[0..3]: accumulator word-length of biquad k (quantizes the DF-I sum),
//   w[4]:    shared inter-stage data word-length (quantizes the stored
//            output each biquad feeds forward and back).
// Integer bits per site are calibrated from a reference run.
#pragma once

#include <cstddef>
#include <vector>

#include "signal/biquad.hpp"

namespace ace::signal {

/// Double-precision cascade (reference).
class IirCascade {
 public:
  /// Throws std::invalid_argument on empty or unstable sections.
  explicit IirCascade(std::vector<BiquadCoefficients> sections);

  std::vector<double> filter(const std::vector<double>& input) const;

  const std::vector<BiquadCoefficients>& sections() const { return sections_; }
  std::size_t section_count() const { return sections_.size(); }

 private:
  std::vector<BiquadCoefficients> sections_;
};

/// Fixed-point cascade emulation with Nv = section_count + 1 variables.
class QuantizedIirCascade {
 public:
  /// Calibrates integer bits from a reference run on `calibration_input`.
  QuantizedIirCascade(const IirCascade& reference,
                      const std::vector<double>& calibration_input,
                      int margin_bits = 1);

  std::size_t variable_count() const { return accum_iwl_.size() + 1; }

  /// Simulate with word lengths w (size variable_count()).
  /// Throws std::invalid_argument on wrong size / out-of-range entries.
  std::vector<double> filter(const std::vector<double>& input,
                             const std::vector<int>& w) const;

  /// Calibrated integer bits (for the analytical noise baseline).
  const std::vector<int>& accumulator_integer_bits() const {
    return accum_iwl_;
  }
  int data_integer_bits() const { return data_iwl_; }

 private:
  std::vector<BiquadCoefficients> sections_;
  std::vector<int> accum_iwl_;  ///< Per-biquad accumulator integer bits.
  int data_iwl_ = 0;            ///< Inter-stage data integer bits.
};

}  // namespace ace::signal
