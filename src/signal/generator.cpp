#include "signal/generator.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ace::signal {

std::vector<double> white_noise(util::Rng& rng, std::size_t n,
                                double amplitude) {
  if (n == 0) throw std::invalid_argument("white_noise: n must be positive");
  return rng.uniform_vector(n, -amplitude, amplitude);
}

std::vector<double> sine_mixture(const std::vector<double>& frequencies,
                                 std::size_t n, double amplitude) {
  if (n == 0) throw std::invalid_argument("sine_mixture: n must be positive");
  if (frequencies.empty())
    throw std::invalid_argument("sine_mixture: need at least one frequency");
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (double f : frequencies)
      acc += std::sin(2.0 * std::numbers::pi * f * static_cast<double>(i));
    out[i] = acc;
  }
  double peak = 0.0;
  for (double x : out) peak = std::max(peak, std::abs(x));
  if (peak > 0.0)
    for (double& x : out) x *= amplitude / peak;
  return out;
}

std::vector<double> noisy_multitone(util::Rng& rng, std::size_t n,
                                    double amplitude) {
  auto tones = sine_mixture({0.013, 0.057, 0.121, 0.243}, n, 1.0);
  for (double& x : tones) x += rng.uniform(-0.25, 0.25);
  double peak = 0.0;
  for (double x : tones) peak = std::max(peak, std::abs(x));
  if (peak > 0.0)
    for (double& x : tones) x *= amplitude / peak;
  return tones;
}

}  // namespace ace::signal
