#include "signal/noise_analysis.hpp"

#include <stdexcept>

#include "fixedpoint/format.hpp"

namespace ace::signal {

double tail_energy_gain(const std::vector<BiquadCoefficients>& sections,
                        std::size_t first_section,
                        std::size_t impulse_length) {
  if (first_section > sections.size())
    throw std::invalid_argument("tail_energy_gain: bad section index");
  if (impulse_length == 0)
    throw std::invalid_argument("tail_energy_gain: zero impulse length");
  if (first_section == sections.size()) return 1.0;

  std::vector<Biquad> tail;
  for (std::size_t s = first_section; s < sections.size(); ++s)
    tail.emplace_back(sections[s]);

  double energy = 0.0;
  for (std::size_t n = 0; n < impulse_length; ++n) {
    double x = n == 0 ? 1.0 : 0.0;
    for (auto& bq : tail) x = bq.process(x);
    energy += x * x;
  }
  return energy;
}

double predict_iir_noise(const std::vector<BiquadCoefficients>& sections,
                         const std::vector<int>& w,
                         const std::vector<int>& accum_iwl, int data_iwl,
                         std::size_t impulse_length) {
  const std::size_t ns = sections.size();
  if (w.size() != ns + 1)
    throw std::invalid_argument("predict_iir_noise: w must have ns+1 entries");
  if (accum_iwl.size() != ns)
    throw std::invalid_argument("predict_iir_noise: accum_iwl size");

  double total = 0.0;
  for (std::size_t k = 0; k < ns; ++k) {
    // Noise injected at section k's output recirculates through that
    // section's own poles (transfer 1/A_k(z)) before crossing the tail —
    // the DF-I feedback taps read the quantized stored value. Model the
    // source path as [feedback-only section k] + sections k+1..end.
    std::vector<BiquadCoefficients> path;
    BiquadCoefficients recirculation = sections[k];
    recirculation.b0 = 1.0;
    recirculation.b1 = 0.0;
    recirculation.b2 = 0.0;
    path.push_back(recirculation);
    path.insert(path.end(), sections.begin() + static_cast<std::ptrdiff_t>(k) + 1,
                sections.end());
    const double gain = tail_energy_gain(path, 0, impulse_length);

    const auto accum =
        fixedpoint::Format::with_clamped_integer_bits(w[k], accum_iwl[k]);
    const auto data =
        fixedpoint::Format::with_clamped_integer_bits(w[ns], data_iwl);
    total += gain *
             (accum.rounding_noise_power() + data.rounding_noise_power());
  }
  return total;
}

}  // namespace ace::signal
