// 8×8 two-dimensional DCT-II (JPEG-style) — an *extension* benchmark
// beyond the paper's set (Nv = 6), exercising the kriging policy on a
// medium-dimensional word-length problem with a separable 2-D dataflow.
//
// Word-length mapping:
//   w[0]: row-pass multiplier outputs      w[3]: column-pass multipliers
//   w[1]: row-pass accumulator entries     w[4]: column-pass accumulator
//   w[2]: intermediate (row-DCT) storage   w[5]: output storage
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace ace::signal {

inline constexpr std::size_t kDctSize = 8;
inline constexpr std::size_t kDctBlock = kDctSize * kDctSize;
inline constexpr std::size_t kDctVariables = 6;

/// Orthonormal 2-D DCT-II of a row-major 8×8 block (reference).
std::array<double, kDctBlock> dct2d_reference(
    const std::array<double, kDctBlock>& block);

/// Inverse 2-D DCT (for round-trip validation).
std::array<double, kDctBlock> idct2d_reference(
    const std::array<double, kDctBlock>& coefficients);

/// Fixed-point 2-D DCT emulation with the six word-length variables above.
class QuantizedDct2d {
 public:
  static constexpr std::size_t kVariables = kDctVariables;

  /// Calibrates per-site integer bits from reference transforms of the
  /// given blocks. Throws std::invalid_argument on an empty set.
  explicit QuantizedDct2d(
      const std::vector<std::array<double, kDctBlock>>& calibration,
      int margin_bits = 1);

  /// Transform with word lengths w (size 6, each in [2, 52]).
  std::array<double, kDctBlock> transform(
      const std::array<double, kDctBlock>& block,
      const std::vector<int>& w) const;

  const std::vector<int>& site_integer_bits() const { return site_iwl_; }

 private:
  std::vector<int> site_iwl_;
};

}  // namespace ace::signal
