// Input-signal generators for the word-length benchmarks. The paper
// simulates each configuration on "an arbitrary large pre-defined input
// data set"; these generators produce that data set deterministically.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace ace::signal {

/// Uniform white noise in (-amplitude, amplitude).
std::vector<double> white_noise(util::Rng& rng, std::size_t n,
                                double amplitude = 0.9);

/// Sum of sinusoids with the given normalized frequencies (cycles/sample),
/// scaled so the peak magnitude is `amplitude`.
std::vector<double> sine_mixture(const std::vector<double>& frequencies,
                                 std::size_t n, double amplitude = 0.9);

/// Noisy multitone: sine mixture plus white noise, rescaled to peak
/// `amplitude` — a representative DSP excitation that exercises the full
/// dynamic range.
std::vector<double> noisy_multitone(util::Rng& rng, std::size_t n,
                                    double amplitude = 0.9);

}  // namespace ace::signal
