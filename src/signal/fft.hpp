// 64-point radix-2 DIT FFT benchmark (Nv = 10).
//
// A 64-point decimation-in-time FFT has 6 butterfly stages; stage 0 uses
// only the trivial twiddle W⁰ = 1, so stages 1..5 carry the word-length
// variables (DESIGN.md): for stage s in 1..5,
//   w[2(s-1)]:     twiddle-multiplier output word-length,
//   w[2(s-1)+1]:   butterfly (add/sub) output word-length.
// Integer bits per stage are calibrated from reference transforms.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace ace::signal {

/// In-place iterative radix-2 DIT FFT (double precision reference).
/// Size must be a power of two >= 2; throws std::invalid_argument.
void fft(std::vector<std::complex<double>>& data);

/// Inverse transform (scaled by 1/N).
void ifft(std::vector<std::complex<double>>& data);

/// Fixed-point FFT emulation.
class QuantizedFft {
 public:
  /// `size` must be a power of two >= 4. Integer bits are calibrated from
  /// reference transforms of every frame in `calibration_frames`.
  QuantizedFft(std::size_t size,
               const std::vector<std::vector<std::complex<double>>>&
                   calibration_frames,
               int margin_bits = 1);

  std::size_t size() const { return size_; }
  std::size_t stage_count() const { return stages_; }
  /// Number of word-length variables: 2 × (stage_count − 1).
  std::size_t variable_count() const { return 2 * (stages_ - 1); }

  /// Transform one frame with word lengths w (size variable_count()).
  /// Throws std::invalid_argument on bad frame size or word lengths.
  std::vector<std::complex<double>> transform(
      const std::vector<std::complex<double>>& input,
      const std::vector<int>& w) const;

 private:
  std::size_t size_;
  std::size_t stages_;
  std::vector<int> mult_iwl_;  ///< Per quantized stage (1..stages-1).
  std::vector<int> add_iwl_;
};

}  // namespace ace::signal
