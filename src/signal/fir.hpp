// FIR filter — the paper's 2-variable benchmark (64th-order, Nv = 2):
// one word-length for the multiplier outputs, one for the accumulator.
// Fig. 1 of the paper is the noise-power surface over these two axes.
#pragma once

#include <cstddef>
#include <vector>

#include "fixedpoint/quantizer.hpp"

namespace ace::signal {

/// Windowed-sinc (Hamming) lowpass design.
/// `taps` >= 1 coefficients, cutoff in (0, 0.5) cycles/sample.
std::vector<double> design_lowpass_fir(std::size_t taps, double cutoff);

/// Double-precision (reference) FIR.
class FirFilter {
 public:
  /// Throws std::invalid_argument on empty coefficients.
  explicit FirFilter(std::vector<double> coefficients);

  /// Full-precision convolution (zero initial state).
  std::vector<double> filter(const std::vector<double>& input) const;

  const std::vector<double>& coefficients() const { return coeffs_; }
  std::size_t taps() const { return coeffs_.size(); }

  /// Σ|c_k| — the accumulator's worst-case gain, used for range analysis.
  double l1_gain() const;

 private:
  std::vector<double> coeffs_;
};

/// Fixed-point FIR emulation with two word-length variables:
///   w[0]: multiplier-output word-length,
///   w[1]: adder (accumulator) word-length.
/// Coefficients are pre-quantized to a fixed 16-bit format; integer bits at
/// each site come from the filter's worst-case gains, so only fractional
/// precision varies with w.
class QuantizedFirFilter {
 public:
  static constexpr std::size_t kVariables = 2;

  explicit QuantizedFirFilter(const FirFilter& reference,
                              int coefficient_bits = 16);

  /// Simulate with word lengths w (size 2, each in [2, 52]).
  /// Throws std::invalid_argument on wrong size / out-of-range entries.
  std::vector<double> filter(const std::vector<double>& input,
                             const std::vector<int>& w) const;

 private:
  std::vector<double> qcoeffs_;
  int iwl_product_;
  int iwl_accum_;
};

}  // namespace ace::signal
