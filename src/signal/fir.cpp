#include "signal/fir.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ace::signal {

std::vector<double> design_lowpass_fir(std::size_t taps, double cutoff) {
  if (taps == 0) throw std::invalid_argument("design_lowpass_fir: taps >= 1");
  if (cutoff <= 0.0 || cutoff >= 0.5)
    throw std::invalid_argument("design_lowpass_fir: cutoff in (0, 0.5)");
  std::vector<double> h(taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;
  for (std::size_t k = 0; k < taps; ++k) {
    const double t = static_cast<double>(k) - mid;
    const double x = 2.0 * std::numbers::pi * cutoff * t;
    // t is (k - mid) with mid a multiple of 0.5: the == 0 case is exact.
    const double sinc = t == 0.0  // ace-lint: allow(float-equality)
                            ? 2.0 * cutoff
                                 : std::sin(x) / (std::numbers::pi * t);
    const double window =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi *
                               static_cast<double>(k) /
                               static_cast<double>(taps - 1));
    h[k] = taps == 1 ? 2.0 * cutoff : sinc * window;
  }
  // Normalize DC gain to 1.
  double sum = 0.0;
  for (double c : h) sum += c;
  if (sum != 0.0)  // ace-lint: allow(float-equality)
    for (double& c : h) c /= sum;
  return h;
}

FirFilter::FirFilter(std::vector<double> coefficients)
    : coeffs_(std::move(coefficients)) {
  if (coeffs_.empty())
    throw std::invalid_argument("FirFilter: empty coefficients");
}

std::vector<double> FirFilter::filter(const std::vector<double>& input) const {
  std::vector<double> out(input.size(), 0.0);
  for (std::size_t i = 0; i < input.size(); ++i) {
    double acc = 0.0;
    const std::size_t reach = std::min(i + 1, coeffs_.size());
    for (std::size_t k = 0; k < reach; ++k) acc += coeffs_[k] * input[i - k];
    out[i] = acc;
  }
  return out;
}

double FirFilter::l1_gain() const {
  double acc = 0.0;
  for (double c : coeffs_) acc += std::abs(c);
  return acc;
}

namespace {
int iwl_for_magnitude(double max_abs) {
  int iwl = 0;
  if (max_abs > 0.0) iwl = static_cast<int>(std::ceil(std::log2(max_abs + 1e-12)));
  return std::max(iwl, 0);
}
void check_word_lengths(const std::vector<int>& w, std::size_t expected) {
  if (w.size() != expected)
    throw std::invalid_argument("QuantizedFir: wrong word-length count");
  for (int wl : w)
    if (wl < 2 || wl > 52)
      throw std::invalid_argument("QuantizedFir: word length out of [2, 52]");
}
}  // namespace

QuantizedFirFilter::QuantizedFirFilter(const FirFilter& reference,
                                       int coefficient_bits) {
  // Coefficients quantized once to a fixed high-precision format; the DSE
  // varies datapath word lengths only (as in the paper's setup).
  double max_coeff = 0.0;
  for (double c : reference.coefficients())
    max_coeff = std::max(max_coeff, std::abs(c));
  const int coeff_iwl = iwl_for_magnitude(max_coeff);
  const fixedpoint::Quantizer qc{fixedpoint::Format(coefficient_bits, coeff_iwl)};
  qcoeffs_.reserve(reference.taps());
  for (double c : reference.coefficients()) qcoeffs_.push_back(qc(c));

  // Products: |c·x| <= max|c| (inputs are < 1 in magnitude);
  // accumulator: bounded by the L1 gain.
  iwl_product_ = iwl_for_magnitude(max_coeff);
  iwl_accum_ = iwl_for_magnitude(reference.l1_gain());
}

std::vector<double> QuantizedFirFilter::filter(const std::vector<double>& input,
                                               const std::vector<int>& w) const {
  check_word_lengths(w, kVariables);
  const fixedpoint::Quantizer qmpy{fixedpoint::Format::with_clamped_integer_bits(w[0], iwl_product_)};
  const fixedpoint::Quantizer qadd{fixedpoint::Format::with_clamped_integer_bits(w[1], iwl_accum_)};

  std::vector<double> out(input.size(), 0.0);
  for (std::size_t i = 0; i < input.size(); ++i) {
    double acc = 0.0;
    const std::size_t reach = std::min(i + 1, qcoeffs_.size());
    for (std::size_t k = 0; k < reach; ++k) {
      // Each product is rounded to the multiplier grid and then to the
      // adder grid on entry; partial sums of adder-grid values stay on the
      // grid, so the accumulator itself needs no per-addition re-rounding.
      acc += qadd(qmpy(qcoeffs_[k] * input[i - k]));
    }
    out[i] = qadd(acc);  // Final store: range handling at adder width.
  }
  return out;
}

}  // namespace ace::signal
