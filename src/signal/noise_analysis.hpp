// Analytical noise prediction for the IIR cascade — extends the FIR
// closed-form baseline (fixedpoint/noise_model) to feedback filters: each
// quantization source's power is shaped by the energy gain of the cascade
// tail it feeds, computed from the tail's impulse response.
#pragma once

#include <cstddef>
#include <vector>

#include "signal/biquad.hpp"

namespace ace::signal {

/// Energy gain Σ h² of the cascade formed by sections [first_section, end),
/// measured over `impulse_length` samples of the impulse response.
/// first_section == sections.size() means a direct path (gain 1).
/// Throws std::invalid_argument on a bad index or zero length.
double tail_energy_gain(const std::vector<BiquadCoefficients>& sections,
                        std::size_t first_section,
                        std::size_t impulse_length = 2048);

/// Predicted output noise power of QuantizedIirCascade at word lengths w
/// (per-biquad accumulator WLs + shared data WL, as in signal/iir.hpp),
/// using the classical independent-white-source model: each section k
/// injects q_k²/12 (accumulator) and q_data²/12 (stored output), both
/// shaped by the energy gain of sections k+1..end.
/// `accum_iwl` / `data_iwl` are the calibrated integer bits.
double predict_iir_noise(const std::vector<BiquadCoefficients>& sections,
                         const std::vector<int>& w,
                         const std::vector<int>& accum_iwl, int data_iwl,
                         std::size_t impulse_length = 2048);

}  // namespace ace::signal
