#include "signal/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "fixedpoint/quantizer.hpp"
#include "fixedpoint/range_tracker.hpp"

namespace ace::signal {

namespace {

bool is_power_of_two(std::size_t n) { return n >= 2 && (n & (n - 1)) == 0; }

std::size_t log2_size(std::size_t n) {
  std::size_t s = 0;
  while ((std::size_t{1} << s) < n) ++s;
  return s;
}

void bit_reverse_permute(std::vector<std::complex<double>>& data) {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < j) std::swap(data[i], data[j]);
    std::size_t mask = n >> 1;
    while (mask >= 1 && (j & mask)) {
      j ^= mask;
      mask >>= 1;
    }
    j |= mask;
  }
}

std::complex<double> twiddle(std::size_t k, std::size_t span) {
  const double angle = -std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(span);
  return {std::cos(angle), std::sin(angle)};
}

/// Shared DIT stage loop; Hook is called as hook(stage, product, sum) and
/// must return the (possibly quantized) values to keep. Inlined per caller.
template <typename ProductHook, typename SumHook>
void dit_transform(std::vector<std::complex<double>>& data,
                   ProductHook&& on_product, SumHook&& on_sum) {
  const std::size_t n = data.size();
  bit_reverse_permute(data);
  std::size_t stage = 0;
  for (std::size_t span = 1; span < n; span <<= 1, ++stage) {
    for (std::size_t block = 0; block < n; block += span << 1) {
      for (std::size_t k = 0; k < span; ++k) {
        const std::complex<double> w = twiddle(k, span);
        const std::size_t top = block + k;
        const std::size_t bot = top + span;
        const std::complex<double> product = on_product(stage, w * data[bot]);
        data[bot] = on_sum(stage, data[top] - product);
        data[top] = on_sum(stage, data[top] + product);
      }
    }
  }
}

}  // namespace

void fft(std::vector<std::complex<double>>& data) {
  if (!is_power_of_two(data.size()))
    throw std::invalid_argument("fft: size must be a power of two >= 2");
  dit_transform(
      data, [](std::size_t, std::complex<double> p) { return p; },
      [](std::size_t, std::complex<double> s) { return s; });
}

void ifft(std::vector<std::complex<double>>& data) {
  if (!is_power_of_two(data.size()))
    throw std::invalid_argument("ifft: size must be a power of two >= 2");
  for (auto& x : data) x = std::conj(x);
  fft(data);
  const double scale = 1.0 / static_cast<double>(data.size());
  for (auto& x : data) x = std::conj(x) * scale;
}

QuantizedFft::QuantizedFft(
    std::size_t size,
    const std::vector<std::vector<std::complex<double>>>& calibration_frames,
    int margin_bits)
    : size_(size), stages_(log2_size(size)) {
  if (!is_power_of_two(size) || size < 4)
    throw std::invalid_argument("QuantizedFft: size must be a power of two >= 4");
  if (calibration_frames.empty())
    throw std::invalid_argument("QuantizedFft: need calibration frames");

  // Track max |re|,|im| of products and sums per stage.
  fixedpoint::RangeTracker products(stages_);
  fixedpoint::RangeTracker sums(stages_);
  for (const auto& frame : calibration_frames) {
    if (frame.size() != size)
      throw std::invalid_argument("QuantizedFft: calibration frame size");
    auto data = frame;
    dit_transform(
        data,
        [&](std::size_t s, std::complex<double> p) {
          products.observe(s, p.real());
          products.observe(s, p.imag());
          return p;
        },
        [&](std::size_t s, std::complex<double> v) {
          sums.observe(s, v.real());
          sums.observe(s, v.imag());
          return v;
        });
  }
  mult_iwl_.resize(stages_ - 1);
  add_iwl_.resize(stages_ - 1);
  for (std::size_t s = 1; s < stages_; ++s) {
    mult_iwl_[s - 1] = products.integer_bits(s, margin_bits);
    add_iwl_[s - 1] = sums.integer_bits(s, margin_bits);
  }
}

std::vector<std::complex<double>> QuantizedFft::transform(
    const std::vector<std::complex<double>>& input,
    const std::vector<int>& w) const {
  if (input.size() != size_)
    throw std::invalid_argument("QuantizedFft: wrong frame size");
  if (w.size() != variable_count())
    throw std::invalid_argument("QuantizedFft: wrong word-length count");
  for (int wl : w)
    if (wl < 2 || wl > 52)
      throw std::invalid_argument("QuantizedFft: word length out of [2, 52]");

  std::vector<fixedpoint::Quantizer> qmul;
  std::vector<fixedpoint::Quantizer> qadd;
  qmul.reserve(stages_ - 1);
  qadd.reserve(stages_ - 1);
  for (std::size_t s = 1; s < stages_; ++s) {
    qmul.emplace_back(fixedpoint::Format::with_clamped_integer_bits(w[2 * (s - 1)], mult_iwl_[s - 1]));
    qadd.emplace_back(fixedpoint::Format::with_clamped_integer_bits(w[2 * (s - 1) + 1], add_iwl_[s - 1]));
  }

  auto data = input;
  dit_transform(
      data,
      [&](std::size_t s, std::complex<double> p) {
        if (s == 0) return p;  // Stage 0 twiddle is 1: nothing to quantize.
        const auto& q = qmul[s - 1];
        return std::complex<double>(q(p.real()), q(p.imag()));
      },
      [&](std::size_t s, std::complex<double> v) {
        if (s == 0) return v;
        const auto& q = qadd[s - 1];
        return std::complex<double>(q(v.real()), q(v.imag()));
      });
  return data;
}

}  // namespace ace::signal
