#include "signal/biquad.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ace::signal {

bool BiquadCoefficients::is_stable() const {
  return std::abs(a2) < 1.0 && std::abs(a1) < 1.0 + a2;
}

BiquadCoefficients design_lowpass_biquad(double cutoff, double q) {
  if (cutoff <= 0.0 || cutoff >= 0.5)
    throw std::invalid_argument("design_lowpass_biquad: cutoff in (0, 0.5)");
  if (q <= 0.0)
    throw std::invalid_argument("design_lowpass_biquad: q must be positive");
  const double w0 = 2.0 * std::numbers::pi * cutoff;
  const double cw = std::cos(w0);
  const double alpha = std::sin(w0) / (2.0 * q);
  const double a0 = 1.0 + alpha;
  BiquadCoefficients c;
  c.b0 = (1.0 - cw) / 2.0 / a0;
  c.b1 = (1.0 - cw) / a0;
  c.b2 = c.b0;
  c.a1 = -2.0 * cw / a0;
  c.a2 = (1.0 - alpha) / a0;
  return c;
}

std::vector<BiquadCoefficients> design_butterworth_lowpass(std::size_t order,
                                                           double cutoff) {
  if (order < 2 || order % 2 != 0)
    throw std::invalid_argument(
        "design_butterworth_lowpass: order must be even and >= 2");
  std::vector<BiquadCoefficients> sections;
  sections.reserve(order / 2);
  for (std::size_t k = 0; k < order / 2; ++k) {
    const double angle = (2.0 * static_cast<double>(k) + 1.0) *
                         std::numbers::pi / (2.0 * static_cast<double>(order));
    const double q = 1.0 / (2.0 * std::cos(angle));
    sections.push_back(design_lowpass_biquad(cutoff, q));
  }
  return sections;
}

double Biquad::process(double x) {
  const double y = c_.b0 * x + c_.b1 * x1_ + c_.b2 * x2_ - c_.a1 * y1_ -
                   c_.a2 * y2_;
  x2_ = x1_;
  x1_ = x;
  y2_ = y1_;
  y1_ = y;
  return y;
}

void Biquad::reset() { x1_ = x2_ = y1_ = y2_ = 0.0; }

}  // namespace ace::signal
