// Second-order IIR sections (biquads) and Butterworth lowpass design.
// The paper's IIR benchmark is an 8th-order filter (Nv = 5); we realize it
// as four cascaded direct-form-I biquads.
#pragma once

#include <cstddef>
#include <vector>

namespace ace::signal {

/// Normalized biquad coefficients (a0 = 1):
///   y[n] = b0·x[n] + b1·x[n-1] + b2·x[n-2] − a1·y[n-1] − a2·y[n-2]
struct BiquadCoefficients {
  double b0 = 0.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;

  /// Stable iff both poles are inside the unit circle
  /// (triangle condition: |a2| < 1 and |a1| < 1 + a2).
  bool is_stable() const;
};

/// RBJ-cookbook digital lowpass biquad at normalized cutoff (cycles/sample)
/// with the given quality factor. cutoff in (0, 0.5), q > 0.
BiquadCoefficients design_lowpass_biquad(double cutoff, double q);

/// Even-order digital Butterworth lowpass as cascaded biquads
/// (order must be even and >= 2; cutoff in (0, 0.5)).
/// Section k gets the classical Butterworth quality factor
/// Q_k = 1 / (2·cos((2k+1)·π / (2·order))).
std::vector<BiquadCoefficients> design_butterworth_lowpass(std::size_t order,
                                                           double cutoff);

/// Stateful double-precision biquad (direct form I).
class Biquad {
 public:
  explicit Biquad(BiquadCoefficients coeffs) : c_(coeffs) {}

  double process(double x);
  void reset();

  const BiquadCoefficients& coefficients() const { return c_; }

 private:
  BiquadCoefficients c_;
  double x1_ = 0.0, x2_ = 0.0, y1_ = 0.0, y2_ = 0.0;
};

}  // namespace ace::signal
