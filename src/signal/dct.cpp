#include "signal/dct.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "fixedpoint/quantizer.hpp"
#include "fixedpoint/range_tracker.hpp"

namespace ace::signal {

namespace {

/// Orthonormal DCT-II basis matrix C with C·Cᵀ = I.
const std::array<double, kDctBlock>& dct_matrix() {
  static const std::array<double, kDctBlock> c = [] {
    std::array<double, kDctBlock> m{};
    for (std::size_t k = 0; k < kDctSize; ++k) {
      const double scale =
          k == 0 ? std::sqrt(1.0 / kDctSize) : std::sqrt(2.0 / kDctSize);
      for (std::size_t n = 0; n < kDctSize; ++n)
        m[k * kDctSize + n] =
            scale * std::cos(std::numbers::pi *
                             (2.0 * static_cast<double>(n) + 1.0) *
                             static_cast<double>(k) / (2.0 * kDctSize));
    }
    return m;
  }();
  return c;
}

/// Shared dataflow for reference / calibration / quantized runs. The
/// observer is called at six sites: 0/1 row products & accumulator
/// entries, 2 intermediate storage, 3/4 column products & accumulator
/// entries, 5 output storage.
template <typename Observe>
std::array<double, kDctBlock> run_dct(const std::array<double, kDctBlock>& in,
                                      Observe&& observe) {
  const auto& c = dct_matrix();

  // Row pass: interm = block · Cᵀ  (DCT of each row).
  std::array<double, kDctBlock> interm{};
  for (std::size_t r = 0; r < kDctSize; ++r) {
    for (std::size_t k = 0; k < kDctSize; ++k) {
      double acc = 0.0;
      for (std::size_t n = 0; n < kDctSize; ++n) {
        const double product =
            observe(0, c[k * kDctSize + n] * in[r * kDctSize + n]);
        acc += observe(1, product);
      }
      interm[r * kDctSize + k] = observe(2, acc);
    }
  }

  // Column pass: out = C · interm (DCT of each column).
  std::array<double, kDctBlock> out{};
  for (std::size_t k = 0; k < kDctSize; ++k) {
    for (std::size_t col = 0; col < kDctSize; ++col) {
      double acc = 0.0;
      for (std::size_t n = 0; n < kDctSize; ++n) {
        const double product =
            observe(3, c[k * kDctSize + n] * interm[n * kDctSize + col]);
        acc += observe(4, product);
      }
      out[k * kDctSize + col] = observe(5, acc);
    }
  }
  return out;
}

}  // namespace

std::array<double, kDctBlock> dct2d_reference(
    const std::array<double, kDctBlock>& block) {
  return run_dct(block, [](std::size_t, double v) { return v; });
}

std::array<double, kDctBlock> idct2d_reference(
    const std::array<double, kDctBlock>& coefficients) {
  const auto& c = dct_matrix();
  // inverse: block = Cᵀ · coeff · C.
  std::array<double, kDctBlock> tmp{};
  for (std::size_t n = 0; n < kDctSize; ++n)
    for (std::size_t col = 0; col < kDctSize; ++col) {
      double acc = 0.0;
      for (std::size_t k = 0; k < kDctSize; ++k)
        acc += c[k * kDctSize + n] * coefficients[k * kDctSize + col];
      tmp[n * kDctSize + col] = acc;
    }
  std::array<double, kDctBlock> out{};
  for (std::size_t r = 0; r < kDctSize; ++r)
    for (std::size_t n = 0; n < kDctSize; ++n) {
      double acc = 0.0;
      for (std::size_t k = 0; k < kDctSize; ++k)
        acc += tmp[r * kDctSize + k] * c[k * kDctSize + n];
      out[r * kDctSize + n] = acc;
    }
  return out;
}

QuantizedDct2d::QuantizedDct2d(
    const std::vector<std::array<double, kDctBlock>>& calibration,
    int margin_bits) {
  if (calibration.empty())
    throw std::invalid_argument("QuantizedDct2d: empty calibration set");
  fixedpoint::RangeTracker tracker(kDctVariables);
  for (const auto& block : calibration)
    run_dct(block, [&](std::size_t site, double v) {
      return tracker.observe(site, v);
    });
  site_iwl_ = tracker.all_integer_bits(margin_bits);
}

std::array<double, kDctBlock> QuantizedDct2d::transform(
    const std::array<double, kDctBlock>& block,
    const std::vector<int>& w) const {
  if (w.size() != kVariables)
    throw std::invalid_argument("QuantizedDct2d: wrong word-length count");
  for (int wl : w)
    if (wl < 2 || wl > 52)
      throw std::invalid_argument("QuantizedDct2d: word length out of [2, 52]");
  std::vector<fixedpoint::Quantizer> q;
  q.reserve(kVariables);
  for (std::size_t s = 0; s < kVariables; ++s)
    q.emplace_back(fixedpoint::Format::with_clamped_integer_bits(w[s], site_iwl_[s]));
  return run_dct(block,
                 [&](std::size_t site, double v) { return q[site](v); });
}

}  // namespace ace::signal
