#include "signal/iir.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fixedpoint/quantizer.hpp"
#include "fixedpoint/range_tracker.hpp"

namespace ace::signal {

IirCascade::IirCascade(std::vector<BiquadCoefficients> sections)
    : sections_(std::move(sections)) {
  if (sections_.empty())
    throw std::invalid_argument("IirCascade: empty section list");
  for (const auto& s : sections_)
    if (!s.is_stable())
      throw std::invalid_argument("IirCascade: unstable section");
}

std::vector<double> IirCascade::filter(const std::vector<double>& input) const {
  std::vector<Biquad> state;
  state.reserve(sections_.size());
  for (const auto& s : sections_) state.emplace_back(s);

  std::vector<double> out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    double x = input[i];
    for (auto& bq : state) x = bq.process(x);
    out[i] = x;
  }
  return out;
}

QuantizedIirCascade::QuantizedIirCascade(
    const IirCascade& reference, const std::vector<double>& calibration_input,
    int margin_bits)
    : sections_(reference.sections()) {
  if (calibration_input.empty())
    throw std::invalid_argument("QuantizedIirCascade: empty calibration input");
  const std::size_t ns = sections_.size();
  // Sites: one accumulator per biquad, plus the shared inter-stage data.
  fixedpoint::RangeTracker tracker(ns + 1);
  std::vector<Biquad> state;
  for (const auto& s : sections_) state.emplace_back(s);
  for (double xin : calibration_input) {
    double x = xin;
    for (std::size_t k = 0; k < ns; ++k) {
      x = tracker.observe(k, state[k].process(x));
      tracker.observe(ns, x);
    }
  }
  accum_iwl_.resize(ns);
  for (std::size_t k = 0; k < ns; ++k)
    accum_iwl_[k] = tracker.integer_bits(k, margin_bits);
  data_iwl_ = tracker.integer_bits(ns, margin_bits);
}

std::vector<double> QuantizedIirCascade::filter(
    const std::vector<double>& input, const std::vector<int>& w) const {
  const std::size_t nv = variable_count();
  if (w.size() != nv)
    throw std::invalid_argument("QuantizedIirCascade: wrong word-length count");
  for (int wl : w)
    if (wl < 2 || wl > 52)
      throw std::invalid_argument(
          "QuantizedIirCascade: word length out of [2, 52]");

  const std::size_t ns = sections_.size();
  std::vector<fixedpoint::Quantizer> qaccum;
  qaccum.reserve(ns);
  for (std::size_t k = 0; k < ns; ++k)
    qaccum.emplace_back(fixedpoint::Format::with_clamped_integer_bits(w[k], accum_iwl_[k]));
  const fixedpoint::Quantizer qdata{fixedpoint::Format::with_clamped_integer_bits(w[ns], data_iwl_)};

  // Direct-form-I state per section, on quantized signals.
  struct State {
    double x1 = 0.0, x2 = 0.0, y1 = 0.0, y2 = 0.0;
  };
  std::vector<State> st(ns);

  std::vector<double> out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    double x = input[i];
    for (std::size_t k = 0; k < ns; ++k) {
      const auto& c = sections_[k];
      auto& s = st[k];
      // Wide accumulator quantized at w[k]; stored signal at w[ns].
      const double acc = qaccum[k](c.b0 * x + c.b1 * s.x1 + c.b2 * s.x2 -
                                   c.a1 * s.y1 - c.a2 * s.y2);
      const double y = qdata(acc);
      s.x2 = s.x1;
      s.x1 = x;
      s.y2 = s.y1;
      s.y1 = y;
      x = y;
    }
    out[i] = x;
  }
  return out;
}

}  // namespace ace::signal
