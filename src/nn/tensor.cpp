#include "nn/tensor.hpp"

#include <stdexcept>

namespace ace::nn {

Tensor::Tensor(std::size_t channels, std::size_t height, std::size_t width,
               double fill)
    : c_(channels), h_(height), w_(width), data_(channels * height * width,
                                                 fill) {
  if (channels == 0 || height == 0 || width == 0)
    throw std::invalid_argument("Tensor: dimensions must be positive");
}

double& Tensor::at(std::size_t c, std::size_t y, std::size_t x) {
  if (c >= c_ || y >= h_ || x >= w_)
    throw std::out_of_range("Tensor::at: out of range");
  return data_[(c * h_ + y) * w_ + x];
}

double Tensor::at(std::size_t c, std::size_t y, std::size_t x) const {
  if (c >= c_ || y >= h_ || x >= w_)
    throw std::out_of_range("Tensor::at: out of range");
  return data_[(c * h_ + y) * w_ + x];
}

}  // namespace ace::nn
