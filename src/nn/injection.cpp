#include "nn/injection.hpp"

#include <cmath>
#include <stdexcept>

namespace ace::nn {

FrozenNoise make_frozen_noise(util::Rng& rng,
                              const std::vector<std::size_t>& site_sizes) {
  FrozenNoise noise;
  noise.per_site.reserve(site_sizes.size());
  for (std::size_t size : site_sizes)
    noise.per_site.push_back(rng.normal_vector(size));
  return noise;
}

InjectionPlan InjectionPlan::from_powers(const std::vector<double>& powers) {
  InjectionPlan plan;
  plan.stddev.reserve(powers.size());
  for (double p : powers) {
    if (p < 0.0)
      throw std::invalid_argument("InjectionPlan: negative error power");
    plan.stddev.push_back(std::sqrt(p));
  }
  return plan;
}

double power_from_level(int level, double base_power) {
  if (level < 0)
    throw std::invalid_argument("power_from_level: level must be >= 0");
  return std::ldexp(base_power, -level);
}

}  // namespace ace::nn
