#include "nn/dataset.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ace::nn {

namespace {

/// Smooth class prototype: a mixture of oriented sinusoids and a blob,
/// parameterized by per-class random draws.
Tensor make_prototype(util::Rng& rng, std::size_t hw) {
  Tensor proto(1, hw, hw);
  const double freq = rng.uniform(0.08, 0.4);
  const double angle = rng.uniform(0.0, std::numbers::pi);
  const double cx = rng.uniform(0.25, 0.75) * static_cast<double>(hw);
  const double cy = rng.uniform(0.25, 0.75) * static_cast<double>(hw);
  const double blob_sigma = rng.uniform(2.0, 5.0);
  const double blob_amp = rng.uniform(0.5, 1.2);
  const double ca = std::cos(angle);
  const double sa = std::sin(angle);
  for (std::size_t y = 0; y < hw; ++y)
    for (std::size_t x = 0; x < hw; ++x) {
      const double fx = static_cast<double>(x);
      const double fy = static_cast<double>(y);
      double v = std::sin(2.0 * std::numbers::pi * freq * (ca * fx + sa * fy));
      const double dx = fx - cx;
      const double dy = fy - cy;
      v += blob_amp *
           std::exp(-(dx * dx + dy * dy) / (2.0 * blob_sigma * blob_sigma));
      proto.at(0, y, x) = v;
    }
  return proto;
}

}  // namespace

SyntheticDataset::SyntheticDataset(std::size_t count, std::size_t classes,
                                   util::Rng& rng)
    : classes_(classes) {
  if (count == 0 || classes == 0)
    throw std::invalid_argument("SyntheticDataset: count/classes positive");
  const std::size_t hw = 16;
  std::vector<Tensor> prototypes;
  prototypes.reserve(classes);
  for (std::size_t c = 0; c < classes; ++c)
    prototypes.push_back(make_prototype(rng, hw));

  images_.reserve(count);
  labels_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t cls = i % classes;
    Tensor img = prototypes[cls];
    for (auto& v : img.flat()) v += rng.normal(0.0, 0.25);
    images_.push_back(std::move(img));
    labels_.push_back(cls);
  }
}

}  // namespace ace::nn
