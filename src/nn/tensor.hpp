// Minimal CHW tensor for the CNN error-sensitivity benchmark.
#pragma once

#include <cstddef>
#include <vector>

namespace ace::nn {

/// Dense 3-D tensor in channel-height-width order.
class Tensor {
 public:
  Tensor() = default;
  /// Throws std::invalid_argument on a zero dimension.
  Tensor(std::size_t channels, std::size_t height, std::size_t width,
         double fill = 0.0);

  std::size_t channels() const { return c_; }
  std::size_t height() const { return h_; }
  std::size_t width() const { return w_; }
  std::size_t size() const { return data_.size(); }

  /// Checked element access; throws std::out_of_range.
  double& at(std::size_t c, std::size_t y, std::size_t x);
  double at(std::size_t c, std::size_t y, std::size_t x) const;

  /// Unchecked flat access for hot loops.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  std::vector<double>& flat() { return data_; }
  const std::vector<double>& flat() const { return data_; }

 private:
  std::size_t c_ = 0, h_ = 0, w_ = 0;
  std::vector<double> data_;
};

}  // namespace ace::nn
