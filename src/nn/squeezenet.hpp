// SqueezeNet-like classifier (Table I row 5, Nv = 10).
//
// Mirrors SqueezeNet v1.1's block structure at laptop scale: conv1, eight
// fire modules, a 1×1 classification conv, global average pooling — ten
// blocks, hence the paper's ten injection sites (one error source at the
// output of each layer). Weights are fixed-seed He-initialized; the
// benchmark's metric is classification *agreement* with the error-free
// network, which does not require trained weights (see DESIGN.md,
// substitutions).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "nn/injection.hpp"
#include "nn/layers.hpp"
#include "nn/tensor.hpp"

namespace ace::nn {

/// SqueezeNet fire module: 1×1 squeeze → ReLU → parallel 1×1/3×3 expands →
/// ReLU → channel concat.
class FireModule {
 public:
  FireModule(std::size_t in_channels, std::size_t squeeze_channels,
             std::size_t expand_channels);

  void init_weights(util::Rng& rng);
  Tensor forward(const Tensor& input) const;

  std::size_t out_channels() const {
    return expand1_.out_channels() + expand3_.out_channels();
  }

 private:
  Conv2d squeeze_;
  Conv2d expand1_;
  Conv2d expand3_;
};

/// The ten-block network. Input is 1×16×16, output one logit per class.
class SqueezeNetLike {
 public:
  static constexpr std::size_t kSites = 10;

  /// Builds and He-initializes all weights from the generator.
  /// `classes` >= 2 (throws otherwise).
  SqueezeNetLike(std::size_t classes, util::Rng& rng);

  std::size_t classes() const { return classes_; }
  static std::size_t input_size() { return 16; }

  /// Flat activation counts at each of the ten injection sites, in order.
  const std::vector<std::size_t>& site_sizes() const { return site_sizes_; }

  /// Clean forward pass: logits for one image.
  std::vector<double> forward(const Tensor& input) const;

  /// Forward pass with additive error injection: at each site s the frozen
  /// unit noise is scaled by plan.stddev[s] and added to the activations.
  /// Sizes must match kSites / site_sizes(); throws otherwise.
  std::vector<double> forward_injected(const Tensor& input,
                                       const InjectionPlan& plan,
                                       const FrozenNoise& noise) const;

 private:
  template <typename Inject>
  std::vector<double> run(const Tensor& input, Inject&& inject) const;

  std::size_t classes_;
  Conv2d conv1_;
  std::vector<FireModule> fires_;
  Conv2d conv10_;
  std::vector<std::size_t> site_sizes_;
};

}  // namespace ace::nn
