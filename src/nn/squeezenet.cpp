#include "nn/squeezenet.hpp"

#include <stdexcept>

namespace ace::nn {

FireModule::FireModule(std::size_t in_channels, std::size_t squeeze_channels,
                       std::size_t expand_channels)
    : squeeze_(in_channels, squeeze_channels, 1),
      expand1_(squeeze_channels, expand_channels, 1),
      expand3_(squeeze_channels, expand_channels, 3) {}

void FireModule::init_weights(util::Rng& rng) {
  squeeze_.init_weights(rng);
  expand1_.init_weights(rng);
  expand3_.init_weights(rng);
}

Tensor FireModule::forward(const Tensor& input) const {
  Tensor s = squeeze_.forward(input);
  relu_inplace(s);
  Tensor e1 = expand1_.forward(s);
  relu_inplace(e1);
  Tensor e3 = expand3_.forward(s);
  relu_inplace(e3);
  return concat_channels(e1, e3);
}

SqueezeNetLike::SqueezeNetLike(std::size_t classes, util::Rng& rng)
    : classes_(classes), conv1_(1, 8, 3), conv10_(20, classes, 1) {
  if (classes < 2)
    throw std::invalid_argument("SqueezeNetLike: need >= 2 classes");
  // Fire-module ladder mirroring SqueezeNet v1.1's widening pattern.
  fires_.emplace_back(8, 2, 4);    // fire2 ->  8 ch @ 8x8
  fires_.emplace_back(8, 2, 4);    // fire3 ->  8 ch @ 8x8
  fires_.emplace_back(8, 3, 6);    // fire4 -> 12 ch @ 8x8
  fires_.emplace_back(12, 3, 6);   // fire5 -> 12 ch @ 4x4
  fires_.emplace_back(12, 4, 8);   // fire6 -> 16 ch @ 4x4
  fires_.emplace_back(16, 4, 8);   // fire7 -> 16 ch @ 4x4
  fires_.emplace_back(16, 5, 10);  // fire8 -> 20 ch @ 2x2
  fires_.emplace_back(20, 5, 10);  // fire9 -> 20 ch @ 2x2

  conv1_.init_weights(rng);
  for (auto& fire : fires_) fire.init_weights(rng);
  conv10_.init_weights(rng);

  // Compute site sizes with a dry run.
  Tensor probe(1, input_size(), input_size());
  site_sizes_.clear();
  run(probe, [this](std::size_t site, Tensor& t) {
    (void)site;
    site_sizes_.push_back(t.size());
  });
}

template <typename Inject>
std::vector<double> SqueezeNetLike::run(const Tensor& input,
                                        Inject&& inject) const {
  if (input.channels() != 1 || input.height() != input_size() ||
      input.width() != input_size())
    throw std::invalid_argument("SqueezeNetLike: input must be 1x16x16");

  std::size_t site = 0;
  Tensor x = conv1_.forward(input);
  relu_inplace(x);
  inject(site++, x);  // site 0: conv1 output
  x = max_pool2(x);   // 16x16 -> 8x8

  for (std::size_t f = 0; f < fires_.size(); ++f) {
    x = fires_[f].forward(x);
    inject(site++, x);  // sites 1..8: fire outputs
    if (f == 2 || f == 5) x = max_pool2(x);  // after fire4 and fire7
  }

  x = conv10_.forward(x);
  inject(site++, x);  // site 9: classifier conv output
  return global_avg_pool(x);
}

std::vector<double> SqueezeNetLike::forward(const Tensor& input) const {
  return run(input, [](std::size_t, Tensor&) {});
}

std::vector<double> SqueezeNetLike::forward_injected(
    const Tensor& input, const InjectionPlan& plan,
    const FrozenNoise& noise) const {
  if (plan.stddev.size() != kSites)
    throw std::invalid_argument("forward_injected: plan must have 10 sites");
  if (noise.per_site.size() != kSites)
    throw std::invalid_argument("forward_injected: noise must have 10 sites");

  return run(input, [&](std::size_t site, Tensor& t) {
    const double sd = plan.stddev[site];
    // A site configured with exactly zero stddev injects nothing.
    if (sd == 0.0) return;  // ace-lint: allow(float-equality)
    const auto& n = noise.per_site[site];
    if (n.size() != t.size())
      throw std::invalid_argument("forward_injected: noise size mismatch");
    double* data = t.data();
    for (std::size_t i = 0; i < n.size(); ++i) data[i] += sd * n[i];
  });
}

}  // namespace ace::nn
