// CNN layers: convolution, ReLU, pooling, softmax. Double precision —
// the SqueezeNet benchmark studies injected-error sensitivity, not
// quantization, so the arithmetic itself is exact.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace ace::nn {

/// 2-D convolution with square kernel, stride 1, symmetric zero padding
/// chosen to preserve spatial size (pad = kernel/2).
class Conv2d {
 public:
  /// Throws std::invalid_argument on zero channels or even kernel size.
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel);

  /// He-normal weight initialization from the given generator.
  void init_weights(util::Rng& rng);

  /// Forward pass; input channel count must match. Throws otherwise.
  Tensor forward(const Tensor& input) const;

  std::size_t in_channels() const { return in_c_; }
  std::size_t out_channels() const { return out_c_; }
  std::size_t kernel() const { return k_; }

  std::vector<double>& weights() { return weights_; }
  std::vector<double>& bias() { return bias_; }

 private:
  std::size_t in_c_, out_c_, k_;
  std::vector<double> weights_;  ///< [out][in][ky][kx]
  std::vector<double> bias_;     ///< [out]
};

/// In-place ReLU.
void relu_inplace(Tensor& t);

/// 2×2 max pooling with stride 2; spatial dims must be even (throws).
Tensor max_pool2(const Tensor& input);

/// Global average pooling to a per-channel score vector.
std::vector<double> global_avg_pool(const Tensor& input);

/// Numerically stable softmax.
std::vector<double> softmax(const std::vector<double>& logits);

/// Concatenate two tensors along the channel axis (same H, W; throws).
Tensor concat_channels(const Tensor& a, const Tensor& b);

}  // namespace ace::nn
