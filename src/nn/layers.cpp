#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ace::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      weights_(out_channels * in_channels * kernel * kernel, 0.0),
      bias_(out_channels, 0.0) {
  if (in_channels == 0 || out_channels == 0)
    throw std::invalid_argument("Conv2d: channels must be positive");
  if (kernel == 0 || kernel % 2 == 0)
    throw std::invalid_argument("Conv2d: kernel must be odd and positive");
}

void Conv2d::init_weights(util::Rng& rng) {
  const double fan_in = static_cast<double>(in_c_ * k_ * k_);
  const double scale = std::sqrt(2.0 / fan_in);
  for (auto& w : weights_) w = rng.normal(0.0, scale);
  for (auto& b : bias_) b = rng.normal(0.0, 0.05);
}

Tensor Conv2d::forward(const Tensor& input) const {
  if (input.channels() != in_c_)
    throw std::invalid_argument("Conv2d::forward: channel mismatch");
  const std::size_t h = input.height();
  const std::size_t w = input.width();
  const std::size_t pad = k_ / 2;
  Tensor out(out_c_, h, w);

  const double* in = input.data();
  double* o = out.data();
  for (std::size_t oc = 0; oc < out_c_; ++oc) {
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        double acc = bias_[oc];
        for (std::size_t ic = 0; ic < in_c_; ++ic) {
          const double* wbase =
              &weights_[((oc * in_c_ + ic) * k_) * k_];
          for (std::size_t ky = 0; ky < k_; ++ky) {
            const std::ptrdiff_t sy = static_cast<std::ptrdiff_t>(y + ky) -
                                      static_cast<std::ptrdiff_t>(pad);
            if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(h)) continue;
            const double* irow =
                &in[(ic * h + static_cast<std::size_t>(sy)) * w];
            for (std::size_t kx = 0; kx < k_; ++kx) {
              const std::ptrdiff_t sx = static_cast<std::ptrdiff_t>(x + kx) -
                                        static_cast<std::ptrdiff_t>(pad);
              if (sx < 0 || sx >= static_cast<std::ptrdiff_t>(w)) continue;
              acc += wbase[ky * k_ + kx] * irow[static_cast<std::size_t>(sx)];
            }
          }
        }
        o[(oc * h + y) * w + x] = acc;
      }
    }
  }
  return out;
}

void relu_inplace(Tensor& t) {
  for (auto& x : t.flat()) x = std::max(x, 0.0);
}

Tensor max_pool2(const Tensor& input) {
  if (input.height() % 2 != 0 || input.width() % 2 != 0)
    throw std::invalid_argument("max_pool2: spatial dims must be even");
  const std::size_t h = input.height() / 2;
  const std::size_t w = input.width() / 2;
  Tensor out(input.channels(), h, w);
  for (std::size_t c = 0; c < input.channels(); ++c)
    for (std::size_t y = 0; y < h; ++y)
      for (std::size_t x = 0; x < w; ++x) {
        const double a = input.at(c, 2 * y, 2 * x);
        const double b = input.at(c, 2 * y, 2 * x + 1);
        const double d = input.at(c, 2 * y + 1, 2 * x);
        const double e = input.at(c, 2 * y + 1, 2 * x + 1);
        out.at(c, y, x) = std::max(std::max(a, b), std::max(d, e));
      }
  return out;
}

std::vector<double> global_avg_pool(const Tensor& input) {
  std::vector<double> out(input.channels(), 0.0);
  const double denom =
      static_cast<double>(input.height() * input.width());
  for (std::size_t c = 0; c < input.channels(); ++c) {
    double acc = 0.0;
    for (std::size_t y = 0; y < input.height(); ++y)
      for (std::size_t x = 0; x < input.width(); ++x)
        acc += input.at(c, y, x);
    out[c] = acc / denom;
  }
  return out;
}

std::vector<double> softmax(const std::vector<double>& logits) {
  if (logits.empty()) throw std::invalid_argument("softmax: empty input");
  const double peak = *std::max_element(logits.begin(), logits.end());
  std::vector<double> out(logits.size());
  double denom = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - peak);
    denom += out[i];
  }
  for (auto& p : out) p /= denom;
  return out;
}

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  if (a.height() != b.height() || a.width() != b.width())
    throw std::invalid_argument("concat_channels: spatial mismatch");
  Tensor out(a.channels() + b.channels(), a.height(), a.width());
  std::copy(a.flat().begin(), a.flat().end(), out.flat().begin());
  std::copy(b.flat().begin(), b.flat().end(),
            out.flat().begin() + static_cast<std::ptrdiff_t>(a.size()));
  return out;
}

}  // namespace ace::nn
