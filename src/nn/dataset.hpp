// Synthetic image set for the sensitivity benchmark (substitute for the
// paper's 1000-image classification set; see DESIGN.md).
//
// Each class is a fixed random prototype pattern; an image is its class
// prototype plus instance noise, so inputs cluster by class and the clean
// network produces stable, margin-varied predictions.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace ace::nn {

/// A deterministic synthetic dataset of 16×16 grayscale images.
class SyntheticDataset {
 public:
  /// `count` images over `classes` prototypes (both positive; throws).
  SyntheticDataset(std::size_t count, std::size_t classes, util::Rng& rng);

  std::size_t size() const { return images_.size(); }
  std::size_t classes() const { return classes_; }

  const Tensor& image(std::size_t i) const { return images_.at(i); }
  /// Generating class of image i (prototype id, not a network label).
  std::size_t source_class(std::size_t i) const { return labels_.at(i); }

 private:
  std::size_t classes_;
  std::vector<Tensor> images_;
  std::vector<std::size_t> labels_;
};

}  // namespace ace::nn
