// Error injection for the sensitivity-analysis benchmark.
//
// The paper injects "an error source at the output of each layer of the
// network"; a configuration assigns each source a power. We freeze one
// unit-variance noise realization per (image, site) and scale it by the
// configured standard deviation, so the quality metric λ(e) is a
// deterministic, continuous function of the error-power configuration —
// the property kriging interpolation relies on.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace ace::nn {

/// Frozen unit-variance noise for one image: one flat vector per site.
struct FrozenNoise {
  std::vector<std::vector<double>> per_site;
};

/// Draw frozen noise matching the given per-site activation sizes.
FrozenNoise make_frozen_noise(util::Rng& rng,
                              const std::vector<std::size_t>& site_sizes);

/// Per-site noise standard deviations (sqrt of the configured powers).
struct InjectionPlan {
  std::vector<double> stddev;

  /// Plan from per-site error powers. Throws on a negative power.
  static InjectionPlan from_powers(const std::vector<double>& powers);
};

/// Map an integer configuration component e in [0, emax] to an error power
/// 2^-e · base_power — the integer lattice the DSE explores (DESIGN.md).
double power_from_level(int level, double base_power = 1.0);

}  // namespace ace::nn
