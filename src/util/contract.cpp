#include "util/contract.hpp"

namespace ace::util {

namespace {

std::string build_message(ContractViolation::Kind kind, const char* condition,
                          const char* file, int line,
                          const std::string& detail) {
  std::string msg = "contract violation [";
  msg += to_string(kind);
  msg += "] at ";
  msg += file;
  msg += ':';
  msg += std::to_string(line);
  msg += ": ";
  msg += condition;
  if (!detail.empty()) {
    msg += " — ";
    msg += detail;
  }
  return msg;
}

}  // namespace

const char* to_string(ContractViolation::Kind kind) {
  switch (kind) {
    case ContractViolation::Kind::kRequire: return "require";
    case ContractViolation::Kind::kEnsure: return "ensure";
    case ContractViolation::Kind::kInvariant: return "invariant";
  }
  return "unknown";
}

ContractViolation::ContractViolation(Kind kind, const char* condition,
                                     const char* file, int line,
                                     const std::string& detail)
    : std::invalid_argument(build_message(kind, condition, file, line, detail)),
      kind_(kind),
      condition_(condition),
      file_(file),
      line_(line) {}

void raise_contract_violation(ContractViolation::Kind kind,
                              const char* condition, const char* file,
                              int line, const std::string& detail) {
  throw ContractViolation(kind, condition, file, line, detail);
}

}  // namespace ace::util
