// Bounded retry with exponential backoff and a per-call deadline watchdog.
//
// Long DSE campaigns (the paper's SqueezeNet run simulated for 98 hours)
// cannot afford to die on one transient simulator fault. call_with_retry()
// guards a single metric evaluation: it classifies each attempt as clean,
// thrown, non-finite, or over-deadline, and retries faulted attempts up to
// a bounded budget with exponentially growing, deterministically jittered
// backoff.
//
// Determinism: the jitter for retry k of a task derives from
// splitmix64(jitter_seed ^ task_key ^ k) — a pure function, so the backoff
// schedule (and therefore any timing-independent downstream decision) is
// identical across runs and across thread schedules.
//
// The deadline is a *watchdog*, not a pre-emption: a C++ callable cannot be
// safely killed mid-flight, so an over-budget attempt runs to completion
// and is then classified kOverDeadline and its value discarded. This keeps
// one hung-but-eventually-returning simulation from silently stretching a
// batch; truly non-returning simulators are out of scope.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace ace::util {

/// How a guarded call ultimately ended.
enum class CallFault : unsigned char {
  kNone = 0,       ///< Clean: finite value within the deadline.
  kThrew,          ///< The callable threw on the final attempt.
  kNonFinite,      ///< The callable returned NaN/Inf on the final attempt.
  kOverDeadline,   ///< The final attempt exceeded deadline_ms.
  kContractViolation,  ///< The callable tripped a numerical contract
                       ///< (util::ContractViolation) — deterministic, so
                       ///< the attempt is never retried.
};

const char* to_string(CallFault fault);

struct RetryOptions {
  std::size_t max_attempts = 1;    ///< Total tries (1 = no retry).
  double base_backoff_ms = 0.0;    ///< Delay before the first retry.
  double backoff_multiplier = 2.0; ///< Growth factor per further retry.
  double max_backoff_ms = 100.0;   ///< Backoff ceiling.
  double jitter_fraction = 0.25;   ///< Extra uniform delay in [0, f]·delay.
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  double deadline_ms = 0.0;        ///< Per-attempt watchdog budget (0 = off).

  friend bool operator==(const RetryOptions&, const RetryOptions&) = default;
};

/// Result of a guarded call, with enough accounting for fault statistics.
struct GuardedCall {
  double value = 0.0;                      ///< Valid only when ok().
  CallFault fault = CallFault::kNone;      ///< Classification of last attempt.
  std::size_t attempts = 0;                ///< Calls actually made.
  std::size_t faulted_attempts = 0;        ///< Attempts that did not succeed.
  std::size_t timeouts = 0;                ///< Attempts classified over-deadline.
  std::string message;                     ///< what() of the last exception.

  bool ok() const { return fault == CallFault::kNone; }
};

/// Deterministic backoff delay (ms) before retry `retry_index` (0-based) of
/// the task identified by `task_key`. Pure function of its arguments.
double backoff_delay_ms(const RetryOptions& options, std::uint64_t task_key,
                        std::size_t retry_index);

/// Invoke fn up to options.max_attempts times, sleeping the backoff delay
/// between attempts. Never throws from fn's failures — every outcome is
/// reported in the returned GuardedCall.
GuardedCall call_with_retry(const RetryOptions& options, std::uint64_t task_key,
                            const std::function<double()>& fn);

}  // namespace ace::util
