#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ace::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("TablePrinter: need at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TablePrinter::add_row: column count mismatch");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int decimals) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(decimals) << value;
  return ss.str();
}

std::string fmt_pct(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals);
}

std::string fmt_sci(double value, int decimals) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(decimals) << value;
  return ss.str();
}

}  // namespace ace::util
