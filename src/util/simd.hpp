// Portable SIMD kernels for the columnar (SoA) hot paths.
//
// The paper's 10⁻⁶-second interpolation claim lives or dies in three inner
// loops: L1 distance scans over the simulated-configuration store, the
// γ-vector / variogram-block assembly of the kriging system, and the
// bordered solves. All three stream long arrays with a tiny per-element
// kernel, which makes them memory-bandwidth problems — the HPC discipline
// (blocked scans over contiguous columns, STREAM-style GB/s accounting in
// bench/micro_kriging) applies directly.
//
// This header exposes *distance kernels over columns*, not a general
// vector-register abstraction: every consumer (SimulationStore scans,
// KrigingSystem assembly) iterates points in lanes and dimensions in
// sequence, so the whole contract fits in four functions. Each kernel has
//   * a dispatching entry point (`l1_distances_i32`, ...) that uses the
//     AVX2 backend when it was compiled in (configure-time `ACE_SIMD`
//     option) *and* the runtime toggle is on;
//   * a `_scalar` reference twin, compiled in its own TU with
//     auto-vectorization disabled, which is both the portable fallback and
//     the honest "scalar" baseline of the roofline bench.
//
// Numerical contract (see DESIGN.md §10): the vector kernels are
// *bit-identical* to their scalar twins, not merely close —
//   * i32 L1: pure integer arithmetic, same wrap-around semantics;
//   * i32 squared-L2: integer differences converted to double and
//     accumulated in dimension order, exactly as the scalar loop
//     (products and sums of integer-valued doubles < 2⁵³ are exact);
//   * f64 L1/L2: per-lane accumulation walks dimensions in the same order
//     as the scalar loop, so every rounding step matches; _mm256_sqrt_pd
//     is correctly rounded, like std::sqrt.
// Consumers therefore produce identical neighbourhoods and identical
// assembled systems whether the toggle is on or off; the toggle exists for
// A/B benchmarking (bench/micro_kriging, bench/decision_divergence), not
// because results drift.
//
// Thread-safety: kernels are pure functions of their arguments. The
// enable toggle is a relaxed atomic read per call — flip it only from
// single-threaded bench/test setup code, not mid-scan.
#pragma once

#include <cstddef>

namespace ace::util::simd {

/// True when the AVX2 backend was compiled in (CMake `ACE_SIMD`).
bool compiled_avx2();

/// Name of the compiled backend: "avx2" or "scalar".
const char* backend();

/// Vector kernels are used when compiled in AND this toggle is on (the
/// default). The toggle exists for in-binary scalar-vs-SIMD comparisons.
bool enabled();
void set_enabled(bool on);

// --- dispatching kernels --------------------------------------------------
// `cols` holds `dim` pointers, one per coordinate; cols[d][i] is the d-th
// coordinate of point i. All kernels write `count` outputs.

/// out[i] = Σ_d |cols[d][i] − query[d]|  (int arithmetic, wraps like the
/// scalar loop on overflow).
void l1_distances_i32(const int* const* cols, std::size_t dim,
                      const int* query, std::size_t count, int* out);

/// out[i] = Σ_d double(cols[d][i] − query[d])²  — the *squared* Euclidean
/// distance, exact for coordinate differences below 2²⁶.
void l2_sq_distances_i32(const int* const* cols, std::size_t dim,
                         const int* query, std::size_t count, double* out);

/// out[i] = Σ_d |cols[d][i] − query[d]|  over double columns.
void l1_distances_f64(const double* const* cols, std::size_t dim,
                      const double* query, std::size_t count, double* out);

/// out[i] = sqrt(Σ_d (cols[d][i] − query[d])²) over double columns.
void l2_distances_f64(const double* const* cols, std::size_t dim,
                      const double* query, std::size_t count, double* out);

// --- scalar reference twins ----------------------------------------------
// Compiled in simd_scalar.cpp with auto-vectorization off: the portable
// fallback and the denominator of every scalar-vs-SIMD bench ratio.

void l1_distances_i32_scalar(const int* const* cols, std::size_t dim,
                             const int* query, std::size_t count, int* out);
void l2_sq_distances_i32_scalar(const int* const* cols, std::size_t dim,
                                const int* query, std::size_t count,
                                double* out);
void l1_distances_f64_scalar(const double* const* cols, std::size_t dim,
                             const double* query, std::size_t count,
                             double* out);
void l2_distances_f64_scalar(const double* const* cols, std::size_t dim,
                             const double* query, std::size_t count,
                             double* out);

}  // namespace ace::util::simd
