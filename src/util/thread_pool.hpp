// Fixed-size worker pool for fanning out independent simulations.
//
// The DSE optimizers evaluate Nv independent candidate configurations per
// greedy step; the policy's batch engine partitions a candidate set into
// interpolate-vs-simulate up front and runs only the *simulations* here.
// Because every result is written to a caller-owned slot addressed by
// index, the execution schedule cannot influence the outcome: a batch run
// on the pool is bit-identical to the same batch run inline.
//
// One batch is active at a time (run_indexed() serializes callers); the
// calling thread participates in draining the batch, so a pool of W
// workers executes with W+1 threads and never deadlocks on itself.
//
// Lock discipline is annotated for the Clang capability analysis
// (util/thread_annotations.hpp): `batch_` and `stopping_` are guarded by
// `mutex_`, and the condition-variable waits are written as explicit
// predicate loops so every guarded read happens where the analysis can see
// the lock held.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ace::util {

/// One failed task from a collecting batch run.
struct TaskError {
  std::size_t index = 0;       ///< Task index passed to the callable.
  std::exception_ptr error;    ///< What it threw.
};

class ThreadPool {
 public:
  /// Spawn `workers` threads (clamped to >= 1).
  explicit ThreadPool(std::size_t workers) {
    if (workers == 0) workers = 1;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~ThreadPool() {
    {
      const LockGuard lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Run task(i) for every i in [0, count) across the pool and block until
  /// all have finished. Every task runs regardless of sibling failures —
  /// one throwing task never aborts the batch, and the side effects of the
  /// surviving tasks are retained. All captured errors are returned, sorted
  /// by task index; the pool stays usable afterwards.
  std::vector<TaskError> run_indexed_collect(
      std::size_t count, const std::function<void(std::size_t)>& task)
      ACE_EXCLUDES(run_mutex_, mutex_) {
    if (count == 0) return {};
    const LockGuard serialize(run_mutex_);
    Batch batch;
    batch.task = &task;
    batch.count = count;

    std::vector<TaskError> errors;
    {
      UniqueLock lock(mutex_);
      batch_ = &batch;
      wake_.notify_all();
      // The caller helps drain its own batch.
      while (batch.next < batch.count) {
        const std::size_t i = batch.next++;
        lock.unlock();
        execute(batch, i);
        lock.lock();
        ++batch.done;
      }
      // Draining under run_mutex_ IS the batch serialization seam: one
      // run_indexed at a time, and the workers that must wake us never
      // take run_mutex_.
      // ace-lint: allow(cv-wait-foreign-lock)
      while (batch.done != batch.count) lock.wait(done_);
      batch_ = nullptr;
      // All tasks have completed and the pool is idle again; move the
      // error list out while still holding the mutex that guarded it.
      errors = std::move(batch.errors);
    }
    // Scheduling determines arrival order; sort so callers see a
    // reproducible, index-ordered error list.
    std::sort(errors.begin(), errors.end(),
              [](const TaskError& a, const TaskError& b) {
                return a.index < b.index;
              });
    return errors;
  }

  /// Historical rethrow semantics, layered over the collecting primitive:
  /// the batch always drains fully, then the error of the *lowest-indexed*
  /// failed task (a deterministic choice, unlike first-to-occur) is
  /// rethrown. Surviving tasks' side effects are retained.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& task) {
    const std::vector<TaskError> errors = run_indexed_collect(count, task);
    if (!errors.empty()) std::rethrow_exception(errors.front().error);
  }

 private:
  struct Batch {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t count = 0;
    std::size_t next = 0;  ///< Next index to claim (guarded by mutex_).
    std::size_t done = 0;  ///< Completed tasks (guarded by mutex_).
    std::vector<TaskError> errors;  ///< All failures (guarded by mutex_).
  };

  /// Run one task outside the lock; record any failure.
  void execute(Batch& batch, std::size_t i) ACE_EXCLUDES(mutex_) {
    std::exception_ptr error;
    try {
      (*batch.task)(i);
    } catch (...) {
      error = std::current_exception();
    }
    if (error) {
      const LockGuard lock(mutex_);
      batch.errors.push_back({i, error});
    }
  }

  void worker_loop() ACE_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    for (;;) {
      while (!stopping_ && !(batch_ && batch_->next < batch_->count))
        lock.wait(wake_);
      if (stopping_) return;
      Batch& batch = *batch_;
      const std::size_t i = batch.next++;
      lock.unlock();
      execute(batch, i);
      lock.lock();
      if (++batch.done == batch.count) done_.notify_all();
    }
  }

  std::vector<std::thread> workers_;
  /// One run_indexed() at a time; always taken before mutex_.
  Mutex run_mutex_ ACE_ACQUIRED_BEFORE(mutex_){lock_order::Rank::kPoolRun,
                                               "util.pool_run"};
  Mutex mutex_{lock_order::Rank::kPool, "util.pool"};
  std::condition_variable wake_;  ///< Workers wait here for a batch.
  std::condition_variable done_;  ///< run_indexed() waits here for drain.
  Batch* batch_ ACE_GUARDED_BY(mutex_) = nullptr;
  bool stopping_ ACE_GUARDED_BY(mutex_) = false;
};

/// Run fn(i) for i in [0, n): inline in index order when `pool` is null
/// (the serial reference path), on the pool otherwise. Callers write
/// results into index-addressed slots, so both paths yield identical data.
inline void parallel_for_indexed(ThreadPool* pool, std::size_t n,
                                 const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->run_indexed(n, fn);
}

/// Collecting variant of parallel_for_indexed: every index runs, all
/// failures are returned sorted by index, and the serial path mirrors the
/// pool path exactly (a thrown fn(i) does not stop the remaining indices).
inline std::vector<TaskError> parallel_for_indexed_collect(
    ThreadPool* pool, std::size_t n,
    const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || n <= 1) {
    std::vector<TaskError> errors;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors.push_back({i, std::current_exception()});
      }
    }
    return errors;
  }
  return pool->run_indexed_collect(n, fn);
}

}  // namespace ace::util
