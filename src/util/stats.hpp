// Streaming and batch descriptive statistics used by the experiment
// harnesses (interpolation-error summaries, timing summaries).
#pragma once

#include <cstddef>
#include <vector>

namespace ace::util {

/// Numerically stable (Welford) streaming accumulator of count / mean /
/// variance / min / max. Suitable for millions of samples.
class RunningStats {
 public:
  /// Raw accumulator state, exposed for exact persistence (checkpointing):
  /// restoring it and continuing to add() is bit-identical to never having
  /// paused.
  struct State {
    std::size_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  RunningStats() = default;
  explicit RunningStats(const State& s)
      : n_(s.n), mean_(s.mean), m2_(s.m2), min_(s.min), max_(s.max) {}

  State state() const { return {n_, mean_, m2_, min_, max_}; }

  friend bool operator==(const RunningStats&, const RunningStats&) = default;

  void add(double x);

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

  bool empty() const { return n_ == 0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers over a full sample vector.
double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// Quantile with linear interpolation between order statistics.
/// q in [0,1]; throws std::invalid_argument on empty input or bad q.
double quantile(std::vector<double> xs, double q);

/// Median (q = 0.5).
double median(std::vector<double> xs);

/// Pearson correlation coefficient; throws on size mismatch or < 2 points.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace ace::util
