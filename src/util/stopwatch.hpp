// Wall-clock stopwatch for the timing experiments (speed-up bench).
#pragma once

#include <chrono>

namespace ace::util {

/// Monotonic stopwatch; starts on construction, restartable.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ace::util
