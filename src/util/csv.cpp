#include "util/csv.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ace::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    std::string message = "CsvWriter: cannot open ";
    message += path;
    throw std::runtime_error(message);
  }
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (!out_.is_open()) throw std::runtime_error("CsvWriter: write after close");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values, int decimals) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream ss;
    ss << std::setprecision(decimals) << std::fixed << v;
    cells.push_back(ss.str());
  }
  write_row(cells);
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

}  // namespace ace::util
