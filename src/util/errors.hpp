// Typed errors shared across modules.
//
// The evaluation pipeline's containers (simulation store, empirical
// variogram) must never admit a non-finite sample: a single NaN folded
// into the variogram bins poisons every γ̂(d) it touches, and a NaN
// support point makes every kriging estimate drawing on it NaN. Rejecting
// at ingestion with a dedicated exception type lets the fault-tolerant
// evaluation path distinguish "bad sample" from programming errors.
#pragma once

#include <stdexcept>
#include <string>

namespace ace::util {

/// A non-finite (NaN/Inf) value reached a container that feeds the
/// kriging estimator.
class NonFiniteError : public std::invalid_argument {
 public:
  explicit NonFiniteError(const std::string& what)
      : std::invalid_argument(what) {}
};

}  // namespace ace::util
