// Clang thread-safety (capability) analysis macros.
//
// The concurrent subsystems (thread pool, simulation store, kriging
// policy, checkpointing, empirical variogram) document their lock
// discipline with these annotations so a Clang build with -Wthread-safety
// -Werror *proves* the discipline at compile time — a data race that TSan
// could only catch on an execution that happens to interleave badly is
// rejected before the binary exists. On compilers without the capability
// attributes (GCC) every macro expands to nothing, so the annotations are
// pure documentation there and the build is unchanged.
//
// Convention: shared mutable members carry ACE_GUARDED_BY(mutex_); private
// helpers called only under a lock carry ACE_REQUIRES(mutex_); the only
// lock types used outside src/util/ are the annotated wrappers in
// util/mutex.hpp (enforced by tools/lint/ace_lint.py rule `raw-mutex`).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define ACE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ACE_THREAD_ANNOTATION_(x)  // expands to nothing on GCC/MSVC
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define ACE_CAPABILITY(x) ACE_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose lifetime acquires/releases a capability.
#define ACE_SCOPED_CAPABILITY ACE_THREAD_ANNOTATION_(scoped_lockable)

/// Data member may only be touched while holding the given capability.
#define ACE_GUARDED_BY(x) ACE_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define ACE_PT_GUARDED_BY(x) ACE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function may only be called while already holding the capabilities.
#define ACE_REQUIRES(...) \
  ACE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the capabilities and holds them on return.
#define ACE_ACQUIRE(...) \
  ACE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capabilities (held on entry, not on return).
#define ACE_RELEASE(...) \
  ACE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define ACE_TRY_ACQUIRE(...) \
  ACE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capabilities (deadlock prevention).
#define ACE_EXCLUDES(...) ACE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Lock-hierarchy edge: this capability must be acquired before the listed
/// ones. Enforced by Clang under -Wthread-safety-beta (the `tidy` preset);
/// the same ordering is checked at runtime in Debug builds by the
/// lock-order validator (util/lock_order.hpp), which also covers edges the
/// attribute cannot express — ordering between mutexes of *different*
/// classes, where neither declaration can name the other.
#define ACE_ACQUIRED_BEFORE(...) \
  ACE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Lock-hierarchy edge: this capability must be acquired after the listed
/// ones (the dual of ACE_ACQUIRED_BEFORE; same enforcement).
#define ACE_ACQUIRED_AFTER(...) \
  ACE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define ACE_RETURN_CAPABILITY(x) ACE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: function body is exempt from analysis. Reserved for the
/// annotated-wrapper internals in util/mutex.hpp — library code must not
/// use it (the static-analysis gate greps for strays).
#define ACE_NO_THREAD_SAFETY_ANALYSIS \
  ACE_THREAD_ANNOTATION_(no_thread_safety_analysis)
