// Numerical contracts: debug-checked, release-free invariants.
//
// Kriging correctness rests on silent mathematical preconditions — SPD
// covariance for Cholesky, valid (conditionally negative-definite)
// variogram models, kriging weights summing to 1 — that a wrong-but-finite
// number sails straight through the NaN guards of the fault subsystem.
// The ACE_REQUIRE / ACE_ENSURE / ACE_INVARIANT macros make those
// preconditions, postconditions and invariants *checkable*: active in
// Debug builds (and any TU compiled with -DACE_CONTRACTS=1), compiled out
// entirely in Release (-DNDEBUG), where they expand to `((void)0)` — the
// condition is not even evaluated, so contracts add zero release overhead.
//
// Policy (see DESIGN.md §8): a contract states something that is *always*
// true of correct code — a violation is a programming error, never an
// environmental condition. Data-dependent failures (a singular kriging
// system, a non-finite simulator result, a malformed checkpoint file) keep
// their unconditional typed exceptions; contracts cover what only a bug
// can break.
//
// A firing contract throws ContractViolation, which derives from
// std::invalid_argument so existing call sites treating bad inputs as
// invalid-argument errors keep working, and which the retry guard
// (util::call_with_retry) classifies as CallFault::kContractViolation —
// deterministic, so it is never retried, and the evaluation policy
// quarantines the offending configuration under
// dse::FaultCode::kContractViolation.
#pragma once

#include <stdexcept>
#include <string>

namespace ace::util {

/// A violated ACE_REQUIRE / ACE_ENSURE / ACE_INVARIANT.
class ContractViolation : public std::invalid_argument {
 public:
  enum class Kind { kRequire, kEnsure, kInvariant };

  ContractViolation(Kind kind, const char* condition, const char* file,
                    int line, const std::string& detail);

  Kind kind() const { return kind_; }
  const char* condition() const { return condition_; }
  const char* file() const { return file_; }
  int line() const { return line_; }

 private:
  Kind kind_;
  const char* condition_;  ///< Stringified condition (static storage).
  const char* file_;       ///< Source file (static storage).
  int line_;
};

const char* to_string(ContractViolation::Kind kind);

/// Build the message and throw. Out of line so the macro expansion stays
/// small at every check site.
[[noreturn]] void raise_contract_violation(ContractViolation::Kind kind,
                                           const char* condition,
                                           const char* file, int line,
                                           const std::string& detail);

}  // namespace ace::util

// ACE_CONTRACTS_ENABLED: 1 when contracts are checked in this TU.
// Override per-TU with -DACE_CONTRACTS=0/1 (the contract self-tests
// compile one TU each way); otherwise follows NDEBUG.
#if defined(ACE_CONTRACTS)
#define ACE_CONTRACTS_ENABLED ACE_CONTRACTS
#elif defined(NDEBUG)
#define ACE_CONTRACTS_ENABLED 0
#else
#define ACE_CONTRACTS_ENABLED 1
#endif

#if ACE_CONTRACTS_ENABLED

#define ACE_CONTRACT_CHECK_(kind, cond, detail)                             \
  (static_cast<bool>(cond)                                                  \
       ? (void)0                                                            \
       : ::ace::util::raise_contract_violation(                             \
             ::ace::util::ContractViolation::Kind::kind, #cond, __FILE__,   \
             __LINE__, (detail)))

#else

// The disabled form must still *mention* cond and detail (unevaluated,
// via sizeof) so parameters used only in contracts do not trip
// -Wunused-parameter under warnings-as-errors Release builds.
#define ACE_CONTRACT_CHECK_(kind, cond, detail) \
  ((void)sizeof(static_cast<bool>(cond)), (void)sizeof((detail), 0))

#endif

// Each macro takes a condition and an optional detail message:
//   ACE_REQUIRE(n > 0);
//   ACE_REQUIRE(n > 0, "support set must be non-empty");
#define ACE_CONTRACT_PICK_(a, b, chosen, ...) chosen
#define ACE_CONTRACT_1_(kind, cond) ACE_CONTRACT_CHECK_(kind, cond, "")
#define ACE_CONTRACT_2_(kind, cond, detail) \
  ACE_CONTRACT_CHECK_(kind, cond, detail)
#define ACE_CONTRACT_DISPATCH_(kind, ...)                                \
  ACE_CONTRACT_PICK_(__VA_ARGS__, ACE_CONTRACT_2_, ACE_CONTRACT_1_, )    \
  (kind, __VA_ARGS__)

/// Precondition: what the caller must guarantee on entry.
#define ACE_REQUIRE(...) ACE_CONTRACT_DISPATCH_(kRequire, __VA_ARGS__)

/// Postcondition: what the function guarantees on exit.
#define ACE_ENSURE(...) ACE_CONTRACT_DISPATCH_(kEnsure, __VA_ARGS__)

/// Invariant: what must hold at this point in any correct execution.
#define ACE_INVARIANT(...) ACE_CONTRACT_DISPATCH_(kInvariant, __VA_ARGS__)
