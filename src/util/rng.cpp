#include "util/rng.hpp"

#include <stdexcept>

namespace ace::util {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n must be positive");
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<double> Rng::uniform_vector(std::size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (auto& x : v) x = uniform(lo, hi);
  return v;
}

std::vector<double> Rng::normal_vector(std::size_t n, double mean,
                                       double stddev) {
  std::vector<double> v(n);
  for (auto& x : v) x = normal(mean, stddev);
  return v;
}

Rng Rng::fork() {
  // SplitMix-style scramble of the next raw draw keeps child streams
  // statistically decoupled from the parent and from each other.
  std::uint64_t s = engine_();
  s ^= s >> 30;
  s *= 0xbf58476d1ce4e5b9ULL;
  s ^= s >> 27;
  s *= 0x94d049bb133111ebULL;
  s ^= s >> 31;
  return Rng(s);
}

}  // namespace ace::util
