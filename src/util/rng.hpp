// Deterministic random-number utilities.
//
// Every stochastic component of the library (signal generators, synthetic
// image sets, network weights, error injection) draws from an ace::util::Rng
// seeded explicitly, so that every experiment in the repository is exactly
// reproducible from its seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ace::util {

/// Deterministic pseudo-random generator.
///
/// Thin wrapper over std::mt19937_64 with convenience draws. Copyable, so a
/// generator state can be snapshotted and replayed.
class Rng {
 public:
  /// Construct from a 64-bit seed. Identical seeds yield identical streams.
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal draw scaled to the given mean / standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in the inclusive range [lo, hi].
  int uniform_int(int lo, int hi);

  /// Uniform index in [0, n) — n must be positive.
  std::size_t index(std::size_t n);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Vector of n uniform draws in [lo, hi).
  std::vector<double> uniform_vector(std::size_t n, double lo = -1.0,
                                     double hi = 1.0);

  /// Vector of n normal draws.
  std::vector<double> normal_vector(std::size_t n, double mean = 0.0,
                                    double stddev = 1.0);

  /// Derive an independent child generator; successive calls give distinct
  /// deterministic streams. Used to give each subsystem its own stream.
  Rng fork();

  /// Access to the raw engine for use with standard distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  // Seeded by every constructor path; never default-initialized.
  std::mt19937_64 engine_;  // ace-lint: allow(unseeded-rng)
};

}  // namespace ace::util
