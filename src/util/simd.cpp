// Dispatching entry points plus the AVX2 backend. This TU (alone) is
// compiled with -mavx2 when the configure-time ACE_SIMD option selects the
// AVX2 backend; the intrinsics below are guarded by ACE_SIMD_AVX2 so the
// file also builds cleanly as pure dispatch-to-scalar on other targets.
//
// Backend selection is configure-time (which code is compiled), the
// on/off toggle is runtime (which path dispatch takes) — the toggle is
// what lets one binary A/B the two paths in bench/micro_kriging and the
// decision-identity section of bench/decision_divergence.
#include "util/simd.hpp"

#include <atomic>
#include <cmath>

#if defined(ACE_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace ace::util::simd {

namespace {

std::atomic<bool> g_enabled{true};

#if defined(ACE_SIMD_AVX2)

// 8 i32 lanes per step: acc_i = Σ_d |cols[d][i] − q_d|.
void l1_i32_avx2(const int* const* cols, std::size_t dim, const int* query,
                 std::size_t count, int* out) {
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t d = 0; d < dim; ++d) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cols[d] + i));
      const __m256i q = _mm256_set1_epi32(query[d]);
      acc = _mm256_add_epi32(acc, _mm256_abs_epi32(_mm256_sub_epi32(v, q)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), acc);
  }
  for (; i < count; ++i) {
    int acc = 0;
    for (std::size_t d = 0; d < dim; ++d) {
      const int diff = cols[d][i] - query[d];
      acc += diff < 0 ? -diff : diff;
    }
    out[i] = acc;
  }
}

// Squared L2 over i32 columns, accumulated in doubles exactly like the
// scalar loop (integer subtract, convert, multiply, add — per lane, per
// dimension, in order).
void l2sq_i32_avx2(const int* const* cols, std::size_t dim, const int* query,
                   std::size_t count, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t d = 0; d < dim; ++d) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols[d] + i));
      const __m128i q = _mm_set1_epi32(query[d]);
      const __m256d diff = _mm256_cvtepi32_pd(_mm_sub_epi32(v, q));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < count; ++i) {
    double acc = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = cols[d][i] - query[d];
      acc += diff * diff;
    }
    out[i] = acc;
  }
}

// 4 f64 lanes per step: acc_i = Σ_d |cols[d][i] − q_d|. abs via sign-mask
// clear — bit-exact with std::abs on doubles.
void l1_f64_avx2(const double* const* cols, std::size_t dim,
                 const double* query, std::size_t count, double* out) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t d = 0; d < dim; ++d) {
      const __m256d v = _mm256_loadu_pd(cols[d] + i);
      const __m256d q = _mm256_set1_pd(query[d]);
      acc = _mm256_add_pd(acc,
                          _mm256_andnot_pd(sign_mask, _mm256_sub_pd(v, q)));
    }
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < count; ++i) {
    double acc = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = cols[d][i] - query[d];
      acc += diff < 0.0 ? -diff : diff;
    }
    out[i] = acc;
  }
}

void l2_f64_avx2(const double* const* cols, std::size_t dim,
                 const double* query, std::size_t count, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t d = 0; d < dim; ++d) {
      const __m256d diff =
          _mm256_sub_pd(_mm256_loadu_pd(cols[d] + i), _mm256_set1_pd(query[d]));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    _mm256_storeu_pd(out + i, _mm256_sqrt_pd(acc));
  }
  for (; i < count; ++i) {
    double acc = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = cols[d][i] - query[d];
      acc += diff * diff;
    }
    out[i] = std::sqrt(acc);
  }
}

#endif  // ACE_SIMD_AVX2

}  // namespace

bool compiled_avx2() {
#if defined(ACE_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

const char* backend() { return compiled_avx2() ? "avx2" : "scalar"; }

bool enabled() {
  return compiled_avx2() && g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void l1_distances_i32(const int* const* cols, std::size_t dim,
                      const int* query, std::size_t count, int* out) {
#if defined(ACE_SIMD_AVX2)
  if (enabled()) {
    l1_i32_avx2(cols, dim, query, count, out);
    return;
  }
#endif
  l1_distances_i32_scalar(cols, dim, query, count, out);
}

void l2_sq_distances_i32(const int* const* cols, std::size_t dim,
                         const int* query, std::size_t count, double* out) {
#if defined(ACE_SIMD_AVX2)
  if (enabled()) {
    l2sq_i32_avx2(cols, dim, query, count, out);
    return;
  }
#endif
  l2_sq_distances_i32_scalar(cols, dim, query, count, out);
}

void l1_distances_f64(const double* const* cols, std::size_t dim,
                      const double* query, std::size_t count, double* out) {
#if defined(ACE_SIMD_AVX2)
  if (enabled()) {
    l1_f64_avx2(cols, dim, query, count, out);
    return;
  }
#endif
  l1_distances_f64_scalar(cols, dim, query, count, out);
}

void l2_distances_f64(const double* const* cols, std::size_t dim,
                      const double* query, std::size_t count, double* out) {
#if defined(ACE_SIMD_AVX2)
  if (enabled()) {
    l2_f64_avx2(cols, dim, query, count, out);
    return;
  }
#endif
  l2_distances_f64_scalar(cols, dim, query, count, out);
}

}  // namespace ace::util::simd
