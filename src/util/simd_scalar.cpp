// Scalar reference kernels. This TU is compiled with auto-vectorization
// disabled (see src/util/CMakeLists.txt): it is the portable fallback when
// no vector backend is configured, and the honest "scalar" baseline the
// roofline bench (bench/micro_kriging) divides by — letting the compiler
// auto-vectorize the baseline would understate exactly the speedup the
// bench exists to attribute.
#include "util/simd.hpp"

#include <cmath>
#include <cstdlib>

namespace ace::util::simd {

void l1_distances_i32_scalar(const int* const* cols, std::size_t dim,
                             const int* query, std::size_t count, int* out) {
  for (std::size_t i = 0; i < count; ++i) {
    int acc = 0;
    for (std::size_t d = 0; d < dim; ++d)
      acc += std::abs(cols[d][i] - query[d]);  // ace-lint: allow(raw-distance-loop)
    out[i] = acc;
  }
}

void l2_sq_distances_i32_scalar(const int* const* cols, std::size_t dim,
                                const int* query, std::size_t count,
                                double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    double acc = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = cols[d][i] - query[d];
      acc += diff * diff;
    }
    out[i] = acc;
  }
}

void l1_distances_f64_scalar(const double* const* cols, std::size_t dim,
                             const double* query, std::size_t count,
                             double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    double acc = 0.0;
    for (std::size_t d = 0; d < dim; ++d)
      acc += std::abs(cols[d][i] - query[d]);  // ace-lint: allow(raw-distance-loop)
    out[i] = acc;
  }
}

void l2_distances_f64_scalar(const double* const* cols, std::size_t dim,
                             const double* query, std::size_t count,
                             double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    double acc = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = cols[d][i] - query[d];
      acc += diff * diff;
    }
    out[i] = std::sqrt(acc);
  }
}

}  // namespace ace::util::simd
