// Minimal POSIX subprocess helper for the distributed evaluation layer.
//
// Subprocess::spawn() starts a child with its stdin/stdout connected to
// pipes held by the parent (stderr is inherited, so a crashing worker's
// diagnostics still reach the terminal). Reads carry a deadline via
// poll(2), so a stalled child can never wedge the caller; writes detect a
// dead peer (EPIPE) instead of raising SIGPIPE. kill_hard() escalates to
// SIGKILL — the crash-tolerance layer above must treat a killed child as
// a routine event, not an error path.
//
// Every syscall return in this file is checked (lint rule
// `unchecked-syscall`): a silently ignored pipe/read/write failure is
// exactly the kind of bug the coordinator's fault model cannot see.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace ace::util {

/// Outcome of a deadline read.
enum class ReadStatus : unsigned char {
  kData = 0,  ///< At least one byte was read.
  kEof,       ///< The child closed its end (usually: it exited).
  kTimeout,   ///< The deadline elapsed with no data.
};

class Subprocess {
 public:
  /// Fork+exec `argv` (argv[0] is the binary path, resolved via PATH when
  /// it contains no '/'). Throws std::runtime_error when the pipes or the
  /// spawn itself fail; an exec failure inside the child surfaces as an
  /// immediate EOF on stdout plus a nonzero exit status.
  static Subprocess spawn(const std::vector<std::string>& argv);

  Subprocess() = default;
  ~Subprocess();

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  bool running() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }

  /// Write the whole buffer to the child's stdin. Returns false when the
  /// child is gone (closed pipe / EPIPE); throws std::runtime_error on any
  /// other I/O error.
  bool write_all(const char* data, std::size_t size);

  /// Read up to `capacity` bytes from the child's stdout, waiting at most
  /// `timeout`. On kData, `*out_size` holds the byte count.
  ReadStatus read_some(char* buffer, std::size_t capacity,
                       std::chrono::milliseconds timeout,
                       std::size_t* out_size);

  /// Close the child's stdin (a line-oriented child reads EOF and exits).
  void close_stdin();

  /// SIGKILL the child. Safe to call repeatedly or after exit.
  void kill_hard();

  /// Reap the child and return its wait(2) status (0 if already reaped or
  /// never started). Closes both pipe ends.
  int wait();

 private:
  void close_fds();

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  bool reaped_ = false;
  int status_ = 0;
};

}  // namespace ace::util
