// Column-aligned console tables. Every bench binary prints its results
// through TablePrinter so the output mirrors the layout of the paper's
// Table I and is grep-friendly for EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ace::util {

/// Accumulates rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// Column headers fix the column count; rows must match it.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row. Throws std::invalid_argument on column-count mismatch.
  void add_row(std::vector<std::string> cells);

  /// Render to the stream with a header rule and right-aligned numerics.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given number of decimals.
std::string fmt(double value, int decimals = 2);

/// Format a double as a percentage with the given decimals ("52.78").
std::string fmt_pct(double fraction, int decimals = 2);

/// Format a double in scientific notation ("3.16e-07") — for quantities
/// spanning many orders of magnitude, like condition estimates.
std::string fmt_sci(double value, int decimals = 2);

}  // namespace ace::util
