// Minimal CSV writer for exporting experiment series (e.g. the Fig. 1
// surface) in a form external plotting tools can consume.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ace::util {

/// Streaming CSV writer. Throws std::runtime_error if the file cannot be
/// opened. Cells containing commas/quotes/newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);
  void write_row(const std::vector<double>& values, int decimals = 6);

  /// Flushes and closes; subsequent writes throw.
  void close();

  bool is_open() const { return out_.is_open(); }

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
};

}  // namespace ace::util
