// Annotated mutex wrappers for the Clang capability analysis, carrying
// the global lock hierarchy.
//
// util::Mutex / util::LockGuard / util::UniqueLock are drop-in analogues
// of std::mutex / std::lock_guard / std::unique_lock that carry the
// capability attributes from util/thread_annotations.hpp, so every
// lock/unlock is visible to -Wthread-safety. All library code outside
// src/util/ must use these wrappers instead of the raw std types
// (lint rule `raw-mutex`); the wrappers themselves are the one place the
// raw types may appear.
//
// Every long-lived library mutex is additionally constructed with a rank
// from the global lock hierarchy (util/lock_order.hpp, DESIGN.md §13).
// In Debug builds (or any TU compiled with -DACE_LOCK_ORDER=1) each
// acquisition runs through the lock-order validator: a thread acquiring a
// ranked mutex while holding one of equal or higher rank, or closing a
// cycle in the global acquisition graph, is diagnosed on the spot — with
// both acquisition chains — even when the interleaving never deadlocks in
// that run. Release builds compile the hooks away entirely.
//
// UniqueLock supports the condition-variable protocol: wait(cv) releases
// and reacquires internally (net effect: held before, held after — which
// is exactly how the analysis models an opaque call made under the lock),
// and manual unlock()/lock() pairs are tracked as a relockable scoped
// capability.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/lock_order.hpp"
#include "util/thread_annotations.hpp"

// Debug-on / Release-off, same convention (and same per-TU override
// mechanism) as ACE_CONTRACTS in util/contract.hpp.
#ifndef ACE_LOCK_ORDER
#ifdef NDEBUG
#define ACE_LOCK_ORDER 0
#else
#define ACE_LOCK_ORDER 1
#endif
#endif

namespace ace::util {

/// std::mutex carrying the `capability` attribute, a name, and a rank in
/// the global lock hierarchy. The default constructor yields an unranked
/// mutex (exempt from the rank check, still cycle-checked); long-lived
/// library mutexes must use the ranked constructor.
class ACE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(lock_order::Rank rank, const char* name)
      : rank_(static_cast<int>(rank)), name_(name) {}
  ~Mutex() {
#if ACE_LOCK_ORDER
    lock_order::on_destroy(this);
#endif
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACE_ACQUIRE() {
    note_acquire();
    raw_.lock();
  }
  void unlock() ACE_RELEASE() {
    raw_.unlock();
    note_release();
  }
  bool try_lock() ACE_TRY_ACQUIRE(true) {
    const bool acquired = raw_.try_lock();
    // A successful try_lock cannot deadlock by itself, but it installs
    // the same hierarchy edge a blocking lock would — record (and check)
    // it so the *other* side of an inversion is still diagnosed.
    if (acquired) note_acquire();
    return acquired;
  }

 private:
  friend class LockGuard;
  friend class UniqueLock;

  void note_acquire() {
#if ACE_LOCK_ORDER
    lock_order::on_acquire(this, rank_, name_);
#endif
  }
  void note_release() {
#if ACE_LOCK_ORDER
    lock_order::on_release(this);
#endif
  }

  int rank_ = 0;
  const char* name_ = "mutex";
  std::mutex raw_;
};

/// Scope-bound exclusive lock (std::lock_guard analogue).
class ACE_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) ACE_ACQUIRE(m) : mutex_(m) { mutex_.lock(); }
  ~LockGuard() ACE_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Relockable scoped lock (std::unique_lock analogue) with
/// condition-variable support.
class ACE_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) ACE_ACQUIRE(m)
      : mutex_(m), lock_(m.raw_, std::defer_lock) {
    mutex_.note_acquire();
    lock_.lock();
  }
  ~UniqueLock() ACE_RELEASE() {
    // Releases iff still held (RAII).
    if (lock_.owns_lock()) {
      lock_.unlock();
      mutex_.note_release();
    }
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ACE_ACQUIRE() {
    mutex_.note_acquire();
    lock_.lock();
  }
  void unlock() ACE_RELEASE() {
    lock_.unlock();
    mutex_.note_release();
  }

  /// Block on `cv`. The mutex is released while sleeping and reacquired
  /// before returning; callers loop on their guarded predicate themselves
  /// so the reads stay visible to the analysis:
  ///   while (!predicate_over_guarded_state) lock.wait(cv);
  /// The held-lock stack deliberately keeps the mutex across the sleep:
  /// held-before and held-after is the net effect, and the sleeping
  /// thread acquires nothing in between.
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

  /// Timed variant for deadline-driven loops (lease expiry, event-queue
  /// pops): returns std::cv_status::timeout when `timeout` elapsed without
  /// a notification. Same predicate-loop discipline as wait().
  std::cv_status wait_for(std::condition_variable& cv,
                          std::chrono::steady_clock::duration timeout) {
    return cv.wait_for(lock_, timeout);
  }

 private:
  Mutex& mutex_;
  std::unique_lock<std::mutex> lock_;
};

}  // namespace ace::util
