// Annotated mutex wrappers for the Clang capability analysis.
//
// util::Mutex / util::LockGuard / util::UniqueLock are drop-in analogues
// of std::mutex / std::lock_guard / std::unique_lock that carry the
// capability attributes from util/thread_annotations.hpp, so every
// lock/unlock is visible to -Wthread-safety. All library code outside
// src/util/ must use these wrappers instead of the raw std types
// (lint rule `raw-mutex`); the wrappers themselves are the one place the
// raw types may appear.
//
// UniqueLock supports the condition-variable protocol: wait(cv) releases
// and reacquires internally (net effect: held before, held after — which
// is exactly how the analysis models an opaque call made under the lock),
// and manual unlock()/lock() pairs are tracked as a relockable scoped
// capability.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace ace::util {

/// std::mutex carrying the `capability` attribute.
class ACE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACE_ACQUIRE() { raw_.lock(); }
  void unlock() ACE_RELEASE() { raw_.unlock(); }
  bool try_lock() ACE_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class UniqueLock;
  std::mutex raw_;
};

/// Scope-bound exclusive lock (std::lock_guard analogue).
class ACE_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) ACE_ACQUIRE(m) : mutex_(m) { mutex_.lock(); }
  ~LockGuard() ACE_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Relockable scoped lock (std::unique_lock analogue) with
/// condition-variable support.
class ACE_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) ACE_ACQUIRE(m) : lock_(m.raw_) {}
  ~UniqueLock() ACE_RELEASE() {}  // releases iff still held (RAII).

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ACE_ACQUIRE() { lock_.lock(); }
  void unlock() ACE_RELEASE() { lock_.unlock(); }

  /// Block on `cv`. The mutex is released while sleeping and reacquired
  /// before returning; callers loop on their guarded predicate themselves
  /// so the reads stay visible to the analysis:
  ///   while (!predicate_over_guarded_state) lock.wait(cv);
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

  /// Timed variant for deadline-driven loops (lease expiry, event-queue
  /// pops): returns std::cv_status::timeout when `timeout` elapsed without
  /// a notification. Same predicate-loop discipline as wait().
  std::cv_status wait_for(std::condition_variable& cv,
                          std::chrono::steady_clock::duration timeout) {
    return cv.wait_for(lock_, timeout);
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace ace::util
