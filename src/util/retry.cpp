#include "util/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <thread>

#include "util/contract.hpp"

namespace ace::util {

namespace {

/// splitmix64: tiny, well-mixed, stateless — ideal for deterministic jitter.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a 64-bit hash.
double unit_uniform(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1p-53;
}

}  // namespace

const char* to_string(CallFault fault) {
  switch (fault) {
    case CallFault::kNone: return "none";
    case CallFault::kThrew: return "threw";
    case CallFault::kNonFinite: return "non-finite";
    case CallFault::kOverDeadline: return "over-deadline";
    case CallFault::kContractViolation: return "contract-violation";
  }
  return "unknown";
}

double backoff_delay_ms(const RetryOptions& options, std::uint64_t task_key,
                        std::size_t retry_index) {
  double delay = options.base_backoff_ms;
  for (std::size_t k = 0; k < retry_index; ++k)
    delay *= options.backoff_multiplier;
  delay = std::min(delay, options.max_backoff_ms);
  if (options.jitter_fraction > 0.0 && delay > 0.0) {
    const std::uint64_t h = splitmix64(options.jitter_seed ^ task_key ^
                                       static_cast<std::uint64_t>(retry_index));
    delay += options.jitter_fraction * delay * unit_uniform(h);
  }
  return delay;
}

GuardedCall call_with_retry(const RetryOptions& options, std::uint64_t task_key,
                            const std::function<double()>& fn) {
  using Clock = std::chrono::steady_clock;
  const std::size_t budget = std::max<std::size_t>(options.max_attempts, 1);
  GuardedCall result;
  for (std::size_t attempt = 0; attempt < budget; ++attempt) {
    if (attempt > 0) {
      const double delay = backoff_delay_ms(options, task_key, attempt - 1);
      if (delay > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
    }
    ++result.attempts;
    const auto t0 = Clock::now();
    try {
      const double value = fn();
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
      if (options.deadline_ms > 0.0 && elapsed_ms > options.deadline_ms) {
        result.fault = CallFault::kOverDeadline;
        ++result.timeouts;
      } else if (!std::isfinite(value)) {
        result.fault = CallFault::kNonFinite;
      } else {
        result.value = value;
        result.fault = CallFault::kNone;
        result.message.clear();
        return result;
      }
    } catch (const ContractViolation& e) {
      // A tripped contract is deterministic — the same inputs will trip it
      // again — so retrying only burns the budget. Classify and stop.
      result.fault = CallFault::kContractViolation;
      result.message = e.what();
      ++result.faulted_attempts;
      return result;
    } catch (const std::exception& e) {
      result.fault = CallFault::kThrew;
      result.message = e.what();
    } catch (...) {
      result.fault = CallFault::kThrew;
      result.message = "non-standard exception";
    }
    ++result.faulted_attempts;
  }
  return result;
}

}  // namespace ace::util
