// Runtime lock-order validation: the global lock hierarchy, and the Debug
// validator that enforces it on every acquisition.
//
// The Clang capability analysis (thread_annotations.hpp) proves *which*
// lock guards *what*; ACE_ACQUIRED_BEFORE/AFTER additionally prove
// ordering between mutexes the same declaration can see. Neither can
// express the whole-program hierarchy — the ordering between a
// serve::SessionManager's mutex and the dse::KrigingPolicy mutexes it
// reaches, say — because neither class can name the other's member. That
// hierarchy lives here instead, as explicit ranks (Rank below, documented
// in DESIGN.md §13), checked at runtime:
//
//  * Per-thread held-lock stack. Acquiring a ranked mutex while holding
//    one of equal or higher rank is reported immediately, on the thread
//    that breaks the hierarchy — no adverse interleaving required.
//  * Global acquisition graph with incremental cycle detection. Every
//    first-time edge (innermost held lock → acquired lock) is recorded
//    with the acquiring thread's held-lock chain; an edge that closes a
//    cycle is reported with BOTH chains — the recorded one and the
//    current one — so the first inversion ever observed across the whole
//    process lifetime is caught, even when the two sides never actually
//    interleave into a deadlock in that run. This is what catches
//    inversions among *unranked* mutexes (tests, scratch code) too.
//
// A violation calls the failure handler: by default it prints the
// diagnosis to stderr and aborts. Tests install a recording handler
// (set_failure_handler) to assert the validator fires without dying.
//
// Cost model: the checks are compiled into a TU only when ACE_LOCK_ORDER
// is 1 (default: Debug on, Release off — same convention as
// util/contract.hpp); the hooks below always exist in the util library so
// a force-enabled TU can link against any build type. Release acquisitions
// compile to exactly the raw std::mutex operations.
#pragma once

#include <cstddef>

namespace ace::util::lock_order {

/// The global lock hierarchy. A thread may only acquire a ranked mutex
/// whose rank is STRICTLY GREATER than every ranked mutex it already
/// holds; two mutexes of the same rank must never be held together.
/// Gaps are deliberate — new subsystems slot in without renumbering.
/// Keep this table in lockstep with DESIGN.md §13.
enum class Rank : int {
  kUnranked = 0,  ///< No rank check; still in the acquisition graph.

  kSessionManager = 10,      ///< serve::SessionManager::mutex_.
  kSession = 20,             ///< Reserved: future per-session locks.
  kPolicy = 30,              ///< dse::KrigingPolicy::mutex_.
  kStore = 40,               ///< dse::SimulationStore::mutex_.
  kVariogram = 42,           ///< kriging::EmpiricalVariogram::mutex_.
  kBackendSerialize = 50,    ///< dse::SerializingBatchSimulator::mutex_.
  kPoolRun = 60,             ///< util::ThreadPool::run_mutex_.
  kPool = 62,                ///< util::ThreadPool::mutex_.
  kFaultInjection = 65,      ///< dse::FaultInjectingSimulator state.
  kEventQueue = 72,          ///< dist::Coordinator::EventQueue::mutex_.
  kTransportLifecycle = 74,  ///< dist transport shutdown/alive state.
  kLineQueue = 76,           ///< dist::LineQueue::mutex_.
};

/// Receives one diagnosed violation: `kind` is a short classification
/// ("lock-rank inversion", "lock-order cycle", "recursive acquisition"),
/// `detail` the full diagnosis including the acquisition chains. The
/// default handler prints both and aborts. A replacement that returns
/// lets execution continue (the acquisition then proceeds) — test-only.
using FailureHandler = void (*)(const char* kind, const char* detail);

/// Install a handler (nullptr restores the default abort handler).
/// Returns the previous handler. Not thread-safe against concurrent
/// violations — install before spawning the threads under test.
FailureHandler set_failure_handler(FailureHandler handler);

/// Total violations diagnosed since process start (or the last reset).
std::size_t violation_count();

/// Test-only: forget the acquisition graph and zero the violation count.
/// Held-lock stacks of live threads are untouched — call it only from
/// quiescent test fixtures.
void reset_for_testing();

/// Hooks called by the util::Mutex wrappers. on_acquire runs BEFORE the
/// raw lock is taken, so an inversion is diagnosed even when the raw
/// acquisition would have deadlocked.
void on_acquire(const void* mutex, int rank, const char* name);
void on_release(const void* mutex);
void on_destroy(const void* mutex);

}  // namespace ace::util::lock_order
