#include "util/lock_order.hpp"

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace ace::util::lock_order {

namespace {

struct Held {
  const void* mutex = nullptr;
  int rank = 0;
  const char* name = "mutex";
};

// Each thread's stack of currently held (well: acquired-or-acquiring)
// wrapped mutexes, innermost last. Out-of-order release (UniqueLock
// unlock gaps) removes from the middle.
thread_local std::vector<Held> t_held;

struct Edge {
  /// The held-lock chain of the thread that first recorded this edge —
  /// one half of the "both acquisition stacks" diagnosis.
  std::string chain;
};

struct Node {
  int rank = 0;
  const char* name = "mutex";
  std::unordered_map<const void*, Edge> out;
};

// The process-wide acquisition graph. A raw std::mutex by necessity: the
// registry cannot be guarded by the very wrappers it instruments.
std::mutex g_mutex;  // ace-lint: allow(raw-mutex)
std::unordered_map<const void*, Node> g_nodes;
std::size_t g_violations = 0;

void default_handler(const char* kind, const char* detail) {
  std::fprintf(stderr, "ace lock-order validator: %s\n%s\n", kind, detail);
  std::abort();
}

FailureHandler g_handler = &default_handler;

std::string describe(const void* mutex, int rank, const char* name) {
  std::string out = name;
  out += " (rank ";
  out += std::to_string(rank);
  out += ", @";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%p", mutex);
  out += buf;
  out += ")";
  return out;
}

std::string held_chain() {
  if (t_held.empty()) return "  (no locks held)";
  std::string out;
  for (const Held& h : t_held) {
    out += "  held: ";
    out += describe(h.mutex, h.rank, h.name);
    out += "\n";
  }
  if (!out.empty()) out.pop_back();
  return out;
}

/// Is `target` reachable from `from` over recorded edges? Iterative DFS;
/// fills `path` with the node sequence from → … → target when found.
bool reachable(const void* from, const void* target,
               std::vector<const void*>& path) {
  std::unordered_set<const void*> seen;
  seen.insert(from);
  std::vector<std::pair<const void*, std::size_t>> stack;
  stack.push_back({from, 0});
  path.assign(1, from);
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (node == target) return true;
    const auto it = g_nodes.find(node);
    if (it == g_nodes.end() || next >= it->second.out.size()) {
      stack.pop_back();
      path.pop_back();
      continue;
    }
    auto edge = it->second.out.begin();
    std::advance(edge, next);
    ++next;
    if (!seen.insert(edge->first).second) continue;
    stack.push_back({edge->first, 0});
    path.push_back(edge->first);
  }
  return false;
}

/// Diagnose outside g_mutex (the handler may abort, throw, or log; none
/// of that should happen while the registry is locked).
void report(const char* kind, std::string detail) {
  FailureHandler handler;
  {
    const std::lock_guard<std::mutex> lock(g_mutex);  // ace-lint: allow(raw-mutex)
    ++g_violations;
    handler = g_handler;
  }
  handler(kind, detail.c_str());
}

}  // namespace

FailureHandler set_failure_handler(FailureHandler handler) {
  const std::lock_guard<std::mutex> lock(g_mutex);  // ace-lint: allow(raw-mutex)
  const FailureHandler previous = g_handler;
  g_handler = handler != nullptr ? handler : &default_handler;
  return previous;
}

std::size_t violation_count() {
  const std::lock_guard<std::mutex> lock(g_mutex);  // ace-lint: allow(raw-mutex)
  return g_violations;
}

void reset_for_testing() {
  const std::lock_guard<std::mutex> lock(g_mutex);  // ace-lint: allow(raw-mutex)
  g_nodes.clear();
  g_violations = 0;
}

void on_acquire(const void* mutex, int rank, const char* name) {
  // 1. Recursive acquisition: self-deadlock on a non-recursive mutex.
  for (const Held& h : t_held) {
    if (h.mutex == mutex) {
      report("recursive acquisition",
             "thread re-acquires " + describe(mutex, rank, name) +
                 " it already holds\n" + held_chain());
      break;
    }
  }

  // 2. Rank check: a ranked acquisition must strictly dominate every
  //    ranked lock already held. Reported on first occurrence, on the
  //    offending thread, with no second thread needed.
  if (rank != 0) {
    for (const Held& h : t_held) {
      if (h.rank != 0 && h.rank >= rank && h.mutex != mutex) {
        report("lock-rank inversion",
               "acquiring " + describe(mutex, rank, name) +
                   " while holding " + describe(h.mutex, h.rank, h.name) +
                   " violates the lock hierarchy (DESIGN.md §13); "
                   "current chain:\n" + held_chain());
        break;
      }
    }
  }

  // 3. Acquisition graph: record innermost-held → acquiring, detect the
  //    cycle the moment the second direction is ever observed. (Skipped
  //    for a re-acquisition already reported above — a self-edge would
  //    make every later query trivially cyclic.)
  if (!t_held.empty() && t_held.back().mutex != mutex) {
    const Held inner = t_held.back();
    std::string diagnosis;
    {
      const std::lock_guard<std::mutex> lock(g_mutex);  // ace-lint: allow(raw-mutex)
      Node& from = g_nodes[inner.mutex];
      from.rank = inner.rank;
      from.name = inner.name;
      Node& to = g_nodes[mutex];
      to.rank = rank;
      to.name = name;
      if (from.out.find(mutex) == from.out.end()) {
        std::vector<const void*> path;
        if (reachable(mutex, inner.mutex, path)) {
          diagnosis = "acquiring " + describe(mutex, rank, name) +
                      " while holding " + describe(inner.mutex, inner.rank,
                                                   inner.name) +
                      " closes an acquisition cycle.\nthis thread's chain:\n" +
                      held_chain() + "\nestablished opposite path:";
          for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const Node& n = g_nodes[path[i]];
            const auto e = n.out.find(path[i + 1]);
            diagnosis += "\n  " + describe(path[i], n.rank, n.name) +
                         " -> " +
                         describe(path[i + 1], g_nodes[path[i + 1]].rank,
                                  g_nodes[path[i + 1]].name);
            if (e != n.out.end() && !e->second.chain.empty())
              diagnosis += "\n  recorded while:\n" + e->second.chain;
          }
        } else {
          from.out.emplace(mutex, Edge{held_chain()});
        }
      }
    }
    if (!diagnosis.empty()) report("lock-order cycle", std::move(diagnosis));
  }

  t_held.push_back({mutex, rank, name});
}

void on_release(const void* mutex) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mutex == mutex) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void on_destroy(const void* mutex) {
  const std::lock_guard<std::mutex> lock(g_mutex);  // ace-lint: allow(raw-mutex)
  g_nodes.erase(mutex);
  for (auto& [addr, node] : g_nodes) node.out.erase(mutex);
}

}  // namespace ace::util::lock_order
