#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ace::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  if (n_ == 0) throw std::logic_error("RunningStats::min on empty accumulator");
  return min_;
}

double RunningStats::max() const {
  if (n_ == 0) throw std::logic_error("RunningStats::max on empty accumulator");
  return max_;
}

double mean(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double variance(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.variance();
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double min_of(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pearson: size mismatch");
  if (xs.size() < 2) throw std::invalid_argument("pearson: need >= 2 points");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  // Exact-zero variance test: sxx/syy are sums of squares, so == 0
  // means every deviation was exactly zero.
  if (sxx == 0.0 || syy == 0.0)  // ace-lint: allow(float-equality)
    throw std::invalid_argument("pearson: zero variance");
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace ace::util
