#include "util/subprocess.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <stdexcept>
#include <utility>

extern char** environ;

namespace ace::util {

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("subprocess: ") + what + ": " +
                           strerror(errno));
}

void checked_close(int fd) {
  if (fd >= 0 && close(fd) != 0 && errno != EINTR) {
    // A failed close on a pipe end cannot be retried meaningfully; the fd
    // is gone either way. Nothing to propagate — but the return *was*
    // inspected, which is the invariant the lint rule enforces.
  }
}

}  // namespace

Subprocess Subprocess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) throw std::invalid_argument("subprocess: empty argv");

  // A write to a child that died mid-pipe must surface as EPIPE, not kill
  // the whole coordinator with SIGPIPE. Installed once, before the first
  // child exists, so no write can ever race the default disposition.
  static const bool sigpipe_ignored = [] {
    return signal(SIGPIPE, SIG_IGN) != SIG_ERR;
  }();
  if (!sigpipe_ignored) fail("signal(SIGPIPE)");

  int to_child[2] = {-1, -1};    // parent writes [1] -> child stdin [0]
  int from_child[2] = {-1, -1};  // child stdout [1] -> parent reads [0]
  if (pipe(to_child) != 0) fail("pipe(stdin)");
  if (pipe(from_child) != 0) {
    checked_close(to_child[0]);
    checked_close(to_child[1]);
    fail("pipe(stdout)");
  }

  // posix_spawn instead of raw fork+exec: the coordinator is threaded, and
  // spawn keeps the between-fork-and-exec window out of our hands.
  posix_spawn_file_actions_t actions;
  if (posix_spawn_file_actions_init(&actions) != 0) fail("file_actions_init");
  bool actions_ok =
      posix_spawn_file_actions_adddup2(&actions, to_child[0], 0) == 0 &&
      posix_spawn_file_actions_adddup2(&actions, from_child[1], 1) == 0 &&
      posix_spawn_file_actions_addclose(&actions, to_child[0]) == 0 &&
      posix_spawn_file_actions_addclose(&actions, to_child[1]) == 0 &&
      posix_spawn_file_actions_addclose(&actions, from_child[0]) == 0 &&
      posix_spawn_file_actions_addclose(&actions, from_child[1]) == 0;

  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (const std::string& a : argv)
    c_argv.push_back(const_cast<char*>(a.c_str()));
  c_argv.push_back(nullptr);

  pid_t pid = -1;
  int rc = actions_ok ? posix_spawnp(&pid, c_argv[0], &actions, nullptr,
                                     c_argv.data(), environ)
                      : -1;
  if (posix_spawn_file_actions_destroy(&actions) != 0) {
    // Destroy failing leaks only the (tiny) actions object; the spawn
    // result below is still authoritative.
  }
  checked_close(to_child[0]);
  checked_close(from_child[1]);
  if (!actions_ok || rc != 0) {
    checked_close(to_child[1]);
    checked_close(from_child[0]);
    errno = rc > 0 ? rc : errno;
    fail("posix_spawnp");
  }

  Subprocess p;
  p.pid_ = pid;
  p.stdin_fd_ = to_child[1];
  p.stdout_fd_ = from_child[0];
  return p;
}

Subprocess::~Subprocess() {
  if (pid_ > 0 && !reaped_) {
    kill_hard();
    (void)wait();
  }
  close_fds();
}

Subprocess::Subprocess(Subprocess&& other) noexcept { *this = std::move(other); }

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    if (pid_ > 0 && !reaped_) {
      kill_hard();
      (void)wait();
    }
    close_fds();
    pid_ = std::exchange(other.pid_, -1);
    stdin_fd_ = std::exchange(other.stdin_fd_, -1);
    stdout_fd_ = std::exchange(other.stdout_fd_, -1);
    reaped_ = std::exchange(other.reaped_, false);
    status_ = std::exchange(other.status_, 0);
  }
  return *this;
}

void Subprocess::close_fds() {
  checked_close(stdin_fd_);
  checked_close(stdout_fd_);
  stdin_fd_ = -1;
  stdout_fd_ = -1;
}

bool Subprocess::write_all(const char* data, std::size_t size) {
  if (stdin_fd_ < 0) return false;
  std::size_t written = 0;
  while (written < size) {
    // SIGPIPE is ignored process-wide (installed in spawn()), so a dead
    // peer surfaces here as EPIPE rather than a fatal signal.
    const ssize_t n = write(stdin_fd_, data + written, size - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && errno == EPIPE) return false;
    fail("write");
  }
  return true;
}

ReadStatus Subprocess::read_some(char* buffer, std::size_t capacity,
                                 std::chrono::milliseconds timeout,
                                 std::size_t* out_size) {
  *out_size = 0;
  if (stdout_fd_ < 0) return ReadStatus::kEof;
  struct pollfd pfd;
  pfd.fd = stdout_fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  for (;;) {
    const int rc = poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0) fail("poll");
    if (rc == 0) return ReadStatus::kTimeout;
    break;
  }
  for (;;) {
    const ssize_t n = read(stdout_fd_, buffer, capacity);
    if (n > 0) {
      *out_size = static_cast<std::size_t>(n);
      return ReadStatus::kData;
    }
    if (n == 0) return ReadStatus::kEof;
    if (errno == EINTR) continue;
    fail("read");
  }
}

void Subprocess::close_stdin() {
  checked_close(stdin_fd_);
  stdin_fd_ = -1;
}

void Subprocess::kill_hard() {
  if (pid_ > 0 && !reaped_) {
    if (kill(pid_, SIGKILL) != 0 && errno != ESRCH) {
      // Any failure other than "already gone" is unexpected but not
      // actionable: wait() below will still reap whatever state the child
      // is in.
    }
  }
}

int Subprocess::wait() {
  if (pid_ > 0 && !reaped_) {
    for (;;) {
      const pid_t r = waitpid(pid_, &status_, 0);
      if (r == pid_) break;
      if (r < 0 && errno == EINTR) continue;
      if (r < 0 && errno == ECHILD) break;  // Reaped elsewhere.
      if (r < 0) fail("waitpid");
    }
    reaped_ = true;
  }
  close_fds();
  return status_;
}

}  // namespace ace::util
