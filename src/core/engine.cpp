#include "core/engine.hpp"

#include <stdexcept>

namespace ace::core {

ErrorEvaluationEngine::ErrorEvaluationEngine(dse::SimulatorFn simulator,
                                             dse::PolicyOptions options,
                                             dse::MetricKind metric_kind)
    : simulator_(std::move(simulator)),
      policy_(std::move(options)),
      metric_kind_(metric_kind) {
  if (!simulator_)
    throw std::invalid_argument("ErrorEvaluationEngine: null simulator");
}

dse::EvalOutcome ErrorEvaluationEngine::evaluate(const dse::Config& config) {
  if (const auto it = cache_.find(config); it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  const auto outcome = policy_.evaluate(config, simulator_);
  cache_.emplace(config, outcome);
  return outcome;
}

dse::EvaluateFn ErrorEvaluationEngine::as_evaluator() {
  return [this](const dse::Config& c) { return evaluate(c).value; };
}

dse::MinPlusOneResult ErrorEvaluationEngine::optimize_word_lengths(
    const dse::MinPlusOneOptions& options) {
  return dse::min_plus_one(as_evaluator(), options);
}

dse::SensitivityResult ErrorEvaluationEngine::analyze_sensitivity(
    const dse::SensitivityOptions& options) {
  return dse::steepest_descent_budgeting(as_evaluator(), options);
}

}  // namespace ace::core
