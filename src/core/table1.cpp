#include "core/table1.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "core/engine.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace ace::core {

namespace {

/// Run the benchmark's optimizer against the given evaluator; returns the
/// final configuration, final λ, and the greedy decision sequence.
struct OptimizerRun {
  dse::Config solution;
  double lambda = 0.0;
  std::vector<std::size_t> decisions;
};

OptimizerRun run_optimizer(const ApplicationBenchmark& bench,
                           const dse::EvaluateFn& evaluate) {
  OptimizerRun run;
  switch (bench.optimizer) {
    case OptimizerKind::kMinPlusOne: {
      const auto result = dse::min_plus_one(evaluate, bench.min_plus_one);
      run.solution = result.w_res;
      run.lambda = result.final_lambda;
      run.decisions = result.decisions;
      break;
    }
    case OptimizerKind::kSensitivity: {
      const auto result =
          dse::steepest_descent_budgeting(evaluate, bench.sensitivity);
      run.solution = result.levels;
      run.lambda = result.final_lambda;
      run.decisions = result.decisions;
      break;
    }
  }
  return run;
}

}  // namespace

Table1Result run_table1(const ApplicationBenchmark& bench,
                        const std::vector<int>& distances,
                        const dse::PolicyOptions& base) {
  if (!bench.simulate)
    throw std::invalid_argument("run_table1: benchmark has no simulator");
  if (distances.empty())
    throw std::invalid_argument("run_table1: no distances requested");

  Table1Result result;
  result.benchmark = bench.name;
  result.metric = bench.metric;

  // Exact run: every distinct configuration simulated once, in order.
  dse::TrajectoryRecorder recorder(bench.simulate);
  const auto exact = run_optimizer(bench, recorder.as_simulator());
  result.trajectory = recorder.trajectory();
  result.exact_solution = exact.solution;
  result.exact_lambda = exact.lambda;

  // Kriging replay per distance.
  for (const int d : distances) {
    dse::PolicyOptions options = base;
    options.distance = d;
    const auto report =
        dse::replay_with_kriging(result.trajectory, options, bench.metric);
    Table1Row row;
    row.distance = d;
    row.p_percent = report.interpolated_fraction() * 100.0;
    row.j_mean = report.mean_neighbors();
    row.eps_max = report.max_epsilon();
    row.eps_mean = report.mean_epsilon();
    result.rows.push_back(row);
  }
  return result;
}

void print_table1(std::ostream& os, const Table1Result& result) {
  const bool bits = result.metric == dse::MetricKind::kAccuracyDb;
  util::TablePrinter table({"benchmark", "Nv", "d", "p(%)", "j",
                            bits ? "max eps (bits)" : "max eps (rel)",
                            bits ? "mu eps (bits)" : "mu eps (rel)"});
  const std::size_t nv =
      result.trajectory.configs.empty() ? 0 : result.trajectory.configs[0].size();
  for (const auto& row : result.rows) {
    auto fmt_eps = [&](double e) {
      return bits ? util::fmt(e, 2) : util::fmt_pct(e, 2) + "%";
    };
    table.add_row({result.benchmark, std::to_string(nv),
                   std::to_string(row.distance), util::fmt(row.p_percent, 2),
                   util::fmt(row.j_mean, 2), fmt_eps(row.eps_max),
                   fmt_eps(row.eps_mean)});
  }
  table.print(os);
}

TimingReport measure_speedup(const ApplicationBenchmark& bench,
                             const Table1Result& result, int distance) {
  const auto row_it =
      std::find_if(result.rows.begin(), result.rows.end(),
                   [&](const Table1Row& r) { return r.distance == distance; });
  if (row_it == result.rows.end())
    throw std::invalid_argument("measure_speedup: distance not in result");
  if (result.trajectory.size() == 0)
    throw std::invalid_argument("measure_speedup: empty trajectory");

  TimingReport report;
  report.p = row_it->p_percent / 100.0;

  // Mean simulation cost over a handful of recorded configurations.
  const std::size_t probes = std::min<std::size_t>(5, result.trajectory.size());
  util::Stopwatch sim_watch;
  for (std::size_t i = 0; i < probes; ++i)
    (void)bench.simulate(
        result.trajectory.configs[i * (result.trajectory.size() / probes)]);
  report.sim_seconds = sim_watch.seconds() / static_cast<double>(probes);

  // Mean interpolation cost: replay at this distance and time the policy's
  // evaluate() calls on interpolated configurations only.
  dse::PolicyOptions options;
  options.distance = distance;
  dse::KrigingPolicy policy(options);
  double krig_seconds = 0.0;
  std::size_t krig_count = 0;
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    const double true_value = result.trajectory.values[i];
    util::Stopwatch watch;
    const auto outcome = policy.evaluate(
        result.trajectory.configs[i],
        [&](const dse::Config&) { return true_value; });
    if (outcome.interpolated) {
      krig_seconds += watch.seconds();
      ++krig_count;
    }
  }
  report.krig_seconds =
      krig_count == 0 ? 0.0 : krig_seconds / static_cast<double>(krig_count);

  // Whole-DSE speed-up: t_exact / t_kriged (Eq. 2 applied to both flows).
  const double ratio =
      report.sim_seconds <= 0.0 ? 0.0 : report.krig_seconds / report.sim_seconds;
  const double denom = (1.0 - report.p) + report.p * ratio;
  report.speedup = denom <= 0.0 ? 1.0 : 1.0 / denom;
  return report;
}

namespace {

/// Kriging-estimate oracle for the divergence analysis: serves λ̂ exactly
/// as the deployed policy would (interpolate when the neighbourhood
/// allows, otherwise "simulate" = take the true value and enrich the
/// store), memoized per configuration so repeated candidates are stable.
class EstimateOracle {
 public:
  EstimateOracle(dse::PolicyOptions options, dse::SimulatorFn truth)
      : policy_(std::move(options)), truth_(std::move(truth)) {}

  double operator()(const dse::Config& c) {
    if (const auto it = memo_.find(c); it != memo_.end()) return it->second;
    const auto outcome = policy_.evaluate(c, truth_);
    memo_.emplace(c, outcome.value);
    return outcome.value;
  }

  dse::PolicyStats stats() const { return policy_.stats(); }

 private:
  dse::KrigingPolicy policy_;
  dse::SimulatorFn truth_;
  std::unordered_map<dse::Config, double, dse::ConfigHash> memo_;
};

/// Walk the EXACT optimizer's greedy path (the paper's recorded process);
/// at every decision point, recompute the argmax from the kriging
/// estimates and count how often the selection would have differed.
struct FlipCount {
  std::size_t steps = 0;
  std::size_t diverging = 0;
};

FlipCount count_min_plus_one_flips(const ApplicationBenchmark& bench,
                                   dse::TrajectoryRecorder& exact,
                                   EstimateOracle& estimate) {
  const auto& opt = bench.min_plus_one;
  auto exact_eval = exact.as_simulator();
  dse::Config w = dse::determine_min_word_lengths(exact_eval, opt);

  FlipCount flips;
  double lambda = exact_eval(w);
  while (lambda < opt.lambda_min && flips.steps < opt.max_steps) {
    double best_e = -std::numeric_limits<double>::infinity();
    double best_k = best_e;
    std::size_t pick_e = opt.nv, pick_k = opt.nv;
    for (std::size_t i = 0; i < opt.nv; ++i) {
      if (w[i] >= opt.w_max) continue;
      dse::Config candidate = w;
      ++candidate[i];
      const double le = exact_eval(candidate);
      const double lk = estimate(candidate);
      if (le > best_e) {
        best_e = le;
        pick_e = i;
      }
      if (lk > best_k) {
        best_k = lk;
        pick_k = i;
      }
    }
    if (pick_e == opt.nv) break;
    if (pick_e != pick_k) ++flips.diverging;
    ++w[pick_e];  // The exact pick drives the state.
    lambda = best_e;
    ++flips.steps;
  }
  return flips;
}

FlipCount count_sensitivity_flips(const ApplicationBenchmark& bench,
                                  dse::TrajectoryRecorder& exact,
                                  EstimateOracle& estimate) {
  const auto& opt = bench.sensitivity;
  auto exact_eval = exact.as_simulator();

  FlipCount flips;
  dse::Config levels(opt.nv, opt.level_max);
  (void)exact_eval(levels);
  while (flips.steps < opt.max_steps) {
    double best_e = -std::numeric_limits<double>::infinity();
    double best_k = best_e;
    std::size_t pick_e = opt.nv, pick_k = opt.nv;
    for (std::size_t i = 0; i < opt.nv; ++i) {
      if (levels[i] <= opt.level_min) continue;
      dse::Config candidate = levels;
      --candidate[i];
      const double le = exact_eval(candidate);
      const double lk = estimate(candidate);
      if (le > best_e) {
        best_e = le;
        pick_e = i;
      }
      if (lk > best_k) {
        best_k = lk;
        pick_k = i;
      }
    }
    if (pick_e == opt.nv || best_e < opt.lambda_min) break;
    if (pick_e != pick_k) ++flips.diverging;
    --levels[pick_e];
    ++flips.steps;
  }
  return flips;
}

}  // namespace

DivergenceReport run_decision_divergence(const ApplicationBenchmark& bench,
                                         const dse::PolicyOptions& options) {
  // Fully exact run — the final-result baseline.
  dse::TrajectoryRecorder recorder(bench.simulate);
  const auto exact = run_optimizer(bench, recorder.as_simulator());

  // (a) Decision flips along the exact run's own greedy path, scored
  // against the kriging estimates a deployed policy would have served.
  dse::TrajectoryRecorder replay_recorder(bench.simulate);
  EstimateOracle estimate(options, replay_recorder.as_simulator());
  const FlipCount flips =
      bench.optimizer == OptimizerKind::kMinPlusOne
          ? count_min_plus_one_flips(bench, replay_recorder, estimate)
          : count_sensitivity_flips(bench, replay_recorder, estimate);

  // (b) Final configuration of an end-to-end kriging-driven run.
  ErrorEvaluationEngine engine(bench.simulate, options, bench.metric);
  const auto kriged = run_optimizer(bench, engine.as_evaluator());

  DivergenceReport report;
  report.exact_steps = exact.decisions.size();
  report.kriging_steps = kriged.decisions.size();
  report.diverging = flips.diverging;
  report.diverging_percent =
      flips.steps == 0 ? 0.0
                       : 100.0 * static_cast<double>(flips.diverging) /
                             static_cast<double>(flips.steps);
  report.exact_result = exact.solution;
  report.kriging_result = kriged.solution;
  report.result_l1_gap = dse::l1_distance(exact.solution, kriged.solution);
  report.stats = engine.stats();
  return report;
}

}  // namespace ace::core
