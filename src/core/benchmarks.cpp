#include "core/benchmarks.hpp"

#include <array>
#include <cmath>
#include <complex>
#include <memory>
#include <stdexcept>

#include "approx/adders.hpp"
#include "approx/multipliers.hpp"

#include "metrics/classification.hpp"
#include "metrics/noise_power.hpp"
#include "nn/dataset.hpp"
#include "nn/squeezenet.hpp"
#include "signal/dct.hpp"
#include "signal/fft.hpp"
#include "signal/fir.hpp"
#include "signal/generator.hpp"
#include "signal/iir.hpp"
#include "util/rng.hpp"
#include "video/hevc_mc.hpp"

namespace ace::core {

namespace {

dse::MinPlusOneOptions word_length_options(std::size_t nv, double lambda_min,
                                           int w_min, int w_max) {
  dse::MinPlusOneOptions o;
  o.lambda_min = lambda_min;
  o.nv = nv;
  o.w_min = w_min;
  o.w_max = w_max;
  return o;
}

/// λ = −P in dB.
double accuracy_db(const std::vector<double>& approx,
                   const std::vector<double>& reference) {
  return -metrics::to_db(metrics::noise_power(approx, reference));
}

}  // namespace

ApplicationBenchmark make_fir_benchmark(const SignalBenchOptions& opt) {
  struct State {
    std::vector<double> input;
    std::vector<double> reference;
    std::unique_ptr<signal::QuantizedFirFilter> quantized;
  };
  auto state = std::make_shared<State>();
  util::Rng rng(opt.seed);
  state->input = signal::noisy_multitone(rng, opt.samples);
  const signal::FirFilter fir(signal::design_lowpass_fir(64, 0.18));
  state->reference = fir.filter(state->input);
  state->quantized = std::make_unique<signal::QuantizedFirFilter>(fir);

  ApplicationBenchmark bench;
  bench.name = "FIR";
  bench.nv = signal::QuantizedFirFilter::kVariables;
  bench.metric = dse::MetricKind::kAccuracyDb;
  bench.optimizer = OptimizerKind::kMinPlusOne;
  bench.min_plus_one =
      word_length_options(bench.nv, opt.lambda_min_db, opt.w_min, opt.w_max);
  bench.simulate = [state](const dse::Config& w) {
    return accuracy_db(state->quantized->filter(state->input, w),
                       state->reference);
  };
  return bench;
}

ApplicationBenchmark make_iir_benchmark(const SignalBenchOptions& opt) {
  struct State {
    std::vector<double> input;
    std::vector<double> reference;
    std::unique_ptr<signal::QuantizedIirCascade> quantized;
  };
  auto state = std::make_shared<State>();
  util::Rng rng(opt.seed);
  state->input = signal::noisy_multitone(rng, opt.samples);
  const signal::IirCascade iir(signal::design_butterworth_lowpass(8, 0.12));
  state->reference = iir.filter(state->input);
  state->quantized =
      std::make_unique<signal::QuantizedIirCascade>(iir, state->input);

  ApplicationBenchmark bench;
  bench.name = "IIR";
  bench.nv = state->quantized->variable_count();
  bench.metric = dse::MetricKind::kAccuracyDb;
  bench.optimizer = OptimizerKind::kMinPlusOne;
  bench.min_plus_one =
      word_length_options(bench.nv, opt.lambda_min_db, opt.w_min, opt.w_max);
  bench.simulate = [state](const dse::Config& w) {
    return accuracy_db(state->quantized->filter(state->input, w),
                       state->reference);
  };
  return bench;
}

ApplicationBenchmark make_fft_benchmark(const SignalBenchOptions& opt) {
  constexpr std::size_t kFftSize = 64;
  if (opt.samples < kFftSize)
    throw std::invalid_argument("make_fft_benchmark: samples < 64");
  struct State {
    std::vector<std::vector<std::complex<double>>> frames;
    std::vector<double> ref_re, ref_im;
    std::unique_ptr<signal::QuantizedFft> quantized;
  };
  auto state = std::make_shared<State>();
  util::Rng rng(opt.seed);
  const auto samples = signal::noisy_multitone(rng, opt.samples);
  for (std::size_t base = 0; base + kFftSize <= samples.size();
       base += kFftSize) {
    std::vector<std::complex<double>> frame(kFftSize);
    for (std::size_t i = 0; i < kFftSize; ++i) frame[i] = samples[base + i];
    state->frames.push_back(std::move(frame));
  }
  for (const auto& frame : state->frames) {
    auto spectrum = frame;
    signal::fft(spectrum);
    for (const auto& bin : spectrum) {
      state->ref_re.push_back(bin.real());
      state->ref_im.push_back(bin.imag());
    }
  }
  state->quantized = std::make_unique<signal::QuantizedFft>(kFftSize,
                                                            state->frames);

  ApplicationBenchmark bench;
  bench.name = "FFT";
  bench.nv = state->quantized->variable_count();
  bench.metric = dse::MetricKind::kAccuracyDb;
  bench.optimizer = OptimizerKind::kMinPlusOne;
  bench.min_plus_one =
      word_length_options(bench.nv, opt.lambda_min_db, opt.w_min, opt.w_max);
  bench.simulate = [state](const dse::Config& w) {
    std::vector<double> re, im;
    re.reserve(state->ref_re.size());
    im.reserve(state->ref_im.size());
    for (const auto& frame : state->frames) {
      const auto spectrum = state->quantized->transform(frame, w);
      for (const auto& bin : spectrum) {
        re.push_back(bin.real());
        im.push_back(bin.imag());
      }
    }
    return -metrics::to_db(
        metrics::noise_power_complex(re, im, state->ref_re, state->ref_im));
  };
  return bench;
}

ApplicationBenchmark make_hevc_benchmark(const HevcBenchOptions& opt) {
  struct State {
    std::vector<video::McJob> jobs;
    std::vector<double> reference;
    std::unique_ptr<video::QuantizedMotionCompensation> quantized;
  };
  auto state = std::make_shared<State>();
  util::Rng rng(opt.seed);
  state->jobs = video::synthetic_jobs(rng, opt.jobs);
  for (const auto& job : state->jobs) {
    const auto block = video::interpolate_reference(job);
    for (std::size_t y = 0; y < video::kBlockSize; ++y)
      for (std::size_t x = 0; x < video::kBlockSize; ++x)
        state->reference.push_back(block.at(x, y));
  }
  state->quantized =
      std::make_unique<video::QuantizedMotionCompensation>(state->jobs);

  ApplicationBenchmark bench;
  bench.name = "HEVC";
  bench.nv = video::QuantizedMotionCompensation::kVariables;
  bench.metric = dse::MetricKind::kAccuracyDb;
  bench.optimizer = OptimizerKind::kMinPlusOne;
  bench.min_plus_one =
      word_length_options(bench.nv, opt.lambda_min_db, opt.w_min, opt.w_max);
  bench.simulate = [state](const dse::Config& w) {
    std::vector<double> approx;
    approx.reserve(state->reference.size());
    for (const auto& job : state->jobs) {
      const auto block = state->quantized->interpolate(job, w);
      for (std::size_t y = 0; y < video::kBlockSize; ++y)
        for (std::size_t x = 0; x < video::kBlockSize; ++x)
          approx.push_back(block.at(x, y));
    }
    return accuracy_db(approx, state->reference);
  };
  return bench;
}

ApplicationBenchmark make_squeezenet_benchmark(const CnnBenchOptions& opt) {
  struct State {
    std::unique_ptr<nn::SqueezeNetLike> net;
    std::unique_ptr<nn::SyntheticDataset> data;
    std::vector<nn::FrozenNoise> noise;  ///< Per image.
    std::vector<int> reference_labels;
    double base_power = 1.0;
  };
  auto state = std::make_shared<State>();
  util::Rng rng(opt.seed);
  auto net_rng = rng.fork();
  auto data_rng = rng.fork();
  auto noise_rng = rng.fork();
  state->net = std::make_unique<nn::SqueezeNetLike>(opt.classes, net_rng);
  state->data =
      std::make_unique<nn::SyntheticDataset>(opt.images, opt.classes, data_rng);
  state->base_power = opt.base_power;
  state->noise.reserve(opt.images);
  for (std::size_t i = 0; i < opt.images; ++i)
    state->noise.push_back(
        nn::make_frozen_noise(noise_rng, state->net->site_sizes()));
  for (std::size_t i = 0; i < opt.images; ++i) {
    const auto logits = state->net->forward(state->data->image(i));
    state->reference_labels.push_back(
        static_cast<int>(metrics::argmax(logits)));
  }

  ApplicationBenchmark bench;
  bench.name = "SqueezeNet";
  bench.nv = nn::SqueezeNetLike::kSites;
  bench.metric = dse::MetricKind::kQualityRate;
  bench.optimizer = OptimizerKind::kSensitivity;
  bench.sensitivity.lambda_min = opt.pcl_min;
  bench.sensitivity.nv = bench.nv;
  bench.sensitivity.level_min = 0;
  bench.sensitivity.level_max = opt.level_max;
  bench.simulate = [state](const dse::Config& levels) {
    std::vector<double> powers;
    powers.reserve(levels.size());
    for (int level : levels)
      powers.push_back(nn::power_from_level(level, state->base_power));
    const auto plan = nn::InjectionPlan::from_powers(powers);

    std::vector<int> predicted;
    predicted.reserve(state->reference_labels.size());
    for (std::size_t i = 0; i < state->data->size(); ++i) {
      const auto logits = state->net->forward_injected(
          state->data->image(i), plan, state->noise[i]);
      predicted.push_back(static_cast<int>(metrics::argmax(logits)));
    }
    return metrics::classification_agreement(predicted,
                                             state->reference_labels);
  };
  return bench;
}

ApplicationBenchmark make_iir_sensitivity_benchmark(
    const IirSensitivityOptions& opt) {
  struct State {
    std::vector<signal::BiquadCoefficients> sections;
    std::vector<double> input;
    std::vector<double> reference;
    std::vector<std::vector<double>> noise;  ///< [source][sample], unit var.
  };
  auto state = std::make_shared<State>();
  util::Rng rng(opt.seed);
  state->sections = signal::design_butterworth_lowpass(8, 0.12);
  state->input = signal::noisy_multitone(rng, opt.samples);
  const signal::IirCascade cascade(state->sections);
  state->reference = cascade.filter(state->input);

  // Frozen unit-variance noise per source: one at the cascade input plus
  // one at each section output (Nv = sections + 1).
  auto noise_rng = rng.fork();
  const std::size_t nv = state->sections.size() + 1;
  for (std::size_t s = 0; s < nv; ++s)
    state->noise.push_back(noise_rng.normal_vector(opt.samples));

  ApplicationBenchmark bench;
  bench.name = "IIR-sens";
  bench.nv = nv;
  bench.metric = dse::MetricKind::kAccuracyDb;
  bench.optimizer = OptimizerKind::kSensitivity;
  bench.sensitivity.lambda_min = opt.lambda_min_db;
  bench.sensitivity.nv = nv;
  bench.sensitivity.level_min = 0;
  bench.sensitivity.level_max = opt.level_max;
  bench.simulate = [state](const dse::Config& levels) {
    std::vector<double> stddev(levels.size());
    for (std::size_t s = 0; s < levels.size(); ++s)
      stddev[s] = std::sqrt(std::ldexp(1.0, -levels[s]));

    std::vector<signal::Biquad> stages;
    for (const auto& c : state->sections) stages.emplace_back(c);

    std::vector<double> out(state->input.size());
    for (std::size_t i = 0; i < state->input.size(); ++i) {
      double x = state->input[i] + stddev[0] * state->noise[0][i];
      for (std::size_t s = 0; s < stages.size(); ++s)
        x = stages[s].process(x) + stddev[s + 1] * state->noise[s + 1][i];
      out[i] = x;
    }
    return accuracy_db(out, state->reference);
  };
  return bench;
}

ApplicationBenchmark make_approx_fir_benchmark(
    const ApproxFirBenchOptions& opt) {
  if (opt.taps < 2 || opt.taps % 2 != 0)
    throw std::invalid_argument("make_approx_fir_benchmark: taps even >= 2");
  if (opt.v_min < 2 || opt.v_min >= opt.v_max)
    throw std::invalid_argument("make_approx_fir_benchmark: bad v range");

  struct State {
    std::vector<int> input;        ///< 8-bit signed samples.
    std::vector<int> coeffs;       ///< 8-bit signed coefficients.
    std::vector<double> reference; ///< Exact integer FIR output.
    int v_max = 14;
  };
  auto state = std::make_shared<State>();
  state->v_max = opt.v_max;

  util::Rng rng(opt.seed);
  const auto analog = signal::noisy_multitone(rng, opt.samples);
  state->input.reserve(opt.samples);
  for (double x : analog)
    state->input.push_back(static_cast<int>(std::lround(x * 127.0)));

  const auto h = signal::design_lowpass_fir(opt.taps, 0.2);
  state->coeffs.reserve(opt.taps);
  for (double c : h)
    state->coeffs.push_back(static_cast<int>(std::lround(c * 127.0)));

  // Exact integer reference.
  state->reference.resize(opt.samples, 0.0);
  for (std::size_t i = 0; i < opt.samples; ++i) {
    std::int64_t acc = 0;
    const std::size_t reach = std::min(i + 1, opt.taps);
    for (std::size_t k = 0; k < reach; ++k)
      acc += static_cast<std::int64_t>(state->coeffs[k]) *
             state->input[i - k];
    state->reference[i] = static_cast<double>(acc);
  }

  ApplicationBenchmark bench;
  bench.name = "ApproxFIR";
  bench.nv = 4;
  bench.metric = dse::MetricKind::kAccuracyDb;
  bench.optimizer = OptimizerKind::kMinPlusOne;
  bench.min_plus_one =
      word_length_options(bench.nv, opt.lambda_min_db, opt.v_min, opt.v_max);
  bench.simulate = [state](const dse::Config& v) {
    // Variables: (mult half 0, add half 0, mult half 1, add half 1);
    // degree = v_max − v + 1, so even v = v_max keeps one approximate
    // bit — the exact corner would put a ±infinity cliff (noise power 0)
    // into the accuracy surface, which no interpolator can serve.
    constexpr int kAccWidth = 26;
    const approx::TruncatedMultiplier mul0(9, state->v_max - v[0] + 1);
    const approx::LowerOrAdder add0(kAccWidth, state->v_max - v[1] + 1);
    const approx::TruncatedMultiplier mul1(9, state->v_max - v[2] + 1);
    const approx::LowerOrAdder add1(kAccWidth, state->v_max - v[3] + 1);

    const std::size_t taps = state->coeffs.size();
    const std::size_t half = taps / 2;
    std::vector<double> out(state->input.size());
    for (std::size_t i = 0; i < state->input.size(); ++i) {
      std::int64_t acc = 0;
      const std::size_t reach = std::min(i + 1, taps);
      for (std::size_t k = 0; k < reach; ++k) {
        const bool first_half = k < half;
        const std::int64_t product =
            first_half ? mul0.multiply(state->coeffs[k], state->input[i - k])
                       : mul1.multiply(state->coeffs[k], state->input[i - k]);
        acc = first_half ? add0.add(acc, product) : add1.add(acc, product);
      }
      out[i] = static_cast<double>(acc);
    }
    // Normalize both signals by the full-scale product so the dB figures
    // are comparable with the fixed-point benchmarks.
    std::vector<double> approx_norm(out.size()), ref_norm(out.size());
    const double scale = 127.0 * 127.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      approx_norm[i] = out[i] / scale;
      ref_norm[i] = state->reference[i] / scale;
    }
    return accuracy_db(approx_norm, ref_norm);
  };
  return bench;
}

ApplicationBenchmark make_dct_benchmark(const DctBenchOptions& opt) {
  struct State {
    std::vector<std::array<double, signal::kDctBlock>> blocks;
    std::vector<double> reference;
    std::unique_ptr<signal::QuantizedDct2d> quantized;
  };
  auto state = std::make_shared<State>();
  util::Rng rng(opt.seed);
  state->blocks.reserve(opt.blocks);
  for (std::size_t b = 0; b < opt.blocks; ++b) {
    const auto patch = video::synthetic_patch(rng, signal::kDctSize,
                                              signal::kDctSize);
    std::array<double, signal::kDctBlock> block{};
    for (std::size_t y = 0; y < signal::kDctSize; ++y)
      for (std::size_t x = 0; x < signal::kDctSize; ++x)
        block[y * signal::kDctSize + x] = patch.at(x, y) - 0.5;  // Centre.
    state->blocks.push_back(block);
  }
  for (const auto& block : state->blocks) {
    const auto coeffs = signal::dct2d_reference(block);
    state->reference.insert(state->reference.end(), coeffs.begin(),
                            coeffs.end());
  }
  state->quantized = std::make_unique<signal::QuantizedDct2d>(state->blocks);

  ApplicationBenchmark bench;
  bench.name = "DCT";
  bench.nv = signal::QuantizedDct2d::kVariables;
  bench.metric = dse::MetricKind::kAccuracyDb;
  bench.optimizer = OptimizerKind::kMinPlusOne;
  bench.min_plus_one =
      word_length_options(bench.nv, opt.lambda_min_db, opt.w_min, opt.w_max);
  bench.simulate = [state](const dse::Config& w) {
    std::vector<double> approx;
    approx.reserve(state->reference.size());
    for (const auto& block : state->blocks) {
      const auto coeffs = state->quantized->transform(block, w);
      approx.insert(approx.end(), coeffs.begin(), coeffs.end());
    }
    return accuracy_db(approx, state->reference);
  };
  return bench;
}

}  // namespace ace::core
