// ErrorEvaluationEngine — the library's main entry point.
//
// Wraps an application simulator with the paper's kriging-based
// simulate-or-interpolate policy and exposes the two optimization flows it
// evaluates: min+1-bit word-length refinement and steepest-descent error
// budgeting. Downstream users supply only a deterministic simulator
// (configuration -> metric value) and an accuracy constraint.
//
//   ace::core::ErrorEvaluationEngine engine(
//       my_simulator, {.distance = 3}, ace::dse::MetricKind::kAccuracyDb);
//   auto result = engine.optimize_word_lengths({.lambda_min = 50,
//                                               .nv = 10, .w_max = 16});
//   engine.stats();   // how many simulations kriging saved
#pragma once

#include <unordered_map>

#include "dse/kriging_policy.hpp"
#include "dse/min_plus_one.hpp"
#include "dse/steepest_descent.hpp"
#include "dse/trajectory.hpp"

namespace ace::core {

/// High-level facade over the kriging evaluation policy.
class ErrorEvaluationEngine {
 public:
  /// Throws std::invalid_argument on a null simulator.
  ErrorEvaluationEngine(dse::SimulatorFn simulator, dse::PolicyOptions options,
                        dse::MetricKind metric_kind);

  /// Evaluate λ for one configuration: interpolated when the neighbourhood
  /// allows, simulated otherwise; memoized so repeated configurations are
  /// free. Returns the full outcome.
  dse::EvalOutcome evaluate(const dse::Config& config);

  /// Evaluation callable (value only) bound to this engine — plug it into
  /// any optimizer.
  dse::EvaluateFn as_evaluator();

  /// Run the full min+1-bit algorithm through this engine.
  dse::MinPlusOneResult optimize_word_lengths(
      const dse::MinPlusOneOptions& options);

  /// Run steepest-descent error budgeting through this engine.
  dse::SensitivityResult analyze_sensitivity(
      const dse::SensitivityOptions& options);

  dse::PolicyStats stats() const { return policy_.stats(); }
  const dse::KrigingPolicy& policy() const { return policy_; }
  dse::MetricKind metric_kind() const { return metric_kind_; }
  std::size_t cache_hits() const { return cache_hits_; }

 private:
  dse::SimulatorFn simulator_;
  dse::KrigingPolicy policy_;
  dse::MetricKind metric_kind_;
  std::unordered_map<dse::Config, dse::EvalOutcome, dse::ConfigHash> cache_;
  std::size_t cache_hits_ = 0;
};

}  // namespace ace::core
