// The paper's five evaluation benchmarks, packaged as self-contained
// (name, lattice, metric, simulator, optimizer) bundles. Each simulator is
// deterministic: identical configurations always yield identical λ.
//
// Metric conventions (Sec. IV): for the four word-length benchmarks
// λ = −P with P the output noise power in dB (higher λ = more accurate);
// for SqueezeNet λ = p_cl, the classification-agreement probability.
#pragma once

#include <cstdint>
#include <string>

#include "dse/config.hpp"
#include "dse/kriging_policy.hpp"
#include "dse/min_plus_one.hpp"
#include "dse/steepest_descent.hpp"
#include "dse/trajectory.hpp"

namespace ace::core {

/// Which optimizer drives the benchmark's DSE.
enum class OptimizerKind { kMinPlusOne, kSensitivity };

/// A ready-to-run evaluation benchmark.
struct ApplicationBenchmark {
  std::string name;
  std::size_t nv = 0;
  dse::MetricKind metric = dse::MetricKind::kAccuracyDb;
  OptimizerKind optimizer = OptimizerKind::kMinPlusOne;
  dse::SimulatorFn simulate;
  dse::MinPlusOneOptions min_plus_one;    ///< Used when kMinPlusOne.
  dse::SensitivityOptions sensitivity;    ///< Used when kSensitivity.
};

/// Shared sizing for the signal-kernel benchmarks.
struct SignalBenchOptions {
  std::size_t samples = 512;     ///< Input length (FFT: must be multiple of 64).
  std::uint64_t seed = 42;
  double lambda_min_db = 50.0;   ///< Constraint: noise power <= −50 dB.
  int w_max = 16;
  int w_min = 2;
};

/// 64-tap FIR, Nv = 2 (Table I row 1, Fig. 1).
ApplicationBenchmark make_fir_benchmark(const SignalBenchOptions& opt = {});

/// 8th-order IIR (4 biquads), Nv = 5 (Table I row 2).
ApplicationBenchmark make_iir_benchmark(const SignalBenchOptions& opt = {});

/// 64-point FFT, Nv = 10 (Table I row 3).
ApplicationBenchmark make_fft_benchmark(const SignalBenchOptions& opt = {});

struct HevcBenchOptions {
  std::size_t jobs = 24;         ///< 8×8 motion-compensation blocks.
  std::uint64_t seed = 7;
  double lambda_min_db = 50.0;
  int w_max = 16;
  int w_min = 2;
};

/// HEVC luma motion compensation, Nv = 23 (Table I row 4).
ApplicationBenchmark make_hevc_benchmark(const HevcBenchOptions& opt = {});

struct CnnBenchOptions {
  std::size_t images = 250;      ///< Paper: 1000; scaled for laptop runtime.
  std::size_t classes = 10;
  std::uint64_t seed = 1234;
  double pcl_min = 0.90;         ///< Targeted classification agreement.
  int level_max = 18;            ///< Start level (power 2^-18·base: near-silent).
  double base_power = 1.0;       ///< Power at level 0.
};

/// SqueezeNet-like error-sensitivity analysis, Nv = 10 (Table I row 5).
ApplicationBenchmark make_squeezenet_benchmark(const CnnBenchOptions& opt = {});

struct IirSensitivityOptions {
  std::size_t samples = 512;
  std::uint64_t seed = 55;
  double lambda_min_db = 45.0;  ///< Injected noise must stay <= −45 dB.
  int level_max = 20;           ///< Start level (power 2^-20: near-silent).
};

/// Error-sensitivity analysis on the IIR cascade (extension): an error
/// source at the output of each biquad section (Nv = 4 + 1 input source),
/// budgeted by steepest descent — the paper's second problem type applied
/// to a classical signal kernel. Feedback filters the injected noise, so
/// per-source tolerances differ by section depth.
ApplicationBenchmark make_iir_sensitivity_benchmark(
    const IirSensitivityOptions& opt = {});

struct ApproxFirBenchOptions {
  std::size_t samples = 512;
  std::size_t taps = 16;
  std::uint64_t seed = 77;
  double lambda_min_db = 40.0;
  int v_min = 2;               ///< Lattice floor (degree = v_max − v).
  int v_max = 14;              ///< Exact operators at v = v_max.
};

/// Approximate-operator FIR benchmark (extension; the paper's intro cites
/// inexact adders/multipliers as an approximation source). An integer FIR
/// built from truncated multipliers and lower-OR adders; the four DSE
/// variables are *precision levels* (v_max − degree) of the multiplier and
/// adder in each half of the tap array, so higher v = more exact, exactly
/// like a word length. Nv = 4.
ApplicationBenchmark make_approx_fir_benchmark(
    const ApproxFirBenchOptions& opt = {});

struct DctBenchOptions {
  std::size_t blocks = 48;       ///< 8×8 pixel blocks.
  std::uint64_t seed = 99;
  double lambda_min_db = 50.0;
  int w_max = 16;
  int w_min = 2;
};

/// 8×8 2-D DCT word-length benchmark, Nv = 6 — an extension beyond the
/// paper's evaluation set (see DESIGN.md).
ApplicationBenchmark make_dct_benchmark(const DctBenchOptions& opt = {});

}  // namespace ace::core
