// Experiment orchestration reproducing the paper's evaluation:
//   * Table I rows (per benchmark, per distance d): p(%), j̄, max ε, μ ε;
//   * the timing / speed-up analysis of Sec. IV;
//   * the ~10% decision-divergence measurement of Sec. IV.
#pragma once

#include <iosfwd>
#include <vector>

#include "core/benchmarks.hpp"
#include "dse/trajectory.hpp"

namespace ace::core {

/// One Table I row.
struct Table1Row {
  int distance = 0;          ///< d.
  double p_percent = 0.0;    ///< Interpolated configurations (%).
  double j_mean = 0.0;       ///< Mean support size per interpolation.
  double eps_max = 0.0;      ///< max ε.
  double eps_mean = 0.0;     ///< μ ε.
};

/// All rows of one benchmark plus the underlying trajectory.
struct Table1Result {
  std::string benchmark;
  dse::MetricKind metric = dse::MetricKind::kAccuracyDb;
  dse::Trajectory trajectory;       ///< Exact run, in evaluation order.
  std::vector<Table1Row> rows;
  dse::Config exact_solution;       ///< Optimizer result with exact λ.
  double exact_lambda = 0.0;
};

/// Run the benchmark's optimizer with exhaustive simulation (recording the
/// trajectory), then replay through the kriging policy for each distance.
/// `base` supplies the non-distance policy knobs (nn_min, fit options).
Table1Result run_table1(const ApplicationBenchmark& bench,
                        const std::vector<int>& distances,
                        const dse::PolicyOptions& base = {});

/// Render rows in the paper's Table I layout.
void print_table1(std::ostream& os, const Table1Result& result);

/// Timing analysis (Sec. IV): measured simulation time vs interpolation
/// time and the resulting end-to-end optimization speed-up at a given p.
struct TimingReport {
  double sim_seconds = 0.0;    ///< Mean wall-clock of one simulation.
  double krig_seconds = 0.0;   ///< Mean wall-clock of one interpolation.
  double p = 0.0;              ///< Interpolated fraction used.
  double speedup = 1.0;        ///< t_exact / t_kriging for the whole DSE.
};

/// Measure per-evaluation costs on the benchmark and compute the speed-up
/// at the interpolated fraction achieved at distance `d` in `result`.
TimingReport measure_speedup(const ApplicationBenchmark& bench,
                             const Table1Result& result, int distance);

/// Decision-divergence analysis (Sec. IV): drive the greedy optimizer with
/// kriging in the loop and, at every decision point, counterfactually ask
/// which variable the *exact* metric would have selected from the same
/// state. `diverging_percent` is the fraction of decision points where the
/// two selections differ (the paper reports ~10%); `result_l1_gap`
/// compares the kriging run's final configuration with a fully exact run.
struct DivergenceReport {
  std::size_t exact_steps = 0;     ///< Greedy steps of the exact run.
  std::size_t kriging_steps = 0;   ///< Greedy steps of the kriging run.
  std::size_t diverging = 0;       ///< Decision points with a different pick.
  double diverging_percent = 0.0;
  dse::Config exact_result;
  dse::Config kriging_result;
  int result_l1_gap = 0;           ///< L1 distance between final configs.
  dse::PolicyStats stats;          ///< Policy stats of the kriging run.
};

DivergenceReport run_decision_divergence(const ApplicationBenchmark& bench,
                                         const dse::PolicyOptions& options);

}  // namespace ace::core
