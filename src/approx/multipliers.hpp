// Approximate integer multipliers (paper intro refs [5]: Mrazek et al.
// scalable approximate multipliers; plus the classical truncated and
// logarithmic designs). Parameterized by an approximation degree like the
// adders, so multiplier precision is one more axis on the DSE lattice.
#pragma once

#include <cstdint>

namespace ace::approx {

/// Truncated (fixed-width style) multiplier: the `degree` least
/// significant columns of the partial-product matrix are discarded, i.e.
/// the low bits of each operand's contribution below column `degree` never
/// enter the array. Implemented as sign × magnitude with the magnitude
/// product's low columns dropped.
class TruncatedMultiplier {
 public:
  /// Operand width in [2, 30] bits, degree in [0, 2·width]. Throws.
  TruncatedMultiplier(int width, int degree);

  std::int64_t multiply(std::int64_t a, std::int64_t b) const;

  int width() const { return width_; }
  int degree() const { return degree_; }

 private:
  int width_;
  int degree_;
};

/// Mitchell's logarithmic multiplier: |a·b| ≈ 2^(log2|a| + log2|b|) with
/// piecewise-linear log/antilog. `interp_bits` controls the fraction
/// precision kept from each operand's mantissa (more bits = closer to
/// exact); 0 keeps none (pure power-of-two products).
class MitchellMultiplier {
 public:
  /// width in [2, 30], interp_bits in [0, 30]. Throws.
  MitchellMultiplier(int width, int interp_bits);

  std::int64_t multiply(std::int64_t a, std::int64_t b) const;

  int width() const { return width_; }
  int interp_bits() const { return interp_bits_; }

 private:
  int width_;
  int interp_bits_;
};

/// Exact reference product (the golden model).
std::int64_t exact_multiply(std::int64_t a, std::int64_t b);

}  // namespace ace::approx
