// Error characterization of approximate operators: the standard metrics
// of the approximate-arithmetic literature (error rate, mean error
// distance, mean squared error), measured exhaustively for narrow widths
// or by deterministic sampling for wide ones.
#pragma once

#include <cstdint>
#include <functional>

#include "util/rng.hpp"

namespace ace::approx {

/// Binary integer operator under test (and its exact reference).
using BinaryOp = std::function<std::int64_t(std::int64_t, std::int64_t)>;

/// Aggregate error metrics of `approx` vs `exact` over an operand set.
struct ErrorProfile {
  double error_rate = 0.0;        ///< Fraction of operand pairs with error.
  double mean_error_distance = 0.0;   ///< E[|approx − exact|].
  double mean_squared_error = 0.0;    ///< E[(approx − exact)²].
  double max_error_distance = 0.0;    ///< max |approx − exact|.
  std::uint64_t pairs = 0;            ///< Operand pairs evaluated.
};

/// Exhaustive characterization over all signed `width`-bit operand pairs.
/// width must be in [2, 12] (4^12 pairs is the practical ceiling); throws.
ErrorProfile characterize_exhaustive(const BinaryOp& approx,
                                     const BinaryOp& exact, int width);

/// Sampled characterization over `samples` uniform signed operand pairs of
/// the given width (deterministic given the generator). Throws on zero
/// samples or width outside [2, 30].
ErrorProfile characterize_sampled(const BinaryOp& approx,
                                  const BinaryOp& exact, int width,
                                  std::size_t samples, util::Rng& rng);

}  // namespace ace::approx
