#include "approx/adders.hpp"

#include <stdexcept>

namespace ace::approx {

namespace {

void check_params(int width, int degree, int max_degree) {
  if (width < 2 || width > 62)
    throw std::invalid_argument("approx adder: width must be in [2, 62]");
  if (degree < 0 || degree > max_degree)
    throw std::invalid_argument("approx adder: degree out of range");
}

std::uint64_t to_bits(std::int64_t v, int width) {
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  return static_cast<std::uint64_t>(v) & mask;
}

std::int64_t from_bits(std::uint64_t bits, int width) {
  const std::uint64_t sign = std::uint64_t{1} << (width - 1);
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  bits &= mask;
  if (bits & sign) return static_cast<std::int64_t>(bits) -
                          (std::int64_t{1} << width);
  return static_cast<std::int64_t>(bits);
}

}  // namespace

std::int64_t exact_add(std::int64_t a, std::int64_t b, int width) {
  check_params(width, 0, 0);
  return from_bits(to_bits(a, width) + to_bits(b, width), width);
}

LowerOrAdder::LowerOrAdder(int width, int degree)
    : width_(width), degree_(degree) {
  check_params(width, degree, width);
  low_mask_ = degree == 0 ? 0 : (std::uint64_t{1} << degree) - 1;
  carry_bit_ = degree == 0 ? 0 : std::uint64_t{1} << (degree - 1);
}

std::int64_t LowerOrAdder::add(std::int64_t a, std::int64_t b) const {
  const std::uint64_t ua = to_bits(a, width_);
  const std::uint64_t ub = to_bits(b, width_);
  if (degree_ == 0) return from_bits(ua + ub, width_);
  const std::uint64_t low = (ua | ub) & low_mask_;
  // Carry prediction: AND of the approximate part's MSBs.
  const std::uint64_t carry = ((ua & ub) & carry_bit_) ? 1 : 0;
  const std::uint64_t high =
      ((ua >> degree_) + (ub >> degree_) + carry) << degree_;
  return from_bits(high | low, width_);
}

TruncatedAdder::TruncatedAdder(int width, int degree)
    : width_(width), degree_(degree) {
  check_params(width, degree, width);
  const std::uint64_t all = (std::uint64_t{1} << width) - 1;
  const std::uint64_t low =
      degree == 0 ? 0 : (std::uint64_t{1} << degree) - 1;
  keep_mask_ = all & ~low;
}

std::int64_t TruncatedAdder::add(std::int64_t a, std::int64_t b) const {
  const std::uint64_t ua = to_bits(a, width_) & keep_mask_;
  const std::uint64_t ub = to_bits(b, width_) & keep_mask_;
  return from_bits(ua + ub, width_);
}

CarryCutAdder::CarryCutAdder(int width, int degree)
    : width_(width), degree_(degree) {
  check_params(width, degree, width);
  low_mask_ = degree == 0 ? 0 : (std::uint64_t{1} << degree) - 1;
}

std::int64_t CarryCutAdder::add(std::int64_t a, std::int64_t b) const {
  const std::uint64_t ua = to_bits(a, width_);
  const std::uint64_t ub = to_bits(b, width_);
  if (degree_ == 0) return from_bits(ua + ub, width_);
  const std::uint64_t low = (ua + ub) & low_mask_;  // Carry discarded.
  const std::uint64_t high = ((ua >> degree_) + (ub >> degree_)) << degree_;
  return from_bits(high | low, width_);
}

}  // namespace ace::approx
