#include "approx/multipliers.hpp"

#include <bit>
#include <cstdlib>
#include <stdexcept>

namespace ace::approx {

namespace {

void check_width(int width, int max_width) {
  if (width < 2 || width > max_width)
    throw std::invalid_argument("approx multiplier: width out of range");
}

int floor_log2(std::uint64_t v) {
  return 63 - std::countl_zero(v);
}

}  // namespace

std::int64_t exact_multiply(std::int64_t a, std::int64_t b) { return a * b; }

TruncatedMultiplier::TruncatedMultiplier(int width, int degree)
    : width_(width), degree_(degree) {
  check_width(width, 30);
  if (degree < 0 || degree > 2 * width)
    throw std::invalid_argument("TruncatedMultiplier: degree out of range");
}

std::int64_t TruncatedMultiplier::multiply(std::int64_t a,
                                           std::int64_t b) const {
  const bool negative = (a < 0) != (b < 0);
  const std::uint64_t ua = static_cast<std::uint64_t>(std::llabs(a));
  const std::uint64_t ub = static_cast<std::uint64_t>(std::llabs(b));
  // Drop the low `degree` columns of the product (truncation of the
  // partial-product array, the classical fixed-width multiplier cut).
  std::uint64_t product = ua * ub;
  if (degree_ > 0) product = (product >> degree_) << degree_;
  const std::int64_t magnitude = static_cast<std::int64_t>(product);
  return negative ? -magnitude : magnitude;
}

MitchellMultiplier::MitchellMultiplier(int width, int interp_bits)
    : width_(width), interp_bits_(interp_bits) {
  check_width(width, 30);
  if (interp_bits < 0 || interp_bits > 30)
    throw std::invalid_argument("MitchellMultiplier: interp_bits range");
}

std::int64_t MitchellMultiplier::multiply(std::int64_t a,
                                          std::int64_t b) const {
  if (a == 0 || b == 0) return 0;
  const bool negative = (a < 0) != (b < 0);
  const std::uint64_t ua = static_cast<std::uint64_t>(std::llabs(a));
  const std::uint64_t ub = static_cast<std::uint64_t>(std::llabs(b));

  // Mitchell: |v| = 2^k (1 + f), log2|v| ≈ k + f. Keep interp_bits of f.
  const int ka = floor_log2(ua);
  const int kb = floor_log2(ub);
  auto mantissa = [&](std::uint64_t v, int k) -> std::uint64_t {
    const std::uint64_t frac = v - (std::uint64_t{1} << k);  // f · 2^k.
    if (interp_bits_ >= k) return frac << (interp_bits_ - k);
    return frac >> (k - interp_bits_);
  };
  const std::uint64_t fa = mantissa(ua, ka);  // f_a · 2^interp_bits.
  const std::uint64_t fb = mantissa(ub, kb);

  // log sum = (ka + kb) + (fa + fb) / 2^interp.
  std::uint64_t fsum = fa + fb;
  int ksum = ka + kb;
  const std::uint64_t one = std::uint64_t{1} << interp_bits_;
  if (fsum >= one) {  // Mantissa overflow: antilog doubles.
    fsum -= one;
    ksum += 1;
  }
  // Antilog: 2^(ksum)·(1 + fsum/2^interp).
  std::uint64_t magnitude;
  if (ksum >= interp_bits_)
    magnitude = (one + fsum) << (ksum - interp_bits_);
  else
    magnitude = (one + fsum) >> (interp_bits_ - ksum);
  const std::int64_t result = static_cast<std::int64_t>(magnitude);
  return negative ? -result : result;
}

}  // namespace ace::approx
