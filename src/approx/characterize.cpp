#include "approx/characterize.hpp"

#include <cmath>
#include <stdexcept>

namespace ace::approx {

namespace {

struct Accumulator {
  std::uint64_t pairs = 0;
  std::uint64_t errors = 0;
  double sum_abs = 0.0;
  double sum_sq = 0.0;
  double max_abs = 0.0;

  void add(std::int64_t approx_v, std::int64_t exact_v) {
    ++pairs;
    const double diff =
        static_cast<double>(approx_v) - static_cast<double>(exact_v);
    // diff is an exact integer difference widened to double.
    if (diff != 0.0) ++errors;  // ace-lint: allow(float-equality)
    const double mag = std::abs(diff);
    sum_abs += mag;
    sum_sq += diff * diff;
    max_abs = std::max(max_abs, mag);
  }

  ErrorProfile profile() const {
    ErrorProfile p;
    p.pairs = pairs;
    if (pairs == 0) return p;
    const double n = static_cast<double>(pairs);
    p.error_rate = static_cast<double>(errors) / n;
    p.mean_error_distance = sum_abs / n;
    p.mean_squared_error = sum_sq / n;
    p.max_error_distance = max_abs;
    return p;
  }
};

}  // namespace

ErrorProfile characterize_exhaustive(const BinaryOp& approx,
                                     const BinaryOp& exact, int width) {
  if (!approx || !exact)
    throw std::invalid_argument("characterize: null operator");
  if (width < 2 || width > 12)
    throw std::invalid_argument("characterize_exhaustive: width in [2, 12]");
  const std::int64_t lo = -(std::int64_t{1} << (width - 1));
  const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
  Accumulator acc;
  for (std::int64_t a = lo; a <= hi; ++a)
    for (std::int64_t b = lo; b <= hi; ++b)
      acc.add(approx(a, b), exact(a, b));
  return acc.profile();
}

ErrorProfile characterize_sampled(const BinaryOp& approx,
                                  const BinaryOp& exact, int width,
                                  std::size_t samples, util::Rng& rng) {
  if (!approx || !exact)
    throw std::invalid_argument("characterize: null operator");
  if (width < 2 || width > 30)
    throw std::invalid_argument("characterize_sampled: width in [2, 30]");
  if (samples == 0)
    throw std::invalid_argument("characterize_sampled: need samples");
  const int lo = -(1 << (width - 1));
  const int hi = (1 << (width - 1)) - 1;
  Accumulator acc;
  for (std::size_t i = 0; i < samples; ++i) {
    const std::int64_t a = rng.uniform_int(lo, hi);
    const std::int64_t b = rng.uniform_int(lo, hi);
    acc.add(approx(a, b), exact(a, b));
  }
  return acc.profile();
}

}  // namespace ace::approx
