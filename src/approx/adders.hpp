// Approximate integer adders — the "inexact operators" approximation
// source of the paper's introduction (its refs [3] Gupta et al., [4]
// Kahng & Kang). Each adder is parameterized by an approximation degree
// (number of inexact low-order bits); degree 0 is the exact adder, so the
// degree forms the integer DSE lattice the kriging engine explores.
//
// All adders operate on two's-complement values embedded in int64 with a
// given operand width; results are exact at the architectural level (no
// UB), deterministic, and match the published architectures' behaviour.
#pragma once

#include <cstdint>

namespace ace::approx {

/// Lower-part-OR adder (LOA, Mahdiani et al.): the low `degree` bits are
/// OR-ed instead of added; the carry into the exact upper part is the AND
/// of the operands' MSBs of the approximate part.
class LowerOrAdder {
 public:
  /// `width` in [2, 62], degree in [0, width]. Throws std::invalid_argument.
  LowerOrAdder(int width, int degree);

  std::int64_t add(std::int64_t a, std::int64_t b) const;

  int width() const { return width_; }
  int degree() const { return degree_; }

 private:
  int width_;
  int degree_;
  std::uint64_t low_mask_;
  std::uint64_t carry_bit_;
};

/// Truncated adder: the low `degree` bits of both operands are zeroed
/// before an exact addition (no carry ever emerges from the cut part).
class TruncatedAdder {
 public:
  TruncatedAdder(int width, int degree);

  std::int64_t add(std::int64_t a, std::int64_t b) const;

  int width() const { return width_; }
  int degree() const { return degree_; }

 private:
  int width_;
  int degree_;
  std::uint64_t keep_mask_;
};

/// Carry-cut (ETAII-style segmented) adder: the carry chain is broken at
/// bit `degree`; the upper part adds with carry-in 0. Exact when the real
/// carry across the cut is 0.
class CarryCutAdder {
 public:
  CarryCutAdder(int width, int degree);

  std::int64_t add(std::int64_t a, std::int64_t b) const;

  int width() const { return width_; }
  int degree() const { return degree_; }

 private:
  int width_;
  int degree_;
  std::uint64_t low_mask_;
};

/// Exact reference addition at the given width (wraps modulo 2^width,
/// two's complement) — the golden model for the adders above.
std::int64_t exact_add(std::int64_t a, std::int64_t b, int width);

}  // namespace ace::approx
