// Bit-true integer HEVC luma interpolation (H.265 §8.5.4.2.2.1) — the
// golden model for the normalized-double dataflow in hevc_mc.*.
//
// 8-bit samples, integer filter taps summing to 64. A doubly-fractional
// position filters horizontally at full precision, then vertically, and
// rounds once: out = Clip3(0, 255, (Σ c_v · tmp + 2^11) >> 12). A singly-
// fractional position rounds with (… + 32) >> 6. The test suite asserts
// the normalized reference matches this model to within its final
// rounding step.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "video/hevc_mc.hpp"

namespace ace::video {

/// Integer luma filter taps for fractional phase 0..3 (sum = 64).
const std::array<int, kTaps>& luma_filter_int(int phase);

/// 8-bit integer sample block.
struct IntBlock {
  std::array<std::array<int, kBlockSize>, kBlockSize> samples{};
};

/// Bit-true interpolation of an 8×8 block. The job's window samples must
/// lie on the 8-bit grid (value·256 integral) — synthetic_patch guarantees
/// this; throws std::invalid_argument otherwise.
IntBlock interpolate_integer(const McJob& job);

}  // namespace ace::video
