#include "video/hevc_mc_int.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ace::video {

namespace {

constexpr std::array<std::array<int, kTaps>, 4> kIntCoeffs = {{
    {0, 0, 0, 64, 0, 0, 0, 0},
    {-1, 4, -10, 58, 17, -5, 1, 0},
    {-1, 4, -11, 40, 40, -11, 4, -1},
    {0, 1, -5, 17, 58, -10, 4, -1},
}};

int clip255(int v) { return std::clamp(v, 0, 255); }

/// Window sample as an 8-bit integer; validates the 1/256 grid.
int sample_at(const Frame& window, std::size_t x, std::size_t y) {
  const double scaled = window.at(x, y) * 256.0;
  const double rounded = std::round(scaled);
  if (std::abs(scaled - rounded) > 1e-9)
    throw std::invalid_argument(
        "interpolate_integer: sample not on the 8-bit grid");
  return static_cast<int>(rounded);
}

}  // namespace

const std::array<int, kTaps>& luma_filter_int(int phase) {
  if (phase < 0 || phase > 3)
    throw std::invalid_argument("luma_filter_int: phase must be in [0, 3]");
  return kIntCoeffs[static_cast<std::size_t>(phase)];
}

IntBlock interpolate_integer(const McJob& job) {
  const auto& ch = luma_filter_int(job.frac_x);
  const auto& cv = luma_filter_int(job.frac_y);
  const bool frac_h = job.frac_x != 0;
  const bool frac_v = job.frac_y != 0;

  // Horizontal pass at full precision (values scaled by 64 when the
  // horizontal filter is fractional; by 1 for the copy phase — the
  // standard folds the copy into a shift, handled uniformly here by
  // always accumulating the 64-weighted sum).
  std::array<std::array<long long, kWindow>, kBlockSize> tmp{};
  for (std::size_t y = 0; y < kWindow; ++y)
    for (std::size_t x = 0; x < kBlockSize; ++x) {
      long long acc = 0;
      for (std::size_t t = 0; t < kTaps; ++t)
        acc += static_cast<long long>(ch[t]) * sample_at(job.window, x + t, y);
      tmp[x][y] = acc;  // Scaled by 64.
    }

  IntBlock out;
  for (std::size_t y = 0; y < kBlockSize; ++y)
    for (std::size_t x = 0; x < kBlockSize; ++x) {
      long long acc = 0;
      for (std::size_t t = 0; t < kTaps; ++t)
        acc += static_cast<long long>(cv[t]) * tmp[x][y + t];
      // acc is scaled by 64·64 = 4096.
      int value;
      if (frac_h && frac_v) {
        value = static_cast<int>((acc + (1LL << 11)) >> 12);
      } else if (frac_h || frac_v) {
        // One stage was a pure copy (scale 64): total scale 4096 still,
        // but the standard's single-stage path rounds at >> 6 on the
        // 64-scaled sum; dividing our 4096-scaled sum by 64 first is
        // exact because the copy stage contributes a factor of exactly 64.
        value = static_cast<int>((acc / 64 + 32) >> 6);
      } else {
        value = static_cast<int>(acc >> 12);  // Pure copy: exact.
      }
      out.samples[x][y] = clip255(value);
    }
  return out;
}

}  // namespace ace::video
