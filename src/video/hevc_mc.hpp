// HEVC 2-D luma motion compensation (Table I row 4, Nv = 23).
//
// Implements the HEVC (H.265) 8-tap luma fractional interpolation on 8×8
// blocks: a horizontal 8-tap FIR over a (8+7)×(8+7) source window followed
// by a vertical 8-tap FIR, per the standard's quarter-sample filters. The
// reference path runs in normalized double precision (coefficients /64);
// the quantized path inserts 23 word-length-controlled quantizers:
//
//   site 0      input pixel read
//   sites 1-8   horizontal tap products
//   site 9      horizontal accumulator
//   site 10     intermediate (post-horizontal) row storage
//   sites 11-18 vertical tap products
//   site 19     vertical accumulator
//   site 20     vertical filter output
//   site 21     clipped output
//   site 22     final output storage
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "video/frame.hpp"

namespace ace::video {

inline constexpr std::size_t kBlockSize = 8;
inline constexpr std::size_t kTaps = 8;
/// Source window needed for an 8×8 block with 8-tap filters.
inline constexpr std::size_t kWindow = kBlockSize + kTaps - 1;
inline constexpr std::size_t kMcSites = 23;

/// HEVC luma filter for fractional phase 0..3 (0 = copy, 2 = half-sample),
/// normalized so the coefficients sum to 1.
const std::array<double, kTaps>& luma_filter(int phase);

/// One motion-compensation job: a 15×15 source window plus the fractional
/// motion-vector phases (0..3 each).
struct McJob {
  Frame window{kWindow, kWindow};
  int frac_x = 0;
  int frac_y = 0;
};

/// Deterministic synthetic job set with mixed fractional phases.
std::vector<McJob> synthetic_jobs(util::Rng& rng, std::size_t count);

/// Reference (double precision) interpolation of the 8×8 block.
Frame interpolate_reference(const McJob& job);

/// Fixed-point MC emulation with the 23 sites described above.
class QuantizedMotionCompensation {
 public:
  static constexpr std::size_t kVariables = kMcSites;

  /// Calibrates per-site integer bits over the given jobs.
  /// Throws std::invalid_argument on an empty calibration set.
  explicit QuantizedMotionCompensation(const std::vector<McJob>& calibration,
                                       int margin_bits = 1);

  /// Interpolate with word lengths w (size 23, each in [2, 52]).
  Frame interpolate(const McJob& job, const std::vector<int>& w) const;

  const std::vector<int>& site_integer_bits() const { return site_iwl_; }

 private:
  std::vector<int> site_iwl_;
};

}  // namespace ace::video
