#include "video/hevc_mc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fixedpoint/quantizer.hpp"
#include "fixedpoint/range_tracker.hpp"

namespace ace::video {

namespace {

// HEVC (H.265) 8-tap luma interpolation coefficients, Table 8-11 of the
// standard; rows are fractional phases 0..3, integer coefficients sum to 64.
constexpr std::array<std::array<int, kTaps>, 4> kLumaCoeffs = {{
    {0, 0, 0, 64, 0, 0, 0, 0},
    {-1, 4, -10, 58, 17, -5, 1, 0},
    {-1, 4, -11, 40, 40, -11, 4, -1},
    {0, 1, -5, 17, 58, -10, 4, -1},
}};

std::array<double, kTaps> normalized(const std::array<int, kTaps>& c) {
  std::array<double, kTaps> out{};
  for (std::size_t i = 0; i < kTaps; ++i)
    out[i] = static_cast<double>(c[i]) / 64.0;
  return out;
}

/// Shared dataflow: `observe(site, value)` is called at every quantization
/// site and must return the value to keep (identity for the reference,
/// a quantizer for the fixed-point path, a range recorder for calibration).
template <typename Observe>
Frame run_mc(const McJob& job, Observe&& observe) {
  const auto& ch = luma_filter(job.frac_x);
  const auto& cv = luma_filter(job.frac_y);

  // Horizontal pass: kWindow rows of kBlockSize intermediate samples.
  Frame interm(kBlockSize, kWindow);
  for (std::size_t y = 0; y < kWindow; ++y) {
    for (std::size_t x = 0; x < kBlockSize; ++x) {
      double acc = 0.0;
      for (std::size_t t = 0; t < kTaps; ++t) {
        const double pixel = observe(0, job.window.at(x + t, y));
        const double product = observe(1 + t, ch[t] * pixel);
        // Accumulator-entry quantization: addends on the site-9 grid keep
        // every partial sum on the grid (no per-addition re-rounding).
        acc += observe(9, product);
      }
      interm.at(x, y) = observe(10, acc);
    }
  }

  // Vertical pass over the intermediate rows.
  Frame out(kBlockSize, kBlockSize);
  for (std::size_t y = 0; y < kBlockSize; ++y) {
    for (std::size_t x = 0; x < kBlockSize; ++x) {
      double acc = 0.0;
      for (std::size_t t = 0; t < kTaps; ++t) {
        const double product = observe(11 + t, cv[t] * interm.at(x, y + t));
        acc += observe(19, product);
      }
      const double filtered = observe(20, acc);
      const double clipped =
          observe(21, std::clamp(filtered, 0.0, 255.0 / 256.0));
      out.at(x, y) = observe(22, clipped);
    }
  }
  return out;
}

}  // namespace

const std::array<double, kTaps>& luma_filter(int phase) {
  if (phase < 0 || phase > 3)
    throw std::invalid_argument("luma_filter: phase must be in [0, 3]");
  static const std::array<std::array<double, kTaps>, 4> filters = {
      normalized(kLumaCoeffs[0]), normalized(kLumaCoeffs[1]),
      normalized(kLumaCoeffs[2]), normalized(kLumaCoeffs[3])};
  return filters[static_cast<std::size_t>(phase)];
}

std::vector<McJob> synthetic_jobs(util::Rng& rng, std::size_t count) {
  if (count == 0)
    throw std::invalid_argument("synthetic_jobs: count must be positive");
  std::vector<McJob> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    McJob job;
    job.window = synthetic_patch(rng, kWindow, kWindow);
    // Bias toward non-integer phases — those exercise the filters; keep a
    // few integer phases so the copy path is covered too.
    job.frac_x = rng.uniform_int(0, 3);
    job.frac_y = rng.uniform_int(0, 3);
    if (job.frac_x == 0 && job.frac_y == 0) job.frac_y = 2;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

Frame interpolate_reference(const McJob& job) {
  return run_mc(job, [](std::size_t, double v) { return v; });
}

QuantizedMotionCompensation::QuantizedMotionCompensation(
    const std::vector<McJob>& calibration, int margin_bits) {
  if (calibration.empty())
    throw std::invalid_argument(
        "QuantizedMotionCompensation: empty calibration set");
  fixedpoint::RangeTracker tracker(kMcSites);
  for (const auto& job : calibration)
    run_mc(job, [&](std::size_t site, double v) {
      return tracker.observe(site, v);
    });
  site_iwl_ = tracker.all_integer_bits(margin_bits);
}

Frame QuantizedMotionCompensation::interpolate(const McJob& job,
                                               const std::vector<int>& w) const {
  if (w.size() != kVariables)
    throw std::invalid_argument(
        "QuantizedMotionCompensation: wrong word-length count");
  for (int wl : w)
    if (wl < 2 || wl > 52)
      throw std::invalid_argument(
          "QuantizedMotionCompensation: word length out of [2, 52]");

  std::vector<fixedpoint::Quantizer> q;
  q.reserve(kMcSites);
  for (std::size_t s = 0; s < kMcSites; ++s)
    q.emplace_back(fixedpoint::Format::with_clamped_integer_bits(w[s], site_iwl_[s]));

  return run_mc(job,
                [&](std::size_t site, double v) { return q[site](v); });
}

}  // namespace ace::video
