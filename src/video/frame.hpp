// Luma sample patches for the HEVC motion-compensation benchmark.
// Samples are normalized doubles in [0, 1) (8-bit video mapped to x/256).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace ace::video {

/// A small 2-D luma patch with checked access.
class Frame {
 public:
  Frame(std::size_t width, std::size_t height, double fill = 0.0);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }

  /// Checked sample access; throws std::out_of_range.
  double& at(std::size_t x, std::size_t y);
  double at(std::size_t x, std::size_t y) const;

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<double> data_;
};

/// Synthetic video-like content: smooth gradient + directional texture +
/// mild noise, quantized to the 8-bit grid (x/256) like decoded video.
Frame synthetic_patch(util::Rng& rng, std::size_t width, std::size_t height);

}  // namespace ace::video
