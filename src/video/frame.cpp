#include "video/frame.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ace::video {

Frame::Frame(std::size_t width, std::size_t height, double fill)
    : width_(width), height_(height), data_(width * height, fill) {
  if (width == 0 || height == 0)
    throw std::invalid_argument("Frame: dimensions must be positive");
}

double& Frame::at(std::size_t x, std::size_t y) {
  if (x >= width_ || y >= height_)
    throw std::out_of_range("Frame::at: out of range");
  return data_[y * width_ + x];
}

double Frame::at(std::size_t x, std::size_t y) const {
  if (x >= width_ || y >= height_)
    throw std::out_of_range("Frame::at: out of range");
  return data_[y * width_ + x];
}

Frame synthetic_patch(util::Rng& rng, std::size_t width, std::size_t height) {
  Frame f(width, height);
  const double gx = rng.uniform(-0.3, 0.3);
  const double gy = rng.uniform(-0.3, 0.3);
  const double base = rng.uniform(0.2, 0.7);
  const double tex_freq = rng.uniform(0.05, 0.45);
  const double tex_angle = rng.uniform(0.0, std::numbers::pi);
  const double tex_amp = rng.uniform(0.02, 0.15);
  const double ca = std::cos(tex_angle);
  const double sa = std::sin(tex_angle);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const double fx = static_cast<double>(x) / static_cast<double>(width);
      const double fy = static_cast<double>(y) / static_cast<double>(height);
      double v = base + gx * fx + gy * fy;
      v += tex_amp * std::sin(2.0 * std::numbers::pi * tex_freq *
                              (ca * static_cast<double>(x) +
                               sa * static_cast<double>(y)));
      v += rng.uniform(-0.01, 0.01);
      v = std::clamp(v, 0.0, 255.0 / 256.0);
      // Decoded video is 8-bit: snap to the x/256 grid.
      f.at(x, y) = std::floor(v * 256.0) / 256.0;
    }
  }
  return f;
}

}  // namespace ace::video
