// Umbrella header: the full public API of the ace-kriging library.
//
// Most users only need core/engine.hpp (the facade) plus dse/config.hpp;
// this header exists for exploratory use and for binding generators.
#pragma once

// Utilities.
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

// Linear algebra.
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/solve.hpp"
#include "linalg/vector.hpp"

// Fixed-point arithmetic.
#include "fixedpoint/format.hpp"
#include "fixedpoint/noise_model.hpp"
#include "fixedpoint/quantizer.hpp"
#include "fixedpoint/range_tracker.hpp"

// Quality / accuracy metrics.
#include "metrics/classification.hpp"
#include "metrics/error_metrics.hpp"
#include "metrics/noise_power.hpp"

// Kriging.
#include "kriging/empirical_variogram.hpp"
#include "kriging/fit.hpp"
#include "kriging/ordinary_kriging.hpp"
#include "kriging/simple_kriging.hpp"
#include "kriging/universal_kriging.hpp"
#include "kriging/variogram_model.hpp"

// Approximate arithmetic operators.
#include "approx/adders.hpp"
#include "approx/characterize.hpp"
#include "approx/multipliers.hpp"

// Application substrates.
#include "nn/dataset.hpp"
#include "nn/injection.hpp"
#include "nn/layers.hpp"
#include "nn/squeezenet.hpp"
#include "nn/tensor.hpp"
#include "signal/biquad.hpp"
#include "signal/dct.hpp"
#include "signal/fft.hpp"
#include "signal/fir.hpp"
#include "signal/generator.hpp"
#include "signal/iir.hpp"
#include "signal/noise_analysis.hpp"
#include "video/frame.hpp"
#include "video/hevc_mc.hpp"
#include "video/hevc_mc_int.hpp"

// Design-space exploration.
#include "dse/adaptive_simulation.hpp"
#include "dse/annealing.hpp"
#include "dse/config.hpp"
#include "dse/cost.hpp"
#include "dse/doe.hpp"
#include "dse/interp1d.hpp"
#include "dse/kriging_policy.hpp"
#include "dse/min_plus_one.hpp"
#include "dse/scheduler.hpp"
#include "dse/sim_store.hpp"
#include "dse/steepest_descent.hpp"
#include "dse/trajectory.hpp"
#include "dse/trajectory_io.hpp"

// High-level facade and benchmarks.
#include "core/benchmarks.hpp"
#include "core/engine.hpp"
#include "core/table1.hpp"
