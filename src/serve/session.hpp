// Concurrent multi-session DSE evaluation service.
//
// The paper's evaluator runs one optimizer over one store per process;
// this layer owns N independent sessions — each bundling a KrigingPolicy
// (store + variogram state) and a resumable optimizer cursor — and
// multiplexes their evaluation requests onto shared simulation backends
// (util::ThreadPool or any dse::BatchSimulator, including
// dist::Coordinator).
//
// Determinism contract: requests for one session execute FIFO and one at
// a time, each stepping the session's cursor through the same
// min_plus_one_step / steepest_descent_step functions a standalone run
// uses. A session's decision sequence is therefore a pure function of its
// own (store state, cursor) and is bit-identical to running that session
// alone, no matter how many sessions interleave on the service threads —
// the same argument that makes evaluate_batch backend-independent.
//
// Session state vs policy state: the *session* is the durable object (its
// spec, cursor and ticket queue live for the manager's lifetime); the
// *policy* — store, variogram bins, fitted model, factor cache — is a
// resident that can be parked at any quiescent point. Parking serializes
// the policy snapshot and cursor through the dse/checkpoint text format
// (in memory, no file), so a parked session is exactly a checkpoint the
// on-disk tooling could read, and resuming replays it bit-identically.
// An LRU cap on resident policies bounds memory: thousands of sessions
// fit in a process with only `resident_capacity` stores live.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dse/batch_sim.hpp"
#include "dse/checkpoint.hpp"
#include "dse/kriging_policy.hpp"
#include "dse/min_plus_one.hpp"
#include "dse/steepest_descent.hpp"
#include "util/mutex.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_annotations.hpp"

namespace ace::util {
class ThreadPool;
}

namespace ace::serve {

using SessionId = std::uint64_t;
using Ticket = std::uint64_t;

/// Which resumable optimizer drives a session.
enum class OptimizerKind { kMinPlusOne, kSteepestDescent };

/// Everything needed to (re)build a session's resident state from
/// scratch. The simulator is part of the spec — it is the one piece the
/// checkpoint format cannot carry.
///
/// The acquisition gate is part of `policy` (PolicyOptions::gate and its
/// thresholds), so each session picks its own simulate-vs-interpolate
/// rule. Gate calibration state is NOT serialized when a session parks:
/// restore replays the recorded refits, which re-run the LOO calibration
/// pass, so a resumed session's gate is bit-identical to one that never
/// parked.
struct SessionSpec {
  std::string name;
  dse::PolicyOptions policy;
  OptimizerKind optimizer = OptimizerKind::kMinPlusOne;
  dse::MinPlusOneOptions min_plus;
  dse::SensitivityOptions sensitivity;
  dse::SimulatorFn simulate;
};

struct SessionManagerOptions {
  std::size_t service_threads = 2;
  /// Max queued (submitted, not yet started) requests across all
  /// sessions; submit() blocks when full — the backpressure seam.
  std::size_t queue_capacity = 64;
  /// Max sessions with a live KrigingPolicy. Should be >= service_threads
  /// (in-service sessions are never parked, so the cache can transiently
  /// exceed the cap while they run).
  std::size_t resident_capacity = 8;
  /// Shared simulation pool for the default in-process backend (inline
  /// when null).
  util::ThreadPool* pool = nullptr;
  /// Optional shared backend (e.g. dist::Coordinator). When set it
  /// overrides `pool`; calls are serialized across sessions because a
  /// BatchSimulator is not required to accept concurrent simulate_many.
  dse::BatchSimulator* backend = nullptr;
};

/// Point-in-time view of one session.
struct SessionProgress {
  bool exists = false;
  bool finished = false;
  bool resident = false;             ///< Policy live (not parked).
  std::size_t steps = 0;             ///< Optimizer steps executed so far.
  std::vector<std::size_t> decisions;
  dse::PolicyStats stats;
};

/// Service-level counters.
struct ServeStats {
  std::size_t sessions_created = 0;
  std::size_t requests = 0;
  std::size_t steps = 0;
  std::size_t parks = 0;
  std::size_t resumes = 0;
  std::size_t backpressure_waits = 0;  ///< submit() calls that blocked.
};

class SessionManager {
 public:
  explicit SessionManager(SessionManagerOptions options = {});

  /// Joins the service threads. Queued requests that have not started are
  /// abandoned — call drain() first if they matter.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Register a session. Cheap: the policy is built lazily on the first
  /// request. Throws std::invalid_argument on a null simulator or nv == 0.
  SessionId create(SessionSpec spec) ACE_EXCLUDES(mutex_);

  /// Queue `steps` optimizer steps for the session (0 = just make it
  /// resident). Blocks while the request queue is at capacity. Requests
  /// for one session run FIFO, one at a time. Throws std::out_of_range on
  /// an unknown id.
  Ticket submit(SessionId id, std::size_t steps) ACE_EXCLUDES(mutex_);

  /// Block until the request behind `ticket` has completed (returns
  /// immediately for unknown/already-completed tickets).
  void wait(Ticket ticket) ACE_EXCLUDES(mutex_);

  /// Block until every queued request has completed.
  void drain() ACE_EXCLUDES(mutex_);

  /// Serialize the session's policy + cursor into the in-memory
  /// checkpoint and release the resident state. Waits for the session to
  /// go idle first. No-op if already parked.
  void park(SessionId id) ACE_EXCLUDES(mutex_);

  SessionProgress progress(SessionId id) const ACE_EXCLUDES(mutex_);

  /// Package the session's cursor as an optimizer result (valid mid-run:
  /// reflects progress so far). Throws std::out_of_range on unknown id,
  /// std::logic_error when the session runs the other optimizer.
  dse::MinPlusOneResult min_plus_one_result(SessionId id) const
      ACE_EXCLUDES(mutex_);
  dse::SensitivityResult sensitivity_result(SessionId id) const
      ACE_EXCLUDES(mutex_);

  std::size_t session_count() const ACE_EXCLUDES(mutex_);
  std::size_t resident_count() const ACE_EXCLUDES(mutex_);
  ServeStats stats() const ACE_EXCLUDES(mutex_);

  /// Per-request submit-to-completion latencies (milliseconds, steady
  /// clock), in completion order — the bench's p50/p99 source.
  std::vector<double> request_latencies_ms() const ACE_EXCLUDES(mutex_);

 private:
  struct Request {
    Ticket ticket = 0;
    std::size_t steps = 0;
    double submitted_ms = 0.0;
  };

  struct Session {
    SessionId id = 0;
    SessionSpec spec;
    dse::MinPlusOneCursor min_cursor;
    dse::SensitivityCursor sens_cursor;
    /// Live policy; null when parked (or never started).
    std::unique_ptr<dse::KrigingPolicy> policy;
    /// Serialized checkpoint of a parked session ("" = fresh start).
    std::string parked;
    std::deque<Request> pending;
    bool in_service = false;  ///< A service thread is stepping it.
    bool queued = false;      ///< Present in ready_.
    /// Policy detached by a service thread that is serializing the
    /// checkpoint off-lock; `parked` is not yet valid. Nobody may resume
    /// the session until the serializer commits and clears this.
    bool parking = false;
    std::size_t last_touch = 0;
    dse::PolicyStats last_stats;  ///< Stats at last service completion.
    std::size_t executed_steps = 0;
  };

  /// A policy detached from its session for off-lock serialization: the
  /// snapshot is taken under the manager lock (cheap — copies of columnar
  /// store state), the checkpoint text is rendered outside it.
  struct ParkJob {
    SessionId id = 0;
    dse::Checkpoint checkpoint;
  };

  void service_loop();
  Session& session_locked(SessionId id) const ACE_REQUIRES(mutex_);
  /// Snapshot the policy + cursors and release the resident slot; the
  /// session is left `parking` until commit_park_locked. Caller serializes
  /// the returned checkpoint OUTSIDE the lock.
  ParkJob detach_park_locked(Session& s) ACE_REQUIRES(mutex_);
  /// Store the rendered checkpoint text and clear `parking`.
  void commit_park_locked(Session& s, std::string text) ACE_REQUIRES(mutex_);
  /// LRU-detach idle residents until the resident cap holds (sessions in
  /// service or with queued work are never victims). Returned jobs are
  /// serialized by the caller off-lock and committed afterwards.
  std::vector<ParkJob> collect_victims_locked(const Session* keep)
      ACE_REQUIRES(mutex_);

  SessionManagerOptions options_;
  std::unique_ptr<dse::SerializingBatchSimulator> shared_backend_;
  util::Stopwatch watch_;

  /// Outermost rank in the lock hierarchy — everything the service
  /// reaches (policy, store, backend, transports) ranks above it. Nothing
  /// blocking runs under it: checkpoint parse/serialize and restore
  /// replay happen off-lock in service_loop/park (two-phase via
  /// Session::parking), simulations off-lock via the in_service flag.
  mutable util::Mutex mutex_{util::lock_order::Rank::kSessionManager,
                             "serve.manager"};
  std::condition_variable ready_cv_;  ///< Work available / stopping.
  std::condition_variable space_cv_;  ///< Queue capacity freed.
  std::condition_variable done_cv_;   ///< A request completed.

  std::unordered_map<SessionId, std::unique_ptr<Session>> sessions_
      ACE_GUARDED_BY(mutex_);
  std::deque<SessionId> ready_ ACE_GUARDED_BY(mutex_);
  std::unordered_set<Ticket> outstanding_ ACE_GUARDED_BY(mutex_);
  std::size_t pending_total_ ACE_GUARDED_BY(mutex_) = 0;
  std::size_t in_service_count_ ACE_GUARDED_BY(mutex_) = 0;
  std::size_t resident_ ACE_GUARDED_BY(mutex_) = 0;
  std::size_t clock_ ACE_GUARDED_BY(mutex_) = 0;
  SessionId next_id_ ACE_GUARDED_BY(mutex_) = 0;
  Ticket next_ticket_ ACE_GUARDED_BY(mutex_) = 0;
  bool stopping_ ACE_GUARDED_BY(mutex_) = false;
  ServeStats stats_ ACE_GUARDED_BY(mutex_);
  std::vector<double> latencies_ms_ ACE_GUARDED_BY(mutex_);

  std::vector<std::thread> threads_;
};

}  // namespace ace::serve
