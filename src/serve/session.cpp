#include "serve/session.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "dse/checkpoint.hpp"
#include "dse/scheduler.hpp"

namespace ace::serve {

namespace {

const char* optimizer_tag(OptimizerKind kind) {
  return kind == OptimizerKind::kMinPlusOne ? "min_plus_one"
                                            : "steepest_descent";
}

}  // namespace

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(options) {
  if (options_.service_threads == 0) options_.service_threads = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.resident_capacity == 0) options_.resident_capacity = 1;
  if (options_.backend != nullptr)
    shared_backend_ =
        std::make_unique<dse::SerializingBatchSimulator>(*options_.backend);
  threads_.reserve(options_.service_threads);
  for (std::size_t i = 0; i < options_.service_threads; ++i)
    threads_.emplace_back([this] { service_loop(); });
}

SessionManager::~SessionManager() {
  {
    const util::LockGuard lock(mutex_);
    stopping_ = true;
  }
  ready_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

SessionId SessionManager::create(SessionSpec spec) {
  if (!spec.simulate)
    throw std::invalid_argument("SessionManager: spec.simulate is null");
  const std::size_t nv = spec.optimizer == OptimizerKind::kMinPlusOne
                             ? spec.min_plus.nv
                             : spec.sensitivity.nv;
  if (nv == 0) throw std::invalid_argument("SessionManager: nv == 0");

  const util::LockGuard lock(mutex_);
  const SessionId id = ++next_id_;
  auto session = std::make_unique<Session>();
  session->id = id;
  session->spec = std::move(spec);
  // Cursor construction validates the optimizer options up front, so a
  // bad spec fails at create() rather than inside a service thread.
  if (session->spec.optimizer == OptimizerKind::kMinPlusOne)
    session->min_cursor = dse::make_min_plus_one_cursor(session->spec.min_plus);
  else
    session->sens_cursor =
        dse::make_sensitivity_cursor(session->spec.sensitivity);
  sessions_.emplace(id, std::move(session));
  ++stats_.sessions_created;
  return id;
}

SessionManager::Session& SessionManager::session_locked(SessionId id) const {
  const auto it = sessions_.find(id);
  if (it == sessions_.end())
    throw std::out_of_range("SessionManager: unknown session id");
  return *it->second;
}

Ticket SessionManager::submit(SessionId id, std::size_t steps) {
  util::UniqueLock lock(mutex_);
  Session& s = session_locked(id);
  bool waited = false;
  while (pending_total_ >= options_.queue_capacity && !stopping_) {
    waited = true;
    lock.wait(space_cv_);
  }
  if (stopping_)
    throw std::runtime_error("SessionManager: submit after shutdown");
  if (waited) ++stats_.backpressure_waits;

  Request request;
  request.ticket = ++next_ticket_;
  request.steps = steps;
  request.submitted_ms = watch_.milliseconds();
  s.pending.push_back(request);
  ++pending_total_;
  ++stats_.requests;
  outstanding_.insert(request.ticket);
  if (!s.in_service && !s.queued) {
    s.queued = true;
    ready_.push_back(s.id);
    ready_cv_.notify_one();
  }
  return request.ticket;
}

void SessionManager::wait(Ticket ticket) {
  util::UniqueLock lock(mutex_);
  while (outstanding_.count(ticket) != 0) lock.wait(done_cv_);
}

void SessionManager::drain() {
  util::UniqueLock lock(mutex_);
  while (pending_total_ > 0 || in_service_count_ > 0) lock.wait(done_cv_);
}

void SessionManager::park(SessionId id) {
  util::UniqueLock lock(mutex_);
  Session& s = session_locked(id);
  while (s.in_service || !s.pending.empty() || s.parking) lock.wait(done_cv_);
  if (!s.policy) return;
  // Two phases: snapshot + detach under the lock (cheap copies), render
  // the checkpoint text outside it. `parking` keeps resumers away until
  // the commit makes `parked` valid.
  ParkJob job = detach_park_locked(s);
  lock.unlock();
  std::string text = dse::serialize_checkpoint(job.checkpoint);
  lock.lock();
  // `s` stays valid across the gap: sessions are never destroyed before
  // the manager, and `parking` pins its residency state.
  commit_park_locked(s, std::move(text));
}

SessionManager::ParkJob SessionManager::detach_park_locked(Session& s) {
  ParkJob job;
  job.id = s.id;
  // snapshot() without record_checkpoint(): parking is a residency
  // decision, not a durability event, so the policy's statistics stay
  // bit-identical to a standalone run that never parked.
  job.checkpoint.policy = s.policy->snapshot();
  job.checkpoint.optimizer = optimizer_tag(s.spec.optimizer);
  job.checkpoint.min_plus = s.min_cursor;
  job.checkpoint.sensitivity = s.sens_cursor;
  s.policy.reset();
  --resident_;
  s.parking = true;
  return job;
}

void SessionManager::commit_park_locked(Session& s, std::string text) {
  s.parked = std::move(text);
  s.parking = false;
  ++stats_.parks;
  done_cv_.notify_all();
}

std::vector<SessionManager::ParkJob> SessionManager::collect_victims_locked(
    const Session* keep) {
  std::vector<ParkJob> jobs;
  while (resident_ > options_.resident_capacity) {
    Session* victim = nullptr;
    for (auto& [id, session] : sessions_) {
      Session& s = *session;
      if (!s.policy || s.in_service || s.queued || !s.pending.empty())
        continue;
      if (&s == keep) continue;
      if (victim == nullptr || s.last_touch < victim->last_touch) victim = &s;
    }
    if (victim == nullptr) break;  // Everything live is busy: defer.
    jobs.push_back(detach_park_locked(*victim));
  }
  return jobs;
}

void SessionManager::service_loop() {
  util::UniqueLock lock(mutex_);
  for (;;) {
    while (!stopping_ && ready_.empty()) lock.wait(ready_cv_);
    if (stopping_) return;
    const SessionId id = ready_.front();
    ready_.pop_front();
    Session& s = *sessions_.at(id);
    s.queued = false;
    s.in_service = true;
    ++in_service_count_;
    const Request request = s.pending.front();
    s.pending.pop_front();
    --pending_total_;
    space_cv_.notify_all();

    // A parker may hold this session's detached snapshot while rendering
    // its checkpoint off-lock; resuming before the commit would lose it.
    while (s.parking) lock.wait(done_cv_);

    // Build or resume the policy, and make room by parking idle LRU
    // victims. The blocking work — checkpoint parse, restore replay,
    // victim serialization — runs OUTSIDE the manager lock: a slow resume
    // must not stall submits and steps for every other session. The
    // resident slot is reserved up front so concurrent residency
    // enforcement counts this session; in_service keeps every other
    // thread away from its cursors and policy slot, and spec is immutable
    // after create(), so the off-lock reads are race-free.
    const bool resume = s.policy == nullptr;
    std::vector<ParkJob> victims;
    if (resume) {
      ++resident_;
      std::string parked = std::move(s.parked);
      s.parked.clear();
      victims = collect_victims_locked(&s);
      s.last_touch = ++clock_;
      lock.unlock();

      std::vector<std::pair<SessionId, std::string>> rendered;
      rendered.reserve(victims.size());
      for (ParkJob& job : victims)
        rendered.emplace_back(job.id,
                              dse::serialize_checkpoint(job.checkpoint));
      auto policy = std::make_unique<dse::KrigingPolicy>(s.spec.policy);
      dse::Checkpoint checkpoint;
      const bool restored = !parked.empty();
      if (restored) {
        std::istringstream in(parked);
        checkpoint = dse::parse_checkpoint(in);
        // Replay is bit-exact: the rebuilt store, variogram and model are
        // exactly the snapshotted policy's (checkpoint.hpp contract).
        policy->restore(checkpoint.policy);
      }

      lock.lock();
      for (auto& [vid, text] : rendered)
        commit_park_locked(*sessions_.at(vid), std::move(text));
      s.policy = std::move(policy);
      if (restored) {
        s.min_cursor = checkpoint.min_plus;
        s.sens_cursor = checkpoint.sensitivity;
        ++stats_.resumes;
      }
    } else {
      victims = collect_victims_locked(&s);
      s.last_touch = ++clock_;
      if (!victims.empty()) {
        lock.unlock();
        std::vector<std::pair<SessionId, std::string>> rendered;
        rendered.reserve(victims.size());
        for (ParkJob& job : victims)
          rendered.emplace_back(job.id,
                                dse::serialize_checkpoint(job.checkpoint));
        lock.lock();
        for (auto& [vid, text] : rendered)
          commit_park_locked(*sessions_.at(vid), std::move(text));
      }
    }

    // The cursor is stepped on a local copy outside the lock; the session
    // is flagged in_service, so no other thread touches its state (parking
    // skips in-service sessions, a second service thread cannot pop it —
    // it is not in ready_ while in_service).
    dse::KrigingPolicy& policy = *s.policy;
    const SessionSpec& spec = s.spec;
    dse::MinPlusOneCursor min_cursor = s.min_cursor;
    dse::SensitivityCursor sens_cursor = s.sens_cursor;
    lock.unlock();

    const dse::BatchEvaluateFn evaluate =
        shared_backend_
            ? dse::policy_batch_evaluator(policy, *shared_backend_)
            : dse::policy_batch_evaluator(policy, spec.simulate,
                                          options_.pool);
    std::size_t executed = 0;
    for (std::size_t i = 0; i < request.steps; ++i) {
      bool more = false;
      if (spec.optimizer == OptimizerKind::kMinPlusOne)
        more = dse::min_plus_one_step(evaluate, spec.min_plus, min_cursor);
      else
        more = dse::steepest_descent_step(evaluate, spec.sensitivity,
                                          sens_cursor);
      ++executed;
      if (!more) break;
    }
    const dse::PolicyStats policy_stats = policy.stats();

    lock.lock();
    s.min_cursor = std::move(min_cursor);
    s.sens_cursor = std::move(sens_cursor);
    s.last_stats = policy_stats;
    s.executed_steps += executed;
    stats_.steps += executed;
    s.in_service = false;
    --in_service_count_;
    s.last_touch = ++clock_;
    latencies_ms_.push_back(watch_.milliseconds() - request.submitted_ms);
    outstanding_.erase(request.ticket);
    if (!s.pending.empty() && !s.queued) {
      s.queued = true;
      ready_.push_back(s.id);
      ready_cv_.notify_one();
    }
    done_cv_.notify_all();
  }
}

SessionProgress SessionManager::progress(SessionId id) const {
  const util::LockGuard lock(mutex_);
  SessionProgress out;
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return out;
  const Session& s = *it->second;
  out.exists = true;
  out.resident = s.policy != nullptr;
  out.steps = s.executed_steps;
  if (s.spec.optimizer == OptimizerKind::kMinPlusOne) {
    out.finished = s.min_cursor.finished();
    out.decisions = s.min_cursor.decisions;
  } else {
    out.finished = s.sens_cursor.finished();
    out.decisions = s.sens_cursor.decisions;
  }
  // stats() is itself a snapshot accessor, so reading a live policy here
  // is race-free even while a service thread steps it.
  out.stats = s.policy ? s.policy->stats() : s.last_stats;
  return out;
}

dse::MinPlusOneResult SessionManager::min_plus_one_result(
    SessionId id) const {
  const util::LockGuard lock(mutex_);
  const Session& s = session_locked(id);
  if (s.spec.optimizer != OptimizerKind::kMinPlusOne)
    throw std::logic_error("SessionManager: session is not min+1");
  return dse::min_plus_one_result(s.min_cursor, s.spec.min_plus);
}

dse::SensitivityResult SessionManager::sensitivity_result(
    SessionId id) const {
  const util::LockGuard lock(mutex_);
  const Session& s = session_locked(id);
  if (s.spec.optimizer != OptimizerKind::kSteepestDescent)
    throw std::logic_error("SessionManager: session is not steepest-descent");
  return dse::sensitivity_result(s.sens_cursor);
}

std::size_t SessionManager::session_count() const {
  const util::LockGuard lock(mutex_);
  return sessions_.size();
}

std::size_t SessionManager::resident_count() const {
  const util::LockGuard lock(mutex_);
  return resident_;
}

ServeStats SessionManager::stats() const {
  const util::LockGuard lock(mutex_);
  return stats_;
}

std::vector<double> SessionManager::request_latencies_ms() const {
  const util::LockGuard lock(mutex_);
  return latencies_ms_;
}

}  // namespace ace::serve
