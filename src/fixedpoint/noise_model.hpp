// Analytical quantization-noise models — the "analytical approaches"
// family the paper contrasts with simulation-based evaluation (Sec. I-II).
//
// Classical linear noise theory treats each quantizer as an additive
// white source of power q²/12 (rounding) or q²/3 (truncation) injected at
// its dataflow node and propagated to the output through the node-to-
// output transfer function's energy gain. For LTI kernels the prediction
// is closed-form; the bench/baseline_analytical experiment measures how
// far it lands from bit-true simulation, motivating the paper's
// simulation-plus-kriging route for systems where no such model exists.
#pragma once

#include <cstddef>
#include <vector>

#include "fixedpoint/quantizer.hpp"

namespace ace::fixedpoint {

/// Noise power injected by a single quantization at the given format.
/// Convergent and round-half-up share the q²/12 model; truncation q²/3.
double source_noise_power(const Format& format, RoundingMode rounding);

/// One noise source in a dataflow: its format, rounding mode, how many
/// statistically independent injections occur per output sample, and the
/// energy gain from the injection node to the output.
struct NoiseSource {
  Format format;
  RoundingMode rounding = RoundingMode::kRoundConvergent;
  double injections_per_output = 1.0;
  double output_energy_gain = 1.0;  ///< Σ h², h = node→output impulse resp.
};

/// Total predicted output noise power: Σ sources (power · injections ·
/// gain), assuming independent white sources (the classical model).
double predict_output_noise(const std::vector<NoiseSource>& sources);

/// Closed-form FIR prediction for the paper's 2-variable FIR benchmark
/// (the IIR counterpart, which needs impulse-response energy gains, lives
/// in signal/noise_analysis.hpp):
///   w_mpy: per-tap product quantization (taps independent injections,
///          unity gain to the output),
///   w_add: accumulator-entry quantization (same count) plus the final
///          output store.
/// `taps` is the filter length; integer bits per site as calibrated.
double predict_fir_noise(int w_mpy, int iwl_mpy, int w_add, int iwl_add,
                         std::size_t taps);

}  // namespace ace::fixedpoint
