#include "fixedpoint/noise_model.hpp"

#include <stdexcept>

namespace ace::fixedpoint {

double source_noise_power(const Format& format, RoundingMode rounding) {
  switch (rounding) {
    case RoundingMode::kTruncate:
      return format.truncation_noise_power();
    case RoundingMode::kRoundNearest:
    case RoundingMode::kRoundConvergent:
      return format.rounding_noise_power();
  }
  throw std::logic_error("source_noise_power: unreachable");
}

double predict_output_noise(const std::vector<NoiseSource>& sources) {
  double total = 0.0;
  for (const auto& s : sources) {
    if (s.injections_per_output < 0.0 || s.output_energy_gain < 0.0)
      throw std::invalid_argument("predict_output_noise: negative factor");
    total += source_noise_power(s.format, s.rounding) *
             s.injections_per_output * s.output_energy_gain;
  }
  return total;
}

double predict_fir_noise(int w_mpy, int iwl_mpy, int w_add, int iwl_add,
                         std::size_t taps) {
  if (taps == 0)
    throw std::invalid_argument("predict_fir_noise: taps must be positive");
  const Format mpy = Format::with_clamped_integer_bits(w_mpy, iwl_mpy);
  const Format add = Format::with_clamped_integer_bits(w_add, iwl_add);
  const double n = static_cast<double>(taps);

  std::vector<NoiseSource> sources;
  // Product rounding: one injection per tap, unit gain to the output.
  // When the adder grid is coarser than the product grid, the cascaded
  // adder-entry quantizer dominates and the product source is absorbed;
  // modelling both as independent is the classical (slightly
  // conservative) assumption.
  sources.push_back({mpy, RoundingMode::kRoundConvergent, n, 1.0});
  // Adder-entry rounding: per tap, plus the final output store.
  sources.push_back({add, RoundingMode::kRoundConvergent, n + 1.0, 1.0});
  return predict_output_noise(sources);
}

}  // namespace ace::fixedpoint
