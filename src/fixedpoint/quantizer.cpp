#include "fixedpoint/quantizer.hpp"

#include <cmath>

namespace ace::fixedpoint {

Quantizer::Quantizer(Format format, RoundingMode rounding,
                     OverflowMode overflow)
    : format_(format),
      rounding_(rounding),
      overflow_(overflow),
      step_(format.step()),
      inv_step_(1.0 / format.step()),
      min_(format.min_value()),
      max_(format.max_value()),
      span_(max_ - min_ + format.step()) {}

double Quantizer::quantize(double x) const {
  double scaled = x * inv_step_;
  double grid;
  switch (rounding_) {
    case RoundingMode::kTruncate:
      grid = std::floor(scaled);
      break;
    case RoundingMode::kRoundNearest:
      grid = std::floor(scaled + 0.5);
      break;
    case RoundingMode::kRoundConvergent:
    default:
      // Half-to-even via nearbyint (FE_TONEAREST is the C++ default mode).
      grid = std::nearbyint(scaled);
      break;
  }
  double value = grid * step_;
  if (value >= min_ && value <= max_) return value;
  if (overflow_ == OverflowMode::kSaturate)
    return value < min_ ? min_ : max_;
  // Two's-complement wrap: shift into [min, min + span).
  const double offset = value - min_;
  const double wrapped = offset - span_ * std::floor(offset / span_);
  return min_ + wrapped;
}

}  // namespace ace::fixedpoint
