#include "fixedpoint/format.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ace::fixedpoint {

Format::Format(int word_length, int integer_bits)
    : w_(word_length), iwl_(integer_bits) {
  if (w_ < 2 || w_ > 52)
    throw std::invalid_argument("Format: word_length must be in [2, 52]");
  if (iwl_ < 0 || iwl_ > w_ - 1)
    throw std::invalid_argument(
        "Format: integer_bits must be in [0, word_length - 1]");
}

double Format::step() const { return std::ldexp(1.0, -fractional_bits()); }

double Format::min_value() const { return -std::ldexp(1.0, iwl_); }

double Format::max_value() const {
  return std::ldexp(1.0, iwl_) - step();
}

double Format::rounding_noise_power() const {
  const double q = step();
  return q * q / 12.0;
}

double Format::truncation_noise_power() const {
  const double q = step();
  return q * q / 3.0;
}

Format Format::with_clamped_integer_bits(int word_length, int integer_bits) {
  const int clamped =
      std::min(std::max(integer_bits, 0), word_length - 1);
  return Format(word_length, clamped);
}

std::string Format::to_string() const {
  std::ostringstream ss;
  ss << "<" << w_ << "," << iwl_ << ">";
  return ss.str();
}

}  // namespace ace::fixedpoint
