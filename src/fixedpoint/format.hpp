// Two's-complement fixed-point formats.
//
// A format is <w, iwl>: w total bits including sign, iwl integer bits
// (excluding sign), hence f = w - 1 - iwl fractional bits. The DSE varies w
// per dataflow node while iwl is fixed by the node's dynamic range, exactly
// as in classical word-length optimization flows.
#pragma once

#include <cstdint>
#include <string>

namespace ace::fixedpoint {

/// Signed two's-complement fixed-point format descriptor.
class Format {
 public:
  /// Construct <word_length, integer_bits>. Constraints:
  /// word_length in [2, 52] (so the grid is exact in a double's mantissa),
  /// integer_bits in [0, word_length - 1]. Throws std::invalid_argument.
  Format(int word_length, int integer_bits);

  /// Format whose integer bits are clamped to what word_length can hold:
  /// a word too narrow for a node's dynamic range keeps its sign and as
  /// many integer bits as fit (all fractional precision is lost and the
  /// value saturates) — exactly how an under-provisioned hardware register
  /// behaves. Used by the benchmark kernels so every lattice point of the
  /// DSE is simulable.
  static Format with_clamped_integer_bits(int word_length, int integer_bits);

  int word_length() const { return w_; }
  int integer_bits() const { return iwl_; }
  int fractional_bits() const { return w_ - 1 - iwl_; }

  /// Quantization step q = 2^-f.
  double step() const;

  /// Most negative representable value: -2^iwl.
  double min_value() const;

  /// Most positive representable value: 2^iwl - q.
  double max_value() const;

  /// Theoretical round-to-nearest quantization noise power q²/12 — the
  /// classical model the paper's equivalent-number-of-bits metric inverts.
  double rounding_noise_power() const;

  /// Theoretical truncation noise power q²/3 (uniform over [-q, 0)... the
  /// variance-plus-bias² second moment).
  double truncation_noise_power() const;

  bool operator==(const Format& rhs) const = default;

  std::string to_string() const;

 private:
  int w_;
  int iwl_;
};

}  // namespace ace::fixedpoint
