// Quantizers: map a real value onto a fixed-point grid with a selectable
// rounding mode and overflow policy. These emulate the finite-precision
// arithmetic the paper's word-length benchmarks simulate (its refs [12][13]
// are the Mentor AC datatypes and SystemC fixed-point types).
#pragma once

#include "fixedpoint/format.hpp"

namespace ace::fixedpoint {

/// How values are mapped onto the grid.
enum class RoundingMode {
  kTruncate,         ///< Floor toward -inf (cheapest hardware).
  kRoundNearest,     ///< Round half up (adds +q/2 bias under double rounding).
  kRoundConvergent,  ///< Round half to even (bias-free; SystemC SC_RND_CONV).
};

/// What happens outside the representable range.
enum class OverflowMode {
  kSaturate,  ///< Clamp to [min_value, max_value].
  kWrap,      ///< Two's-complement wrap-around.
};

/// A quantizer bound to a format + modes. Stateless and cheap to copy; the
/// hot path is quantize(), kept branch-light.
class Quantizer {
 public:
  /// Defaults to convergent rounding: cascaded quantizers (multiplier grid
  /// feeding a coarser adder grid) hit exact halfway ties systematically,
  /// and half-up rounding would turn those ties into a DC bias that
  /// dominates the output noise floor.
  explicit Quantizer(Format format,
                     RoundingMode rounding = RoundingMode::kRoundConvergent,
                     OverflowMode overflow = OverflowMode::kSaturate);

  /// Quantize one value onto the grid.
  double quantize(double x) const;

  /// Convenience call operator.
  double operator()(double x) const { return quantize(x); }

  const Format& format() const { return format_; }
  RoundingMode rounding() const { return rounding_; }
  OverflowMode overflow() const { return overflow_; }

 private:
  Format format_;
  RoundingMode rounding_;
  OverflowMode overflow_;
  double step_;
  double inv_step_;
  double min_;
  double max_;
  double span_;  // 2^(iwl+1): wrap period in value units.
};

}  // namespace ace::fixedpoint
