// Dynamic-range calibration for quantization sites.
//
// Word-length optimization fixes each node's integer bit count from its
// observed dynamic range (classical range-analysis step) and lets the DSE
// vary only the total word length. RangeTracker records the max magnitude
// seen at each named site during a reference (double) simulation and
// derives the integer bits needed to avoid overflow.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ace::fixedpoint {

/// Tracks per-site maximum magnitudes across a calibration run.
class RangeTracker {
 public:
  /// Create a tracker with `site_count` sites (indexed 0..site_count-1).
  explicit RangeTracker(std::size_t site_count);

  /// Record a value observed at a site. Returns the value unchanged so the
  /// call can be spliced into a dataflow expression.
  double observe(std::size_t site, double value);

  std::size_t site_count() const { return max_abs_.size(); }

  /// Max |value| observed at the site (0 if never observed).
  double max_abs(std::size_t site) const;

  /// Integer bits needed so that |max| < 2^iwl, with a safety margin of
  /// `margin_bits` and clamped to [0, 48].
  int integer_bits(std::size_t site, int margin_bits = 0) const;

  /// Integer bits for all sites at once.
  std::vector<int> all_integer_bits(int margin_bits = 0) const;

 private:
  std::vector<double> max_abs_;
};

}  // namespace ace::fixedpoint
