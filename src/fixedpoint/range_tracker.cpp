#include "fixedpoint/range_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ace::fixedpoint {

RangeTracker::RangeTracker(std::size_t site_count) : max_abs_(site_count, 0.0) {
  if (site_count == 0)
    throw std::invalid_argument("RangeTracker: need at least one site");
}

double RangeTracker::observe(std::size_t site, double value) {
  max_abs_.at(site) = std::max(max_abs_.at(site), std::abs(value));
  return value;
}

double RangeTracker::max_abs(std::size_t site) const {
  return max_abs_.at(site);
}

int RangeTracker::integer_bits(std::size_t site, int margin_bits) const {
  const double m = max_abs_.at(site);
  int iwl = 0;
  if (m > 0.0) iwl = static_cast<int>(std::ceil(std::log2(m + 1e-12)));
  iwl += margin_bits;
  return std::clamp(iwl, 0, 48);
}

std::vector<int> RangeTracker::all_integer_bits(int margin_bits) const {
  std::vector<int> out(max_abs_.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = integer_bits(i, margin_bits);
  return out;
}

}  // namespace ace::fixedpoint
