// The pluggable simulate-vs-interpolate decision layer.
//
// The paper (Algorithms 1-2) decides between simulation and kriging
// interpolation on neighbour count alone; ROADMAP item 3 asks for the
// richer signals kriging gives for free — predicted variance, rolling
// leave-one-out error, and distance-to-decision-threshold (Vazquez &
// Bect's sequential-design criterion). AcquisitionGate is the seam those
// policies plug into: KrigingPolicy consults the gate twice per
// evaluation,
//
//   1. attempt(): is the neighbourhood rich enough to try kriging at all
//      (the paper's `count > nn_min` test lives here), and
//   2. accept(): given the solved interpolation (estimate, kriging
//      variance, field sill), stand by it or fall back to simulation —
//      vetoes bump the gate's own PolicyStats counter;
//
// plus a refit-time calibrate() hook fed by the fast factorization-backed
// LOO-CV pass (kriging::KrigingSystem::loo_residuals) for gates that
// track model error online. Gates are selected per policy through
// PolicyOptions::gate; the default NeighbourCountGate reproduces the
// paper's decisions bit-for-bit, which the decision-identity benches
// (bench/decision_divergence et al.) keep enforcing.
//
// Thread-safety: a gate belongs to exactly one KrigingPolicy and is only
// reached under that policy's mutex; calibrate() mutates gate state under
// the same lock.
#pragma once

#include <cstddef>
#include <memory>

namespace ace::dse {

struct PolicyOptions;
struct PolicyStats;

/// Which acquisition gate a policy runs (PolicyOptions::gate).
enum class GateKind {
  kNeighbourCount,    ///< Paper default: interpolate when count > nn_min.
  kVariance,          ///< nn_min plus a kriging-variance ceiling.
  kLooCalibrated,     ///< Variance scaled by rolling LOO error vs ceiling.
  kSequentialDesign,  ///< Simulate only where uncertainty threatens λ_min.
};

/// Stable lowercase identifier ("neighbour-count", ...), used by benches
/// and JSON artifacts.
const char* gate_name(GateKind kind);

/// What attempt() sees: the neighbourhood, before any solve is paid for.
struct GateQuery {
  std::size_t neighbors = 0;  ///< Stored points within the search radius.
};

/// What accept() sees: one solved interpolation.
struct GateSolution {
  double estimate = 0.0;  ///< Full-field estimate (trend added back).
  double variance = 0.0;  ///< Kriging variance of the solved system.
  double sill = 0.0;      ///< Sample variance of the kriged field (0 if
                          ///< unknown); the natural variance scale.
};

/// Digest of one refit-time LOO-CV pass over the (windowed) store.
struct LooSummary {
  std::size_t count = 0;          ///< Residuals in the pass.
  double mean_abs_residual = 0.0; ///< mean |z_i − ẑ₍ᵢ₎|.
  /// mean(e²/σ²₍ᵢ₎) over points with positive LOO variance (0 when none):
  /// ~1 when the kriging variance is an honest error bar, >1 when the
  /// model is overconfident. This is the calibration factor adaptive
  /// gates multiply into the predicted variance.
  double mean_sq_standardized = 0.0;
};

/// One simulate-vs-interpolate policy. Implementations are stateless or
/// carry online calibration state owned by their policy (see file
/// comment for the locking contract).
class AcquisitionGate {
 public:
  virtual ~AcquisitionGate() = default;

  virtual GateKind kind() const = 0;
  const char* name() const { return gate_name(kind()); }

  /// Pre-solve: attempt kriging for this neighbourhood at all? A false
  /// verdict routes straight to simulation (no counter — mirrors the
  /// paper's silent nn_min test).
  virtual bool attempt(const GateQuery& query) const = 0;

  /// Post-solve: stand by the interpolation? A veto bumps this gate's
  /// rejection counter in `stats` and falls back to simulation.
  virtual bool accept(const GateSolution& solution,
                      PolicyStats& stats) const = 0;

  /// Whether the policy should run the LOO-CV pass at each refit (it
  /// costs O(window²) per residual, so only calibrated gates pay it).
  virtual bool wants_loo() const { return false; }

  /// Fold one refit-time LOO pass into online calibration state. The
  /// checkpoint format does not persist this state: restore() replays
  /// every recorded refit, which re-runs the identical LOO passes and
  /// reconstructs it bit-exactly.
  virtual void calibrate(const LooSummary& summary) { (void)summary; }

  /// Current variance-calibration factor (1 when uncalibrated/stateless).
  virtual double calibration() const { return 1.0; }
};

/// Build the gate a policy's options select. Absorbs the legacy option
/// combination: kNeighbourCount with variance_gate > 0 yields the
/// VarianceGate, preserving pre-seam behaviour (and its
/// variance_rejections accounting) bit-for-bit. Throws
/// std::invalid_argument for kSequentialDesign without gate_lambda_min.
std::unique_ptr<AcquisitionGate> make_gate(const PolicyOptions& options);

}  // namespace ace::dse
