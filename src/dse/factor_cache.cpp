#include "dse/factor_cache.hpp"

#include <algorithm>
#include <unordered_map>

namespace ace::dse {

namespace {

/// Ascending copy (store neighbourhoods are already ascending; sorting
/// defensively keeps the overlap algebra correct for any caller).
std::vector<std::size_t> sorted_copy(const std::vector<std::size_t>& xs) {
  std::vector<std::size_t> s = xs;
  std::sort(s.begin(), s.end());
  return s;
}

}  // namespace

FactorCache::Entry* FactorCache::best_overlap(
    const std::vector<std::size_t>& sorted_query, double noise_nugget,
    std::uint64_t generation, std::size_t& cost_out) {
  // Editing an entry into the query costs one downdate per index only in
  // the entry and one append per index only in the query. Past roughly
  // half the support size a fresh incremental build is no more expensive,
  // so cap the edit distance there.
  const std::size_t limit =
      std::max<std::size_t>(2, sorted_query.size() / 2);
  Entry* best = nullptr;
  std::size_t best_cost = limit + 1;
  for (const auto& entry : entries_) {
    Entry& e = *entry;
    // A pinned entry has a live handle expecting its support to stay as
    // acquired — editing it would corrupt that caller's solve. A stale
    // generation's factors interpolate a superseded model, and a nugget
    // mismatch means every diagonal (hence every factor) differs. The
    // nugget is recomputed identically while the model stands still, so
    // exact comparison is the correct key.
    if (e.pins > 0 || e.generation != generation ||
        e.noise_nugget != noise_nugget)  // ace-lint: allow(float-equality)
      continue;
    std::vector<std::size_t> removals;
    std::size_t additions = 0;
    std::size_t i = 0, j = 0;
    while (i < e.sorted.size() || j < sorted_query.size()) {
      if (i == e.sorted.size()) {
        ++additions;
        ++j;
      } else if (j == sorted_query.size() || e.sorted[i] < sorted_query[j]) {
        removals.push_back(e.sorted[i]);
        ++i;
      } else if (e.sorted[i] > sorted_query[j]) {
        ++additions;
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
    const std::size_t cost = removals.size() + additions;
    if (cost >= best_cost) continue;
    // Every index to drop must be a cheap downdate in that system (an
    // appended Schur row, not part of the factored base block).
    bool all_removable = true;
    for (std::size_t victim : removals) {
      const auto it = std::find(e.slots.begin(), e.slots.end(), victim);
      const auto slot =
          static_cast<std::size_t>(std::distance(e.slots.begin(), it));
      if (it == e.slots.end() || !e.system->removable(slot)) {
        all_removable = false;
        break;
      }
    }
    if (!all_removable) continue;
    best = &e;
    best_cost = cost;
  }
  cost_out = best_cost;
  return best;
}

void FactorCache::trim(std::uint64_t generation) {
  // Stale generations first: their factors can never be reused, so they
  // are pure memory. Pinned stale entries survive until their pin drops.
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [generation](const auto& e) {
                                  return e->pins == 0 &&
                                         e->generation != generation;
                                }),
                 entries_.end());
  // Then LRU among the unpinned until the capacity holds again.
  while (entries_.size() > capacity_) {
    auto lru = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if ((*it)->pins > 0) continue;
      if (lru == entries_.end() || (*it)->last_used < (*lru)->last_used)
        lru = it;
    }
    if (lru == entries_.end()) break;  // Everything pinned: defer.
    entries_.erase(lru);
  }
}

FactorCache::Pin FactorCache::acquire(
    const std::vector<std::size_t>& indices,
    const std::vector<std::vector<double>>& points,
    const std::vector<double>& values, const kriging::VariogramModel& model,
    const kriging::DistanceFn& distance, double noise_nugget,
    std::uint64_t generation, FactorAcquire& outcome) {
  ++clock_;
  const std::vector<std::size_t> sorted_query = sorted_copy(indices);

  // Exact index-set match under the same model generation and nugget: the
  // whole factorization is reusable.
  for (const auto& entry : entries_)
    if (entry->generation == generation && entry->sorted == sorted_query &&
        entry->noise_nugget ==  // ace-lint: allow(float-equality)
            noise_nugget) {
      entry->last_used = clock_;
      outcome = FactorAcquire::kHit;
      return Pin(entry);
    }

  // Overlap edit: downdate the indices the query lost, append the ones it
  // gained, and the factorization follows by Schur pivots. Pinned and
  // stale entries are skipped inside best_overlap.
  std::size_t cost = 0;
  if (Entry* e = best_overlap(sorted_query, noise_nugget, generation, cost)) {
    std::unordered_map<std::size_t, std::size_t> query_pos;
    for (std::size_t p = 0; p < indices.size(); ++p)
      query_pos.emplace(indices[p], p);
    // Removals first, descending slot position so positions stay valid.
    std::vector<std::size_t> drop_slots;
    for (std::size_t s = 0; s < e->slots.size(); ++s)
      if (!query_pos.count(e->slots[s])) drop_slots.push_back(s);
    for (auto it = drop_slots.rbegin(); it != drop_slots.rend(); ++it) {
      e->system->remove_point(*it);
      e->slots.erase(e->slots.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    for (std::size_t p = 0; p < indices.size(); ++p) {
      if (std::find(e->slots.begin(), e->slots.end(), indices[p]) !=
          e->slots.end())
        continue;
      e->system->append_point(points[p], values[p]);
      e->slots.push_back(indices[p]);
    }
    e->sorted = sorted_query;
    e->last_used = clock_;
    outcome = FactorAcquire::kExtend;
    for (const auto& entry : entries_)
      if (entry.get() == e) return Pin(entry);
  }

  // Fresh build — incremental layout so later queries can edit it.
  auto entry = std::make_shared<Entry>();
  entry->slots = indices;
  entry->sorted = sorted_query;
  kriging::SystemSpec spec{kriging::SystemKind::kOrdinary};
  spec.noise_nugget = noise_nugget;
  entry->system = std::make_unique<kriging::KrigingSystem>(
      spec, points, values, model, distance,
      kriging::KrigingSystem::Layout::kIncremental);
  entry->generation = generation;
  entry->noise_nugget = noise_nugget;
  entry->last_used = clock_;
  outcome = FactorAcquire::kFresh;
  Pin pin(entry);
  if (capacity_ == 0) return pin;  // Uncached: the pin owns the system.
  entries_.push_back(std::move(entry));
  trim(generation);
  return pin;
}

void FactorCache::clear() { entries_.clear(); }

}  // namespace ace::dse
