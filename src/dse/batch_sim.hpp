// The simulation backend seam of the batch evaluation engine.
//
// KrigingPolicy::evaluate_batch partitions a candidate set into store-hit /
// interpolate / simulate, then hands the *pending simulations* — and only
// those — to a BatchSimulator. The backend owns how the guarded calls
// execute: inline, on a thread pool (PooledBatchSimulator, the default and
// the historical behaviour), or sharded across worker processes
// (dist::Coordinator). The policy's partition and its index-ordered fold
// never change with the backend, so the optimizer's decision sequence is a
// pure function of (store state, batch order) regardless of where the
// simulations physically ran — the determinism contract the distributed
// layer is built on.
#pragma once

#include <cstddef>
#include <vector>

#include "dse/config.hpp"
#include "dse/kriging_policy.hpp"  // SimulatorFn
#include "util/mutex.hpp"
#include "util/retry.hpp"
#include "util/thread_annotations.hpp"

namespace ace::util {
class ThreadPool;
}

namespace ace::dse {

/// Executes the guarded simulations of one batch. result[i] must be the
/// GuardedCall for configs[i] — same classification, value and attempt
/// accounting that util::call_with_retry(retry, ConfigHash{}(configs[i]))
/// around the canonical simulator would produce, or the policy's merged
/// statistics (and therefore checkpoint files) diverge between backends.
///
/// Called with the policy mutex held: an implementation must never call
/// back into the policy that invoked it.
class BatchSimulator {
 public:
  virtual ~BatchSimulator() = default;
  virtual std::vector<util::GuardedCall> simulate_many(
      const std::vector<Config>& configs) = 0;
};

/// The in-process backend: fan the guarded calls out to a util::ThreadPool
/// (inline when null), each result written to its own index-addressed
/// slot. Anything that escapes the retry guard (it captures simulator
/// faults itself) is folded as a thrown-simulator fault, exactly as the
/// historical phase-2 code did.
class PooledBatchSimulator final : public BatchSimulator {
 public:
  PooledBatchSimulator(SimulatorFn simulate, util::RetryOptions retry,
                       util::ThreadPool* pool = nullptr)
      : simulate_(std::move(simulate)), retry_(retry), pool_(pool) {}

  std::vector<util::GuardedCall> simulate_many(
      const std::vector<Config>& configs) override;

 private:
  SimulatorFn simulate_;
  util::RetryOptions retry_;
  util::ThreadPool* pool_;
};

/// Serializes a shared BatchSimulator that is not required to accept
/// concurrent simulate_many calls (dist::Coordinator, external services)
/// across caller threads. serve::SessionManager wraps its shared backend
/// in one of these; any other multi-client composition should too, rather
/// than growing an ad-hoc mutex.
///
/// Rank kBackendSerialize sits between the policy locks and the
/// transport/queue locks: a caller typically holds its policy mutex on
/// entry (evaluate_batch), and the inner backend may take event-queue and
/// transport locks below.
class SerializingBatchSimulator final : public BatchSimulator {
 public:
  explicit SerializingBatchSimulator(BatchSimulator& inner) : inner_(inner) {}

  std::vector<util::GuardedCall> simulate_many(
      const std::vector<Config>& configs) override ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    // The serialized call IS this class's purpose: the inner backend must
    // see one batch at a time, so it runs under mutex_ by construction.
    // ace-lint: allow(blocking-under-lock)
    return inner_.simulate_many(configs);
  }

 private:
  BatchSimulator& inner_;
  util::Mutex mutex_{util::lock_order::Rank::kBackendSerialize,
                     "dse.backend_serialize"};
};

}  // namespace ace::dse
