// Approximation-source configurations (the paper's vectors e / w).
//
// A configuration is a point on an Nv-dimensional integer lattice: word
// lengths for the fixed-point benchmarks, error-power levels for the
// sensitivity benchmark. Distances between configurations are L1, as in
// Algorithms 1-2 (line 9: dCur = ||w − w_sim||₁).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace ace::dse {

/// One configuration of the approximation sources.
using Config = std::vector<int>;

/// L1 distance between two configurations. Throws on size mismatch.
int l1_distance(const Config& a, const Config& b);

/// Euclidean distance between two configurations (extension ablation).
double l2_distance(const Config& a, const Config& b);

/// Lattice point as doubles (kriging operates on real coordinates).
std::vector<double> to_real(const Config& c);

/// "(a, b, c)" for logs and test diagnostics.
std::string to_string(const Config& c);

/// Hash functor so configurations can key unordered memo caches.
struct ConfigHash {
  std::size_t operator()(const Config& c) const;
};

/// Inclusive per-variable bounds of the search lattice.
struct Lattice {
  std::size_t dimensions = 0;
  int lower = 0;
  int upper = 0;

  /// Throws std::invalid_argument unless lower <= upper and dimensions > 0.
  Lattice(std::size_t dims, int lo, int hi);

  bool contains(const Config& c) const;
  Config uniform(int value) const;  ///< (value, ..., value); must be in range.
  std::size_t size() const { return dimensions; }
};

}  // namespace ace::dse
