// Per-variable 1-D interpolation baseline (after Sedano et al., SPL 2012
// — the paper's ref [18] and its conceptual competitor).
//
// The paper criticizes this class of method for interpolating along one
// variable at a time: a configuration can only be estimated from stored
// configurations that differ in a single coordinate. This module
// implements that policy faithfully so the critique is measurable:
// bench/baseline_interp1d replays the same trajectories through both
// estimators and compares the fraction of configurations each can serve.
#pragma once

#include "dse/trajectory.hpp"

namespace ace::dse {

/// Knobs of the 1-D baseline.
struct Interp1dOptions {
  int max_span = 3;  ///< Max |Δ| along the varying coordinate per side.
};

/// Replay a recorded trajectory through the 1-D policy: a configuration is
/// interpolated when at least two stored configurations share all other
/// coordinates within max_span along one axis (linear interpolation /
/// one-sided extrapolation from the two closest); otherwise it is
/// "simulated" (true value taken) and stored.
ReplayReport replay_with_interp1d(const Trajectory& trajectory,
                                  const Interp1dOptions& options,
                                  MetricKind kind);

}  // namespace ace::dse
