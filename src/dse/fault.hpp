// Error taxonomy of the fault-tolerant evaluation subsystem.
//
// Every evaluation the policy performs ends in exactly one of the typed
// outcomes below instead of a silent double: long optimization campaigns
// (the paper's SqueezeNet run simulated for 98 hours) must survive
// simulator faults, and the optimizers must be able to tell a real metric
// value from a placeholder produced by a faulted candidate.
#pragma once

#include <stdexcept>
#include <string>

namespace ace::dse {

/// Where an evaluation's value came from.
enum class EvalSource : unsigned char {
  kSimulated = 0,   ///< Fresh simulator call (recorded in the store).
  kInterpolated,    ///< Kriging estimate from neighbouring simulations.
  kExactHit,        ///< Served verbatim from the simulation store.
  kFaulted,         ///< No value could be produced; see EvalOutcome::fault.
};

/// Terminal fault classification of a failed evaluation.
enum class FaultCode : unsigned char {
  kNone = 0,           ///< No fault — the evaluation produced a value.
  kNonFinite,          ///< Simulator returned NaN/Inf on every attempt.
  kSimulatorThrow,     ///< Simulator threw on every attempt.
  kTimeout,            ///< Simulation exceeded the per-call deadline.
  kKrigingUnsolvable,  ///< Quarantined configuration whose interpolation
                       ///< fallback could not be solved either.
  kContractViolation,  ///< Simulator tripped a numerical contract
                       ///< (util::ContractViolation) — deterministic,
                       ///< never retried.
  // Process-level faults of the coordinator/worker subsystem (src/dist/)
  // and the persistence readers. New codes append so checkpoint files,
  // which serialize the enumerator value, stay forward-compatible.
  kWorkerLost,        ///< Worker process/thread died or its pipe closed
                      ///< while it held a lease.
  kLeaseExpired,      ///< A leased task missed its heartbeat deadline and
                      ///< was stolen/re-dispatched.
  kCorruptPayload,    ///< A wire frame or persisted payload failed its
                      ///< checksum or did not parse.
  kTruncatedPayload,  ///< A wire frame or persisted payload ended
                      ///< mid-record (cut-off file, half-written line).
};

const char* to_string(EvalSource source);
const char* to_string(FaultCode code);

/// Typed parse/integrity failure of a persisted or transmitted payload
/// (checkpoint file, trajectory CSV, dist wire frame). Derives from
/// std::runtime_error so pre-existing catch sites keep working, but
/// carries the FaultCode so callers can tell truncation from garbage and
/// route the failure into the quarantine/retry machinery.
class PayloadError : public std::runtime_error {
 public:
  PayloadError(FaultCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  FaultCode code() const { return code_; }

 private:
  FaultCode code_;
};

}  // namespace ace::dse
