// Error taxonomy of the fault-tolerant evaluation subsystem.
//
// Every evaluation the policy performs ends in exactly one of the typed
// outcomes below instead of a silent double: long optimization campaigns
// (the paper's SqueezeNet run simulated for 98 hours) must survive
// simulator faults, and the optimizers must be able to tell a real metric
// value from a placeholder produced by a faulted candidate.
#pragma once

namespace ace::dse {

/// Where an evaluation's value came from.
enum class EvalSource : unsigned char {
  kSimulated = 0,   ///< Fresh simulator call (recorded in the store).
  kInterpolated,    ///< Kriging estimate from neighbouring simulations.
  kExactHit,        ///< Served verbatim from the simulation store.
  kFaulted,         ///< No value could be produced; see EvalOutcome::fault.
};

/// Terminal fault classification of a failed evaluation.
enum class FaultCode : unsigned char {
  kNone = 0,           ///< No fault — the evaluation produced a value.
  kNonFinite,          ///< Simulator returned NaN/Inf on every attempt.
  kSimulatorThrow,     ///< Simulator threw on every attempt.
  kTimeout,            ///< Simulation exceeded the per-call deadline.
  kKrigingUnsolvable,  ///< Quarantined configuration whose interpolation
                       ///< fallback could not be solved either.
  kContractViolation,  ///< Simulator tripped a numerical contract
                       ///< (util::ContractViolation) — deterministic,
                       ///< never retried.
};

const char* to_string(EvalSource source);
const char* to_string(FaultCode code);

}  // namespace ace::dse
