#include "dse/fault.hpp"

namespace ace::dse {

const char* to_string(EvalSource source) {
  switch (source) {
    case EvalSource::kSimulated: return "simulated";
    case EvalSource::kInterpolated: return "interpolated";
    case EvalSource::kExactHit: return "exact-hit";
    case EvalSource::kFaulted: return "faulted";
  }
  return "unknown";
}

const char* to_string(FaultCode code) {
  switch (code) {
    case FaultCode::kNone: return "none";
    case FaultCode::kNonFinite: return "non-finite";
    case FaultCode::kSimulatorThrow: return "simulator-throw";
    case FaultCode::kTimeout: return "timeout";
    case FaultCode::kKrigingUnsolvable: return "kriging-unsolvable";
    case FaultCode::kContractViolation: return "contract-violation";
    case FaultCode::kWorkerLost: return "worker-lost";
    case FaultCode::kLeaseExpired: return "lease-expired";
    case FaultCode::kCorruptPayload: return "corrupt-payload";
    case FaultCode::kTruncatedPayload: return "truncated-payload";
  }
  return "unknown";
}

}  // namespace ace::dse
