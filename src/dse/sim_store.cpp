#include "dse/sim_store.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/contract.hpp"
#include "util/errors.hpp"
#include "util/simd.hpp"

namespace ace::dse {

namespace {

int coordinate_sum(const Config& c) {
  return std::accumulate(c.begin(), c.end(), 0);
}

/// Points per blocked-scan step: 4 KiB of i32 distances — comfortably
/// inside L1d alongside one block of one column.
constexpr std::size_t kScanBlock = 1024;

}  // namespace

void SimulationStore::check_dimensions(const Config& c,
                                       const char* what) const {
  if (!configs_.empty() && c.size() != configs_.front().size())
    throw std::invalid_argument(std::string("SimulationStore::") + what +
                                ": dimension mismatch");
}

std::size_t SimulationStore::band_population(int lo, int hi) const {
  // An inverted band (lo > hi) would make lower_bound(lo) sit *past*
  // upper_bound(hi) and the walk below would run off the map — guard it.
  if (lo > hi) return 0;
  std::size_t pop = 0;
  const auto first = sum_buckets_.lower_bound(lo);
  const auto last = sum_buckets_.upper_bound(hi);
  for (auto it = first; it != last; ++it) pop += it->second.size();
  return pop;
}

std::size_t SimulationStore::add(Config config, double value) {
  if (!std::isfinite(value))
    throw util::NonFiniteError(
        "SimulationStore::add: non-finite value for " + to_string(config));
  const util::LockGuard lock(mutex_);
  check_dimensions(config, "add");
  // A clean simulation supersedes an earlier fault: lift any active
  // quarantine. quarantine_log_ keeps the lifted entry for audit.
  quarantine_.erase(config);
  if (const auto it = exact_.find(config); it != exact_.end()) {
    values_[it->second] = value;
    return it->second;
  }
  const std::size_t index = configs_.size();
  const int sum = coordinate_sum(config);
  configs_.push_back(std::move(config));
  values_.push_back(value);
  exact_.emplace(configs_.back(), index);
  sum_buckets_[sum].push_back(index);
  const Config& stored = configs_.back();
  if (soa_.size() != stored.size()) soa_.resize(stored.size());
  for (std::size_t d = 0; d < stored.size(); ++d) soa_[d].push_back(stored[d]);
  ACE_INVARIANT(configs_.size() == values_.size(),
                "configs/values must grow in lockstep");
  ACE_INVARIANT(soa_.empty() || soa_.front().size() == configs_.size(),
                "columnar mirror must grow in lockstep with configs");
  return index;
}

std::optional<std::size_t> SimulationStore::find(const Config& config) const {
  const util::LockGuard lock(mutex_);
  const auto it = exact_.find(config);
  if (it == exact_.end()) return std::nullopt;
  return it->second;
}

bool SimulationStore::quarantine(Config config, FaultCode code) {
  const util::LockGuard lock(mutex_);
  check_dimensions(config, "quarantine");
  if (quarantine_.contains(config)) return false;
  quarantine_.emplace(config, code);
  quarantine_log_.emplace_back(std::move(config), code);
  return true;
}

std::optional<FaultCode> SimulationStore::quarantined(
    const Config& config) const {
  const util::LockGuard lock(mutex_);
  const auto it = quarantine_.find(config);
  if (it == quarantine_.end()) return std::nullopt;
  return it->second;
}

Neighborhood SimulationStore::neighbors_within(const Config& query,
                                               int radius) const {
  ACE_REQUIRE(radius >= 0,
              "neighbors_within: negative radius is a caller sign bug");
  Neighborhood n;
  // With contracts compiled out (Release) a negative radius must degrade
  // to an empty result, not hand the bucket walk an inverted iterator
  // range (lower_bound past upper_bound — a runaway loop).
  if (radius < 0) return n;
  const util::LockGuard lock(mutex_);
  if (configs_.empty()) return n;
  check_dimensions(query, "neighbors_within");
  const int qsum = coordinate_sum(query);
  // When the coordinate-sum band holds most of the store, the bucket walk
  // degenerates into a scattered full scan; the contiguous blocked scan
  // over the columnar mirror streams the same points faster and yields
  // the identical neighbourhood (integer L1 is exact on both paths).
  if (2 * band_population(qsum - radius, qsum + radius) >= configs_.size()) {
    const std::size_t dim = query.size();
    const std::size_t total = configs_.size();
    std::vector<const int*> cols(dim);
    std::array<int, kScanBlock> dists;
    for (std::size_t base = 0; base < total; base += kScanBlock) {
      const std::size_t count = std::min(kScanBlock, total - base);
      for (std::size_t d = 0; d < dim; ++d) cols[d] = soa_[d].data() + base;
      util::simd::l1_distances_i32(cols.data(), dim, query.data(), count,
                                   dists.data());
      for (std::size_t i = 0; i < count; ++i)
        if (dists[i] <= radius) n.indices.push_back(base + i);
    }
    return n;  // Blocked scan visits indices in order: already ascending.
  }
  const auto first = sum_buckets_.lower_bound(qsum - radius);
  const auto last = sum_buckets_.upper_bound(qsum + radius);
  for (auto it = first; it != last; ++it)
    for (const std::size_t i : it->second)
      if (l1_distance(configs_[i], query) <= radius) n.indices.push_back(i);
  // Buckets are ordered by coordinate sum, not insertion: restore the
  // ascending index order the linear scan produced.
  std::sort(n.indices.begin(), n.indices.end());
  return n;
}

Neighborhood SimulationStore::neighbors_within_l2(const Config& query,
                                                  double radius) const {
  ACE_REQUIRE(radius >= 0.0,
              "neighbors_within_l2: negative radius is a caller sign bug");
  Neighborhood n;
  if (radius < 0.0) return n;  // Same Release-mode degradation as above.
  const util::LockGuard lock(mutex_);
  if (configs_.empty()) return n;
  check_dimensions(query, "neighbors_within_l2");
  // ||a − q||₁ <= √Nv · ||a − q||₂, so an L2 ball of radius r only reaches
  // buckets within ±⌈√Nv·r⌉ of the query's coordinate sum.
  const int band = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(query.size())) * radius));
  const int qsum = coordinate_sum(query);
  if (2 * band_population(qsum - band, qsum + band) >= configs_.size()) {
    // Blocked scan over the mirror: the kernel yields the exact squared
    // distance (integer-valued doubles), and std::sqrt of it is the very
    // computation l2_distance performs — bit-identical accept decisions.
    const std::size_t dim = query.size();
    const std::size_t total = configs_.size();
    std::vector<const int*> cols(dim);
    std::array<double, kScanBlock> sq;
    for (std::size_t base = 0; base < total; base += kScanBlock) {
      const std::size_t count = std::min(kScanBlock, total - base);
      for (std::size_t d = 0; d < dim; ++d) cols[d] = soa_[d].data() + base;
      util::simd::l2_sq_distances_i32(cols.data(), dim, query.data(), count,
                                      sq.data());
      for (std::size_t i = 0; i < count; ++i)
        if (std::sqrt(sq[i]) <= radius) n.indices.push_back(base + i);
    }
    return n;
  }
  const auto first = sum_buckets_.lower_bound(qsum - band);
  const auto last = sum_buckets_.upper_bound(qsum + band);
  for (auto it = first; it != last; ++it)
    for (const std::size_t i : it->second)
      if (l2_distance(configs_[i], query) <= radius) n.indices.push_back(i);
  std::sort(n.indices.begin(), n.indices.end());
  return n;
}

Neighborhood SimulationStore::neighbors_within_linear(const Config& query,
                                                      int radius) const {
  ACE_REQUIRE(radius >= 0,
              "neighbors_within_linear: negative radius is a caller sign bug");
  Neighborhood n;
  const util::LockGuard lock(mutex_);
  if (configs_.empty()) return n;
  check_dimensions(query, "neighbors_within_linear");
  for (std::size_t i = 0; i < configs_.size(); ++i)
    if (l1_distance(configs_[i], query) <= radius) n.indices.push_back(i);
  return n;
}

Neighborhood SimulationStore::neighbors_within_l2_linear(const Config& query,
                                                         double radius) const {
  ACE_REQUIRE(
      radius >= 0.0,
      "neighbors_within_l2_linear: negative radius is a caller sign bug");
  Neighborhood n;
  const util::LockGuard lock(mutex_);
  if (configs_.empty()) return n;
  check_dimensions(query, "neighbors_within_l2_linear");
  for (std::size_t i = 0; i < configs_.size(); ++i)
    if (l2_distance(configs_[i], query) <= radius) n.indices.push_back(i);
  return n;
}

void SimulationStore::gather(const Neighborhood& n,
                             std::vector<std::vector<double>>& points,
                             std::vector<double>& values) const {
  points.clear();
  values.clear();
  points.reserve(n.indices.size());
  values.reserve(n.indices.size());
  const util::LockGuard lock(mutex_);
  for (std::size_t i : n.indices) {
    points.push_back(to_real(configs_.at(i)));
    values.push_back(values_.at(i));
  }
}

}  // namespace ace::dse
