#include "dse/sim_store.hpp"

#include <stdexcept>

namespace ace::dse {

void SimulationStore::add(Config config, double value) {
  if (!configs_.empty() && config.size() != configs_.front().size())
    throw std::invalid_argument("SimulationStore::add: dimension mismatch");
  configs_.push_back(std::move(config));
  values_.push_back(value);
}

Neighborhood SimulationStore::neighbors_within(const Config& query,
                                               int radius) const {
  Neighborhood n;
  for (std::size_t i = 0; i < configs_.size(); ++i)
    if (l1_distance(configs_[i], query) <= radius) n.indices.push_back(i);
  return n;
}

Neighborhood SimulationStore::neighbors_within_l2(const Config& query,
                                                  double radius) const {
  Neighborhood n;
  for (std::size_t i = 0; i < configs_.size(); ++i)
    if (l2_distance(configs_[i], query) <= radius) n.indices.push_back(i);
  return n;
}

void SimulationStore::gather(const Neighborhood& n,
                             std::vector<std::vector<double>>& points,
                             std::vector<double>& values) const {
  points.clear();
  values.clear();
  points.reserve(n.indices.size());
  values.reserve(n.indices.size());
  for (std::size_t i : n.indices) {
    points.push_back(to_real(configs_.at(i)));
    values.push_back(values_.at(i));
  }
}

}  // namespace ace::dse
