#include "dse/sim_store.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/contract.hpp"
#include "util/errors.hpp"

namespace ace::dse {

namespace {

int coordinate_sum(const Config& c) {
  return std::accumulate(c.begin(), c.end(), 0);
}

}  // namespace

void SimulationStore::check_dimensions(const Config& c,
                                       const char* what) const {
  if (!configs_.empty() && c.size() != configs_.front().size())
    throw std::invalid_argument(std::string("SimulationStore::") + what +
                                ": dimension mismatch");
}

std::size_t SimulationStore::add(Config config, double value) {
  if (!std::isfinite(value))
    throw util::NonFiniteError(
        "SimulationStore::add: non-finite value for " + to_string(config));
  const util::LockGuard lock(mutex_);
  check_dimensions(config, "add");
  if (const auto it = exact_.find(config); it != exact_.end()) {
    values_[it->second] = value;
    return it->second;
  }
  const std::size_t index = configs_.size();
  const int sum = coordinate_sum(config);
  configs_.push_back(std::move(config));
  values_.push_back(value);
  exact_.emplace(configs_.back(), index);
  sum_buckets_[sum].push_back(index);
  ACE_INVARIANT(configs_.size() == values_.size(),
                "configs/values must grow in lockstep");
  return index;
}

std::optional<std::size_t> SimulationStore::find(const Config& config) const {
  const util::LockGuard lock(mutex_);
  const auto it = exact_.find(config);
  if (it == exact_.end()) return std::nullopt;
  return it->second;
}

bool SimulationStore::quarantine(Config config, FaultCode code) {
  const util::LockGuard lock(mutex_);
  check_dimensions(config, "quarantine");
  if (quarantine_.contains(config)) return false;
  quarantine_.emplace(config, code);
  quarantine_log_.emplace_back(std::move(config), code);
  return true;
}

std::optional<FaultCode> SimulationStore::quarantined(
    const Config& config) const {
  const util::LockGuard lock(mutex_);
  const auto it = quarantine_.find(config);
  if (it == quarantine_.end()) return std::nullopt;
  return it->second;
}

Neighborhood SimulationStore::neighbors_within(const Config& query,
                                               int radius) const {
  Neighborhood n;
  const util::LockGuard lock(mutex_);
  if (configs_.empty()) return n;
  check_dimensions(query, "neighbors_within");
  const int qsum = coordinate_sum(query);
  const auto first = sum_buckets_.lower_bound(qsum - radius);
  const auto last = sum_buckets_.upper_bound(qsum + radius);
  for (auto it = first; it != last; ++it)
    for (const std::size_t i : it->second)
      if (l1_distance(configs_[i], query) <= radius) n.indices.push_back(i);
  // Buckets are ordered by coordinate sum, not insertion: restore the
  // ascending index order the linear scan produced.
  std::sort(n.indices.begin(), n.indices.end());
  return n;
}

Neighborhood SimulationStore::neighbors_within_l2(const Config& query,
                                                  double radius) const {
  Neighborhood n;
  const util::LockGuard lock(mutex_);
  if (configs_.empty()) return n;
  check_dimensions(query, "neighbors_within_l2");
  // ||a − q||₁ <= √Nv · ||a − q||₂, so an L2 ball of radius r only reaches
  // buckets within ±⌈√Nv·r⌉ of the query's coordinate sum.
  const int band = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(query.size())) * radius));
  const int qsum = coordinate_sum(query);
  const auto first = sum_buckets_.lower_bound(qsum - band);
  const auto last = sum_buckets_.upper_bound(qsum + band);
  for (auto it = first; it != last; ++it)
    for (const std::size_t i : it->second)
      if (l2_distance(configs_[i], query) <= radius) n.indices.push_back(i);
  std::sort(n.indices.begin(), n.indices.end());
  return n;
}

void SimulationStore::gather(const Neighborhood& n,
                             std::vector<std::vector<double>>& points,
                             std::vector<double>& values) const {
  points.clear();
  values.clear();
  points.reserve(n.indices.size());
  values.reserve(n.indices.size());
  const util::LockGuard lock(mutex_);
  for (std::size_t i : n.indices) {
    points.push_back(to_real(configs_.at(i)));
    values.push_back(values_.at(i));
  }
}

}  // namespace ace::dse
