#include "dse/trajectory_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dse/fault.hpp"
#include "util/csv.hpp"

namespace ace::dse {

void save_trajectory(const Trajectory& trajectory, const std::string& path) {
  if (trajectory.configs.size() != trajectory.values.size())
    throw std::invalid_argument("save_trajectory: ragged trajectory");
  if (trajectory.configs.empty())
    throw std::invalid_argument("save_trajectory: empty trajectory");

  const std::size_t dims = trajectory.configs.front().size();
  util::CsvWriter csv(path);
  std::vector<std::string> header;
  header.reserve(dims + 1);
  for (std::size_t i = 0; i < dims; ++i) {
    // Built up with += rather than `"e" + std::to_string(i)`: the rvalue
    // operator+ path trips a GCC 12 -Wrestrict false positive inside
    // libstdc++ string::insert under -O2, which -Werror turns fatal.
    std::string column = "e";
    column += std::to_string(i);
    header.push_back(std::move(column));
  }
  header.push_back("lambda");
  csv.write_row(header);

  for (std::size_t r = 0; r < trajectory.size(); ++r) {
    if (trajectory.configs[r].size() != dims)
      throw std::invalid_argument("save_trajectory: inconsistent dimensions");
    std::vector<std::string> row;
    row.reserve(dims + 1);
    for (int v : trajectory.configs[r]) row.push_back(std::to_string(v));
    std::ostringstream value;
    value.precision(17);
    value << trajectory.values[r];
    row.push_back(value.str());
    csv.write_row(row);
  }
  // Integrity trailer: without a row count a file cut off at a row
  // boundary loads as a silently shorter trajectory.
  std::string trailer = "#end rows=";
  trailer += std::to_string(trajectory.size());
  csv.write_row({trailer});
}

Trajectory load_trajectory(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trajectory: cannot open " + path);

  std::string line;
  if (!std::getline(in, line))
    throw PayloadError(FaultCode::kTruncatedPayload,
                       "load_trajectory: missing header");
  std::size_t columns = 1;
  for (char ch : line)
    if (ch == ',') ++columns;
  if (columns < 2)
    throw PayloadError(FaultCode::kCorruptPayload,
                       "load_trajectory: header needs >= 2 columns");
  const std::size_t dims = columns - 1;

  Trajectory trajectory;
  bool saw_trailer = false;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line.front() == '#') {
      // Directive line. "#end rows=N" is the integrity trailer; data after
      // it means the file was concatenated or corrupted.
      if (line.rfind("#end rows=", 0) == 0) {
        char* end = nullptr;
        const unsigned long long n =
            std::strtoull(line.c_str() + 10, &end, 10);
        if (end == line.c_str() + 10 || *end != '\0')
          throw PayloadError(FaultCode::kCorruptPayload,
                             "load_trajectory: bad trailer at line " +
                                 std::to_string(line_no));
        if (static_cast<std::size_t>(n) != trajectory.size())
          throw PayloadError(
              FaultCode::kTruncatedPayload,
              "load_trajectory: trailer says " + std::to_string(n) +
                  " rows, file holds " + std::to_string(trajectory.size()));
        saw_trailer = true;
        continue;
      }
      continue;  // Unknown directive/comment: skip.
    }
    if (saw_trailer)
      throw PayloadError(FaultCode::kCorruptPayload,
                         "load_trajectory: data after trailer at line " +
                             std::to_string(line_no));
    std::stringstream row(line);
    std::string cell;
    Config config;
    config.reserve(dims);
    std::vector<std::string> cells;
    while (std::getline(row, cell, ',')) cells.push_back(cell);
    if (cells.size() != columns)
      throw PayloadError(FaultCode::kTruncatedPayload,
                         "load_trajectory: ragged row at line " +
                             std::to_string(line_no));
    try {
      for (std::size_t i = 0; i < dims; ++i)
        config.push_back(std::stoi(cells[i]));
      trajectory.values.push_back(std::stod(cells[dims]));
    } catch (const std::exception&) {
      throw PayloadError(FaultCode::kCorruptPayload,
                         "load_trajectory: bad number at line " +
                             std::to_string(line_no));
    }
    trajectory.configs.push_back(std::move(config));
  }
  if (!saw_trailer)
    throw PayloadError(FaultCode::kTruncatedPayload,
                       "load_trajectory: missing '#end rows=N' trailer — "
                       "file is truncated or predates the integrity format");
  return trajectory;
}

}  // namespace ace::dse
