#include "dse/doe.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace ace::dse {

namespace {

void validate(const Lattice& lattice, std::size_t count) {
  if (count == 0)
    throw std::invalid_argument("doe: count must be positive");
  const std::size_t span =
      static_cast<std::size_t>(lattice.upper - lattice.lower) + 1;
  // Only guard per-dimension feasibility for the LHS stratification.
  if (span == 0)
    throw std::invalid_argument("doe: empty lattice range");
}

}  // namespace

std::vector<Config> latin_hypercube_sample(const Lattice& lattice,
                                           std::size_t count,
                                           util::Rng& rng) {
  validate(lattice, count);
  const double span = static_cast<double>(lattice.upper - lattice.lower + 1);

  // One shuffled stratum order per dimension; stratum k maps to the lattice
  // value at relative position (k + 0.5) / count.
  std::vector<std::vector<std::size_t>> strata(lattice.dimensions);
  for (auto& order : strata) {
    order.resize(count);
    std::iota(order.begin(), order.end(), std::size_t{0});
    for (std::size_t i = count; i > 1; --i)
      std::swap(order[i - 1], order[rng.index(i)]);
  }

  std::unordered_set<Config, ConfigHash> seen;
  std::vector<Config> design;
  design.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    Config c(lattice.dimensions);
    for (std::size_t dim = 0; dim < lattice.dimensions; ++dim) {
      const double position =
          (static_cast<double>(strata[dim][s]) + 0.5) /
          static_cast<double>(count);
      c[dim] = lattice.lower + static_cast<int>(position * span);
      c[dim] = std::clamp(c[dim], lattice.lower, lattice.upper);
    }
    if (seen.insert(c).second) design.push_back(std::move(c));
  }
  return design;  // May be < count if strata collide on a narrow lattice.
}

std::vector<Config> corner_plus_random_sample(const Lattice& lattice,
                                              std::size_t count,
                                              util::Rng& rng) {
  validate(lattice, count);
  std::unordered_set<Config, ConfigHash> seen;
  std::vector<Config> design;
  design.reserve(count);
  auto push = [&](Config c) {
    if (seen.insert(c).second) design.push_back(std::move(c));
  };
  push(lattice.uniform(lattice.lower));
  if (lattice.upper != lattice.lower) push(lattice.uniform(lattice.upper));

  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 64 + 64;
  while (design.size() < count && attempts < max_attempts) {
    Config c(lattice.dimensions);
    for (auto& v : c) v = rng.uniform_int(lattice.lower, lattice.upper);
    push(std::move(c));
    ++attempts;
  }
  return design;
}

std::size_t warm_start(KrigingPolicy& policy, const SimulatorFn& simulate,
                       const std::vector<Config>& design) {
  const std::size_t before = policy.store().size();
  for (const auto& c : design) (void)policy.evaluate(c, simulate);
  return policy.store().size() - before;
}

}  // namespace ace::dse
