#include "dse/kriging_policy.hpp"

#include <algorithm>

#include <stdexcept>

#include "kriging/empirical_variogram.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/vector.hpp"

namespace ace::dse {

namespace {

/// Least-squares fit of λ ≈ β0 + Σ β_i x_i over the store. Returns the
/// mean-only coefficient vector {mean} when the design is rank deficient
/// (e.g. every stored configuration lies on one axis sweep).
std::vector<double> fit_linear_trend(
    const std::vector<std::vector<double>>& points,
    const std::vector<double>& values) {
  const std::size_t n = points.size();
  const std::size_t dim = points.front().size();
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(n);
  if (n < dim + 2) return {mean};

  linalg::Matrix design(n, dim + 1);
  linalg::Vector rhs(n);
  for (std::size_t r = 0; r < n; ++r) {
    design(r, 0) = 1.0;
    for (std::size_t c = 0; c < dim; ++c) design(r, c + 1) = points[r][c];
    rhs[r] = values[r];
  }
  const linalg::QrDecomposition qr(design);
  if (qr.rank_deficient()) return {mean};
  const linalg::Vector beta = qr.solve(rhs);
  return std::vector<double>(beta.data().begin(), beta.data().end());
}

}  // namespace

KrigingPolicy::KrigingPolicy(PolicyOptions options)
    : options_(std::move(options)) {
  if (options_.distance < 0)
    throw std::invalid_argument("KrigingPolicy: distance must be >= 0");
  if (options_.variance_gate < 0.0)
    throw std::invalid_argument("KrigingPolicy: variance_gate must be >= 0");
}

double KrigingPolicy::trend_value(const std::vector<double>& x) const {
  if (trend_.empty()) return 0.0;
  double acc = trend_[0];
  for (std::size_t i = 1; i < trend_.size(); ++i) acc += trend_[i] * x[i - 1];
  return acc;
}

bool KrigingPolicy::refit_model() {
  if (store_.size() < 2) return false;
  std::vector<std::vector<double>> points;
  points.reserve(store_.size());
  for (const auto& c : store_.configs()) points.push_back(to_real(c));

  // Regression kriging: identify the global trend first, then model the
  // spatial structure of the residuals.
  std::vector<double> field = store_.values();
  if (options_.drift == kriging::DriftKind::kLinear) {
    trend_ = fit_linear_trend(points, field);
    for (std::size_t i = 0; i < field.size(); ++i)
      field[i] -= trend_value(points[i]);
  } else {
    trend_.clear();
  }

  const auto distance = options_.use_l2_distance ? kriging::l2_distance
                                                 : kriging::l1_distance;
  kriging::EmpiricalVariogram ev(points, field, distance, 1.0);
  if (ev.bins().size() < 2) return false;
  model_ = kriging::fit_best(ev, options_.fit).model;
  sill_estimate_ = ev.value_variance();
  sims_at_last_fit_ = store_.size();
  return true;
}

std::optional<double> KrigingPolicy::try_interpolate(
    const Config& config, const Neighborhood& neighborhood,
    EvalOutcome& outcome) {
  // Identify (or periodically re-identify) the semi-variogram.
  if (!model_ || store_.size() >= sims_at_last_fit_ + options_.refit_period) {
    if (store_.size() < options_.min_fit_points && !model_) return std::nullopt;
    if (!refit_model() && !model_) return std::nullopt;
  }

  std::vector<std::vector<double>> points;
  std::vector<double> values;
  store_.gather(neighborhood, points, values);
  const std::vector<double> query = to_real(config);

  // Regression kriging: interpolate the residual field and add the global
  // trend back at the query. With no trend this is the paper's ordinary
  // kriging verbatim.
  if (!trend_.empty())
    for (std::size_t i = 0; i < values.size(); ++i)
      values[i] -= trend_value(points[i]);

  const auto distance = options_.use_l2_distance ? kriging::l2_distance
                                                 : kriging::l1_distance;
  const auto result =
      kriging::krige(points, values, query, *model_, distance);
  if (!result) return std::nullopt;

  // Sanity guard: a (residual) estimate far outside the support values'
  // own interval signals an ill-conditioned system, not information.
  if (options_.sanity_span > 0.0) {
    double lo = values.front(), hi = values.front();
    for (double v : values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double span = std::max(hi - lo, 1e-12);
    if (result->estimate < lo - options_.sanity_span * span ||
        result->estimate > hi + options_.sanity_span * span)
      return std::nullopt;
  }

  // Variance gate (extension): refuse interpolations whose predicted
  // kriging variance exceeds the configured fraction of the field's
  // sample variance — those are extrapolations the support cannot back.
  if (options_.variance_gate > 0.0 && sill_estimate_ > 0.0 &&
      result->variance > options_.variance_gate * sill_estimate_) {
    ++stats_.variance_rejections;
    return std::nullopt;
  }

  outcome.regularized = result->regularized;
  return result->estimate + trend_value(query);
}

EvalOutcome KrigingPolicy::evaluate(const Config& config,
                                    const SimulatorFn& simulate) {
  EvalOutcome outcome;
  ++stats_.total;

  const auto neighborhood =
      options_.use_l2_distance
          ? store_.neighbors_within_l2(config,
                                       static_cast<double>(options_.distance))
          : store_.neighbors_within(config, options_.distance);
  outcome.neighbors = neighborhood.count();

  if (neighborhood.count() > options_.nn_min) {
    if (auto estimate = try_interpolate(config, neighborhood, outcome)) {
      outcome.value = *estimate;
      outcome.interpolated = true;
      ++stats_.interpolated;
      stats_.neighbors_per_interpolation.add(
          static_cast<double>(neighborhood.count()));
      return outcome;
    }
    ++stats_.kriging_failures;
  }

  // Simulation path (lines 19-23): evaluate and enrich the store.
  outcome.value = simulate(config);
  outcome.interpolated = false;
  store_.add(config, outcome.value);
  ++stats_.simulated;
  return outcome;
}

}  // namespace ace::dse
