#include "dse/kriging_policy.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/vector.hpp"
#include "util/thread_pool.hpp"

namespace ace::dse {

namespace {

/// Least-squares fit of λ ≈ β0 + Σ β_i x_i over the store. Returns the
/// mean-only coefficient vector {mean} when the design is rank deficient
/// (e.g. every stored configuration lies on one axis sweep).
std::vector<double> fit_linear_trend(
    const std::vector<std::vector<double>>& points,
    const std::vector<double>& values) {
  const std::size_t n = points.size();
  const std::size_t dim = points.front().size();
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(n);
  if (n < dim + 2) return {mean};

  linalg::Matrix design(n, dim + 1);
  linalg::Vector rhs(n);
  for (std::size_t r = 0; r < n; ++r) {
    design(r, 0) = 1.0;
    for (std::size_t c = 0; c < dim; ++c) design(r, c + 1) = points[r][c];
    rhs[r] = values[r];
  }
  const linalg::QrDecomposition qr(design);
  if (qr.rank_deficient()) return {mean};
  const linalg::Vector beta = qr.solve(rhs);
  return std::vector<double>(beta.data().begin(), beta.data().end());
}

}  // namespace

KrigingPolicy::KrigingPolicy(PolicyOptions options)
    : options_(std::move(options)) {
  if (options_.distance < 0)
    throw std::invalid_argument("KrigingPolicy: distance must be >= 0");
  if (options_.variance_gate < 0.0)
    throw std::invalid_argument("KrigingPolicy: variance_gate must be >= 0");
}

double KrigingPolicy::trend_value(const std::vector<double>& x) const {
  if (trend_.empty()) return 0.0;
  double acc = trend_[0];
  for (std::size_t i = 1; i < trend_.size(); ++i) acc += trend_[i] * x[i - 1];
  return acc;
}

bool KrigingPolicy::refit_model() {
  fit_attempted_ = true;
  sims_at_last_attempt_ = store_.size();
  if (store_.size() < 2) {
    ++stats_.failed_refits;
    return false;
  }

  const auto distance = options_.use_l2_distance ? kriging::l2_distance
                                                 : kriging::l1_distance;
  const kriging::EmpiricalVariogram* variogram = nullptr;
  if (options_.drift == kriging::DriftKind::kLinear) {
    // Regression kriging: identify the global trend first, then model the
    // spatial structure of the residuals. The residual field changes with
    // the trend, so this path rebuilds the variogram from scratch.
    std::vector<std::vector<double>> points;
    points.reserve(store_.size());
    for (const auto& c : store_.configs()) points.push_back(to_real(c));
    std::vector<double> field = store_.values();
    trend_ = fit_linear_trend(points, field);
    for (std::size_t i = 0; i < field.size(); ++i)
      field[i] -= trend_value(points[i]);
    variogram_ = std::make_unique<kriging::EmpiricalVariogram>(
        points, field, distance, 1.0);
    variogram = variogram_.get();
  } else {
    // Ordinary kriging: the field is the stored values themselves, so the
    // variogram only needs the pairs the new simulations introduce —
    // O(k·N) per refit instead of the O(N²) full rebuild.
    trend_.clear();
    if (!variogram_)
      variogram_ =
          std::make_unique<kriging::EmpiricalVariogram>(distance, 1.0);
    std::vector<std::vector<double>> new_points;
    std::vector<double> new_values;
    for (std::size_t i = variogram_->sample_count(); i < store_.size(); ++i) {
      new_points.push_back(to_real(store_.config(i)));
      new_values.push_back(store_.value(i));
    }
    variogram_->extend(new_points, new_values);
    variogram = variogram_.get();
  }

  if (variogram->bins().size() < 2) {
    ++stats_.failed_refits;
    return false;
  }
  model_ = kriging::fit_best(*variogram, options_.fit).model;
  sill_estimate_ = variogram->value_variance();
  sims_at_last_fit_ = store_.size();
  ++stats_.refits;
  return true;
}

Neighborhood KrigingPolicy::neighborhood_of(const Config& config) const {
  return options_.use_l2_distance
             ? store_.neighbors_within_l2(
                   config, static_cast<double>(options_.distance))
             : store_.neighbors_within(config, options_.distance);
}

std::optional<double> KrigingPolicy::try_interpolate(
    const Config& config, const Neighborhood& neighborhood,
    EvalOutcome& outcome) {
  // Identify (or periodically re-identify) the semi-variogram. A failed
  // attempt resets the refit clock, so the O(N²)-ish work is not retried
  // until another refit_period of simulations has accumulated.
  const bool due =
      !model_ || store_.size() >= sims_at_last_fit_ + options_.refit_period;
  if (due) {
    if (!model_ && store_.size() < options_.min_fit_points)
      return std::nullopt;
    const bool attempt_allowed =
        !fit_attempted_ ||
        store_.size() >= sims_at_last_attempt_ + options_.refit_period;
    if (attempt_allowed) (void)refit_model();
    if (!model_) return std::nullopt;
  }

  std::vector<std::vector<double>> points;
  std::vector<double> values;
  store_.gather(neighborhood, points, values);
  const std::vector<double> query = to_real(config);

  // Regression kriging: interpolate the residual field and add the global
  // trend back at the query. With no trend this is the paper's ordinary
  // kriging verbatim.
  if (!trend_.empty())
    for (std::size_t i = 0; i < values.size(); ++i)
      values[i] -= trend_value(points[i]);

  const auto distance = options_.use_l2_distance ? kriging::l2_distance
                                                 : kriging::l1_distance;
  const auto result =
      kriging::krige(points, values, query, *model_, distance);
  if (!result) return std::nullopt;

  // Sanity guard: a (residual) estimate far outside the support values'
  // own interval signals an ill-conditioned system, not information.
  if (options_.sanity_span > 0.0) {
    double lo = values.front(), hi = values.front();
    for (double v : values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double span = std::max(hi - lo, 1e-12);
    if (result->estimate < lo - options_.sanity_span * span ||
        result->estimate > hi + options_.sanity_span * span)
      return std::nullopt;
  }

  // Variance gate (extension): refuse interpolations whose predicted
  // kriging variance exceeds the configured fraction of the field's
  // sample variance — those are extrapolations the support cannot back.
  if (options_.variance_gate > 0.0 && sill_estimate_ > 0.0 &&
      result->variance > options_.variance_gate * sill_estimate_) {
    ++stats_.variance_rejections;
    return std::nullopt;
  }

  outcome.regularized = result->regularized;
  return result->estimate + trend_value(query);
}

EvalOutcome KrigingPolicy::evaluate(const Config& config,
                                    const SimulatorFn& simulate) {
  EvalOutcome outcome;
  ++stats_.total;

  // Exact-match memoization: an already-simulated configuration is served
  // from the store — no re-simulation, and no duplicate support point to
  // make the kriging system singular.
  if (const auto hit = store_.find(config)) {
    outcome.value = store_.value(*hit);
    outcome.cached = true;
    ++stats_.exact_hits;
    return outcome;
  }

  const auto neighborhood = neighborhood_of(config);
  outcome.neighbors = neighborhood.count();

  if (neighborhood.count() > options_.nn_min) {
    if (auto estimate = try_interpolate(config, neighborhood, outcome)) {
      outcome.value = *estimate;
      outcome.interpolated = true;
      ++stats_.interpolated;
      stats_.neighbors_per_interpolation.add(
          static_cast<double>(neighborhood.count()));
      return outcome;
    }
    ++stats_.kriging_failures;
  }

  // Simulation path (lines 19-23): evaluate and enrich the store.
  outcome.value = simulate(config);
  outcome.interpolated = false;
  store_.add(config, outcome.value);
  ++stats_.simulated;
  return outcome;
}

std::vector<EvalOutcome> KrigingPolicy::evaluate_batch(
    const std::vector<Config>& batch, const SimulatorFn& simulate,
    util::ThreadPool* pool) {
  const std::size_t n = batch.size();
  std::vector<EvalOutcome> outcomes(n);
  if (n == 0) return outcomes;

  enum class Plan : unsigned char { kStoreHit, kAlias, kInterpolate, kSimulate };
  std::vector<Plan> plan(n, Plan::kStoreHit);
  std::vector<std::size_t> slot(n, 0);  ///< Simulation slot (owner or alias).
  std::vector<unsigned char> interp_failed(n, 0);
  std::vector<std::size_t> owners;  ///< Batch index owning each slot.
  std::unordered_map<Config, std::size_t, ConfigHash> pending;

  // Phase 1 (serial): partition against the store as it stands at batch
  // entry. Decisions are a pure function of (store state, batch order) —
  // independent of how the simulations will later be scheduled.
  for (std::size_t i = 0; i < n; ++i) {
    EvalOutcome& out = outcomes[i];
    if (const auto hit = store_.find(batch[i])) {
      out.value = store_.value(*hit);
      out.cached = true;
      plan[i] = Plan::kStoreHit;
      continue;
    }
    if (const auto it = pending.find(batch[i]); it != pending.end()) {
      plan[i] = Plan::kAlias;
      slot[i] = it->second;
      continue;
    }
    const auto neighborhood = neighborhood_of(batch[i]);
    out.neighbors = neighborhood.count();
    if (neighborhood.count() > options_.nn_min) {
      if (auto estimate = try_interpolate(batch[i], neighborhood, out)) {
        out.value = *estimate;
        out.interpolated = true;
        plan[i] = Plan::kInterpolate;
        continue;
      }
      interp_failed[i] = 1;
    }
    plan[i] = Plan::kSimulate;
    slot[i] = owners.size();
    pending.emplace(batch[i], owners.size());
    owners.push_back(i);
  }

  // Phase 2: run the pending simulations — on the pool when given, inline
  // otherwise. Each result lands in its own index-addressed slot, so the
  // execution schedule cannot leak into the results.
  std::vector<double> sim_values(owners.size());
  util::parallel_for_indexed(pool, owners.size(), [&](std::size_t s) {
    sim_values[s] = simulate(batch[owners[s]]);
  });

  // Phase 3 (serial): fold results into the store and the statistics in
  // candidate-index order — a deterministic reduction.
  for (std::size_t i = 0; i < n; ++i) {
    ++stats_.total;
    switch (plan[i]) {
      case Plan::kStoreHit:
        ++stats_.exact_hits;
        break;
      case Plan::kAlias:
        outcomes[i].value = sim_values[slot[i]];
        outcomes[i].cached = true;
        ++stats_.exact_hits;
        break;
      case Plan::kInterpolate:
        ++stats_.interpolated;
        stats_.neighbors_per_interpolation.add(
            static_cast<double>(outcomes[i].neighbors));
        break;
      case Plan::kSimulate:
        if (interp_failed[i]) ++stats_.kriging_failures;
        outcomes[i].value = sim_values[slot[i]];
        store_.add(batch[i], outcomes[i].value);
        ++stats_.simulated;
        break;
    }
  }
  return outcomes;
}

}  // namespace ace::dse
