#include "dse/kriging_policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "dse/batch_sim.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/vector.hpp"
#include "util/contract.hpp"

namespace ace::dse {

namespace {

constexpr double kFaultedValue = -std::numeric_limits<double>::infinity();

FaultCode fault_code_of(util::CallFault fault) {
  switch (fault) {
    case util::CallFault::kThrew: return FaultCode::kSimulatorThrow;
    case util::CallFault::kNonFinite: return FaultCode::kNonFinite;
    case util::CallFault::kOverDeadline: return FaultCode::kTimeout;
    case util::CallFault::kContractViolation:
      return FaultCode::kContractViolation;
    case util::CallFault::kNone: break;
  }
  return FaultCode::kNone;
}

/// Least-squares fit of λ ≈ β0 + Σ β_i x_i over the store. Returns the
/// mean-only coefficient vector {mean} when the design is rank deficient
/// (e.g. every stored configuration lies on one axis sweep).
std::vector<double> fit_linear_trend(
    const std::vector<std::vector<double>>& points,
    const std::vector<double>& values) {
  const std::size_t n = points.size();
  const std::size_t dim = points.front().size();
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(n);
  if (n < dim + 2) return {mean};

  linalg::Matrix design(n, dim + 1);
  linalg::Vector rhs(n);
  for (std::size_t r = 0; r < n; ++r) {
    design(r, 0) = 1.0;
    for (std::size_t c = 0; c < dim; ++c) design(r, c + 1) = points[r][c];
    rhs[r] = values[r];
  }
  const linalg::QrDecomposition qr(design);
  if (qr.rank_deficient()) return {mean};
  const linalg::Vector beta = qr.solve(rhs);
  return std::vector<double>(beta.data().begin(), beta.data().end());
}

}  // namespace

KrigingPolicy::KrigingPolicy(PolicyOptions options)
    : options_(std::move(options)),
      factor_cache_(options_.factor_cache_capacity) {
  if (options_.distance < 0)
    throw std::invalid_argument("KrigingPolicy: distance must be >= 0");
  if (options_.variance_gate < 0.0)
    throw std::invalid_argument("KrigingPolicy: variance_gate must be >= 0");
  if (options_.loo_gate <= 0.0 || !std::isfinite(options_.loo_gate))
    throw std::invalid_argument("KrigingPolicy: loo_gate must be > 0");
  if (options_.seq_confidence <= 0.0 ||
      !std::isfinite(options_.seq_confidence))
    throw std::invalid_argument("KrigingPolicy: seq_confidence must be > 0");
  if (options_.noise_nugget < 0.0 || !std::isfinite(options_.noise_nugget))
    throw std::invalid_argument(
        "KrigingPolicy: noise_nugget must be finite and >= 0");
  gate_ = make_gate(options_);
  effective_nugget_ = options_.noise_nugget;
}

double KrigingPolicy::trend_value(const std::vector<double>& x) const {
  if (trend_.empty()) return 0.0;
  double acc = trend_[0];
  for (std::size_t i = 1; i < trend_.size(); ++i) acc += trend_[i] * x[i - 1];
  return acc;
}

bool KrigingPolicy::refit_model() {
  const util::LockGuard lock(mutex_);
  return refit_model_locked();
}

bool KrigingPolicy::refit_model_locked() {
  // Record the attempt for checkpoint replay: re-running the same attempts
  // at the same store sizes against the rebuilt store reproduces the model,
  // trend and refit clocks exactly (store values are immutable once added
  // on every policy path — exact-match memoization prevents duplicates).
  fit_events_.push_back(store_.size());
  fit_attempted_ = true;
  sims_at_last_attempt_ = store_.size();
  if (store_.size() < 2) {
    ++stats_.failed_refits;
    return false;
  }

  const auto distance = options_.use_l2_distance ? kriging::l2_distance
                                                 : kriging::l1_distance;
  const kriging::EmpiricalVariogram* variogram = nullptr;
  if (options_.drift == kriging::DriftKind::kLinear) {
    // Regression kriging: identify the global trend first, then model the
    // spatial structure of the residuals. The residual field changes with
    // the trend, so this path rebuilds the variogram from scratch.
    std::vector<std::vector<double>> points;
    points.reserve(store_.size());
    for (const auto& c : store_.configs()) points.push_back(to_real(c));
    std::vector<double> field = store_.values();
    trend_ = fit_linear_trend(points, field);
    for (std::size_t i = 0; i < field.size(); ++i)
      field[i] -= trend_value(points[i]);
    variogram_ = std::make_unique<kriging::EmpiricalVariogram>(
        points, field, distance, 1.0);
    variogram = variogram_.get();
  } else {
    // Ordinary kriging: the field is the stored values themselves, so the
    // variogram only needs the pairs the new simulations introduce —
    // O(k·N) per refit instead of the O(N²) full rebuild.
    trend_.clear();
    if (!variogram_)
      variogram_ =
          std::make_unique<kriging::EmpiricalVariogram>(distance, 1.0);
    std::vector<std::vector<double>> new_points;
    std::vector<double> new_values;
    for (std::size_t i = variogram_->sample_count(); i < store_.size(); ++i) {
      new_points.push_back(to_real(store_.config(i)));
      new_values.push_back(store_.value(i));
    }
    variogram_->extend(new_points, new_values);
    variogram = variogram_.get();
  }

  if (variogram->bins().size() < 2) {
    ++stats_.failed_refits;
    return false;
  }
  model_ = kriging::fit_best(*variogram, options_.fit).model;
  sill_estimate_ = variogram->value_variance();
  sims_at_last_fit_ = store_.size();
  ++stats_.refits;
  // The model (and, under regression kriging, the trend residuals) just
  // changed: every cached factorization interpolates the old field. The
  // generation bump makes any surviving (pinned) entry unmatchable even
  // without the clear — the cache's own staleness defence.
  ++model_generation_;
  factor_cache_.clear();
  // Stochastic-kriging nugget from the fit: the fitted variogram's γ(0)
  // read as measurement noise τ². Updated before the LOO pass so the
  // calibration sees the systems future queries will actually assemble.
  if (options_.nugget_from_fit) effective_nugget_ = model_->nugget();
  run_loo_calibration_locked();
  return true;
}

void KrigingPolicy::run_loo_calibration_locked() {
  if (!gate_->wants_loo() || !model_) return;
  const std::size_t n = store_.size();
  if (n < 2) return;
  // Window the pass: each residual is O(window²) against the shared
  // factorization, so the full store would make refits O(N³)-ish again.
  const std::size_t window = std::max<std::size_t>(2, options_.loo_window);
  const std::size_t first = n > window ? n - window : 0;
  std::vector<std::vector<double>> points;
  std::vector<double> values;
  points.reserve(n - first);
  values.reserve(n - first);
  for (std::size_t i = first; i < n; ++i) {
    points.push_back(to_real(store_.config(i)));
    values.push_back(store_.value(i));
  }
  if (!trend_.empty())
    for (std::size_t i = 0; i < values.size(); ++i)
      values[i] -= trend_value(points[i]);
  const auto distance = options_.use_l2_distance ? kriging::l2_distance
                                                 : kriging::l1_distance;
  kriging::SystemSpec spec{kriging::SystemKind::kOrdinary};
  spec.noise_nugget = effective_nugget_;
  kriging::KrigingSystem system(spec, std::move(points), std::move(values),
                                *model_, distance);
  const auto report = system.loo_residuals();
  if (!report || report->residuals.empty()) return;

  LooSummary summary;
  summary.count = report->residuals.size();
  double abs_sum = 0.0;
  double std_sum = 0.0;
  std::size_t std_count = 0;
  for (std::size_t i = 0; i < report->residuals.size(); ++i) {
    const double abs_e = std::abs(report->residuals[i]);
    abs_sum += abs_e;
    stats_.loo_abs_error.add(abs_e);
    const double var = report->variances[i];
    if (var > 0.0) {
      std_sum += report->residuals[i] * report->residuals[i] / var;
      ++std_count;
    }
  }
  summary.mean_abs_residual = abs_sum / static_cast<double>(summary.count);
  summary.mean_sq_standardized =
      std_count == 0 ? 0.0 : std_sum / static_cast<double>(std_count);
  ++stats_.loo_passes;
  gate_->calibrate(summary);
}

Neighborhood KrigingPolicy::neighborhood_of(const Config& config) const {
  return options_.use_l2_distance
             ? store_.neighbors_within_l2(
                   config, static_cast<double>(options_.distance))
             : store_.neighbors_within(config, options_.distance);
}

bool KrigingPolicy::model_ready_locked() {
  // Identify (or periodically re-identify) the semi-variogram. A failed
  // attempt resets the refit clock, so the O(N²)-ish work is not retried
  // until another refit_period of simulations has accumulated.
  const bool due =
      !model_ || store_.size() >= sims_at_last_fit_ + options_.refit_period;
  if (due) {
    if (!model_ && store_.size() < options_.min_fit_points) return false;
    const bool attempt_allowed =
        !fit_attempted_ ||
        store_.size() >= sims_at_last_attempt_ + options_.refit_period;
    if (attempt_allowed) (void)refit_model_locked();
    if (!model_) return false;
  }
  return true;
}

std::optional<double> KrigingPolicy::try_interpolate(
    const Config& config, const Neighborhood& neighborhood,
    EvalOutcome& outcome,
    const std::optional<kriging::KrigingResult>* presolved) {
  if (!model_ready_locked()) return std::nullopt;

  std::vector<std::vector<double>> points;
  std::vector<double> values;
  store_.gather(neighborhood, points, values);
  const std::vector<double> query = to_real(config);

  // Regression kriging: interpolate the residual field and add the global
  // trend back at the query. With no trend this is the paper's ordinary
  // kriging verbatim.
  if (!trend_.empty())
    for (std::size_t i = 0; i < values.size(); ++i)
      values[i] -= trend_value(points[i]);

  const auto distance = options_.use_l2_distance ? kriging::l2_distance
                                                 : kriging::l1_distance;

  // The solve itself runs on a kriging::KrigingSystem. Cache off (the
  // default): a throwaway all-in-base system — bit-identical to the old
  // kriging::krige() direct path. Cache on: look the support-index set up
  // in the factor cache, reusing or extending an overlapping system's
  // factorization instead of rebuilding it.
  std::optional<kriging::KrigingResult> result;
  if (presolved) {
    // evaluate_batch's group pre-pass already solved this query on the
    // group's shared system (one factorization, one multi-RHS solve);
    // acquisition and factorization accounting happened there.
    result = *presolved;
  } else if (options_.factor_cache_capacity > 0) {
    FactorAcquire how = FactorAcquire::kFresh;
    const FactorCache::Pin system = factor_cache_.acquire(
        neighborhood.indices, points, values, *model_, distance,
        effective_nugget_, model_generation_, how);
    if (how == FactorAcquire::kHit) ++stats_.factor_cache_hits;
    if (how == FactorAcquire::kExtend) ++stats_.factor_extends;
    const std::size_t before = system->stats().full_factorizations;
    result = system->query(query);
    stats_.full_factorizations +=
        system->stats().full_factorizations - before;
  } else {
    kriging::SystemSpec spec{kriging::SystemKind::kOrdinary};
    spec.noise_nugget = effective_nugget_;
    kriging::KrigingSystem system(spec, points, values, *model_, distance);
    result = system.query(query);
    stats_.full_factorizations += system.stats().full_factorizations;
  }
  if (!result) return std::nullopt;

  // Conditioning observability: every solved system reports its pivot-
  // ratio condition estimate and whether the ridge ladder was needed.
  stats_.rcond_per_solve.add(result->rcond);
  if (result->regularized) ++stats_.ridge_fallbacks;

  // Sanity guard: a (residual) estimate far outside the support values'
  // own interval signals an ill-conditioned system, not information.
  if (options_.sanity_span > 0.0) {
    double lo = values.front(), hi = values.front();
    for (double v : values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double span = std::max(hi - lo, 1e-12);
    if (result->estimate < lo - options_.sanity_span * span ||
        result->estimate > hi + options_.sanity_span * span)
      return std::nullopt;
  }

  // Post-solve acquisition decision: the configured gate weighs the
  // solved interpolation's evidence (estimate, kriging variance, field
  // sill) and either stands by it or routes the configuration to
  // simulation — the variance ceiling, LOO-calibrated ceiling and
  // sequential-design criteria all live behind this one seam
  // (dse/acquisition.hpp). Vetoes bump the gate's own counter.
  const double estimate = result->estimate + trend_value(query);
  if (!gate_->accept(GateSolution{estimate, result->variance, sill_estimate_},
                     stats_))
    return std::nullopt;

  outcome.regularized = result->regularized;
  ACE_ENSURE(std::isfinite(estimate),
             "kriging interpolation must yield a finite estimate");
  return estimate;
}

util::GuardedCall KrigingPolicy::run_simulation(
    const Config& config, const SimulatorFn& simulate) const {
  // The task key is a pure function of the configuration, so the backoff
  // jitter (and thus the whole retry schedule) is identical whether the
  // call runs inline or on any worker thread.
  return util::call_with_retry(options_.retry, ConfigHash{}(config),
                               [&] { return simulate(config); });
}

void KrigingPolicy::fold_simulation(const Config& config,
                                    const util::GuardedCall& sim,
                                    EvalOutcome& outcome) {
  outcome.attempts = sim.attempts;
  stats_.simulator_faults += sim.faulted_attempts;
  if (sim.attempts > 1) stats_.retries += sim.attempts - 1;
  stats_.timeouts += sim.timeouts;
  if (sim.ok()) {
    outcome.value = sim.value;
    outcome.source = EvalSource::kSimulated;
    store_.add(config, outcome.value);
    ++stats_.simulated;
    return;
  }
  outcome.value = kFaultedValue;
  outcome.source = EvalSource::kFaulted;
  outcome.fault = fault_code_of(sim.fault);
  if (store_.quarantine(config, outcome.fault)) ++stats_.quarantined;
}

EvalOutcome KrigingPolicy::evaluate(const Config& config,
                                    const SimulatorFn& simulate) {
  const util::LockGuard lock(mutex_);
  EvalOutcome outcome;
  ++stats_.total;

  // Exact-match memoization: an already-simulated configuration is served
  // from the store — no re-simulation, and no duplicate support point to
  // make the kriging system singular.
  if (const auto hit = store_.find(config)) {
    outcome.value = store_.value(*hit);
    outcome.cached = true;
    outcome.source = EvalSource::kExactHit;
    ++stats_.exact_hits;
    return outcome;
  }

  const auto neighborhood = neighborhood_of(config);
  outcome.neighbors = neighborhood.count();

  bool interpolation_failed = false;
  if (gate_->attempt(GateQuery{neighborhood.count()})) {
    if (auto estimate = try_interpolate(config, neighborhood, outcome)) {
      outcome.value = *estimate;
      outcome.interpolated = true;
      outcome.source = EvalSource::kInterpolated;
      ++stats_.interpolated;
      stats_.neighbors_per_interpolation.add(
          static_cast<double>(neighborhood.count()));
      return outcome;
    }
    interpolation_failed = true;
    ++stats_.kriging_failures;
  }

  // A quarantined configuration spent its simulation retry budget in an
  // earlier evaluation; interpolation (above) was its only remaining
  // path, so failing that the evaluation terminates faulted.
  if (const auto code = store_.quarantined(config)) {
    outcome.value = kFaultedValue;
    outcome.source = EvalSource::kFaulted;
    outcome.fault =
        interpolation_failed ? FaultCode::kKrigingUnsolvable : *code;
    return outcome;
  }

  // Simulation path (lines 19-23): evaluate under the fault guard and
  // enrich the store (or the quarantine list) with the result. Held lock
  // is the documented contract: the simulator is called with the policy
  // mutex held and must not call back into this policy (see evaluate()).
  // ace-lint: allow(blocking-under-lock)
  fold_simulation(config, run_simulation(config, simulate), outcome);
  return outcome;
}

PolicySnapshot KrigingPolicy::snapshot() const {
  const util::LockGuard lock(mutex_);
  PolicySnapshot snap;
  snap.configs = store_.configs();
  snap.values = store_.values();
  snap.quarantine = store_.quarantine_log();
  snap.fit_events = fit_events_;
  snap.stats = stats_;
  return snap;
}

void KrigingPolicy::restore(const PolicySnapshot& snapshot) {
  const util::LockGuard lock(mutex_);
  if (!store_.empty() || store_.quarantine_count() != 0 || fit_attempted_ ||
      stats_.total != 0)
    throw std::logic_error(
        "KrigingPolicy::restore: policy must be freshly constructed");
  if (snapshot.configs.size() != snapshot.values.size())
    throw std::invalid_argument(
        "KrigingPolicy::restore: configs/values size mismatch");

  // Replay: grow the store in insertion order and re-run each recorded fit
  // attempt at the store size it originally happened at. The empirical
  // variogram folds pairs in the same order as the original run, the fit
  // sees the same bins, and the refit clocks land on the same values — so
  // every subsequent evaluation behaves bit-identically.
  // Quarantine events replay *before* the adds. In the original run a
  // configuration appearing in both lists was necessarily quarantined
  // first and added cleanly later (a stored configuration is served from
  // the store, so it never re-simulates and never re-faults); replaying in
  // that order lets add() lift the active quarantine exactly as the live
  // run did, leaving the log entry for audit.
  for (const auto& [config, code] : snapshot.quarantine)
    (void)store_.quarantine(config, code);
  std::size_t next_event = 0;
  const auto replay_fits = [&] {
    while (next_event < snapshot.fit_events.size() &&
           snapshot.fit_events[next_event] == store_.size()) {
      ++next_event;
      (void)refit_model_locked();
    }
  };
  replay_fits();
  for (std::size_t i = 0; i < snapshot.configs.size(); ++i) {
    store_.add(snapshot.configs[i], snapshot.values[i]);
    replay_fits();
  }
  if (next_event != snapshot.fit_events.size())
    throw std::invalid_argument(
        "KrigingPolicy::restore: fit events inconsistent with store size");
  // The replayed refits bumped counters and re-recorded fit events; the
  // snapshot's accounting is authoritative.
  stats_ = snapshot.stats;
  fit_events_ = snapshot.fit_events;
}

std::vector<EvalOutcome> KrigingPolicy::evaluate_batch(
    const std::vector<Config>& batch, const SimulatorFn& simulate,
    util::ThreadPool* pool) {
  PooledBatchSimulator backend(simulate, options_.retry, pool);
  return evaluate_batch(batch, backend);
}

std::vector<EvalOutcome> KrigingPolicy::evaluate_batch(
    const std::vector<Config>& batch, BatchSimulator& backend) {
  // Held across all three phases, including the backend simulations of
  // phase 2: the backend only executes guarded simulator calls (no policy
  // state), so holding the policy lock is deadlock-free and keeps the
  // partition, simulate and fold steps one atomic policy transition.
  const util::LockGuard lock(mutex_);
  const std::size_t n = batch.size();
  std::vector<EvalOutcome> outcomes(n);
  if (n == 0) return outcomes;

  enum class Plan : unsigned char {
    kStoreHit, kAlias, kInterpolate, kSimulate, kFault
  };
  std::vector<Plan> plan(n, Plan::kStoreHit);
  std::vector<std::size_t> slot(n, 0);  ///< Simulation slot (owner or alias).
  std::vector<unsigned char> interp_failed(n, 0);
  std::vector<FaultCode> fault(n, FaultCode::kNone);  ///< For kFault plans.
  std::vector<std::size_t> owners;  ///< Batch index owning each slot.
  std::unordered_map<Config, std::size_t, ConfigHash> pending;

  // Phase 0 (factor cache on only): group this batch's interpolation
  // candidates by support-index set and presolve each multi-member group
  // on one shared system — one cache acquisition and one multi-RHS ladder
  // per group instead of per candidate. Each presolved solution is
  // identical to what the per-candidate path computes (the query_batch
  // contract), so phase 1 reaches the same decisions; only duplicated
  // acquire/assemble/solve work disappears. The store cannot change
  // between here and phase 1 (adds happen in phase 3), so the
  // neighbourhoods and the refit gate are the ones phase 1 would see.
  std::unordered_map<std::size_t, std::optional<kriging::KrigingResult>>
      group_solutions;
  if (options_.factor_cache_capacity > 0 && n > 1) {
    std::map<std::vector<std::size_t>, std::vector<std::size_t>> groups;
    bool gate_checked = false;
    bool gate_open = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (store_.find(batch[i])) continue;
      const auto neighborhood = neighborhood_of(batch[i]);
      if (!gate_->attempt(GateQuery{neighborhood.count()})) continue;
      if (!gate_checked) {
        // Run the refit gate exactly where the per-candidate path would
        // have: at the batch's first interpolation candidate.
        gate_checked = true;
        gate_open = model_ready_locked();
      }
      if (!gate_open) break;
      groups[neighborhood.indices].push_back(i);
    }
    const auto distance = options_.use_l2_distance ? kriging::l2_distance
                                                   : kriging::l1_distance;
    for (const auto& [indices, members] : groups) {
      if (members.size() < 2) continue;  // Nothing to amortize.
      Neighborhood nbhd;
      nbhd.indices = indices;
      std::vector<std::vector<double>> points;
      std::vector<double> values;
      store_.gather(nbhd, points, values);
      if (!trend_.empty())
        for (std::size_t k = 0; k < values.size(); ++k)
          values[k] -= trend_value(points[k]);
      FactorAcquire how = FactorAcquire::kFresh;
      const FactorCache::Pin system = factor_cache_.acquire(
          indices, points, values, *model_, distance, effective_nugget_,
          model_generation_, how);
      if (how == FactorAcquire::kHit) ++stats_.factor_cache_hits;
      if (how == FactorAcquire::kExtend) ++stats_.factor_extends;
      // Members past the first would have been exact cache hits on the
      // per-candidate path; keep the counters comparable.
      stats_.factor_cache_hits += members.size() - 1;
      std::vector<std::vector<double>> queries;
      queries.reserve(members.size());
      for (const std::size_t i : members) queries.push_back(to_real(batch[i]));
      const std::size_t before = system->stats().full_factorizations;
      auto solutions = system->query_batch(queries);
      stats_.full_factorizations +=
          system->stats().full_factorizations - before;
      for (std::size_t k = 0; k < members.size(); ++k)
        group_solutions.emplace(members[k], std::move(solutions[k]));
    }
  }

  // Phase 1 (serial): partition against the store as it stands at batch
  // entry. Decisions are a pure function of (store state, batch order) —
  // independent of how the simulations will later be scheduled.
  for (std::size_t i = 0; i < n; ++i) {
    EvalOutcome& out = outcomes[i];
    if (const auto hit = store_.find(batch[i])) {
      out.value = store_.value(*hit);
      out.cached = true;
      out.source = EvalSource::kExactHit;
      plan[i] = Plan::kStoreHit;
      continue;
    }
    if (const auto it = pending.find(batch[i]); it != pending.end()) {
      plan[i] = Plan::kAlias;
      slot[i] = it->second;
      continue;
    }
    const auto neighborhood = neighborhood_of(batch[i]);
    out.neighbors = neighborhood.count();
    if (gate_->attempt(GateQuery{neighborhood.count()})) {
      const auto pre = group_solutions.find(i);
      if (auto estimate = try_interpolate(
              batch[i], neighborhood, out,
              pre == group_solutions.end() ? nullptr : &pre->second)) {
        out.value = *estimate;
        out.interpolated = true;
        out.source = EvalSource::kInterpolated;
        plan[i] = Plan::kInterpolate;
        continue;
      }
      interp_failed[i] = 1;
    }
    // Quarantined candidates never re-simulate: their retry budget is
    // spent, and interpolation (above) was their only remaining path.
    if (const auto code = store_.quarantined(batch[i])) {
      plan[i] = Plan::kFault;
      fault[i] = interp_failed[i] ? FaultCode::kKrigingUnsolvable : *code;
      continue;
    }
    plan[i] = Plan::kSimulate;
    slot[i] = owners.size();
    pending.emplace(batch[i], owners.size());
    owners.push_back(i);
  }

  // Phase 2: hand the pending simulations to the backend — a thread pool,
  // the distributed coordinator, or inline execution. Each guarded result
  // lands in its own index-addressed slot, so neither the execution
  // schedule nor the physical placement can leak into the results, and a
  // faulted candidate cannot abort its siblings.
  std::vector<Config> pending_configs;
  pending_configs.reserve(owners.size());
  for (const std::size_t owner : owners) pending_configs.push_back(batch[owner]);
  // The backend runs with the policy mutex held by documented contract
  // (BatchSimulator must never call back into the invoking policy); the
  // partition/fold bit-exactness argument depends on the store being
  // frozen across the whole batch.
  // ace-lint: allow(blocking-under-lock)
  std::vector<util::GuardedCall> sims = backend.simulate_many(pending_configs);
  if (sims.size() != owners.size())
    throw std::logic_error(
        "evaluate_batch: backend returned wrong result count");

  // Phase 3 (serial): fold results into the store and the statistics in
  // candidate-index order — a deterministic reduction. Faulted candidates
  // degrade individually (quarantine + -inf value); healthy siblings are
  // folded exactly as in a fault-free batch.
  for (std::size_t i = 0; i < n; ++i) {
    ++stats_.total;
    switch (plan[i]) {
      case Plan::kStoreHit:
        ++stats_.exact_hits;
        break;
      case Plan::kAlias: {
        const util::GuardedCall& sim = sims[slot[i]];
        if (sim.ok()) {
          outcomes[i].value = sim.value;
          outcomes[i].cached = true;
          outcomes[i].source = EvalSource::kExactHit;
          ++stats_.exact_hits;
        } else {
          // The owning candidate faulted; the alias shares the outcome,
          // but quarantine and fault accounting belong to the owner.
          outcomes[i].value = kFaultedValue;
          outcomes[i].source = EvalSource::kFaulted;
          outcomes[i].fault = fault_code_of(sim.fault);
        }
        break;
      }
      case Plan::kInterpolate:
        ++stats_.interpolated;
        stats_.neighbors_per_interpolation.add(
            static_cast<double>(outcomes[i].neighbors));
        break;
      case Plan::kFault:
        if (interp_failed[i]) ++stats_.kriging_failures;
        outcomes[i].value = kFaultedValue;
        outcomes[i].source = EvalSource::kFaulted;
        outcomes[i].fault = fault[i];
        break;
      case Plan::kSimulate:
        if (interp_failed[i]) ++stats_.kriging_failures;
        fold_simulation(batch[i], sims[slot[i]], outcomes[i]);
        break;
    }
  }
  return outcomes;
}

}  // namespace ace::dse
