#include "dse/config.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace ace::dse {

int l1_distance(const Config& a, const Config& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("l1_distance: size mismatch");
  int acc = 0;
  // The canonical definition every other path must match.
  // ace-lint: allow(raw-distance-loop)
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc;
}

double l2_distance(const Config& a, const Config& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("l2_distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

std::vector<double> to_real(const Config& c) {
  std::vector<double> out(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) out[i] = c[i];
  return out;
}

std::string to_string(const Config& c) {
  std::ostringstream ss;
  ss << "(";
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i > 0) ss << ", ";
    ss << c[i];
  }
  ss << ")";
  return ss.str();
}

std::size_t ConfigHash::operator()(const Config& c) const {
  std::size_t h = 1469598103934665603ULL;  // FNV-1a offset basis.
  for (int v : c) {
    h ^= static_cast<std::size_t>(static_cast<unsigned int>(v));
    h *= 1099511628211ULL;
  }
  return h;
}

Lattice::Lattice(std::size_t dims, int lo, int hi)
    : dimensions(dims), lower(lo), upper(hi) {
  if (dimensions == 0)
    throw std::invalid_argument("Lattice: dimensions must be positive");
  if (lower > upper)
    throw std::invalid_argument("Lattice: lower must be <= upper");
}

bool Lattice::contains(const Config& c) const {
  if (c.size() != dimensions) return false;
  for (int v : c)
    if (v < lower || v > upper) return false;
  return true;
}

Config Lattice::uniform(int value) const {
  if (value < lower || value > upper)
    throw std::invalid_argument("Lattice::uniform: value out of range");
  return Config(dimensions, value);
}

}  // namespace ace::dse
