// Simulated-annealing DSE (extension): the paper notes its evaluation
// method "can be used for other AC DSE as long as the interpolated
// surface is continuous and a distance between configurations can be
// defined". Annealing is the natural stress test — unlike the greedy
// min+1 walk it jumps around the lattice, producing much more scattered
// evaluation patterns for the kriging policy to serve.
//
// The optimizer minimizes E(w) = C(w) + penalty·max(0, λm − λ(w)) with
// single-coordinate ±1 moves, geometric cooling and a deterministic
// seeded generator.
#pragma once

#include <cstdint>
#include <cstddef>

#include "dse/config.hpp"
#include "dse/cost.hpp"
#include "dse/min_plus_one.hpp"  // EvaluateFn

namespace ace::dse {

struct AnnealingOptions {
  double lambda_min = 0.0;       ///< Quality constraint λm.
  CostFn cost = linear_cost;     ///< Implementation-cost objective.
  std::uint64_t seed = 1;        ///< Move/acceptance stream seed.
  std::size_t iterations = 4000; ///< Proposed moves.
  double initial_temperature = 8.0;  ///< In cost units.
  double cooling = 0.9985;       ///< Geometric factor per iteration.
  double penalty = 50.0;         ///< Cost units per unit of λ shortfall.
};

struct AnnealingResult {
  Config best;                   ///< Best feasible (or best-energy) config.
  double best_lambda = 0.0;
  double best_cost = 0.0;
  bool feasible = false;         ///< λ(best) >= λm found.
  std::size_t evaluations = 0;   ///< Metric evaluations requested.
  std::size_t accepted = 0;      ///< Accepted moves.
};

/// Run annealing over the lattice. The walk starts at the lattice's upper
/// corner (maximally accurate, maximally expensive). Throws
/// std::invalid_argument on a null cost, non-positive temperature /
/// cooling outside (0, 1], or zero iterations.
AnnealingResult simulated_annealing(const EvaluateFn& evaluate,
                                    const Lattice& lattice,
                                    const AnnealingOptions& options);

}  // namespace ace::dse
