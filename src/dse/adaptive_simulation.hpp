// Adaptive observation count via inferential statistics — the paper's
// ref [14] (Bonnot et al., ICASSP 2019) and the complementary lever to
// kriging in Eq. 2: kriging cuts Nλ (the number of metric evaluations),
// this cuts No (the observations per evaluation). A noise-power
// evaluation draws input samples in batches and stops once the
// confidence interval on the mean squared error is tight enough.
#pragma once

#include <cstddef>
#include <functional>

namespace ace::dse {

struct AdaptiveSimOptions {
  std::size_t batch = 64;        ///< Observations added per round.
  std::size_t min_batches = 2;   ///< Rounds before the test may stop.
  double relative_half_width = 0.1;  ///< Stop: CI half-width <= this · mean.
  double z = 1.96;               ///< Normal quantile (1.96 = 95% CI).
};

struct AdaptiveSimResult {
  double mean = 0.0;            ///< Estimated metric (e.g. noise power).
  std::size_t observations = 0; ///< Samples actually consumed.
  bool converged = false;       ///< CI criterion met before exhaustion.
};

/// Estimate the mean of `observe(i)` for i in [0, total) adaptively:
/// consume batches until the z-CI half-width falls below
/// relative_half_width · |mean|, or all observations are used.
/// Throws std::invalid_argument on a null observer, zero total, zero
/// batch, or a non-positive tolerance.
AdaptiveSimResult adaptive_mean(
    const std::function<double(std::size_t)>& observe, std::size_t total,
    const AdaptiveSimOptions& options = {});

}  // namespace ace::dse
