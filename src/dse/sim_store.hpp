// Store of already-simulated configurations (the paper's Wsim / λsim).
//
// Only *simulated* configurations enter the store — interpolated points are
// never reused as kriging support ("If the configuration is interpolated,
// it is not used for kriging other configurations", Sec. III-B1).
#pragma once

#include <cstddef>
#include <vector>

#include "dse/config.hpp"

namespace ace::dse {

/// Indices of stored configurations within a given L1 radius of a query.
struct Neighborhood {
  std::vector<std::size_t> indices;
  std::size_t count() const { return indices.size(); }
};

/// Append-only store of (configuration, metric value) pairs.
class SimulationStore {
 public:
  /// Add a simulated configuration. Throws std::invalid_argument if the
  /// dimensionality differs from previously stored entries.
  void add(Config config, double value);

  std::size_t size() const { return configs_.size(); }
  bool empty() const { return configs_.empty(); }

  const Config& config(std::size_t i) const { return configs_.at(i); }
  double value(std::size_t i) const { return values_.at(i); }

  const std::vector<Config>& configs() const { return configs_; }
  const std::vector<double>& values() const { return values_; }

  /// All stored entries with L1 distance <= radius from the query
  /// (Algorithms 1-2, lines 7-16).
  Neighborhood neighbors_within(const Config& query, int radius) const;

  /// Same with Euclidean distance (extension ablation).
  Neighborhood neighbors_within_l2(const Config& query, double radius) const;

  /// Kriging support set for a neighborhood: real-coordinate points and
  /// their metric values.
  void gather(const Neighborhood& n, std::vector<std::vector<double>>& points,
              std::vector<double>& values) const;

 private:
  std::vector<Config> configs_;
  std::vector<double> values_;
};

}  // namespace ace::dse
