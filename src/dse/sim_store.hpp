// Store of already-simulated configurations (the paper's Wsim / λsim).
//
// Only *simulated* configurations enter the store — interpolated points are
// never reused as kriging support ("If the configuration is interpolated,
// it is not used for kriging other configurations", Sec. III-B1).
//
// The store is indexed two ways:
//   * an exact-match hash map, so re-evaluations of an already-simulated
//     configuration are O(1) memo lookups instead of fresh simulations;
//   * a coordinate-sum bucket index for radius queries: for any two
//     configurations |Σa − Σb| <= ||a − b||₁, so only buckets whose sum
//     falls in [Σq − r, Σq + r] can hold L1 neighbours of query q (and
//     within ±⌈√Nv·r⌉ for L2 queries, since ||·||₁ <= √Nv·||·||₂). This
//     replaces the O(N) linear scan per neighbourhood lookup with a scan
//     of the few populated buckets in the band.
//
// Faulted configurations are *quarantined*: a configuration whose
// simulation exhausted its retry budget (threw, returned NaN/Inf, or blew
// its deadline) is recorded with its fault code so it is never admitted as
// kriging support and never re-simulated beyond that budget. Non-finite λ
// values are rejected at add() with a typed error — a single NaN support
// point silently poisons every kriging estimate that draws on it.
// A *successful* add() lifts an earlier quarantine: a configuration that
// faulted once (e.g. a transient timeout) but later simulated cleanly —
// through restore-replay or a distributed merge — is healthy support, not
// a permanent outcast. The quarantine_log_ keeps the lifted entry for
// audit; only the active-quarantine map forgets it.
//
// For the radius scans the store additionally keeps a columnar (SoA)
// mirror of configs_ — one contiguous int column per coordinate, grown in
// lockstep under the same mutex. When a query's coordinate-sum band covers
// most of the store, neighbors_within switches from the bucket walk to a
// blocked contiguous scan over the mirror using the util::simd kernels
// (AVX2 when configured, scalar otherwise). Both paths — and both
// backends — return bit-identical neighbourhoods: L1 is integer-exact and
// the L2 scan compares the same exact integer-valued squared distance the
// scalar code computes (DESIGN.md §10 has the full contract).
//
// Thread-safety: every member — writes *and* reads — takes the annotated
// `mutex_`, so the Clang capability analysis (-Wthread-safety) proves the
// lock discipline statically instead of relying on the batch engine's
// phase-separation protocol being honoured by every future caller. The
// reference-returning accessors (config(), configs(), values(),
// quarantine_log()) hand out views into guarded containers; the batch
// engine's serial fold phases are the only consumers, and growth never
// invalidates an index the caller already holds (append-only vectors,
// duplicate adds update in place).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dse/config.hpp"
#include "dse/fault.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ace::dse {

/// Indices of stored configurations within a given L1 radius of a query.
struct Neighborhood {
  std::vector<std::size_t> indices;
  std::size_t count() const { return indices.size(); }
};

/// Indexed store of (configuration, metric value) pairs.
class SimulationStore {
 public:
  /// Add a simulated configuration and return its index. An exact
  /// duplicate updates the stored value in place instead of creating a
  /// second support point — duplicate support points make the kriging Γ
  /// matrix singular. A successful add lifts any active quarantine on the
  /// configuration (the quarantine log keeps the entry for audit). Throws
  /// std::invalid_argument if the dimensionality differs from previously
  /// stored entries and util::NonFiniteError if the value is NaN/Inf (a
  /// non-finite support point corrupts every estimate drawing on it).
  std::size_t add(Config config, double value) ACE_EXCLUDES(mutex_);

  /// Index of an exactly matching stored configuration, if any.
  std::optional<std::size_t> find(const Config& config) const
      ACE_EXCLUDES(mutex_);

  std::size_t size() const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return configs_.size();
  }
  bool empty() const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return configs_.empty();
  }

  const Config& config(std::size_t i) const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return configs_.at(i);
  }
  double value(std::size_t i) const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return values_.at(i);
  }

  const std::vector<Config>& configs() const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return configs_;
  }
  const std::vector<double>& values() const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return values_;
  }

  /// All stored entries with L1 distance <= radius from the query
  /// (Algorithms 1-2, lines 7-16), in ascending index order. A negative
  /// radius is a caller sign bug, not an empty query: ACE_REQUIRE rejects
  /// it in contract-checked builds instead of silently returning nothing.
  Neighborhood neighbors_within(const Config& query, int radius) const
      ACE_EXCLUDES(mutex_);

  /// Same with Euclidean distance (extension ablation). ACE_REQUIREs
  /// radius >= 0.0 like the L1 variant.
  Neighborhood neighbors_within_l2(const Config& query, double radius) const
      ACE_EXCLUDES(mutex_);

  /// Reference implementations: plain AoS linear scans with no bucket
  /// index and no SIMD. Deliberately unoptimized — the decision-identity
  /// oracle for the property tests and the baseline denominator for
  /// bench/micro_kriging's neighbour-search speedup attribution.
  Neighborhood neighbors_within_linear(const Config& query, int radius) const
      ACE_EXCLUDES(mutex_);
  Neighborhood neighbors_within_l2_linear(const Config& query,
                                          double radius) const
      ACE_EXCLUDES(mutex_);

  /// Kriging support set for a neighborhood: real-coordinate points and
  /// their metric values.
  void gather(const Neighborhood& n, std::vector<std::vector<double>>& points,
              std::vector<double>& values) const ACE_EXCLUDES(mutex_);

  /// Quarantine a configuration whose simulation exhausted its retry
  /// budget. Returns true when newly quarantined, false when the
  /// configuration is already actively quarantined (the original fault
  /// code is kept). Re-quarantining after a lift succeeds and appends a
  /// second log entry.
  bool quarantine(Config config, FaultCode code) ACE_EXCLUDES(mutex_);

  /// The fault code of an *active* quarantine, if any. Lifted quarantines
  /// (a successful add() superseded the fault) return nullopt.
  std::optional<FaultCode> quarantined(const Config& config) const
      ACE_EXCLUDES(mutex_);

  /// Number of quarantine events ever recorded (lifts do not shrink it —
  /// the log is the audit trail the checkpoint format serializes).
  std::size_t quarantine_count() const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return quarantine_log_.size();
  }

  /// Quarantined configurations in quarantine order (deterministic, unlike
  /// hash-map iteration — checkpoint files depend on this).
  const std::vector<std::pair<Config, FaultCode>>& quarantine_log() const
      ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return quarantine_log_;
  }

 private:
  void check_dimensions(const Config& c, const char* what) const
      ACE_REQUIRES(mutex_);

  /// Sum of bucket sizes in the coordinate-sum band [lo, hi].
  std::size_t band_population(int lo, int hi) const ACE_REQUIRES(mutex_);

  std::vector<Config> configs_ ACE_GUARDED_BY(mutex_);
  std::vector<double> values_ ACE_GUARDED_BY(mutex_);
  /// Columnar mirror of configs_: soa_[d][i] == configs_[i][d]. Grown only
  /// inside add() under mutex_, read only under mutex_ — the same lock
  /// discipline as the row store it mirrors.
  std::vector<std::vector<int>> soa_ ACE_GUARDED_BY(mutex_);
  /// Exact-match index: configuration -> position in configs_.
  std::unordered_map<Config, std::size_t, ConfigHash> exact_
      ACE_GUARDED_BY(mutex_);
  /// Radius-query index: coordinate sum -> positions with that sum.
  std::map<int, std::vector<std::size_t>> sum_buckets_ ACE_GUARDED_BY(mutex_);
  /// Faulted configurations: lookup map + insertion-ordered log.
  std::unordered_map<Config, FaultCode, ConfigHash> quarantine_
      ACE_GUARDED_BY(mutex_);
  std::vector<std::pair<Config, FaultCode>> quarantine_log_
      ACE_GUARDED_BY(mutex_);
  mutable util::Mutex mutex_{util::lock_order::Rank::kStore, "dse.store"};
};

}  // namespace ace::dse
