// The min+1 bit word-length optimization algorithm (Cantin et al., ISCAS
// 2001) — the paper's Algorithms 1 and 2, with the pseudocode typos fixed
// as documented in DESIGN.md:
//   * phase 1 decreases a variable while the constraint HOLDS and backs
//     off one bit when it breaks;
//   * phase 2 increments the variable whose +1 bit yields the HIGHEST
//     accuracy (middle/steepest ascent) until the constraint is met.
//
// The algorithms are agnostic to how λ is produced: pass an exhaustive
// simulator, a TrajectoryRecorder, or a KrigingPolicy-backed evaluator.
// Phase 2's candidate competition — Nv independent +1-bit evaluations per
// greedy step — can additionally be driven through a BatchEvaluateFn,
// which may fan the underlying simulations out to a thread pool (see
// KrigingPolicy::evaluate_batch / policy_batch_evaluator).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "dse/config.hpp"

namespace ace::dse {

/// Metric evaluation callable (λ = evaluateAccuracy in the paper).
using EvaluateFn = std::function<double(const Config&)>;

/// Batched metric evaluation: values[i] must correspond to batch[i]. A
/// batch implementation may execute the underlying simulations in
/// parallel, but must return the same values a serial left-to-right
/// evaluation of the batch would produce.
using BatchEvaluateFn =
    std::function<std::vector<double>(const std::vector<Config>&)>;

/// Adapt a scalar evaluator into a batch evaluator that evaluates the
/// candidates serially in index order (the serial reference semantics).
/// The returned callable references `evaluate` — do not outlive it.
BatchEvaluateFn serialize_evaluator(const EvaluateFn& evaluate);

struct MinPlusOneOptions {
  double lambda_min = 0.0;  ///< Accuracy constraint λm (λ >= λm feasible).
  std::size_t nv = 0;       ///< Number of word-length variables.
  int w_max = 16;           ///< Maximum word length (Nmax).
  int w_min = 2;            ///< Minimum word length.
  std::size_t max_steps = 100000;  ///< Safety cap on greedy iterations.
};

struct MinPlusOneResult {
  Config w_min;                       ///< Result of phase 1 (MINKWL).
  Config w_res;                       ///< Final optimized word lengths.
  double final_lambda = 0.0;          ///< λ(w_res).
  std::vector<std::size_t> decisions; ///< Chosen variable jc per greedy step.
  bool constraint_met = false;        ///< λ(w_res) >= λm.
};

/// Phase 1: per-variable minimum word lengths (Algorithm 1). The shared
/// all-Nmax warm-up configuration is evaluated exactly once, not once per
/// variable. Throws std::invalid_argument on nv == 0 or w_min > w_max.
Config determine_min_word_lengths(const EvaluateFn& evaluate,
                                  const MinPlusOneOptions& options);

/// Phase 2: greedy ascent from a starting vector (Algorithm 2).
MinPlusOneResult optimize_word_lengths(const EvaluateFn& evaluate,
                                       const MinPlusOneOptions& options,
                                       Config start);

/// Phase 2 with batched candidate competitions: each greedy step submits
/// all +1-bit candidates as one batch; ties resolve to the lowest variable
/// index, exactly as the scalar overload does.
MinPlusOneResult optimize_word_lengths(const BatchEvaluateFn& evaluate,
                                       const MinPlusOneOptions& options,
                                       Config start);

/// Both phases chained — the full min+1 bit algorithm.
MinPlusOneResult min_plus_one(const EvaluateFn& evaluate,
                              const MinPlusOneOptions& options);

/// Full algorithm with batched phase-2 competitions.
MinPlusOneResult min_plus_one(const BatchEvaluateFn& evaluate,
                              const MinPlusOneOptions& options);

// ---------------------------------------------------------------------------
// Resumable execution (the substrate of dse/checkpoint).
//
// The full algorithm is re-expressed as a cursor plus a step function; the
// batch overloads above run the cursor to completion, so there is exactly
// one implementation of the optimizer semantics. A cursor captured between
// steps, persisted, and stepped again continues bit-identically: each step
// is a pure function of (cursor, evaluator state), and the checkpoint
// module persists both.
// ---------------------------------------------------------------------------

/// Mid-run position of a min+1 execution. Phase 1 advances one variable's
/// full descent per step; phase 2 advances one greedy candidate
/// competition per step.
struct MinPlusOneCursor {
  int phase = 1;              ///< 1 = descents, 2 = greedy ascent, 3 = done.
  std::size_t var = 0;        ///< Phase 1: next variable to descend.
  Config w_min;               ///< Phase-1 result (final for indices < var).
  double lambda_at_max = 0.0; ///< λ(Nmax, …, Nmax), shared by all descents.
  bool have_lambda_at_max = false;
  Config w;                   ///< Phase-2 iterate.
  double lambda = 0.0;        ///< λ(w) once have_lambda.
  bool have_lambda = false;   ///< Phase-2 starting λ evaluated yet?
  std::vector<std::size_t> decisions;
  std::size_t steps = 0;

  bool finished() const { return phase >= 3; }

  friend bool operator==(const MinPlusOneCursor&,
                         const MinPlusOneCursor&) = default;
};

/// Cursor for a full run (phase 1 then phase 2). Validates options.
MinPlusOneCursor make_min_plus_one_cursor(const MinPlusOneOptions& options);

/// Cursor for a phase-2-only run from an explicit start (the
/// optimize_word_lengths semantics). Validates options and start size.
MinPlusOneCursor make_phase2_cursor(const MinPlusOneOptions& options,
                                    Config start);

/// Advance the cursor by one resumable unit. Returns true while the run is
/// unfinished. The evaluation sequence is identical to the historical
/// monolithic loops, so stepping a cursor to completion reproduces their
/// results exactly.
bool min_plus_one_step(const BatchEvaluateFn& evaluate,
                       const MinPlusOneOptions& options,
                       MinPlusOneCursor& cursor);

/// Package a finished (or abandoned) cursor as a result.
MinPlusOneResult min_plus_one_result(const MinPlusOneCursor& cursor,
                                     const MinPlusOneOptions& options);

}  // namespace ace::dse
