// The min+1 bit word-length optimization algorithm (Cantin et al., ISCAS
// 2001) — the paper's Algorithms 1 and 2, with the pseudocode typos fixed
// as documented in DESIGN.md:
//   * phase 1 decreases a variable while the constraint HOLDS and backs
//     off one bit when it breaks;
//   * phase 2 increments the variable whose +1 bit yields the HIGHEST
//     accuracy (middle/steepest ascent) until the constraint is met.
//
// The algorithms are agnostic to how λ is produced: pass an exhaustive
// simulator, a TrajectoryRecorder, or a KrigingPolicy-backed evaluator.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "dse/config.hpp"

namespace ace::dse {

/// Metric evaluation callable (λ = evaluateAccuracy in the paper).
using EvaluateFn = std::function<double(const Config&)>;

struct MinPlusOneOptions {
  double lambda_min = 0.0;  ///< Accuracy constraint λm (λ >= λm feasible).
  std::size_t nv = 0;       ///< Number of word-length variables.
  int w_max = 16;           ///< Maximum word length (Nmax).
  int w_min = 2;            ///< Minimum word length.
  std::size_t max_steps = 100000;  ///< Safety cap on greedy iterations.
};

struct MinPlusOneResult {
  Config w_min;                       ///< Result of phase 1 (MINKWL).
  Config w_res;                       ///< Final optimized word lengths.
  double final_lambda = 0.0;          ///< λ(w_res).
  std::vector<std::size_t> decisions; ///< Chosen variable jc per greedy step.
  bool constraint_met = false;        ///< λ(w_res) >= λm.
};

/// Phase 1: per-variable minimum word lengths (Algorithm 1).
/// Throws std::invalid_argument on nv == 0 or w_min > w_max.
Config determine_min_word_lengths(const EvaluateFn& evaluate,
                                  const MinPlusOneOptions& options);

/// Phase 2: greedy ascent from a starting vector (Algorithm 2).
MinPlusOneResult optimize_word_lengths(const EvaluateFn& evaluate,
                                       const MinPlusOneOptions& options,
                                       Config start);

/// Both phases chained — the full min+1 bit algorithm.
MinPlusOneResult min_plus_one(const EvaluateFn& evaluate,
                              const MinPlusOneOptions& options);

}  // namespace ace::dse
