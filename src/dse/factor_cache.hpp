// Policy-level kriging-factorization cache.
//
// Consecutive queries of the min+1 / steepest-descent optimizers probe
// sibling candidates whose L1 neighbourhoods in the SimulationStore
// overlap almost completely — often they are *identical* (sibling +1-bit
// candidates share the same nearby simulated configurations). The direct
// path pays a full O(N³) factorization per query anyway. This cache keys
// whole kriging::KrigingSystem objects by the support-point *index set*
// (store indices are stable: the store is append-only and deduplicating),
// so a repeated neighbourhood reuses the factorization outright and a
// superset/subset neighbourhood extends or downdates it by Schur pivots
// instead of rebuilding.
//
// Lifetime: acquire() returns a *pinned handle*, not a raw pointer. A
// live Pin keeps its entry's system alive (a later acquire() that would
// evict or edit the entry defers to the pin), so two interleaved
// acquire/solve sequences can never invalidate each other — the
// use-after-free the raw-pointer API permitted once sessions share or
// interleave on a cache. While pins are outstanding the cache may
// transiently exceed its capacity; it trims back to capacity on the next
// acquire() once the pins are gone.
//
// Staleness: every entry is stamped with the *variogram-model generation*
// it was factored under. An acquire() under a newer generation never hits
// a stale entry (exact index-set match or not) and drops unpinned stale
// entries eagerly. KrigingPolicy still clears the cache on refit — the
// stamp makes correctness independent of that clear-on-refit discipline,
// which a shared or session-scoped cache would otherwise silently break.
//
// Thread-safety: the cache has no mutex of its own — it is owned by
// KrigingPolicy and every member is annotated ACE_REQUIRES on the policy
// mutex via the owner (the cache is only reachable from
// KrigingPolicy::try_interpolate and the batch pre-pass, which already
// hold it). Pins must be released under the same lock domain they were
// acquired in. Lock ordering is therefore inherited from the policy:
// policy mutex first, store mutex (inside gather/value reads) second —
// the cache itself takes no locks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "kriging/empirical_variogram.hpp"
#include "kriging/system.hpp"
#include "kriging/variogram_model.hpp"

namespace ace::dse {

/// How an acquire() call was satisfied — folded into PolicyStats.
enum class FactorAcquire {
  kHit,     ///< Exact index-set match: factorization reused outright.
  kExtend,  ///< Overlapping set: appends/downdates, no full refactor.
  kFresh,   ///< No usable entry: new system built (and cached).
};

/// LRU cache of KrigingSystem objects keyed by ascending store-index sets.
class FactorCache {
 private:
  struct Entry {
    /// Store indices in *system slot order* (append order), plus the same
    /// set sorted ascending for overlap tests.
    std::vector<std::size_t> slots;
    std::vector<std::size_t> sorted;
    std::unique_ptr<kriging::KrigingSystem> system;
    std::uint64_t generation = 0;  ///< Variogram model the factors assume.
    double noise_nugget = 0.0;     ///< τ² baked into the entry's diagonal.
    std::size_t last_used = 0;
    int pins = 0;  ///< Live Pin handles; > 0 defers eviction and edits.
  };

 public:
  /// RAII handle pinning one cached system. While alive, the entry cannot
  /// be evicted or edited by later acquire() calls, and — capacity 0 or a
  /// clear()-ed cache — the handle itself keeps the system's storage
  /// alive. Movable, not copyable; release under the acquiring lock.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept : entry_(std::move(other.entry_)) {}
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        unpin();
        entry_ = std::move(other.entry_);
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { unpin(); }

    kriging::KrigingSystem* get() const {
      return entry_ ? entry_->system.get() : nullptr;
    }
    kriging::KrigingSystem* operator->() const { return get(); }
    kriging::KrigingSystem& operator*() const { return *get(); }
    explicit operator bool() const { return get() != nullptr; }

   private:
    friend class FactorCache;
    explicit Pin(std::shared_ptr<Entry> entry) : entry_(std::move(entry)) {
      if (entry_) ++entry_->pins;
    }
    void unpin() {
      if (entry_) {
        --entry_->pins;
        entry_.reset();
      }
    }
    /// Shared ownership: an entry evicted (or clear()-ed) while pinned
    /// stays alive until the last pin releases.
    std::shared_ptr<Entry> entry_;
  };

  /// `capacity` = max cached systems (0 disables; acquire then always
  /// builds fresh and caches nothing — the returned Pin owns the system).
  explicit FactorCache(std::size_t capacity) : capacity_(capacity) {}

  /// Find or build a system for the neighbourhood `indices` (ascending
  /// store indices, as SimulationStore returns them). `points`/`values`
  /// are the gathered support in the same order (values already
  /// trend-reduced by the caller where applicable). `generation` is the
  /// caller's variogram-model generation: only entries factored under the
  /// same generation can hit or be edited, so an exact index-set match
  /// can never resurrect factors of a superseded model. `noise_nugget` is
  /// the stochastic-kriging τ² assembled into the system diagonal — part
  /// of the key for the same reason as the generation (a nugget change
  /// changes every factor), and matched exactly even though the
  /// generation stamp already covers the policy's refit-driven nugget
  /// updates. The returned Pin keeps the system valid until it is
  /// released — later acquire() and clear() calls cannot invalidate it.
  Pin acquire(const std::vector<std::size_t>& indices,
              const std::vector<std::vector<double>>& points,
              const std::vector<double>& values,
              const kriging::VariogramModel& model,
              const kriging::DistanceFn& distance, double noise_nugget,
              std::uint64_t generation, FactorAcquire& outcome);

  /// Drop every entry (variogram/trend refit: all factorizations stale).
  /// Outstanding pins keep their own entries alive; they are simply no
  /// longer reachable through the cache.
  void clear();

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  Entry* best_overlap(const std::vector<std::size_t>& sorted_query,
                      double noise_nugget, std::uint64_t generation,
                      std::size_t& cost_out);

  /// Evict unpinned entries — stale generations first, then LRU — until
  /// the cache fits its capacity. Pinned entries are never evicted; the
  /// cache may therefore transiently exceed capacity while pins are live.
  void trim(std::uint64_t generation);

  std::size_t capacity_ = 0;
  std::size_t clock_ = 0;  ///< LRU tick.
  std::vector<std::shared_ptr<Entry>> entries_;
};

}  // namespace ace::dse
