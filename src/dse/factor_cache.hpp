// Policy-level kriging-factorization cache.
//
// Consecutive queries of the min+1 / steepest-descent optimizers probe
// sibling candidates whose L1 neighbourhoods in the SimulationStore
// overlap almost completely — often they are *identical* (sibling +1-bit
// candidates share the same nearby simulated configurations). The direct
// path pays a full O(N³) factorization per query anyway. This cache keys
// whole kriging::KrigingSystem objects by the support-point *index set*
// (store indices are stable: the store is append-only and deduplicating),
// so a repeated neighbourhood reuses the factorization outright and a
// superset/subset neighbourhood extends or downdates it by Schur pivots
// instead of rebuilding.
//
// Thread-safety: the cache has no mutex of its own — it is owned by
// KrigingPolicy and every member is annotated ACE_REQUIRES on the policy
// mutex via the owner (the cache is only reachable from
// KrigingPolicy::try_interpolate, which already holds it). Lock ordering
// is therefore inherited from the policy: policy mutex first, store mutex
// (inside gather/value reads) second — the cache itself takes no locks.
//
// Invalidation: KrigingPolicy clears the cache after every successful
// variogram refit — the model (and, under regression kriging, the trend
// residuals) changed, so every cached factorization is stale. Store
// values are immutable once added, so between refits cached systems stay
// valid indefinitely.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "kriging/empirical_variogram.hpp"
#include "kriging/system.hpp"
#include "kriging/variogram_model.hpp"

namespace ace::dse {

/// How an acquire() call was satisfied — folded into PolicyStats.
enum class FactorAcquire {
  kHit,     ///< Exact index-set match: factorization reused outright.
  kExtend,  ///< Overlapping set: appends/downdates, no full refactor.
  kFresh,   ///< No usable entry: new system built (and cached).
};

/// LRU cache of KrigingSystem objects keyed by ascending store-index sets.
class FactorCache {
 public:
  /// `capacity` = max cached systems (0 disables; acquire then always
  /// builds fresh and caches nothing).
  explicit FactorCache(std::size_t capacity) : capacity_(capacity) {}

  /// Find or build a system for the neighbourhood `indices` (ascending
  /// store indices, as SimulationStore returns them). `points`/`values`
  /// are the gathered support in the same order (values already
  /// trend-reduced by the caller where applicable). The returned system is
  /// owned by the cache (or by an internal scratch slot when capacity is
  /// 0) and valid until the next acquire()/clear().
  kriging::KrigingSystem* acquire(const std::vector<std::size_t>& indices,
                                  const std::vector<std::vector<double>>& points,
                                  const std::vector<double>& values,
                                  const kriging::VariogramModel& model,
                                  const kriging::DistanceFn& distance,
                                  FactorAcquire& outcome);

  /// Drop every entry (variogram/trend refit: all factorizations stale).
  void clear();

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    /// Store indices in *system slot order* (append order), plus the same
    /// set sorted ascending for overlap tests.
    std::vector<std::size_t> slots;
    std::vector<std::size_t> sorted;
    std::unique_ptr<kriging::KrigingSystem> system;
    std::size_t last_used = 0;
  };

  Entry* best_overlap(const std::vector<std::size_t>& sorted_query,
                      std::size_t& cost_out);

  std::size_t capacity_ = 0;
  std::size_t clock_ = 0;  ///< LRU tick.
  std::vector<Entry> entries_;
  /// Capacity-0 scratch: keeps the just-built system alive for the caller.
  std::unique_ptr<kriging::KrigingSystem> scratch_;
};

}  // namespace ace::dse
