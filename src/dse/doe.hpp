// Design-of-experiments warm start (extension beyond the paper).
//
// In the paper's flow the simulated-configuration store starts empty, so
// the first configurations of every optimization are always simulated. A
// small space-filling sample — simulated up front — lets kriging engage
// earlier and also stabilizes the semi-variogram identification. The
// bench/ablation_warmstart experiment quantifies the trade-off: the warm
// start costs its own simulations but raises the interpolated fraction of
// the optimizer's trajectory.
#pragma once

#include <vector>

#include "dse/config.hpp"
#include "dse/kriging_policy.hpp"
#include "util/rng.hpp"

namespace ace::dse {

/// Latin-hypercube-style sample on the integer lattice: `count` distinct
/// configurations with each dimension's values spread evenly across
/// [lower, upper]. Deterministic given the generator state.
/// Throws std::invalid_argument when count exceeds the lattice size or
/// inputs are degenerate.
std::vector<Config> latin_hypercube_sample(const Lattice& lattice,
                                           std::size_t count,
                                           util::Rng& rng);

/// Uniform-corner sample: the two extreme corners plus `count - 2` random
/// distinct lattice points (cheap baseline sampler).
std::vector<Config> corner_plus_random_sample(const Lattice& lattice,
                                              std::size_t count,
                                              util::Rng& rng);

/// Simulate every design point through the policy so the store (and the
/// variogram) are warm before the optimizer starts. Returns the number of
/// configurations actually simulated (duplicates are evaluated but only
/// enter the store once... the policy may interpolate late design points).
std::size_t warm_start(KrigingPolicy& policy, const SimulatorFn& simulate,
                       const std::vector<Config>& design);

}  // namespace ace::dse
