#include "dse/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "dse/batch_sim.hpp"

namespace ace::dse {

std::vector<Config> maximin_order(std::vector<Config> batch) {
  const std::size_t n = batch.size();
  if (n <= 2) return batch;

  // Start from the medoid (minimum total L1 distance to the batch).
  std::size_t start = 0;
  long long best_total = std::numeric_limits<long long>::max();
  for (std::size_t i = 0; i < n; ++i) {
    long long total = 0;
    for (std::size_t j = 0; j < n; ++j)
      total += l1_distance(batch[i], batch[j]);
    if (total < best_total) {
      best_total = total;
      start = i;
    }
  }

  std::vector<Config> ordered;
  ordered.reserve(n);
  std::vector<bool> taken(n, false);
  std::vector<int> min_dist(n, std::numeric_limits<int>::max());

  auto take = [&](std::size_t idx) {
    taken[idx] = true;
    ordered.push_back(batch[idx]);
    for (std::size_t j = 0; j < n; ++j) {
      if (taken[j]) continue;
      min_dist[j] = std::min(min_dist[j], l1_distance(batch[idx], batch[j]));
    }
  };
  take(start);

  while (ordered.size() < n) {
    std::size_t next = n;
    int best = -1;
    for (std::size_t j = 0; j < n; ++j) {
      if (taken[j]) continue;
      if (min_dist[j] > best) {
        best = min_dist[j];
        next = j;
      }
    }
    take(next);
  }
  return ordered;
}

std::size_t evaluate_batch(KrigingPolicy& policy, const SimulatorFn& simulate,
                           const std::vector<Config>& batch) {
  std::size_t interpolated = 0;
  for (const auto& config : batch)
    if (policy.evaluate(config, simulate).interpolated) ++interpolated;
  return interpolated;
}

BatchEvaluateFn policy_batch_evaluator(KrigingPolicy& policy,
                                       SimulatorFn simulate,
                                       util::ThreadPool* pool) {
  return [&policy, simulate = std::move(simulate),
          pool](const std::vector<Config>& batch) {
    const std::vector<EvalOutcome> outcomes =
        policy.evaluate_batch(batch, simulate, pool);
    std::vector<double> values;
    values.reserve(outcomes.size());
    for (const EvalOutcome& o : outcomes) values.push_back(o.value);
    return values;
  };
}

BatchEvaluateFn policy_batch_evaluator(KrigingPolicy& policy,
                                       BatchSimulator& backend) {
  return [&policy, &backend](const std::vector<Config>& batch) {
    const std::vector<EvalOutcome> outcomes =
        policy.evaluate_batch(batch, backend);
    std::vector<double> values;
    values.reserve(outcomes.size());
    for (const EvalOutcome& o : outcomes) values.push_back(o.value);
    return values;
  };
}

}  // namespace ace::dse
