#include "dse/annealing.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace ace::dse {

AnnealingResult simulated_annealing(const EvaluateFn& evaluate,
                                    const Lattice& lattice,
                                    const AnnealingOptions& options) {
  if (!options.cost)
    throw std::invalid_argument("simulated_annealing: null cost function");
  if (options.iterations == 0)
    throw std::invalid_argument("simulated_annealing: zero iterations");
  if (options.initial_temperature <= 0.0)
    throw std::invalid_argument("simulated_annealing: temperature must be > 0");
  if (options.cooling <= 0.0 || options.cooling > 1.0)
    throw std::invalid_argument("simulated_annealing: cooling in (0, 1]");

  util::Rng rng(options.seed);
  AnnealingResult result;

  auto energy_of = [&](double lambda, double cost) {
    const double shortfall = std::max(0.0, options.lambda_min - lambda);
    return cost + options.penalty * shortfall;
  };

  Config current = lattice.uniform(lattice.upper);
  double current_lambda = evaluate(current);
  ++result.evaluations;
  double current_cost = options.cost(current);
  double current_energy = energy_of(current_lambda, current_cost);

  result.best = current;
  result.best_lambda = current_lambda;
  result.best_cost = current_cost;
  result.feasible = current_lambda >= options.lambda_min;
  double best_energy = current_energy;

  double temperature = options.initial_temperature;
  for (std::size_t it = 0; it < options.iterations; ++it) {
    // Single-coordinate ±1 proposal, clamped to the lattice.
    Config candidate = current;
    const std::size_t var = rng.index(candidate.size());
    const int step = rng.bernoulli(0.5) ? 1 : -1;
    candidate[var] += step;
    if (candidate[var] < lattice.lower || candidate[var] > lattice.upper) {
      temperature *= options.cooling;
      continue;
    }

    const double candidate_lambda = evaluate(candidate);
    ++result.evaluations;
    const double candidate_cost = options.cost(candidate);
    const double candidate_energy =
        energy_of(candidate_lambda, candidate_cost);

    const double delta = candidate_energy - current_energy;
    const bool accept =
        delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature);
    if (accept) {
      current = std::move(candidate);
      current_lambda = candidate_lambda;
      current_cost = candidate_cost;
      current_energy = candidate_energy;
      ++result.accepted;

      const bool candidate_feasible =
          current_lambda >= options.lambda_min;
      // Track the best: feasibility first, then energy.
      const bool better =
          (candidate_feasible && !result.feasible) ||
          (candidate_feasible == result.feasible &&
           current_energy < best_energy);
      if (better) {
        result.best = current;
        result.best_lambda = current_lambda;
        result.best_cost = current_cost;
        result.feasible = candidate_feasible;
        best_energy = current_energy;
      }
    }
    temperature *= options.cooling;
  }
  return result;
}

}  // namespace ace::dse
