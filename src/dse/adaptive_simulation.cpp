#include "dse/adaptive_simulation.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace ace::dse {

AdaptiveSimResult adaptive_mean(
    const std::function<double(std::size_t)>& observe, std::size_t total,
    const AdaptiveSimOptions& options) {
  if (!observe)
    throw std::invalid_argument("adaptive_mean: null observer");
  if (total == 0)
    throw std::invalid_argument("adaptive_mean: total must be positive");
  if (options.batch == 0)
    throw std::invalid_argument("adaptive_mean: batch must be positive");
  if (options.relative_half_width <= 0.0)
    throw std::invalid_argument("adaptive_mean: tolerance must be positive");

  util::RunningStats stats;
  AdaptiveSimResult result;
  std::size_t consumed = 0;
  std::size_t batches = 0;

  while (consumed < total) {
    const std::size_t take = std::min(options.batch, total - consumed);
    for (std::size_t i = 0; i < take; ++i) stats.add(observe(consumed + i));
    consumed += take;
    ++batches;

    if (batches < options.min_batches) continue;
    const double mean = stats.mean();
    const double half_width =
        options.z * stats.stddev() /
        std::sqrt(static_cast<double>(stats.count()));
    if (std::abs(mean) > 0.0 &&
        half_width <= options.relative_half_width * std::abs(mean)) {
      result.converged = true;
      break;
    }
  }
  result.mean = stats.mean();
  result.observations = consumed;
  return result;
}

}  // namespace ace::dse
