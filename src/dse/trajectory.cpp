#include "dse/trajectory.hpp"

#include <cmath>
#include <stdexcept>

#include "metrics/error_metrics.hpp"
#include "metrics/noise_power.hpp"

namespace ace::dse {

TrajectoryRecorder::TrajectoryRecorder(SimulatorFn simulate)
    : simulate_(std::move(simulate)) {
  if (!simulate_)
    throw std::invalid_argument("TrajectoryRecorder: null simulator");
}

double TrajectoryRecorder::evaluate(const Config& config) {
  if (const auto it = cache_.find(config); it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  const double value = simulate_(config);
  cache_.emplace(config, value);
  trajectory_.configs.push_back(config);
  trajectory_.values.push_back(value);
  return value;
}

SimulatorFn TrajectoryRecorder::as_simulator() {
  return [this](const Config& c) { return evaluate(c); };
}

double ReplayReport::interpolated_fraction() const {
  return stats.interpolated_fraction();
}

double ReplayReport::mean_neighbors() const {
  return stats.neighbors_per_interpolation.mean();
}

double ReplayReport::max_epsilon() const {
  double m = 0.0;
  for (const auto& r : records)
    if (r.interpolated) m = std::max(m, r.epsilon);
  return m;
}

double ReplayReport::mean_epsilon() const {
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& r : records)
    if (r.interpolated) {
      acc += r.epsilon;
      ++n;
    }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

double interpolation_epsilon(double estimate, double true_value,
                             MetricKind kind) {
  switch (kind) {
    case MetricKind::kAccuracyDb: {
      // λ = −P_dB, so ε = |log2(P̂/P)| (Eq. 11) reduces to
      // |λ̂ − λ| · log2(10)/10 — computed directly in the dB domain so a
      // wildly extrapolated estimate cannot overflow the linear-power
      // conversion.
      return std::abs(estimate - true_value) * std::log2(10.0) / 10.0;
    }
    case MetricKind::kQualityRate:
      return metrics::epsilon_relative(estimate, true_value);  // Eq. 12.
  }
  throw std::logic_error("interpolation_epsilon: unreachable");
}

ReplayReport replay_with_kriging(const Trajectory& trajectory,
                                 const PolicyOptions& options,
                                 MetricKind kind) {
  if (trajectory.configs.size() != trajectory.values.size())
    throw std::invalid_argument("replay_with_kriging: ragged trajectory");

  KrigingPolicy policy(options);
  ReplayReport report;
  report.records.reserve(trajectory.size());

  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    const double true_value = trajectory.values[i];
    const auto outcome = policy.evaluate(
        trajectory.configs[i], [&](const Config&) { return true_value; });

    ReplayRecord record;
    record.index = i;
    record.interpolated = outcome.interpolated;
    record.true_value = true_value;
    record.estimate = outcome.value;
    record.neighbors = outcome.neighbors;
    record.epsilon = outcome.interpolated
                         ? interpolation_epsilon(outcome.value, true_value, kind)
                         : 0.0;
    report.records.push_back(record);
  }
  report.stats = policy.stats();
  return report;
}

}  // namespace ace::dse
