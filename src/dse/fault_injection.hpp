// Deterministic fault injection for robustness testing and benchmarking.
//
// FaultInjectingSimulator decorates a SimulatorFn with seeded, *per-
// configuration* faults: thrown exceptions, NaN results, and latency
// spikes. Whether (and how) a configuration faults is a pure function of
// (seed, configuration) — never of thread scheduling or call order across
// configurations — so a fault-injected run is reproducible under any pool
// size, and the quarantine/decision behaviour it provokes can be asserted
// exactly in tests and benchmarks (bench/fault_recovery).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "dse/config.hpp"
#include "dse/kriging_policy.hpp"  // SimulatorFn

namespace ace::dse {

/// The exception an injected throw raises.
class SimulatorFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FaultInjectionOptions {
  std::uint64_t seed = 1;  ///< Selects *which* configurations fault.

  // Probabilities are evaluated per configuration (not per call) against a
  // hash of (seed, configuration), tried in this order; their sum should
  // be <= 1.
  double throw_probability = 0.0;    ///< Simulator throws SimulatorFault.
  double nan_probability = 0.0;      ///< Simulator returns quiet NaN.
  double latency_probability = 0.0;  ///< Simulator sleeps, then answers.

  std::size_t latency_ms = 5;  ///< Injected latency spike duration.

  /// Transient-fault model: a hash-selected faulty configuration faults on
  /// its first `faulty_calls` simulator calls and then recovers — so a
  /// retry budget > faulty_calls rescues it. Configurations listed in
  /// `always_fault` never recover (persistent faults: exercised by the
  /// quarantine and decision-identity tests).
  std::size_t faulty_calls = 1;
  std::vector<Config> always_fault;
};

/// Copyable decorator (state shared across copies, so counters survive the
/// copy into a std::function). Safe to call from pool workers.
class FaultInjectingSimulator {
 public:
  enum class Kind : unsigned char { kNone, kThrow, kNan, kLatency };

  FaultInjectingSimulator(SimulatorFn inner, FaultInjectionOptions options);

  double operator()(const Config& config) const;

  /// The fault scheduled for a configuration — pure in (seed, config).
  Kind scheduled_fault(const Config& config) const;

  std::size_t calls() const;
  std::size_t injected_throws() const;
  std::size_t injected_nans() const;
  std::size_t injected_latency_spikes() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace ace::dse
