// Checkpoint/resume for long DSE runs.
//
// A checkpoint is (policy snapshot, optimizer cursor) serialized to a
// versioned text file. Doubles are written as C99 hexfloats ("%a"), so the
// round trip is exact; the policy snapshot is restored by *replay*
// (KrigingPolicy::restore), so the rebuilt store, variogram bins, fitted
// model, trend and refit clocks are bit-identical to the snapshotted
// policy. A run resumed from a checkpoint therefore makes exactly the
// decisions the uninterrupted run would have made.
//
// Files are written atomically (temp file + rename): a crash mid-write
// leaves the previous checkpoint intact.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "dse/kriging_policy.hpp"
#include "dse/min_plus_one.hpp"
#include "dse/steepest_descent.hpp"

namespace ace::util {
class ThreadPool;
}

namespace ace::dse {

struct CheckpointOptions {
  std::string path;        ///< Checkpoint file location.
  std::size_t period = 1;  ///< Write every this many optimizer steps.
  /// Pause after this many steps in this invocation (0 = run to
  /// completion). A paused run writes a checkpoint and returns its partial
  /// result; calling the same entry point again resumes it. This is how
  /// session-budgeted runs — and the kill/resume tests — stop cleanly.
  std::size_t step_limit = 0;
};

/// On-disk checkpoint payload. Exactly one of the cursors is meaningful,
/// selected by `optimizer` ("min_plus_one" or "steepest_descent").
struct Checkpoint {
  PolicySnapshot policy;
  std::string optimizer;
  MinPlusOneCursor min_plus;
  SensitivityCursor sensitivity;
};

/// The versioned text payload save_checkpoint writes, as a string. The
/// session layer parks sessions through this (in-memory, no file), so a
/// parked session is exactly a checkpoint the on-disk tooling could read.
std::string serialize_checkpoint(const Checkpoint& checkpoint);

/// Parse a checkpoint payload from a stream. Throws std::runtime_error on
/// a malformed payload or unsupported version.
Checkpoint parse_checkpoint(std::istream& in);

/// Serialize to `path` atomically. Throws std::runtime_error on I/O error.
void save_checkpoint(const std::string& path, const Checkpoint& checkpoint);

/// Load a checkpoint; std::nullopt when the file does not exist. Throws
/// std::runtime_error on a malformed file or unsupported version.
std::optional<Checkpoint> load_checkpoint(const std::string& path);

/// min+1 with periodic checkpointing. If `options.path` holds a checkpoint
/// (from a previous killed/paused run with the same optimizer options and
/// a policy constructed with the same PolicyOptions), the run resumes from
/// it: `policy` must then be freshly constructed, and the combined
/// interrupted-plus-resumed run produces bit-identical results and
/// PolicyStats to an uninterrupted one.
MinPlusOneResult checkpointed_min_plus_one(KrigingPolicy& policy,
                                           const SimulatorFn& simulate,
                                           const MinPlusOneOptions& options,
                                           const CheckpointOptions& checkpoint,
                                           util::ThreadPool* pool = nullptr);

/// Steepest-descent budgeting with periodic checkpointing; same resume
/// contract as checkpointed_min_plus_one.
SensitivityResult checkpointed_steepest_descent(
    KrigingPolicy& policy, const SimulatorFn& simulate,
    const SensitivityOptions& options, const CheckpointOptions& checkpoint,
    util::ThreadPool* pool = nullptr);

}  // namespace ace::dse
