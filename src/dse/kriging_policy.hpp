// The simulate-or-interpolate policy at the heart of the paper
// (Algorithms 1-2, lines 6-24):
//
//   for a configuration w to evaluate:
//     collect already-simulated configurations within L1 distance d;
//     if more than Nn_min neighbours exist  -> kriging interpolation,
//     else                                  -> simulate and add to Wsim.
//
// The semi-variogram model is identified from the simulated store the
// first time kriging is attempted (once enough points exist) and refitted
// every `refit_period` new simulations; the paper notes identification is
// done "once for a particular metric and application". Refits are
// incremental for the default (constant-drift) estimator: the empirical
// variogram folds only the new points' pairs into its bins (O(k·N))
// instead of rebuilding all O(N²) pairs.
//
// Exact re-evaluations are memo hits: a configuration that is already in
// the store is answered from it without a simulation (and without adding
// a duplicate support point; kriging::KrigingSystem additionally dedupes
// coincident support as a backstop for callers outside this policy).
//
// The interpolation hot path runs through kriging::KrigingSystem. With
// `factor_cache_capacity` > 0 the policy keeps a FactorCache of whole
// systems keyed by support-index sets, so overlapping neighbourhoods
// reuse or extend factorizations instead of rebuilding (see
// bench/solver_cache). The default keeps the cache off: the cache-off
// path is bit-identical to the pre-cache direct solve, which the
// checkpoint tests' stats-equality assertions rely on (a resumed run
// starts with a cold cache, so warm-cache counters would diverge).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "dse/acquisition.hpp"
#include "dse/config.hpp"
#include "dse/factor_cache.hpp"
#include "dse/fault.hpp"
#include "dse/sim_store.hpp"
#include "kriging/empirical_variogram.hpp"
#include "kriging/fit.hpp"
#include "kriging/universal_kriging.hpp"
#include "kriging/variogram_model.hpp"
#include "util/mutex.hpp"
#include "util/retry.hpp"
#include "util/stats.hpp"
#include "util/thread_annotations.hpp"

namespace ace::util {
class ThreadPool;
}

namespace ace::dse {

/// Deterministic application simulator: configuration -> metric value λ.
/// Batch evaluation may invoke it from worker threads, so it must be safe
/// to call concurrently (the library's simulators are pure functions).
using SimulatorFn = std::function<double(const Config&)>;

/// Knobs of the policy (the d and Nn_min of Table I, plus the extensions
/// ablated in bench/ablation_*).
struct PolicyOptions {
  int distance = 3;          ///< L1 search radius d.
  std::size_t nn_min = 1;    ///< Interpolate only when neighbours > nn_min.
  std::size_t min_fit_points = 10;  ///< Sims required before fitting γ.
  std::size_t refit_period = 16;    ///< Refit γ every this many new sims.
  kriging::FitOptions fit;          ///< Variogram families to consider.

  /// Drift model: kConstant reproduces the paper's ordinary kriging;
  /// kLinear enables *regression kriging* (extension): a global linear
  /// trend is least-squares-fitted over the whole simulated store, the
  /// variogram is identified on the residuals, and local kriging
  /// interpolates the residual field. A global trend sidesteps the
  /// small-neighbourhood limitation of classical universal kriging (the
  /// typical support here is 2-3 points — too few to identify a local
  /// drift in Nv dimensions). See bench/ablation_estimator.
  kriging::DriftKind drift = kriging::DriftKind::kConstant;

  /// Variance gate (extension): when > 0, an interpolation whose kriging
  /// variance exceeds gate · (sample variance of stored λ) falls back to
  /// simulation. 0 disables the gate (the paper's behaviour). Retained for
  /// compatibility — with the default `gate`, a positive value selects the
  /// VarianceGate exactly as it always did (see dse/acquisition.hpp).
  double variance_gate = 0.0;

  /// Which simulate-vs-interpolate acquisition gate this policy runs. The
  /// default reproduces the paper's neighbour-count rule bit-for-bit; the
  /// adaptive gates trade the nn_min floor for kriging-variance evidence.
  GateKind gate = GateKind::kNeighbourCount;

  /// Adaptive gates' neighbourhood floor: they attempt kriging from this
  /// many neighbours (≥ 1) and let variance evidence carry the veto,
  /// instead of the paper's hard `nn_min` count.
  std::size_t gate_nn_floor = 1;

  /// LooCalibratedGate ceiling: accept while calibration · variance
  /// <= loo_gate · sill (calibration = rolling mean(e²/σ²) from the
  /// refit-time LOO pass).
  double loo_gate = 1.0;

  /// SequentialDesignGate confidence multiple z: interpolate only when
  /// |estimate − λ_min| >= z · calibrated LOO std-deviation.
  double seq_confidence = 2.0;

  /// The decision threshold the SequentialDesignGate protects (the
  /// optimizer's λ_min / quality floor). Required for that gate; ignored
  /// by every other.
  std::optional<double> gate_lambda_min;

  /// Refit-time LOO-CV window: the pass runs over the most recent
  /// `loo_window` stored points (each residual costs O(window²) against
  /// the shared factorization). Only paid by gates that want_loo().
  std::size_t loo_window = 96;

  /// Stochastic-kriging measurement-noise variance τ² applied to the
  /// system diagonal (see kriging::SystemSpec::noise_nugget). 0 — the
  /// default — assembles bit-identically to the pre-nugget system.
  double noise_nugget = 0.0;

  /// When set, τ² follows the *fitted* variogram nugget after every refit
  /// (the classical geostatistical reading of the nugget as measurement
  /// noise) instead of the fixed `noise_nugget` — for intrinsically noisy
  /// metrics like a classification rate over a finite image set.
  bool nugget_from_fit = false;

  /// Use Euclidean instead of Manhattan distance for both the neighbour
  /// search and the variogram (extension ablation). The radius `distance`
  /// is interpreted in the selected metric.
  bool use_l2_distance = false;

  /// Estimate sanity guard: reject an interpolation that lands more than
  /// `sanity_span` × (support value range) outside the support's value
  /// interval — the signature of an ill-conditioned kriging system whose
  /// moderate-looking weights still amplify into a wild estimate. The
  /// rejected configuration is simulated instead. 0 disables the guard.
  double sanity_span = 3.0;

  /// Fault model for simulator calls: bounded retries with deterministic
  /// backoff, plus the per-call deadline watchdog. The default (one
  /// attempt, no deadline) adds no retries, but faults are still captured
  /// into typed outcomes and quarantined instead of propagating.
  util::RetryOptions retry;

  /// Factorization cache (extension): when > 0, keep up to this many
  /// kriging systems keyed by support-index set and reuse/extend their
  /// factorizations across queries with overlapping neighbourhoods
  /// (bench/solver_cache measures the win). 0 — the default — disables
  /// the cache and solves each query on a fresh system, bit-identical to
  /// the pre-cache behaviour; checkpoint resume relies on this default
  /// (a resumed run's cold cache would otherwise skew the factor
  /// counters against an uninterrupted run's).
  std::size_t factor_cache_capacity = 0;
};

/// Outcome of evaluating one configuration through the policy. A faulted
/// evaluation (source == kFaulted) carries value = -infinity so that in
/// the optimizers' "higher λ is better" competitions a faulted candidate
/// can never win — a fault off the decision path leaves the decisions of a
/// fault-free run unchanged.
struct EvalOutcome {
  double value = 0.0;          ///< λ (simulated, interpolated, or stored).
  bool interpolated = false;   ///< True when kriging supplied the value.
  bool cached = false;         ///< True when served from the exact store.
  std::size_t neighbors = 0;   ///< |N| used (support size when interpolated).
  bool regularized = false;    ///< Kriging system needed the ridge fallback.
  EvalSource source = EvalSource::kSimulated;  ///< Provenance of `value`.
  FaultCode fault = FaultCode::kNone;  ///< Terminal fault classification.
  std::size_t attempts = 0;    ///< Simulator calls made for this outcome.

  bool faulted() const { return fault != FaultCode::kNone; }

  friend bool operator==(const EvalOutcome&, const EvalOutcome&) = default;
};

/// Aggregate statistics for Table I, plus the fault counters of the
/// robustness subsystem.
struct PolicyStats {
  std::size_t total = 0;
  std::size_t simulated = 0;
  std::size_t interpolated = 0;
  std::size_t exact_hits = 0;           ///< Served from the store verbatim.
  std::size_t kriging_failures = 0;     ///< Unsolvable system: simulated.
  std::size_t variance_rejections = 0;  ///< Gated by kriging variance.
  std::size_t refits = 0;               ///< Successful variogram (re)fits.
  std::size_t failed_refits = 0;        ///< Attempts with too little data.
  std::size_t simulator_faults = 0;     ///< Faulted simulator attempts.
  std::size_t retries = 0;              ///< Attempts beyond each first try.
  std::size_t timeouts = 0;             ///< Attempts over the deadline.
  std::size_t quarantined = 0;          ///< Configurations quarantined.
  std::size_t checkpoints_written = 0;  ///< By dse::checkpoint entry points.
  /// Conditioning observability (ISSUE 5): ridge_fallbacks counts solved
  /// interpolations that needed the ridge ladder; rcond_per_solve folds
  /// each solve's pivot-ratio condition estimate, so a conditioning
  /// regression shows up as a falling mean/min long before solves fail.
  std::size_t ridge_fallbacks = 0;
  /// Factorization-work counters: full (re)factorizations performed, and
  /// how the factor cache avoided them (exact hits / incremental extends).
  /// With the cache off, full_factorizations is the direct path's cost.
  std::size_t full_factorizations = 0;
  std::size_t factor_cache_hits = 0;
  std::size_t factor_extends = 0;
  /// Per-gate acquisition counters (checkpoint v3): vetoes by the
  /// LOO-calibrated and sequential-design gates (the variance gate's
  /// vetoes stay in variance_rejections), and the refit-time LOO-CV
  /// passes with the |residual| they observed.
  std::size_t loo_rejections = 0;
  std::size_t sequential_rejections = 0;
  std::size_t loo_passes = 0;
  util::RunningStats neighbors_per_interpolation;
  util::RunningStats rcond_per_solve;
  util::RunningStats loo_abs_error;

  friend bool operator==(const PolicyStats&, const PolicyStats&) = default;

  double interpolated_fraction() const {
    return total == 0 ? 0.0
                      : static_cast<double>(interpolated) /
                            static_cast<double>(total);
  }
};

/// Everything needed to reconstruct a KrigingPolicy mid-run, bit-exactly:
/// the store contents in insertion order, the quarantine log, the store
/// sizes at which variogram (re)fits were attempted — replaying those
/// attempts against the rebuilt store reproduces the fitted model, trend
/// and refit clocks exactly — and the statistics. See dse/checkpoint for
/// the on-disk format.
struct PolicySnapshot {
  std::vector<Config> configs;
  std::vector<double> values;
  std::vector<std::pair<Config, FaultCode>> quarantine;
  std::vector<std::size_t> fit_events;  ///< store size at each refit call.
  PolicyStats stats;
};

/// The policy object: owns the simulated-configuration store and the
/// fitted variogram model.
///
/// Thread-safety: the fitted model, trend, refit clocks and statistics are
/// guarded by an annotated policy mutex; every public entry point takes it,
/// so concurrent callers are serialized and the lock discipline is proven
/// by the Clang capability analysis. During evaluate_batch the mutex stays
/// held across the pooled phase-2 simulations — worker threads only invoke
/// the simulator (which therefore must not call back into this policy) and
/// write index-addressed slots, never policy state.
class KrigingPolicy {
 public:
  explicit KrigingPolicy(PolicyOptions options = {});

  /// Evaluate one configuration: answer from the store on an exact match,
  /// interpolate if the neighbourhood is rich enough, otherwise call
  /// `simulate` and record the result in the store.
  EvalOutcome evaluate(const Config& config, const SimulatorFn& simulate)
      ACE_EXCLUDES(mutex_);

  /// Evaluate a whole candidate set. The set is partitioned into
  /// store-hit / interpolate / simulate up front, against the store as it
  /// stands at batch entry; pending simulations then run on `pool` (or
  /// inline when null) and are folded into the store and statistics in
  /// candidate-index order. The partition and the reduction are both pure
  /// functions of (store state, batch order), so the outcome sequence is
  /// bit-identical whether or not a pool is supplied. Duplicate candidates
  /// within the batch simulate once and alias the first occurrence.
  std::vector<EvalOutcome> evaluate_batch(const std::vector<Config>& batch,
                                          const SimulatorFn& simulate,
                                          util::ThreadPool* pool = nullptr)
      ACE_EXCLUDES(mutex_);

  /// Backend overload: same partition and index-ordered fold, but the
  /// pending simulations run through `backend` (a thread pool, a
  /// coordinator sharding to worker processes, …). The backend is called
  /// with the policy mutex held and must not call back into this policy.
  /// The SimulatorFn overload above is exactly this with a
  /// PooledBatchSimulator over (simulate, options().retry, pool).
  std::vector<EvalOutcome> evaluate_batch(const std::vector<Config>& batch,
                                          class BatchSimulator& backend)
      ACE_EXCLUDES(mutex_);

  /// The store is internally synchronized; no policy lock involved.
  const SimulationStore& store() const { return store_; }

  /// Statistics *snapshot*. Returned by value: a reference into the
  /// mutex-guarded counters would be read after the guard released —
  /// benign under a single caller, a data race the moment another thread
  /// mutates the policy (the multi-session service does exactly that).
  PolicyStats stats() const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return stats_;
  }
  const PolicyOptions& options() const { return options_; }

  /// Currently fitted variogram (nullptr before first fit). Shared
  /// ownership snapshot: a refit replaces the policy's pointer but cannot
  /// pull the model out from under a caller still holding this handle.
  std::shared_ptr<const kriging::VariogramModel> model() const
      ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return model_;
  }

  /// Fitted global trend coefficients [β0, β1, …, β_Nv] (empty before the
  /// first fit; size 1 when only a mean could be identified). Only
  /// populated when options().drift == kLinear. Returned by value — same
  /// snapshot rationale as stats().
  std::vector<double> trend() const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return trend_;
  }

  /// Force a (re)fit from the current store; returns false when the store
  /// is still too small to produce a variogram. Every attempt — failed or
  /// not — resets the refit clock, so a failing fit is retried only after
  /// another `refit_period` of new simulations instead of on every
  /// evaluation.
  bool refit_model() ACE_EXCLUDES(mutex_);

  /// Capture the policy's full mid-run state for checkpointing.
  PolicySnapshot snapshot() const ACE_EXCLUDES(mutex_);

  /// Rebuild this policy from a snapshot. Must be called on a freshly
  /// constructed policy (same options as the snapshotting one); throws
  /// std::logic_error otherwise. Restoring replays the store in insertion
  /// order and re-runs the recorded fit attempts, so the fitted model,
  /// trend, variogram bins and refit clocks all match the snapshotted
  /// policy bit-for-bit.
  void restore(const PolicySnapshot& snapshot) ACE_EXCLUDES(mutex_);

  /// Bump the checkpoints_written counter (called by the dse::checkpoint
  /// entry points just before serializing a snapshot, so the on-disk
  /// statistics count the checkpoint that carries them).
  void record_checkpoint() ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    ++stats_.checkpoints_written;
  }

  /// The acquisition gate this policy runs (resolved from the options —
  /// the legacy variance_gate combination maps to kVariance).
  GateKind gate_kind() const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return gate_->kind();
  }

  /// The gate's current LOO variance-calibration factor (1 for stateless
  /// gates or before the first LOO pass). Snapshot, for tests/benches.
  double gate_calibration() const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return gate_->calibration();
  }

 private:
  /// Lock-held body of refit_model() (also the restore replay step).
  bool refit_model_locked() ACE_REQUIRES(mutex_);

  /// Refit-time LOO-CV pass over the windowed store (gates that
  /// want_loo() only): computes every leave-one-out residual from one
  /// factorization (kriging::KrigingSystem::loo_residuals) and feeds the
  /// digest to the gate's calibrate() hook and the loo_* statistics.
  void run_loo_calibration_locked() ACE_REQUIRES(mutex_);

  /// The refit gate at the head of every interpolation attempt: fit (or
  /// periodically refit) the variogram when due, and report whether a
  /// model is available. Attempt bookkeeping makes repeated calls at one
  /// store size idempotent, which is what lets evaluate_batch's group
  /// pre-pass run the gate once for the whole batch.
  bool model_ready_locked() ACE_REQUIRES(mutex_);

  /// `presolved`, when non-null, is this query's already-computed kriging
  /// solution (from a query_batch over the group's shared system): the
  /// solve step is skipped, every gate after it still runs.
  std::optional<double> try_interpolate(
      const Config& config, const Neighborhood& neighborhood,
      EvalOutcome& outcome,
      const std::optional<kriging::KrigingResult>* presolved = nullptr)
      ACE_REQUIRES(mutex_);

  /// Reads only immutable options and the internally-synchronized store.
  Neighborhood neighborhood_of(const Config& config) const;

  /// Global trend value at a configuration (0 when no trend is fitted).
  double trend_value(const std::vector<double>& x) const ACE_REQUIRES(mutex_);

  /// Guarded simulator call: retry/backoff/deadline per options_.retry.
  /// Touches no guarded state — safe from pool workers without the lock.
  util::GuardedCall run_simulation(const Config& config,
                                   const SimulatorFn& simulate) const;

  /// Fold a guarded simulation result into outcome/store/stats (the
  /// shared terminal step of the scalar and batch paths). Quarantines on
  /// fault. `config` is the evaluated configuration.
  void fold_simulation(const Config& config, const util::GuardedCall& sim,
                       EvalOutcome& outcome) ACE_REQUIRES(mutex_);

  PolicyOptions options_;  ///< Immutable after construction.
  SimulationStore store_;  ///< Internally synchronized.
  PolicyStats stats_ ACE_GUARDED_BY(mutex_);
  /// The simulate-vs-interpolate decision policy (dse/acquisition.hpp).
  /// Constructed from the immutable options; its online calibration state
  /// mutates only under the policy mutex.
  std::unique_ptr<AcquisitionGate> gate_ ACE_GUARDED_BY(mutex_);
  /// Measurement-noise variance τ² currently applied to assembled kriging
  /// systems: options_.noise_nugget, or the fitted variogram nugget after
  /// each refit when options_.nugget_from_fit is set.
  double effective_nugget_ ACE_GUARDED_BY(mutex_) = 0.0;
  /// Shared so model() can hand out a lifetime-safe snapshot; the policy
  /// itself treats it as the unique owner (replaced only on refit).
  std::shared_ptr<const kriging::VariogramModel> model_
      ACE_GUARDED_BY(mutex_);
  /// Regression-kriging trend (may be empty).
  std::vector<double> trend_ ACE_GUARDED_BY(mutex_);
  /// Incrementally extended empirical variogram (constant drift only; the
  /// linear-drift residual field changes with every trend refit, which
  /// forces a full rebuild there).
  std::unique_ptr<kriging::EmpiricalVariogram> variogram_
      ACE_GUARDED_BY(mutex_);
  /// Factorization cache (empty when options_.factor_cache_capacity == 0).
  /// No lock of its own: reachable only under mutex_, and its lock
  /// ordering is the policy's (policy mutex, then the store's inside
  /// gather/value reads).
  FactorCache factor_cache_ ACE_GUARDED_BY(mutex_);
  /// Bumped on every successful (re)fit; stamps FactorCache entries so an
  /// exact index-set hit can never return factors of a superseded model.
  std::uint64_t model_generation_ ACE_GUARDED_BY(mutex_) = 0;
  std::size_t sims_at_last_fit_ ACE_GUARDED_BY(mutex_) = 0;
  std::size_t sims_at_last_attempt_ ACE_GUARDED_BY(mutex_) = 0;
  bool fit_attempted_ ACE_GUARDED_BY(mutex_) = false;
  /// Sample variance of the kriged field.
  double sill_estimate_ ACE_GUARDED_BY(mutex_) = 0.0;
  /// Store size at every refit_model() entry, in call order — the replay
  /// script that makes snapshot()/restore() bit-exact.
  std::vector<std::size_t> fit_events_ ACE_GUARDED_BY(mutex_);
  mutable util::Mutex mutex_{util::lock_order::Rank::kPolicy, "dse.policy"};
};

}  // namespace ace::dse
