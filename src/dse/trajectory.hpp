// Trajectory recording and kriging replay — the paper's primary
// experimental protocol (Sec. III-B): run the optimization with exhaustive
// simulation once, record every tested configuration and its true metric
// value *in evaluation order*, then replay the same sequence through the
// simulate-or-interpolate policy and compare interpolated vs true values.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "dse/config.hpp"
#include "dse/kriging_policy.hpp"

namespace ace::dse {

/// Ordered record of distinct tested configurations with true metric values.
struct Trajectory {
  std::vector<Config> configs;
  std::vector<double> values;

  std::size_t size() const { return configs.size(); }
};

/// Wraps a simulator: memoizes by configuration (a repeated configuration
/// is never re-simulated) and records each *first* evaluation in order.
class TrajectoryRecorder {
 public:
  explicit TrajectoryRecorder(SimulatorFn simulate);

  /// Evaluate (from cache or by simulation).
  double evaluate(const Config& config);

  /// Evaluation callable bound to this recorder.
  SimulatorFn as_simulator();

  const Trajectory& trajectory() const { return trajectory_; }
  std::size_t unique_evaluations() const { return trajectory_.size(); }
  std::size_t cache_hits() const { return cache_hits_; }

 private:
  SimulatorFn simulate_;
  Trajectory trajectory_;
  std::unordered_map<Config, double, ConfigHash> cache_;
  std::size_t cache_hits_ = 0;
};

/// How interpolation error ε is expressed (paper Eqs. 11-12).
enum class MetricKind {
  kAccuracyDb,   ///< λ = −P in dB; ε in equivalent bits (Eq. 11).
  kQualityRate,  ///< Generic quality metric; ε relative (Eq. 12).
};

/// Per-configuration replay outcome.
struct ReplayRecord {
  std::size_t index = 0;       ///< Position in the trajectory.
  bool interpolated = false;
  double true_value = 0.0;     ///< λ from the recorded exact run.
  double estimate = 0.0;       ///< λ̂ (equals true value when simulated).
  std::size_t neighbors = 0;
  double epsilon = 0.0;        ///< ε (only meaningful when interpolated).
};

/// Aggregates matching one row-group of the paper's Table I.
struct ReplayReport {
  PolicyStats stats;
  std::vector<ReplayRecord> records;

  double interpolated_fraction() const;    ///< p (0..1).
  double mean_neighbors() const;           ///< j̄.
  double max_epsilon() const;              ///< max ε (0 if none interpolated).
  double mean_epsilon() const;             ///< μ ε (0 if none interpolated).
};

/// ε between an estimated and a true λ under the metric convention.
double interpolation_epsilon(double estimate, double true_value,
                             MetricKind kind);

/// Replay a recorded trajectory through the kriging policy.
ReplayReport replay_with_kriging(const Trajectory& trajectory,
                                 const PolicyOptions& options,
                                 MetricKind kind);

}  // namespace ace::dse
