// Evaluation-order scheduling for batch DSE (extension).
//
// The simulate-or-interpolate policy is order-sensitive: early
// configurations find an empty store and must simulate, late ones reuse
// them. When a batch of configurations is known up front (a GA
// generation, a screening design, a Pareto sweep's candidate set),
// evaluating a well-spread "spine" first maximizes how many of the rest
// can be interpolated. maximin_order() produces that ordering: a
// farthest-point traversal under the policy's L1 metric.
#pragma once

#include <cstddef>
#include <vector>

#include "dse/config.hpp"
#include "dse/kriging_policy.hpp"
#include "dse/min_plus_one.hpp"  // BatchEvaluateFn

namespace ace::util {
class ThreadPool;
}

namespace ace::dse {

/// Farthest-point (maximin) ordering: starts from the batch's L1 medoid,
/// then repeatedly appends the configuration with the largest minimum
/// distance to everything already ordered. Deterministic; ties broken by
/// original index. Returns a permutation of the input.
std::vector<Config> maximin_order(std::vector<Config> batch);

/// Evaluate a batch through a policy in the given order; returns how many
/// were interpolated. Sequential by design: each configuration sees a
/// store already enriched by its predecessors in the batch, which is what
/// makes a maximin ordering pay off.
std::size_t evaluate_batch(KrigingPolicy& policy, const SimulatorFn& simulate,
                           const std::vector<Config>& batch);

/// Glue for the optimizers' batched candidate competitions: a
/// BatchEvaluateFn that feeds each candidate set through
/// KrigingPolicy::evaluate_batch, fanning pending simulations out to
/// `pool` (inline when null). The returned callable references `policy`
/// and copies `simulate`; it must not outlive either the policy or the
/// pool.
BatchEvaluateFn policy_batch_evaluator(KrigingPolicy& policy,
                                       SimulatorFn simulate,
                                       util::ThreadPool* pool = nullptr);

/// Backend variant: candidate sets run through the policy with pending
/// simulations executed by `backend` (e.g. dist::Coordinator sharding to
/// worker processes). References both arguments — must not outlive them.
BatchEvaluateFn policy_batch_evaluator(KrigingPolicy& policy,
                                       class BatchSimulator& backend);

}  // namespace ace::dse
