#include "dse/steepest_descent.hpp"

#include <limits>
#include <stdexcept>

namespace ace::dse {

namespace {
void validate(const SensitivityOptions& options) {
  if (options.nv == 0)
    throw std::invalid_argument("steepest_descent: nv must be positive");
  if (options.level_min > options.level_max)
    throw std::invalid_argument("steepest_descent: level_min > level_max");
}
}  // namespace

SensitivityCursor make_sensitivity_cursor(const SensitivityOptions& options) {
  validate(options);
  SensitivityCursor cursor;
  cursor.levels = Config(options.nv, options.level_max);
  return cursor;
}

bool steepest_descent_step(const BatchEvaluateFn& evaluate,
                           const SensitivityOptions& options,
                           SensitivityCursor& cursor) {
  if (cursor.finished()) return false;

  if (!cursor.started) {
    cursor.lambda = evaluate({cursor.levels}).front();
    cursor.started = true;
    cursor.feasible = cursor.lambda >= options.lambda_min;
    // Even near-silent error sources break the constraint: nothing to budget.
    if (!cursor.feasible) cursor.done = true;
    return !cursor.finished();
  }

  if (cursor.steps >= options.max_steps) {
    cursor.done = true;
    return false;
  }

  // Try relaxing each source one level as a single candidate batch; keep
  // the least harmful move, ties going to the lowest source index.
  std::vector<Config> candidates;
  std::vector<std::size_t> vars;
  for (std::size_t i = 0; i < options.nv; ++i) {
    if (cursor.levels[i] <= options.level_min) continue;
    Config candidate = cursor.levels;
    --candidate[i];
    candidates.push_back(std::move(candidate));
    vars.push_back(i);
  }
  if (candidates.empty()) {  // Fully relaxed.
    cursor.done = true;
    return false;
  }
  const std::vector<double> lambdas = evaluate(candidates);

  double best_lambda = -std::numeric_limits<double>::infinity();
  std::size_t best_var = options.nv;  // Sentinel: none.
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    if (lambdas[j] > best_lambda) {
      best_lambda = lambdas[j];
      best_var = vars[j];
    }
  }
  // Next move breaks quality — or every candidate faulted (-inf/NaN), in
  // which case best_var is still the sentinel and must not be indexed.
  if (best_lambda < options.lambda_min || best_var == options.nv) {
    cursor.done = true;
    return false;
  }
  --cursor.levels[best_var];
  cursor.lambda = best_lambda;
  cursor.decisions.push_back(best_var);
  ++cursor.steps;
  return true;
}

SensitivityResult sensitivity_result(const SensitivityCursor& cursor) {
  SensitivityResult result;
  result.levels = cursor.levels;
  result.final_lambda = cursor.lambda;
  result.decisions = cursor.decisions;
  result.feasible = cursor.feasible;
  return result;
}

SensitivityResult steepest_descent_budgeting(
    const BatchEvaluateFn& evaluate, const SensitivityOptions& options) {
  SensitivityCursor cursor = make_sensitivity_cursor(options);
  while (steepest_descent_step(evaluate, options, cursor)) {
  }
  return sensitivity_result(cursor);
}

SensitivityResult steepest_descent_budgeting(
    const EvaluateFn& evaluate, const SensitivityOptions& options) {
  // Serial reference path: candidates evaluated left-to-right in index
  // order, exactly as the historical per-candidate loop did.
  return steepest_descent_budgeting(serialize_evaluator(evaluate), options);
}

}  // namespace ace::dse
