#include "dse/steepest_descent.hpp"

#include <limits>
#include <stdexcept>

namespace ace::dse {

SensitivityResult steepest_descent_budgeting(
    const BatchEvaluateFn& evaluate, const SensitivityOptions& options) {
  if (options.nv == 0)
    throw std::invalid_argument("steepest_descent: nv must be positive");
  if (options.level_min > options.level_max)
    throw std::invalid_argument("steepest_descent: level_min > level_max");

  SensitivityResult result;
  Config levels(options.nv, options.level_max);
  double lambda = evaluate({levels}).front();
  result.feasible = lambda >= options.lambda_min;
  if (!result.feasible) {
    // Even near-silent error sources break the constraint: nothing to budget.
    result.levels = std::move(levels);
    result.final_lambda = lambda;
    return result;
  }

  std::size_t steps = 0;
  std::vector<Config> candidates;
  std::vector<std::size_t> vars;
  while (steps < options.max_steps) {
    // Try relaxing each source one level as a single candidate batch; keep
    // the least harmful move, ties going to the lowest source index.
    candidates.clear();
    vars.clear();
    for (std::size_t i = 0; i < options.nv; ++i) {
      if (levels[i] <= options.level_min) continue;
      Config candidate = levels;
      --candidate[i];
      candidates.push_back(std::move(candidate));
      vars.push_back(i);
    }
    if (candidates.empty()) break;  // Fully relaxed.
    const std::vector<double> lambdas = evaluate(candidates);

    double best_lambda = -std::numeric_limits<double>::infinity();
    std::size_t best_var = options.nv;  // Sentinel: none.
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (lambdas[j] > best_lambda) {
        best_lambda = lambdas[j];
        best_var = vars[j];
      }
    }
    if (best_lambda < options.lambda_min) break;  // Next move breaks quality.
    --levels[best_var];
    lambda = best_lambda;
    result.decisions.push_back(best_var);
    ++steps;
  }

  result.levels = std::move(levels);
  result.final_lambda = lambda;
  return result;
}

SensitivityResult steepest_descent_budgeting(
    const EvaluateFn& evaluate, const SensitivityOptions& options) {
  // Serial reference path: candidates evaluated left-to-right in index
  // order, exactly as the historical per-candidate loop did.
  return steepest_descent_budgeting(serialize_evaluator(evaluate), options);
}

}  // namespace ace::dse
