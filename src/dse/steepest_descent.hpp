// Steepest-descent greedy noise budgeting for error-sensitivity analysis
// (the paper's SqueezeNet experiment, after Parashar et al., VLSID 2010).
//
// Configurations are integer *levels*: component e_i maps to an injected
// error power 2^-e_i·P0, so decreasing a level doubles that source's
// power. Starting from near-silent sources, the optimizer repeatedly
// relaxes (decrements) the level whose extra error degrades the quality
// metric least, until the quality constraint λ >= λm would break — giving
// the maximal tolerated error powers for the targeted quality.
#pragma once

#include <cstddef>
#include <vector>

#include "dse/config.hpp"
#include "dse/min_plus_one.hpp"  // EvaluateFn

namespace ace::dse {

struct SensitivityOptions {
  double lambda_min = 0.9;  ///< Quality floor (e.g. classification agreement).
  std::size_t nv = 0;       ///< Number of error sources.
  int level_min = 0;        ///< Most aggressive level (largest power).
  int level_max = 15;       ///< Starting level (smallest power).
  std::size_t max_steps = 100000;  ///< Safety cap.
};

struct SensitivityResult {
  Config levels;                      ///< Final per-source levels.
  double final_lambda = 0.0;          ///< λ at the final configuration.
  std::vector<std::size_t> decisions; ///< Relaxed source per step.
  bool feasible = false;              ///< Start already met the constraint.
};

/// Run the budgeting descent. Throws std::invalid_argument on nv == 0 or
/// level_min > level_max.
SensitivityResult steepest_descent_budgeting(const EvaluateFn& evaluate,
                                             const SensitivityOptions& options);

/// Batched variant: each relaxation step submits all candidate -1-level
/// moves as one batch (parallelizable); ties resolve to the lowest source
/// index, exactly as the scalar overload does.
SensitivityResult steepest_descent_budgeting(const BatchEvaluateFn& evaluate,
                                             const SensitivityOptions& options);

// ---------------------------------------------------------------------------
// Resumable execution (the substrate of dse/checkpoint). Mirrors the
// MinPlusOneCursor contract: the overloads above run the cursor to
// completion, so there is exactly one implementation of the descent.
// ---------------------------------------------------------------------------

/// Mid-run position of a budgeting descent. The first step evaluates the
/// starting configuration; each later step runs one relaxation
/// competition.
struct SensitivityCursor {
  bool started = false;  ///< Starting λ evaluated yet?
  bool done = false;
  Config levels;             ///< Current iterate.
  double lambda = 0.0;       ///< λ(levels) once started.
  bool feasible = false;     ///< Start met the constraint.
  std::vector<std::size_t> decisions;
  std::size_t steps = 0;

  bool finished() const { return done; }

  friend bool operator==(const SensitivityCursor&,
                         const SensitivityCursor&) = default;
};

/// Fresh cursor at the all-level_max start. Validates options.
SensitivityCursor make_sensitivity_cursor(const SensitivityOptions& options);

/// Advance the cursor by one resumable unit. Returns true while the run is
/// unfinished. The evaluation sequence is identical to the monolithic
/// loop, so stepping a cursor to completion reproduces its result exactly.
bool steepest_descent_step(const BatchEvaluateFn& evaluate,
                           const SensitivityOptions& options,
                           SensitivityCursor& cursor);

/// Package a finished (or abandoned) cursor as a result.
SensitivityResult sensitivity_result(const SensitivityCursor& cursor);

}  // namespace ace::dse
