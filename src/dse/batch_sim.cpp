#include "dse/batch_sim.hpp"

#include <exception>

#include "util/thread_pool.hpp"

namespace ace::dse {

std::vector<util::GuardedCall> PooledBatchSimulator::simulate_many(
    const std::vector<Config>& configs) {
  std::vector<util::GuardedCall> sims(configs.size());
  const std::vector<util::TaskError> errors =
      util::parallel_for_indexed_collect(
          pool_, configs.size(), [&](std::size_t s) {
            // The task key is a pure function of the configuration, so the
            // backoff jitter (and thus the whole retry schedule) is
            // identical whether the call runs inline, on any worker
            // thread, or in a worker process.
            sims[s] = util::call_with_retry(retry_, ConfigHash{}(configs[s]),
                                            [&] { return simulate_(configs[s]); });
          });
  for (const util::TaskError& err : errors) {
    util::GuardedCall& g = sims[err.index];
    g = {};
    g.fault = util::CallFault::kThrew;
    g.attempts = 1;
    g.faulted_attempts = 1;
    try {
      std::rethrow_exception(err.error);
    } catch (const std::exception& e) {
      g.message = e.what();
    } catch (...) {
      g.message = "non-standard exception";
    }
  }
  return sims;
}

}  // namespace ace::dse
