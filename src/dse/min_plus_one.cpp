#include "dse/min_plus_one.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ace::dse {

namespace {
void validate(const MinPlusOneOptions& options) {
  if (options.nv == 0)
    throw std::invalid_argument("min_plus_one: nv must be positive");
  if (options.w_min > options.w_max)
    throw std::invalid_argument("min_plus_one: w_min must be <= w_max");
  if (options.w_min < 2)
    throw std::invalid_argument("min_plus_one: w_min must be >= 2");
}
}  // namespace

BatchEvaluateFn serialize_evaluator(const EvaluateFn& evaluate) {
  return [&evaluate](const std::vector<Config>& batch) {
    std::vector<double> values;
    values.reserve(batch.size());
    for (const Config& c : batch) values.push_back(evaluate(c));
    return values;
  };
}

Config determine_min_word_lengths(const EvaluateFn& evaluate,
                                  const MinPlusOneOptions& options) {
  validate(options);
  Config w_min(options.nv, options.w_max);

  // Every per-variable descent starts from the same all-Nmax point, so
  // λ(Nmax, …, Nmax) is evaluated once — not once per variable, which
  // previously cost Nv − 1 redundant simulations whose duplicate store
  // entries then degenerated the kriging support set.
  const double lambda_at_max = evaluate(Config(options.nv, options.w_max));

  for (std::size_t i = 0; i < options.nv; ++i) {
    // All other variables pinned at Nmax; walk variable i down until the
    // accuracy constraint breaks, then back off one bit.
    Config w(options.nv, options.w_max);
    int wi = options.w_max;
    double lambda = lambda_at_max;
    while (lambda >= options.lambda_min && wi > options.w_min) {
      --wi;
      w[i] = wi;
      lambda = evaluate(w);
    }
    // Back off one bit if the constraint broke; clamp to Nmax for the case
    // where even the very first decrement (or Nmax itself) violates it.
    w_min[i] = std::min(lambda >= options.lambda_min ? wi : wi + 1,
                        options.w_max);
  }
  return w_min;
}

MinPlusOneResult optimize_word_lengths(const BatchEvaluateFn& evaluate,
                                       const MinPlusOneOptions& options,
                                       Config start) {
  validate(options);
  if (start.size() != options.nv)
    throw std::invalid_argument("optimize_word_lengths: start size mismatch");

  MinPlusOneResult result;
  result.w_min = start;
  Config w = std::move(start);
  double lambda = evaluate({w}).front();

  std::size_t steps = 0;
  std::vector<Config> candidates;
  std::vector<std::size_t> vars;
  while (lambda < options.lambda_min && steps < options.max_steps) {
    // Competition between variables: all +1-bit candidates are evaluated
    // as one batch and the most accuracy-improving variable wins; ties go
    // to the lowest variable index (index-ordered reduction).
    candidates.clear();
    vars.clear();
    for (std::size_t i = 0; i < options.nv; ++i) {
      if (w[i] >= options.w_max) continue;
      Config candidate = w;
      ++candidate[i];
      candidates.push_back(std::move(candidate));
      vars.push_back(i);
    }
    if (candidates.empty()) break;  // All variables saturated at Nmax.
    const std::vector<double> lambdas = evaluate(candidates);

    double best_lambda = -std::numeric_limits<double>::infinity();
    std::size_t best_var = options.nv;  // Sentinel: none.
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (lambdas[j] > best_lambda) {
        best_lambda = lambdas[j];
        best_var = vars[j];
      }
    }
    ++w[best_var];
    lambda = best_lambda;
    result.decisions.push_back(best_var);
    ++steps;
  }

  result.w_res = std::move(w);
  result.final_lambda = lambda;
  result.constraint_met = lambda >= options.lambda_min;
  return result;
}

MinPlusOneResult optimize_word_lengths(const EvaluateFn& evaluate,
                                       const MinPlusOneOptions& options,
                                       Config start) {
  // The serial reference path: candidates are evaluated left-to-right in
  // index order, exactly as the historical per-candidate loop did.
  return optimize_word_lengths(serialize_evaluator(evaluate), options,
                               std::move(start));
}

MinPlusOneResult min_plus_one(const EvaluateFn& evaluate,
                              const MinPlusOneOptions& options) {
  Config w_min = determine_min_word_lengths(evaluate, options);
  MinPlusOneResult result = optimize_word_lengths(evaluate, options, w_min);
  result.w_min = std::move(w_min);
  return result;
}

MinPlusOneResult min_plus_one(const BatchEvaluateFn& evaluate,
                              const MinPlusOneOptions& options) {
  // Phase 1 is inherently sequential (each step depends on the previous
  // λ), so it runs through a batch-of-one adapter.
  const EvaluateFn single = [&evaluate](const Config& c) {
    return evaluate(std::vector<Config>{c}).front();
  };
  Config w_min = determine_min_word_lengths(single, options);
  MinPlusOneResult result = optimize_word_lengths(evaluate, options, w_min);
  result.w_min = std::move(w_min);
  return result;
}

}  // namespace ace::dse
