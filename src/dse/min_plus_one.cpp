#include "dse/min_plus_one.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ace::dse {

namespace {
void validate(const MinPlusOneOptions& options) {
  if (options.nv == 0)
    throw std::invalid_argument("min_plus_one: nv must be positive");
  if (options.w_min > options.w_max)
    throw std::invalid_argument("min_plus_one: w_min must be <= w_max");
  if (options.w_min < 2)
    throw std::invalid_argument("min_plus_one: w_min must be >= 2");
}
}  // namespace

Config determine_min_word_lengths(const EvaluateFn& evaluate,
                                  const MinPlusOneOptions& options) {
  validate(options);
  Config w_min(options.nv, options.w_max);

  for (std::size_t i = 0; i < options.nv; ++i) {
    // All other variables pinned at Nmax; walk variable i down until the
    // accuracy constraint breaks, then back off one bit.
    Config w(options.nv, options.w_max);
    int wi = options.w_max;
    double lambda = evaluate(w);
    while (lambda >= options.lambda_min && wi > options.w_min) {
      --wi;
      w[i] = wi;
      lambda = evaluate(w);
    }
    // Back off one bit if the constraint broke; clamp to Nmax for the case
    // where even the very first decrement (or Nmax itself) violates it.
    w_min[i] = std::min(lambda >= options.lambda_min ? wi : wi + 1,
                        options.w_max);
  }
  return w_min;
}

MinPlusOneResult optimize_word_lengths(const EvaluateFn& evaluate,
                                       const MinPlusOneOptions& options,
                                       Config start) {
  validate(options);
  if (start.size() != options.nv)
    throw std::invalid_argument("optimize_word_lengths: start size mismatch");

  MinPlusOneResult result;
  result.w_min = start;
  Config w = std::move(start);
  double lambda = evaluate(w);

  std::size_t steps = 0;
  while (lambda < options.lambda_min && steps < options.max_steps) {
    // Competition between variables: each candidate +1 bit is evaluated and
    // the most accuracy-improving variable wins.
    double best_lambda = -std::numeric_limits<double>::infinity();
    std::size_t best_var = options.nv;  // Sentinel: none.
    for (std::size_t i = 0; i < options.nv; ++i) {
      if (w[i] >= options.w_max) continue;
      Config candidate = w;
      ++candidate[i];
      const double li = evaluate(candidate);
      if (li > best_lambda) {
        best_lambda = li;
        best_var = i;
      }
    }
    if (best_var == options.nv) break;  // All variables saturated at Nmax.
    ++w[best_var];
    lambda = best_lambda;
    result.decisions.push_back(best_var);
    ++steps;
  }

  result.w_res = std::move(w);
  result.final_lambda = lambda;
  result.constraint_met = lambda >= options.lambda_min;
  return result;
}

MinPlusOneResult min_plus_one(const EvaluateFn& evaluate,
                              const MinPlusOneOptions& options) {
  Config w_min = determine_min_word_lengths(evaluate, options);
  MinPlusOneResult result = optimize_word_lengths(evaluate, options, w_min);
  result.w_min = std::move(w_min);
  return result;
}

}  // namespace ace::dse
