#include "dse/min_plus_one.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ace::dse {

namespace {
void validate(const MinPlusOneOptions& options) {
  if (options.nv == 0)
    throw std::invalid_argument("min_plus_one: nv must be positive");
  if (options.w_min > options.w_max)
    throw std::invalid_argument("min_plus_one: w_min must be <= w_max");
  if (options.w_min < 2)
    throw std::invalid_argument("min_plus_one: w_min must be >= 2");
}

/// Phase-1 inner loop for one variable (Algorithm 1): all other variables
/// pinned at Nmax, walk variable i down while the constraint holds, then
/// back off one bit. Shared by the monolithic and cursor paths so both
/// issue the exact same evaluation sequence.
int descend_variable(const EvaluateFn& evaluate,
                     const MinPlusOneOptions& options, std::size_t i,
                     double lambda_at_max) {
  Config w(options.nv, options.w_max);
  int wi = options.w_max;
  double lambda = lambda_at_max;
  while (lambda >= options.lambda_min && wi > options.w_min) {
    --wi;
    w[i] = wi;
    lambda = evaluate(w);
  }
  // Back off one bit if the constraint broke; clamp to Nmax for the case
  // where even the very first decrement (or Nmax itself) violates it.
  return std::min(lambda >= options.lambda_min ? wi : wi + 1, options.w_max);
}
}  // namespace

BatchEvaluateFn serialize_evaluator(const EvaluateFn& evaluate) {
  return [&evaluate](const std::vector<Config>& batch) {
    std::vector<double> values;
    values.reserve(batch.size());
    for (const Config& c : batch) values.push_back(evaluate(c));
    return values;
  };
}

Config determine_min_word_lengths(const EvaluateFn& evaluate,
                                  const MinPlusOneOptions& options) {
  validate(options);
  Config w_min(options.nv, options.w_max);

  // Every per-variable descent starts from the same all-Nmax point, so
  // λ(Nmax, …, Nmax) is evaluated once — not once per variable, which
  // previously cost Nv − 1 redundant simulations whose duplicate store
  // entries then degenerated the kriging support set.
  const double lambda_at_max = evaluate(Config(options.nv, options.w_max));

  for (std::size_t i = 0; i < options.nv; ++i)
    w_min[i] = descend_variable(evaluate, options, i, lambda_at_max);
  return w_min;
}

MinPlusOneCursor make_min_plus_one_cursor(const MinPlusOneOptions& options) {
  validate(options);
  MinPlusOneCursor cursor;
  cursor.w_min = Config(options.nv, options.w_max);
  return cursor;
}

MinPlusOneCursor make_phase2_cursor(const MinPlusOneOptions& options,
                                    Config start) {
  validate(options);
  if (start.size() != options.nv)
    throw std::invalid_argument("optimize_word_lengths: start size mismatch");
  MinPlusOneCursor cursor;
  cursor.phase = 2;
  cursor.w_min = start;
  cursor.w = std::move(start);
  return cursor;
}

bool min_plus_one_step(const BatchEvaluateFn& evaluate,
                       const MinPlusOneOptions& options,
                       MinPlusOneCursor& cursor) {
  if (cursor.finished()) return false;

  // Phase 1 is inherently sequential (each evaluation depends on the
  // previous λ), so it runs through a batch-of-one adapter.
  const EvaluateFn single = [&evaluate](const Config& c) {
    return evaluate(std::vector<Config>{c}).front();
  };

  if (cursor.phase == 1) {
    if (!cursor.have_lambda_at_max) {
      cursor.lambda_at_max = single(Config(options.nv, options.w_max));
      cursor.have_lambda_at_max = true;
    }
    cursor.w_min[cursor.var] =
        descend_variable(single, options, cursor.var, cursor.lambda_at_max);
    if (++cursor.var >= options.nv) {
      cursor.phase = 2;
      cursor.w = cursor.w_min;
    }
    return true;
  }

  if (!cursor.have_lambda) {
    cursor.lambda = evaluate({cursor.w}).front();
    cursor.have_lambda = true;
    if (cursor.lambda >= options.lambda_min ||
        cursor.steps >= options.max_steps)
      cursor.phase = 3;
    return !cursor.finished();
  }

  // Competition between variables: all +1-bit candidates are evaluated as
  // one batch and the most accuracy-improving variable wins; ties go to
  // the lowest variable index (index-ordered reduction).
  std::vector<Config> candidates;
  std::vector<std::size_t> vars;
  for (std::size_t i = 0; i < options.nv; ++i) {
    if (cursor.w[i] >= options.w_max) continue;
    Config candidate = cursor.w;
    ++candidate[i];
    candidates.push_back(std::move(candidate));
    vars.push_back(i);
  }
  if (candidates.empty()) {  // All variables saturated at Nmax.
    cursor.phase = 3;
    return false;
  }
  const std::vector<double> lambdas = evaluate(candidates);

  double best_lambda = -std::numeric_limits<double>::infinity();
  std::size_t best_var = options.nv;  // Sentinel: none.
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    if (lambdas[j] > best_lambda) {
      best_lambda = lambdas[j];
      best_var = vars[j];
    }
  }
  if (best_var == options.nv) {
    // No candidate produced a usable λ (every one faulted to -inf or
    // NaN): stop instead of indexing the sentinel — the run degrades to
    // "constraint not met" rather than crashing.
    cursor.phase = 3;
    return false;
  }
  ++cursor.w[best_var];
  cursor.lambda = best_lambda;
  cursor.decisions.push_back(best_var);
  ++cursor.steps;
  if (cursor.lambda >= options.lambda_min || cursor.steps >= options.max_steps)
    cursor.phase = 3;
  return !cursor.finished();
}

MinPlusOneResult min_plus_one_result(const MinPlusOneCursor& cursor,
                                     const MinPlusOneOptions& options) {
  MinPlusOneResult result;
  result.w_min = cursor.w_min;
  result.w_res = cursor.phase == 1 ? cursor.w_min : cursor.w;
  result.final_lambda = cursor.lambda;
  result.decisions = cursor.decisions;
  result.constraint_met =
      cursor.have_lambda && cursor.lambda >= options.lambda_min;
  return result;
}

MinPlusOneResult optimize_word_lengths(const BatchEvaluateFn& evaluate,
                                       const MinPlusOneOptions& options,
                                       Config start) {
  MinPlusOneCursor cursor = make_phase2_cursor(options, std::move(start));
  while (min_plus_one_step(evaluate, options, cursor)) {
  }
  return min_plus_one_result(cursor, options);
}

MinPlusOneResult optimize_word_lengths(const EvaluateFn& evaluate,
                                       const MinPlusOneOptions& options,
                                       Config start) {
  // The serial reference path: candidates are evaluated left-to-right in
  // index order, exactly as the historical per-candidate loop did.
  return optimize_word_lengths(serialize_evaluator(evaluate), options,
                               std::move(start));
}

MinPlusOneResult min_plus_one(const EvaluateFn& evaluate,
                              const MinPlusOneOptions& options) {
  Config w_min = determine_min_word_lengths(evaluate, options);
  MinPlusOneResult result = optimize_word_lengths(evaluate, options, w_min);
  result.w_min = std::move(w_min);
  return result;
}

MinPlusOneResult min_plus_one(const BatchEvaluateFn& evaluate,
                              const MinPlusOneOptions& options) {
  MinPlusOneCursor cursor = make_min_plus_one_cursor(options);
  while (min_plus_one_step(evaluate, options, cursor)) {
  }
  return min_plus_one_result(cursor, options);
}

}  // namespace ace::dse
