#include "dse/interp1d.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <unordered_set>

namespace ace::dse {

namespace {

/// Axis-aligned candidate: a stored configuration differing from the
/// query only along `axis`.
struct AxisPoint {
  int coordinate = 0;
  double value = 0.0;
};

/// Linear estimate from the two axis points closest to the query
/// coordinate (interpolation when they bracket it, extrapolation
/// otherwise — as per-variable word-length methods do during the min
/// phase).
double linear_estimate(AxisPoint a, AxisPoint b, int query) {
  if (a.coordinate == b.coordinate) return (a.value + b.value) / 2.0;
  const double t = static_cast<double>(query - a.coordinate) /
                   static_cast<double>(b.coordinate - a.coordinate);
  return a.value + t * (b.value - a.value);
}

std::optional<double> try_interp1d(const SimulationStore& store,
                                   const Config& query, int max_span) {
  const std::size_t dims = query.size();
  for (std::size_t axis = 0; axis < dims; ++axis) {
    std::vector<AxisPoint> points;
    for (std::size_t i = 0; i < store.size(); ++i) {
      const Config& c = store.config(i);
      bool axis_aligned = true;
      for (std::size_t k = 0; k < dims; ++k) {
        if (k == axis) continue;
        if (c[k] != query[k]) {
          axis_aligned = false;
          break;
        }
      }
      if (!axis_aligned) continue;
      const int delta = std::abs(c[axis] - query[axis]);
      if (delta == 0 || delta > max_span) continue;
      points.push_back({c[axis], store.value(i)});
    }
    // Closest first, then dedupe by coordinate so coincident entries can
    // never masquerade as two independent support points.
    std::sort(points.begin(), points.end(),
              [&](const AxisPoint& a, const AxisPoint& b) {
                return std::abs(a.coordinate - query[axis]) <
                       std::abs(b.coordinate - query[axis]);
              });
    points.erase(std::unique(points.begin(), points.end(),
                             [](const AxisPoint& a, const AxisPoint& b) {
                               return a.coordinate == b.coordinate;
                             }),
                 points.end());
    if (points.size() < 2) continue;
    return linear_estimate(points[0], points[1], query[axis]);
  }
  return std::nullopt;
}

}  // namespace

ReplayReport replay_with_interp1d(const Trajectory& trajectory,
                                  const Interp1dOptions& options,
                                  MetricKind kind) {
  if (trajectory.configs.size() != trajectory.values.size())
    throw std::invalid_argument("replay_with_interp1d: ragged trajectory");
  if (options.max_span <= 0)
    throw std::invalid_argument("replay_with_interp1d: max_span must be > 0");

  SimulationStore store;
  std::unordered_set<Config, ConfigHash> stored;
  ReplayReport report;
  report.records.reserve(trajectory.size());

  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    const Config& config = trajectory.configs[i];
    const double true_value = trajectory.values[i];
    ++report.stats.total;

    ReplayRecord record;
    record.index = i;
    record.true_value = true_value;

    if (const auto estimate =
            try_interp1d(store, config, options.max_span)) {
      record.interpolated = true;
      record.estimate = *estimate;
      record.epsilon = interpolation_epsilon(*estimate, true_value, kind);
      ++report.stats.interpolated;
      report.stats.neighbors_per_interpolation.add(2.0);
    } else {
      record.interpolated = false;
      record.estimate = true_value;
      record.epsilon = 0.0;
      if (stored.insert(config).second) store.add(config, true_value);
      ++report.stats.simulated;
    }
    report.records.push_back(record);
  }
  return report;
}

}  // namespace ace::dse
