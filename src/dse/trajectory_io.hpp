// Trajectory persistence. Exact optimizer runs are expensive (the paper's
// SqueezeNet run took 98 hours); saving the recorded trajectory lets the
// replay experiments (Table I, ablations) re-run against new policy knobs
// without re-simulating anything.
//
// Format: CSV with a header row "e0,e1,...,lambda"; one row per tested
// configuration, in evaluation order; a final integrity trailer
// "#end rows=N". The trailer is what makes truncation *detectable*: a file
// cut off at a row boundary is otherwise indistinguishable from a shorter
// run, and a partial trajectory silently loaded into a replay experiment
// corrupts every statistic computed from it. Loaders reject files without
// the trailer (or with a mismatched row count) with a typed
// PayloadError(FaultCode::kTruncatedPayload); unparseable cells raise
// PayloadError(FaultCode::kCorruptPayload). Both derive from
// std::runtime_error, so pre-trailer call sites keep working.
#pragma once

#include <string>

#include "dse/trajectory.hpp"

namespace ace::dse {

/// Write a trajectory to CSV (with the "#end rows=N" trailer). Throws
/// std::runtime_error on I/O failure and std::invalid_argument on an empty
/// or ragged trajectory.
void save_trajectory(const Trajectory& trajectory, const std::string& path);

/// Read a trajectory back. Throws PayloadError (a std::runtime_error) on
/// truncated or corrupt content, std::runtime_error on I/O failure.
Trajectory load_trajectory(const std::string& path);

}  // namespace ace::dse
