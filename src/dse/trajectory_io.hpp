// Trajectory persistence. Exact optimizer runs are expensive (the paper's
// SqueezeNet run took 98 hours); saving the recorded trajectory lets the
// replay experiments (Table I, ablations) re-run against new policy knobs
// without re-simulating anything.
//
// Format: CSV with a header row "e0,e1,...,lambda"; one row per tested
// configuration, in evaluation order.
#pragma once

#include <string>

#include "dse/trajectory.hpp"

namespace ace::dse {

/// Write a trajectory to CSV. Throws std::runtime_error on I/O failure
/// and std::invalid_argument on an empty or ragged trajectory.
void save_trajectory(const Trajectory& trajectory, const std::string& path);

/// Read a trajectory back. Throws std::runtime_error on I/O or parse
/// failure (missing header, ragged rows, non-numeric cells).
Trajectory load_trajectory(const std::string& path);

}  // namespace ace::dse
