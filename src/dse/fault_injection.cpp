#include "dse/fault_injection.hpp"

#include <atomic>
#include <chrono>
#include <limits>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ace::dse {

namespace {
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double unit_uniform(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

struct FaultInjectingSimulator::State {
  SimulatorFn inner;
  FaultInjectionOptions options;

  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> throws{0};
  std::atomic<std::size_t> nans{0};
  std::atomic<std::size_t> latency{0};

  // Per-configuration faulted-call counts for the transient-recovery
  // model. Guarded: pool workers call concurrently. Ranked above the pool
  // locks: the run_indexed_collect caller thread executes tasks inline
  // while holding run_mutex_, and those tasks land here.
  util::Mutex mutex{util::lock_order::Rank::kFaultInjection,
                    "dse.fault_injection"};
  std::unordered_map<Config, std::size_t, ConfigHash> fault_calls
      ACE_GUARDED_BY(mutex);
};

FaultInjectingSimulator::FaultInjectingSimulator(SimulatorFn inner,
                                                FaultInjectionOptions options)
    : state_(std::make_shared<State>()) {
  state_->inner = std::move(inner);
  state_->options = std::move(options);
}

FaultInjectingSimulator::Kind FaultInjectingSimulator::scheduled_fault(
    const Config& config) const {
  const FaultInjectionOptions& o = state_->options;
  for (const Config& target : o.always_fault)
    if (target == config) return Kind::kThrow;
  const double u =
      unit_uniform(splitmix64(o.seed ^ ConfigHash{}(config)));
  double p = o.throw_probability;
  if (u < p) return Kind::kThrow;
  p += o.nan_probability;
  if (u < p) return Kind::kNan;
  p += o.latency_probability;
  if (u < p) return Kind::kLatency;
  return Kind::kNone;
}

double FaultInjectingSimulator::operator()(const Config& config) const {
  State& s = *state_;
  s.calls.fetch_add(1, std::memory_order_relaxed);

  Kind kind = scheduled_fault(config);
  if (kind != Kind::kNone) {
    bool persistent = false;
    for (const Config& target : s.options.always_fault)
      if (target == config) persistent = true;
    if (!persistent) {
      std::size_t faulted_so_far;
      {
        const util::LockGuard lock(s.mutex);
        faulted_so_far = s.fault_calls[config]++;
      }
      // Transient fault already exhausted: the configuration recovered.
      if (faulted_so_far >= s.options.faulty_calls) kind = Kind::kNone;
    }
  }

  switch (kind) {
    case Kind::kThrow:
      s.throws.fetch_add(1, std::memory_order_relaxed);
      throw SimulatorFault("injected simulator fault at " + to_string(config));
    case Kind::kNan:
      s.nans.fetch_add(1, std::memory_order_relaxed);
      return std::numeric_limits<double>::quiet_NaN();
    case Kind::kLatency:
      s.latency.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(s.options.latency_ms));
      return s.inner(config);
    case Kind::kNone:
      break;
  }
  return s.inner(config);
}

std::size_t FaultInjectingSimulator::calls() const {
  return state_->calls.load(std::memory_order_relaxed);
}
std::size_t FaultInjectingSimulator::injected_throws() const {
  return state_->throws.load(std::memory_order_relaxed);
}
std::size_t FaultInjectingSimulator::injected_nans() const {
  return state_->nans.load(std::memory_order_relaxed);
}
std::size_t FaultInjectingSimulator::injected_latency_spikes() const {
  return state_->latency.load(std::memory_order_relaxed);
}

}  // namespace ace::dse
