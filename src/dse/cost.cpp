#include "dse/cost.hpp"

#include <stdexcept>

namespace ace::dse {

double linear_cost(const Config& w) {
  double acc = 0.0;
  for (int wi : w) acc += wi;
  return acc;
}

double quadratic_cost(const Config& w) {
  double acc = 0.0;
  for (int wi : w) acc += static_cast<double>(wi) * static_cast<double>(wi);
  return acc;
}

WeightedCostModel::WeightedCostModel(std::vector<double> linear_weights,
                                     std::vector<double> quadratic_weights)
    : linear_(std::move(linear_weights)),
      quadratic_(std::move(quadratic_weights)) {}

double WeightedCostModel::operator()(const Config& w) const {
  if (!linear_.empty() && linear_.size() != w.size())
    throw std::invalid_argument("WeightedCostModel: linear weight size");
  if (!quadratic_.empty() && quadratic_.size() != w.size())
    throw std::invalid_argument("WeightedCostModel: quadratic weight size");
  double acc = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double wi = w[i];
    acc += (linear_.empty() ? 1.0 : linear_[i]) * wi;
    acc += (quadratic_.empty() ? 1.0 : quadratic_[i]) * wi * wi;
  }
  return acc;
}

CostFn WeightedCostModel::as_function() const {
  return [model = *this](const Config& w) { return model(w); };
}

}  // namespace ace::dse
