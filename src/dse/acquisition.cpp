#include "dse/acquisition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dse/kriging_policy.hpp"

namespace ace::dse {

namespace {

/// Calibration clamp: a single degenerate LOO pass (near-zero predicted
/// variances, or a window of near-identical values) must not wedge the
/// gate fully open or fully shut forever.
constexpr double kMinCalibration = 1e-2;
constexpr double kMaxCalibration = 1e4;

/// Paper default: interpolate whenever the neighbourhood beats nn_min,
/// and always stand by the solve. Bit-identical to the pre-seam policy.
class NeighbourCountGate final : public AcquisitionGate {
 public:
  explicit NeighbourCountGate(std::size_t nn_min) : nn_min_(nn_min) {}
  GateKind kind() const override { return GateKind::kNeighbourCount; }
  bool attempt(const GateQuery& query) const override {
    return query.neighbors > nn_min_;
  }
  bool accept(const GateSolution&, PolicyStats&) const override {
    return true;
  }

 private:
  std::size_t nn_min_;
};

/// nn_min plus the legacy variance ceiling: refuse interpolations whose
/// kriging variance exceeds gate · sill — extrapolations the support
/// cannot back. Absorbs the pre-seam `PolicyOptions::variance_gate`
/// semantics (and its variance_rejections counter) exactly.
class VarianceGate final : public AcquisitionGate {
 public:
  VarianceGate(std::size_t nn_min, double ceiling)
      : nn_min_(nn_min), ceiling_(ceiling) {}
  GateKind kind() const override { return GateKind::kVariance; }
  bool attempt(const GateQuery& query) const override {
    return query.neighbors > nn_min_;
  }
  bool accept(const GateSolution& solution,
              PolicyStats& stats) const override {
    if (ceiling_ > 0.0 && solution.sill > 0.0 &&
        solution.variance > ceiling_ * solution.sill) {
      ++stats.variance_rejections;
      return false;
    }
    return true;
  }

 private:
  std::size_t nn_min_;
  double ceiling_;
};

/// Variance ceiling with the variance *recalibrated* by the rolling LOO
/// error (Le Gratiet & Cannamela, PAPERS.md): accept while
/// c · variance <= ceiling · sill, where c = mean(e²/σ²) from the last
/// refit-time LOO pass. An honest model (c ≈ 1) behaves like the
/// VarianceGate; an overconfident one (c > 1) is reined in. The nn_min
/// floor is relaxed to `floor` neighbours — the calibrated variance, not
/// a point count, carries the veto — which is where the simulation
/// savings over the paper baseline come from.
class LooCalibratedGate final : public AcquisitionGate {
 public:
  LooCalibratedGate(std::size_t floor, double ceiling)
      : floor_(std::max<std::size_t>(1, floor)), ceiling_(ceiling) {}
  GateKind kind() const override { return GateKind::kLooCalibrated; }
  bool attempt(const GateQuery& query) const override {
    return query.neighbors >= floor_;
  }
  bool accept(const GateSolution& solution,
              PolicyStats& stats) const override {
    if (solution.sill > 0.0 &&
        calibration_ * solution.variance > ceiling_ * solution.sill) {
      ++stats.loo_rejections;
      return false;
    }
    return true;
  }
  bool wants_loo() const override { return true; }
  void calibrate(const LooSummary& summary) override {
    if (summary.count == 0 || summary.mean_sq_standardized <= 0.0) return;
    calibration_ = std::clamp(summary.mean_sq_standardized, kMinCalibration,
                              kMaxCalibration);
  }
  double calibration() const override { return calibration_; }

 private:
  std::size_t floor_;
  double ceiling_;
  double calibration_ = 1.0;  ///< 1 until the first LOO pass lands.
};

/// Vazquez & Bect's sequential-design criterion pointed at the λ_min
/// constraint test: an interpolation is only trusted when the predicted
/// value clears the decision threshold by z standard deviations of the
/// (LOO-calibrated) kriging uncertainty — simulate exactly where the
/// uncertainty threatens the feasibility verdict, interpolate everywhere
/// the verdict is already beyond doubt.
class SequentialDesignGate final : public AcquisitionGate {
 public:
  SequentialDesignGate(std::size_t floor, double z, double lambda_min)
      : floor_(std::max<std::size_t>(1, floor)), z_(z),
        lambda_min_(lambda_min) {}
  GateKind kind() const override { return GateKind::kSequentialDesign; }
  bool attempt(const GateQuery& query) const override {
    return query.neighbors >= floor_;
  }
  bool accept(const GateSolution& solution,
              PolicyStats& stats) const override {
    const double sigma =
        std::sqrt(std::max(calibration_ * solution.variance, 0.0));
    if (std::abs(solution.estimate - lambda_min_) < z_ * sigma) {
      ++stats.sequential_rejections;
      return false;
    }
    return true;
  }
  bool wants_loo() const override { return true; }
  void calibrate(const LooSummary& summary) override {
    if (summary.count == 0 || summary.mean_sq_standardized <= 0.0) return;
    calibration_ = std::clamp(summary.mean_sq_standardized, kMinCalibration,
                              kMaxCalibration);
  }
  double calibration() const override { return calibration_; }

 private:
  std::size_t floor_;
  double z_;
  double lambda_min_;
  double calibration_ = 1.0;
};

}  // namespace

const char* gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::kNeighbourCount: return "neighbour-count";
    case GateKind::kVariance: return "variance";
    case GateKind::kLooCalibrated: return "loo-calibrated";
    case GateKind::kSequentialDesign: return "sequential-design";
  }
  return "unknown";
}

std::unique_ptr<AcquisitionGate> make_gate(const PolicyOptions& options) {
  switch (options.gate) {
    case GateKind::kNeighbourCount:
      // Legacy absorption: variance_gate predates the seam and used to
      // ride on the default gate; keep that combination meaning what it
      // always meant.
      if (options.variance_gate > 0.0)
        return std::make_unique<VarianceGate>(options.nn_min,
                                              options.variance_gate);
      return std::make_unique<NeighbourCountGate>(options.nn_min);
    case GateKind::kVariance:
      return std::make_unique<VarianceGate>(
          options.nn_min,
          options.variance_gate > 0.0 ? options.variance_gate : 1.0);
    case GateKind::kLooCalibrated:
      return std::make_unique<LooCalibratedGate>(options.gate_nn_floor,
                                                 options.loo_gate);
    case GateKind::kSequentialDesign:
      if (!options.gate_lambda_min)
        throw std::invalid_argument(
            "make_gate: sequential-design gate needs gate_lambda_min");
      return std::make_unique<SequentialDesignGate>(options.gate_nn_floor,
                                                    options.seq_confidence,
                                                    *options.gate_lambda_min);
  }
  throw std::invalid_argument("make_gate: unknown gate kind");
}

}  // namespace ace::dse
