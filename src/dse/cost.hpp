// Implementation-cost models for the DSE objective (paper Eq. 1:
// min C(e) subject to λ(e) > λm).
//
// The min+1 algorithm minimizes cost implicitly — each greedy step adds
// the single cheapest bit — so the paper never spells out C. For
// reporting, Pareto sweeps and the annealing optimizer we provide the
// standard word-length cost models used in the fixed-point literature:
// linear (registers / adders grow ~w) and quadratic (array multipliers
// grow ~w²), plus a weighted combination.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "dse/config.hpp"

namespace ace::dse {

/// Cost function over configurations (higher = more expensive).
using CostFn = std::function<double(const Config&)>;

/// Σ w_i — register/adder area proxy.
double linear_cost(const Config& w);

/// Σ w_i² — multiplier area proxy.
double quadratic_cost(const Config& w);

/// Weighted mix: Σ (a_i·w_i + m_i·w_i²). Weight vectors may be empty
/// (treated as all-ones) or must match the configuration size (throws).
class WeightedCostModel {
 public:
  WeightedCostModel(std::vector<double> linear_weights,
                    std::vector<double> quadratic_weights);

  double operator()(const Config& w) const;

  /// Bind into a CostFn.
  CostFn as_function() const;

 private:
  std::vector<double> linear_;
  std::vector<double> quadratic_;
};

/// One point of a quality-vs-cost sweep.
struct ParetoPoint {
  double lambda_min = 0.0;   ///< Constraint used.
  Config solution;           ///< Optimizer result.
  double lambda = 0.0;       ///< Achieved quality.
  double cost = 0.0;         ///< C(solution).
  std::size_t evaluations = 0;  ///< Metric evaluations spent.
};

}  // namespace ace::dse
