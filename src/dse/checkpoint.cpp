#include "dse/checkpoint.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dse/scheduler.hpp"

namespace ace::dse {

namespace {

constexpr const char* kMagic = "ACE-CHECKPOINT";
/// Version 2 added the conditioning / factorization counters to the stats
/// record (ridge_fallbacks, full_factorizations, factor_cache_hits,
/// factor_extends, rcond_per_solve). Version 3 added the acquisition-gate
/// counters (loo_rejections, sequential_rejections, loo_passes,
/// loo_abs_error). Older files still load: each version's tail is gated on
/// the header version, so missing fields default to zero — a v1/v2 file
/// restores under the gate-aware policy with its variance_rejections
/// intact and the v3 counters at their fresh-policy values.
constexpr int kVersion = 3;

/// Staging-file name for the atomic tmp+rename write. The name is unique
/// per process *and* per write (pid + a process-local counter), so two
/// concurrent writers — two threads here, or two coordinator/worker
/// processes checkpointing the same path — can never interleave on a
/// shared ".tmp" file and rename a half-written payload into place.
std::string unique_tmp_name(const std::string& path) {
  static std::atomic<unsigned long> counter{0};
  std::string tmp = path;
  tmp += ".tmp.";
  tmp += std::to_string(static_cast<long>(::getpid()));
  tmp += '.';
  tmp += std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  return tmp;
}

/// Unlinks the staging file unless the write completed: a failure anywhere
/// on the open/write/rename path must not leave an orphaned .tmp behind.
class TmpGuard {
 public:
  explicit TmpGuard(std::string path) : path_(std::move(path)) {}
  ~TmpGuard() {
    if (armed_) (void)std::remove(path_.c_str());
  }
  void disarm() { armed_ = false; }

 private:
  std::string path_;
  bool armed_ = true;
};

// --- writing ---------------------------------------------------------------

void put(std::string& out, std::size_t v) {
  out += std::to_string(v);
  out += ' ';
}

void put(std::string& out, int v) {
  out += std::to_string(v);
  out += ' ';
}

void put(std::string& out, bool v) { put(out, v ? 1 : 0); }

/// Hexfloat ("%a") so the double round-trips exactly; glibc also prints
/// inf/-inf/nan here, which strtod parses back.
void put(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  out += buf;
  out += ' ';
}

void put_config(std::string& out, const Config& c) {
  for (int v : c) put(out, v);
}

void put_sized(std::string& out, const std::vector<std::size_t>& xs) {
  put(out, xs.size());
  for (std::size_t v : xs) put(out, v);
  out += '\n';
}

void put_sized(std::string& out, const Config& c) {
  put(out, c.size());
  put_config(out, c);
  out += '\n';
}

void put_running_stats(std::string& out, const util::RunningStats& stats) {
  const util::RunningStats::State rs = stats.state();
  put(out, rs.n);
  put(out, rs.mean);
  put(out, rs.m2);
  put(out, rs.min);
  put(out, rs.max);
}

void put_stats(std::string& out, const PolicyStats& s) {
  out += "stats ";
  put(out, s.total);
  put(out, s.simulated);
  put(out, s.interpolated);
  put(out, s.exact_hits);
  put(out, s.kriging_failures);
  put(out, s.variance_rejections);
  put(out, s.refits);
  put(out, s.failed_refits);
  put(out, s.simulator_faults);
  put(out, s.retries);
  put(out, s.timeouts);
  put(out, s.quarantined);
  put(out, s.checkpoints_written);
  put_running_stats(out, s.neighbors_per_interpolation);
  // Version-2 tail: conditioning / factorization counters.
  put(out, s.ridge_fallbacks);
  put(out, s.full_factorizations);
  put(out, s.factor_cache_hits);
  put(out, s.factor_extends);
  put_running_stats(out, s.rcond_per_solve);
  // Version-3 tail: acquisition-gate counters.
  put(out, s.loo_rejections);
  put(out, s.sequential_rejections);
  put(out, s.loo_passes);
  put_running_stats(out, s.loo_abs_error);
  out += '\n';
}

std::string serialize(const Checkpoint& ck) {
  std::string out;
  out += kMagic;
  out += ' ';
  out += std::to_string(kVersion);
  out += '\n';
  out += "optimizer ";
  out += ck.optimizer;
  out += '\n';

  const PolicySnapshot& p = ck.policy;
  out += "store ";
  put(out, p.configs.size());
  put(out, p.configs.empty() ? std::size_t{0} : p.configs.front().size());
  out += '\n';
  for (std::size_t i = 0; i < p.configs.size(); ++i) {
    put_config(out, p.configs[i]);
    put(out, p.values[i]);
    out += '\n';
  }
  out += "quarantine ";
  put(out, p.quarantine.size());
  put(out,
      p.quarantine.empty() ? std::size_t{0} : p.quarantine.front().first.size());
  out += '\n';
  for (const auto& [config, code] : p.quarantine) {
    put(out, static_cast<int>(code));
    put_config(out, config);
    out += '\n';
  }
  out += "fit_events ";
  put_sized(out, p.fit_events);
  put_stats(out, p.stats);

  const MinPlusOneCursor& m = ck.min_plus;
  out += "cursor_min_plus ";
  put(out, m.phase);
  put(out, m.var);
  put(out, m.steps);
  put(out, m.have_lambda_at_max);
  put(out, m.have_lambda);
  put(out, m.lambda_at_max);
  put(out, m.lambda);
  out += '\n';
  out += "w_min ";
  put_sized(out, m.w_min);
  out += "w ";
  put_sized(out, m.w);
  out += "decisions ";
  put_sized(out, m.decisions);

  const SensitivityCursor& s = ck.sensitivity;
  out += "cursor_sensitivity ";
  put(out, s.started);
  put(out, s.done);
  put(out, s.feasible);
  put(out, s.steps);
  put(out, s.lambda);
  out += '\n';
  out += "levels ";
  put_sized(out, s.levels);
  out += "decisions ";
  put_sized(out, s.decisions);

  out += "end\n";
  return out;
}

// --- reading ---------------------------------------------------------------

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  // A cut-off stream (worker crash mid-write, truncated download) is
  // reported as kTruncatedPayload, a token that exists but does not parse
  // as kCorruptPayload — both typed, so a partial file can never load
  // silently and callers can route the two failure classes differently.
  std::string token() {
    std::string t;
    if (!(in_ >> t))
      throw PayloadError(FaultCode::kTruncatedPayload,
                         "checkpoint: unexpected end of file");
    return t;
  }

  void expect(const char* keyword) {
    const std::string t = token();
    if (t != keyword)
      throw PayloadError(FaultCode::kCorruptPayload,
                         std::string("checkpoint: expected '") + keyword +
                             "', got '" + t + "'");
  }

  std::size_t size() {
    const std::string t = token();
    char* end = nullptr;
    const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
    if (end == t.c_str() || *end != '\0')
      throw PayloadError(FaultCode::kCorruptPayload,
                         "checkpoint: bad count '" + t + "'");
    return static_cast<std::size_t>(v);
  }

  int integer() {
    const std::string t = token();
    char* end = nullptr;
    const long v = std::strtol(t.c_str(), &end, 10);
    if (end == t.c_str() || *end != '\0')
      throw PayloadError(FaultCode::kCorruptPayload,
                         "checkpoint: bad integer '" + t + "'");
    return static_cast<int>(v);
  }

  bool boolean() { return integer() != 0; }

  double real() {
    const std::string t = token();
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0')
      throw PayloadError(FaultCode::kCorruptPayload,
                         "checkpoint: bad double '" + t + "'");
    return v;
  }

 private:
  std::istream& in_;
};

Config read_config(Reader& r, std::size_t dim) {
  Config c(dim);
  for (std::size_t i = 0; i < dim; ++i) c[i] = r.integer();
  return c;
}

std::vector<std::size_t> read_sized(Reader& r) {
  std::vector<std::size_t> xs(r.size());
  for (std::size_t& v : xs) v = r.size();
  return xs;
}

Config read_sized_config(Reader& r) {
  const std::size_t n = r.size();
  return read_config(r, n);
}

util::RunningStats read_running_stats(Reader& r) {
  util::RunningStats::State rs;
  rs.n = r.size();
  rs.mean = r.real();
  rs.m2 = r.real();
  rs.min = r.real();
  rs.max = r.real();
  return util::RunningStats(rs);
}

PolicyStats read_stats(Reader& r, int version) {
  r.expect("stats");
  PolicyStats s;
  s.total = r.size();
  s.simulated = r.size();
  s.interpolated = r.size();
  s.exact_hits = r.size();
  s.kriging_failures = r.size();
  s.variance_rejections = r.size();
  s.refits = r.size();
  s.failed_refits = r.size();
  s.simulator_faults = r.size();
  s.retries = r.size();
  s.timeouts = r.size();
  s.quarantined = r.size();
  s.checkpoints_written = r.size();
  s.neighbors_per_interpolation = read_running_stats(r);
  if (version >= 2) {
    s.ridge_fallbacks = r.size();
    s.full_factorizations = r.size();
    s.factor_cache_hits = r.size();
    s.factor_extends = r.size();
    s.rcond_per_solve = read_running_stats(r);
  }
  if (version >= 3) {
    s.loo_rejections = r.size();
    s.sequential_rejections = r.size();
    s.loo_passes = r.size();
    s.loo_abs_error = read_running_stats(r);
  }
  return s;
}

Checkpoint parse(std::istream& in) {
  Reader r(in);
  r.expect(kMagic);
  const int version = r.integer();
  if (version < 1 || version > kVersion)
    throw PayloadError(FaultCode::kCorruptPayload,
                       "checkpoint: unsupported version " +
                           std::to_string(version));
  Checkpoint ck;
  r.expect("optimizer");
  ck.optimizer = r.token();

  r.expect("store");
  const std::size_t n = r.size();
  const std::size_t dim = r.size();
  ck.policy.configs.reserve(n);
  ck.policy.values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ck.policy.configs.push_back(read_config(r, dim));
    ck.policy.values.push_back(r.real());
  }
  r.expect("quarantine");
  const std::size_t m = r.size();
  const std::size_t qdim = r.size();
  ck.policy.quarantine.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const int raw_code = r.integer();
    if (raw_code < 0 ||
        raw_code > static_cast<int>(FaultCode::kTruncatedPayload))
      throw PayloadError(FaultCode::kCorruptPayload,
                         "checkpoint: bad fault code " +
                             std::to_string(raw_code));
    const auto code = static_cast<FaultCode>(raw_code);
    ck.policy.quarantine.emplace_back(read_config(r, qdim), code);
  }
  r.expect("fit_events");
  ck.policy.fit_events = read_sized(r);
  ck.policy.stats = read_stats(r, version);

  r.expect("cursor_min_plus");
  ck.min_plus.phase = r.integer();
  ck.min_plus.var = r.size();
  ck.min_plus.steps = r.size();
  ck.min_plus.have_lambda_at_max = r.boolean();
  ck.min_plus.have_lambda = r.boolean();
  ck.min_plus.lambda_at_max = r.real();
  ck.min_plus.lambda = r.real();
  r.expect("w_min");
  ck.min_plus.w_min = read_sized_config(r);
  r.expect("w");
  ck.min_plus.w = read_sized_config(r);
  r.expect("decisions");
  ck.min_plus.decisions = read_sized(r);

  r.expect("cursor_sensitivity");
  ck.sensitivity.started = r.boolean();
  ck.sensitivity.done = r.boolean();
  ck.sensitivity.feasible = r.boolean();
  ck.sensitivity.steps = r.size();
  ck.sensitivity.lambda = r.real();
  r.expect("levels");
  ck.sensitivity.levels = read_sized_config(r);
  r.expect("decisions");
  ck.sensitivity.decisions = read_sized(r);

  r.expect("end");
  return ck;
}

/// record_checkpoint() runs *before* snapshot(), so the on-disk statistics
/// count the checkpoint that carries them — a resumed run's
/// checkpoints_written lines up with the uninterrupted run's.
void write_policy_checkpoint(KrigingPolicy& policy, Checkpoint& ck,
                             const std::string& path) {
  policy.record_checkpoint();
  ck.policy = policy.snapshot();
  save_checkpoint(path, ck);
}

}  // namespace

std::string serialize_checkpoint(const Checkpoint& checkpoint) {
  return serialize(checkpoint);
}

Checkpoint parse_checkpoint(std::istream& in) { return parse(in); }

void save_checkpoint(const std::string& path, const Checkpoint& checkpoint) {
  const std::string payload = serialize(checkpoint);
  const std::string tmp = unique_tmp_name(path);
  TmpGuard guard(tmp);
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("checkpoint: cannot open " + tmp);
    out << payload;
    out.flush();
    if (!out.good())
      throw std::runtime_error("checkpoint: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("checkpoint: rename to " + path + " failed");
  guard.disarm();
}

std::optional<Checkpoint> load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return parse(in);
}

MinPlusOneResult checkpointed_min_plus_one(KrigingPolicy& policy,
                                           const SimulatorFn& simulate,
                                           const MinPlusOneOptions& options,
                                           const CheckpointOptions& checkpoint,
                                           util::ThreadPool* pool) {
  if (checkpoint.path.empty())
    throw std::invalid_argument("checkpointed_min_plus_one: empty path");
  MinPlusOneCursor cursor = make_min_plus_one_cursor(options);
  if (std::optional<Checkpoint> loaded = load_checkpoint(checkpoint.path)) {
    if (loaded->optimizer != "min_plus_one")
      throw std::runtime_error("checkpoint: file at " + checkpoint.path +
                               " belongs to optimizer '" + loaded->optimizer +
                               "'");
    policy.restore(loaded->policy);
    cursor = loaded->min_plus;
  }
  const BatchEvaluateFn evaluate = policy_batch_evaluator(policy, simulate, pool);

  Checkpoint ck;
  ck.optimizer = "min_plus_one";
  std::size_t steps_this_run = 0;
  std::size_t since_write = 0;
  while (!cursor.finished()) {
    const bool more = min_plus_one_step(evaluate, options, cursor);
    ++steps_this_run;
    ++since_write;
    const bool pause = checkpoint.step_limit > 0 &&
                       steps_this_run >= checkpoint.step_limit && more;
    if (!more || pause || since_write >= checkpoint.period) {
      ck.min_plus = cursor;
      write_policy_checkpoint(policy, ck, checkpoint.path);
      since_write = 0;
    }
    if (pause) break;
  }
  return min_plus_one_result(cursor, options);
}

SensitivityResult checkpointed_steepest_descent(
    KrigingPolicy& policy, const SimulatorFn& simulate,
    const SensitivityOptions& options, const CheckpointOptions& checkpoint,
    util::ThreadPool* pool) {
  if (checkpoint.path.empty())
    throw std::invalid_argument("checkpointed_steepest_descent: empty path");
  SensitivityCursor cursor = make_sensitivity_cursor(options);
  if (std::optional<Checkpoint> loaded = load_checkpoint(checkpoint.path)) {
    if (loaded->optimizer != "steepest_descent")
      throw std::runtime_error("checkpoint: file at " + checkpoint.path +
                               " belongs to optimizer '" + loaded->optimizer +
                               "'");
    policy.restore(loaded->policy);
    cursor = loaded->sensitivity;
  }
  const BatchEvaluateFn evaluate = policy_batch_evaluator(policy, simulate, pool);

  Checkpoint ck;
  ck.optimizer = "steepest_descent";
  std::size_t steps_this_run = 0;
  std::size_t since_write = 0;
  while (!cursor.finished()) {
    const bool more = steepest_descent_step(evaluate, options, cursor);
    ++steps_this_run;
    ++since_write;
    const bool pause = checkpoint.step_limit > 0 &&
                       steps_this_run >= checkpoint.step_limit && more;
    if (!more || pause || since_write >= checkpoint.period) {
      ck.sensitivity = cursor;
      write_policy_checkpoint(policy, ck, checkpoint.path);
      since_write = 0;
    }
    if (pause) break;
  }
  return sensitivity_result(cursor);
}

}  // namespace ace::dse
