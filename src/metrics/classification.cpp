#include "metrics/classification.hpp"

#include <algorithm>
#include <stdexcept>

namespace ace::metrics {

double classification_agreement(const std::vector<int>& predicted,
                                const std::vector<int>& reference) {
  if (predicted.size() != reference.size())
    throw std::invalid_argument("classification_agreement: size mismatch");
  if (predicted.empty())
    throw std::invalid_argument("classification_agreement: empty input");
  std::size_t same = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    if (predicted[i] == reference[i]) ++same;
  return static_cast<double>(same) / static_cast<double>(predicted.size());
}

std::size_t argmax(const std::vector<double>& scores) {
  if (scores.empty()) throw std::invalid_argument("argmax: empty input");
  return static_cast<std::size_t>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

}  // namespace ace::metrics
