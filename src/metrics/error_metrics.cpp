#include "metrics/error_metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace ace::metrics {

double equivalent_bits(double noise_power_linear) {
  if (noise_power_linear <= 0.0)
    throw std::invalid_argument("equivalent_bits: power must be positive");
  // P = 2^-n / 12  =>  n = -log2(12 P).
  return -std::log2(12.0 * noise_power_linear);
}

double epsilon_bits(double p_hat, double p_true) {
  if (p_hat <= 0.0 || p_true <= 0.0)
    throw std::invalid_argument("epsilon_bits: powers must be positive");
  return std::abs(std::log2(p_hat / p_true));
}

double epsilon_relative(double lambda_hat, double lambda_true) {
  // Guard against exact division by zero, not near-zero references.
  if (lambda_true == 0.0)  // ace-lint: allow(float-equality)
    throw std::invalid_argument("epsilon_relative: reference value is zero");
  return std::abs(lambda_hat - lambda_true) / std::abs(lambda_true);
}

}  // namespace ace::metrics
