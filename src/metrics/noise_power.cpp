#include "metrics/noise_power.hpp"

#include <cmath>
#include <stdexcept>

namespace ace::metrics {

double noise_power(const std::vector<double>& approx,
                   const std::vector<double>& reference) {
  if (approx.size() != reference.size())
    throw std::invalid_argument("noise_power: size mismatch");
  if (approx.empty()) throw std::invalid_argument("noise_power: empty input");
  double acc = 0.0;
  for (std::size_t i = 0; i < approx.size(); ++i) {
    const double e = approx[i] - reference[i];
    acc += e * e;
  }
  return acc / static_cast<double>(approx.size());
}

double noise_power_complex(const std::vector<double>& approx_re,
                           const std::vector<double>& approx_im,
                           const std::vector<double>& ref_re,
                           const std::vector<double>& ref_im) {
  if (approx_re.size() != approx_im.size() ||
      ref_re.size() != ref_im.size() || approx_re.size() != ref_re.size())
    throw std::invalid_argument("noise_power_complex: size mismatch");
  if (approx_re.empty())
    throw std::invalid_argument("noise_power_complex: empty input");
  double acc = 0.0;
  for (std::size_t i = 0; i < approx_re.size(); ++i) {
    const double er = approx_re[i] - ref_re[i];
    const double ei = approx_im[i] - ref_im[i];
    acc += er * er + ei * ei;
  }
  return acc / static_cast<double>(approx_re.size());
}

double to_db(double power_linear) {
  constexpr double kFloorDb = -400.0;
  if (power_linear <= 0.0) return kFloorDb;
  const double db = 10.0 * std::log10(power_linear);
  return db < kFloorDb ? kFloorDb : db;
}

double from_db(double power_db) { return std::pow(10.0, power_db / 10.0); }

}  // namespace ace::metrics
