// Interpolation-quality metrics of the paper's Table I.
//
// For noise-power benchmarks the interpolation error ε is expressed in
// *equivalent bits* (Eq. 11): the noise power of an n-bit rounding source
// is modelled as P(n) = 2^-n / 12 (the paper's convention), so
//   ε = |log2(P̂ / P)|.
// For other metrics ε is the relative difference (Eq. 12).
#pragma once

namespace ace::metrics {

/// Equivalent number of bits n such that P = 2^-n / 12 (paper's model).
/// Throws std::invalid_argument for non-positive power.
double equivalent_bits(double noise_power_linear);

/// Interpolation error in equivalent bits: |log2(p_hat / p_true)| (Eq. 11).
/// Throws std::invalid_argument unless both powers are positive.
double epsilon_bits(double p_hat, double p_true);

/// Relative interpolation error |λ̂ − λ| / |λ| (Eq. 12).
/// Throws std::invalid_argument when λ is zero.
double epsilon_relative(double lambda_hat, double lambda_true);

}  // namespace ace::metrics
