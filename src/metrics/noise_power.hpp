// Output noise power — the accuracy metric used by the paper's four
// word-length benchmarks (λ = -P: higher accuracy = lower noise power).
#pragma once

#include <vector>

namespace ace::metrics {

/// Mean squared error between an approximate and a reference sequence.
/// Throws std::invalid_argument on size mismatch or empty input.
double noise_power(const std::vector<double>& approx,
                   const std::vector<double>& reference);

/// Same over interleaved complex data (re, im pairs share one power).
double noise_power_complex(const std::vector<double>& approx_re,
                           const std::vector<double>& approx_im,
                           const std::vector<double>& ref_re,
                           const std::vector<double>& ref_im);

/// Linear power -> dB (10·log10). Clamps at -400 dB for zero power so the
/// exhaustive sweeps never produce -inf surface points.
double to_db(double power_linear);

/// dB -> linear power.
double from_db(double power_db);

}  // namespace ace::metrics
