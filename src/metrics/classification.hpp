// Classification-agreement metric for the error-sensitivity benchmark:
// the probability p_cl that the approximate network predicts the same
// class as the error-free reference network.
#pragma once

#include <cstddef>
#include <vector>

namespace ace::metrics {

/// Fraction of positions where the two label sequences agree.
/// Throws std::invalid_argument on size mismatch or empty input.
double classification_agreement(const std::vector<int>& predicted,
                                const std::vector<int>& reference);

/// Index of the maximum element (argmax); first index wins ties.
/// Throws std::invalid_argument on empty input.
std::size_t argmax(const std::vector<double>& scores);

}  // namespace ace::metrics
