// Shared kriging-system layer: one owner for system assembly and the
// robust-solve ladder across all three estimators.
//
// ordinary_kriging / simple_kriging / universal_kriging used to each
// assemble their (bordered) matrix and call linalg::robust_solve — three
// copies of the same logic paying a full O(N³) factorization per query
// even when consecutive queries share an almost identical support set.
// KrigingSystem centralizes:
//
//   * assembly — variogram block (γ for ordinary/universal, the
//     covariance C(d) = max(sill − γ(d), 0) for simple), the Lagrange
//     ones-border (ordinary), and the drift columns F (universal);
//   * the ridge-fallback ladder of linalg::robust_solve, replicated
//     rung-for-rung (plain solve, then ridge = 1e-10 … 1e-2 ×100 on the
//     non-border diagonal, acceptability = finite and max-abs <= 1e6) so
//     callers see the exact legacy semantics;
//   * coincident-support dedupe — duplicate points used to degenerate the
//     system and were only avoided by the store's exact-match memo; here
//     the first occurrence wins, duplicates get weight 0;
//   * incremental support editing (Layout::kIncremental): append_point()
//     extends the underlying linalg::BorderedLdlt by one Schur pivot
//     instead of refactorizing, remove_point() downdates, and the
//     dse::FactorCache reuses whole systems across queries whose
//     neighbourhoods overlap.
//
// Layout::kAllInBase puts the entire system into the factorization's base
// block: every solve then reproduces the legacy direct path bit-for-bit
// (same matrix, same pivoted LU, same ladder), which is what keeps
// optimizer decisions identical whether or not the factor cache is on.
// Within one layout, a factor built at some ladder rung is kept and
// re-solved for later queries (the matrix — hence its singularity and its
// factorization — does not depend on the query, only the acceptability
// check does), so repeated queries against one support set skip the
// refactorization entirely.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "kriging/empirical_variogram.hpp"
#include "kriging/ordinary_kriging.hpp"
#include "kriging/universal_kriging.hpp"
#include "kriging/variogram_model.hpp"
#include "linalg/ldlt.hpp"

namespace ace::kriging {

/// Which estimator's system to assemble.
enum class SystemKind {
  kOrdinary,   ///< Bordered Γ of paper Eq. 9 (ones-border, Lagrange).
  kSimple,     ///< Covariance system C·w = c_q (no border).
  kUniversal,  ///< Drift-bordered [Γ F; Fᵀ 0] system.
};

/// Full description of one kriging system's estimator.
struct SystemSpec {
  SystemKind kind = SystemKind::kOrdinary;
  DriftKind drift = DriftKind::kConstant;  ///< Universal kriging only.
  double sill = 0.0;                       ///< Simple kriging only.
  double mean = 0.0;                       ///< Simple kriging only.
  /// Stochastic-kriging measurement-noise variance τ² (Wang & Haaland,
  /// PAPERS.md) for intrinsically noisy metrics. Applied to the system
  /// diagonal only: covariance form gains C_ii + τ², and by the constant-
  /// shift invariance of the constrained γ-form (Γ + c·J leaves the
  /// weights unchanged under Σw = 1) the equivalent variogram-form move is
  /// γ_ii − τ². Off-diagonals and query right-hand sides are untouched, so
  /// τ² = 0 assembles bit-identically to the pre-nugget system. The
  /// predictor then smooths instead of honouring noisy support exactly.
  double noise_nugget = 0.0;
};

/// Factorization-work counters, harvested by KrigingPolicy into
/// PolicyStats (the bench/solver_cache acceptance metric).
struct SystemStats {
  std::size_t full_factorizations = 0;  ///< Whole-system factor builds.
  std::size_t appends = 0;              ///< One-point Schur extensions.
  std::size_t removals = 0;             ///< One-point downdates.
  std::size_t solves = 0;               ///< Queries answered.
};

/// A reusable kriging system over one support set.
class KrigingSystem {
 public:
  enum class Layout {
    kAllInBase,    ///< Whole system in the LU base: legacy bit-identity.
    kIncremental,  ///< Minimal base + Schur appends: cheap extend/downdate.
  };

  /// Builds (but does not yet factor) the system. Coincident support
  /// points are deduplicated — the first occurrence becomes the support
  /// point, later copies are recorded as zero-weight slots. Throws
  /// std::invalid_argument on empty/ragged support, size mismatches, or
  /// (simple kriging) a non-positive sill.
  KrigingSystem(SystemSpec spec,
                std::vector<std::vector<double>> support_points,
                std::vector<double> support_values,
                const VariogramModel& model,
                DistanceFn distance = l1_distance,
                Layout layout = Layout::kAllInBase);

  KrigingSystem(const KrigingSystem&) = delete;
  KrigingSystem& operator=(const KrigingSystem&) = delete;

  /// Estimate at `query` (paper Eq. 8-10 for ordinary kriging). Returns
  /// nullopt when no ladder rung produces an acceptable solution — the
  /// caller falls back to simulation. The result's weights are indexed by
  /// support *slot* (construction order plus append order; deduplicated
  /// slots hold 0).
  std::optional<KrigingResult> query(const std::vector<double>& q);

  /// Answer a batch of queries against the one shared factorization:
  /// every γ right-hand side is assembled first (batched over the SoA
  /// column mirror), then each ladder rung solves all still-open queries
  /// in one multi-RHS call. Result i is identical to query(queries[i]) —
  /// the factorizations, ladder rungs, and per-column solves are the very
  /// same computations, just amortized — so callers may batch or not
  /// without optimizer decisions diverging.
  std::vector<std::optional<KrigingResult>> query_batch(
      const std::vector<std::vector<double>>& queries);

  /// Add one support slot. A point coincident with an existing one
  /// becomes a zero-weight slot (no factor change). In the kIncremental
  /// layout a genuinely new point extends the factor by one Schur pivot;
  /// a failed extension (or the kAllInBase layout) invalidates the factor
  /// so the next query refactorizes. Dimension mismatches throw.
  void append_point(std::vector<double> point, double value);

  /// True when the slot's point entered the factorization as an appended
  /// row — i.e. remove_point(slot) is a cheap downdate.
  bool removable(std::size_t slot) const;

  /// Drop one support slot. Zero-weight duplicate slots always succeed;
  /// appended points downdate the factor; base points (or a degenerate
  /// downdate) return false and leave the system unchanged.
  bool remove_point(std::size_t slot);

  /// Leave-one-out cross-validation over the unique support, from one
  /// factorization. Entry i describes the system with unique point i
  /// deleted, predicting at that point's location.
  struct LooReport {
    std::vector<double> residuals;  ///< z_i − ẑ₍ᵢ₎ per unique point.
    std::vector<double> variances;  ///< LOO kriging variance σ²₍ᵢ₎.
    double shift = 0.0;             ///< Ladder rung the factor used.
    bool regularized = false;       ///< shift > 0.
  };

  /// All unique-support LOO residuals via Dubrule's identity: with
  /// B = A⁻¹ of the assembled system and z̃ the (centred) values padded
  /// with border zeros, e_i = [B·z̃]_i / B_ii and σ²₍ᵢ₎ = ±1/B_ii — each
  /// residual costs one O(n²) solve against the already-built factor
  /// instead of the O(n³) scratch refit it is provably equal to
  /// (tests/test_kriging_loo.cpp pins the match at 1e-10). Climbs the same
  /// ridge ladder as query(); the identity is exact for whichever shifted
  /// matrix actually factored, and the report records that shift. Returns
  /// nullopt below 2 unique points or when no rung yields finite,
  /// non-degenerate diagonals.
  std::optional<LooReport> loo_residuals();

  std::size_t support_size() const { return slots_.size(); }
  /// Unique support points actually in the system (dedupe applied).
  std::size_t unique_size() const { return points_.size(); }
  std::size_t dimension() const { return dim_; }
  const SystemSpec& spec() const { return spec_; }
  const SystemStats& stats() const { return stats_; }

 private:
  struct Slot {
    std::size_t unique = 0;  ///< Index into points_/values_.
    bool owner = false;      ///< First occurrence: carries the weight.
  };

  /// One cached factorization at one ridge shift.
  struct Factor {
    double shift = 0.0;  ///< Absolute diagonal shift (ridge · scale).
    std::unique_ptr<linalg::BorderedLdlt> ldlt;
  };

  /// How distance_ was constructed. The batched assembly dispatches the
  /// util::simd column kernels only for the two known built-ins (their
  /// kernels are bit-identical to the std::function call); custom
  /// distances keep the per-pair path.
  enum class DistanceKind { kL1, kL2, kCustom };

  /// Matrix entry between unique points i and j (γ or covariance).
  double pair_entry(std::size_t i, std::size_t j) const;
  /// Matrix/rhs entry between the query and unique point k.
  double query_entry(const std::vector<double>& q, std::size_t k) const;
  /// Entry as a function of an already-computed distance.
  double entry_of(double d) const;
  /// Diagonal entry of a support point: entry_of(0) with the noise nugget
  /// folded in (+τ² covariance form, −τ² variogram form; exact no-op at 0).
  double diagonal_entry() const;
  /// Distances from x to unique points [first, n), written to out —
  /// batched over cols_ for the built-in distances.
  void distances_to(const std::vector<double>& x, std::size_t first,
                    double* out) const;
  /// Rebuild the SoA column mirror of points_ from scratch.
  void rebuild_columns();
  /// Drift basis f(x) under the effective drift.
  std::vector<double> drift_basis(const std::vector<double>& x) const;

  /// Matrix index of unique point i under the current layout.
  std::size_t matrix_index(std::size_t i) const;
  std::size_t border_cols() const { return border_; }
  std::size_t system_size() const { return points_.size() + border_; }

  /// Assemble the full system matrix in layout order, with `shift` on
  /// every non-border diagonal.
  linalg::Matrix assemble(double shift) const;
  /// Assemble the right-hand side for a query, in layout order.
  linalg::Vector assemble_rhs(const std::vector<double>& q) const;

  /// Coupling column of unique point i against the current factor.
  std::vector<double> coupling_of(std::size_t i) const;

  /// Turn one accepted ladder solution into a KrigingResult (estimate,
  /// variance, slot-indexed weights, contracts) — shared by query() and
  /// query_batch().
  std::optional<KrigingResult> finalize(const std::vector<double>& q,
                                        const linalg::Vector& rhs,
                                        const linalg::Vector& x, double shift,
                                        const linalg::BorderedLdlt* used) const;

  /// Find or build the factor at `shift`; nullptr when singular there.
  linalg::BorderedLdlt* factor_at(double shift);
  /// Drop all cached factors and singularity memos (support changed).
  void invalidate_factors();
  /// Recompute the effective drift / border width from the unique count;
  /// returns true when the border width changed (factor invalid).
  bool refresh_border();

  /// Scale for the ridge ladder: max(|A|, 1) of the unshifted matrix —
  /// the exact scale linalg::robust_solve uses.
  double ladder_scale() const;

  SystemSpec spec_;
  DriftKind effective_drift_ = DriftKind::kConstant;
  std::unique_ptr<VariogramModel> model_;
  DistanceFn distance_;
  Layout layout_;
  std::size_t dim_ = 0;

  std::vector<std::vector<double>> points_;  ///< Unique, insertion order.
  std::vector<double> values_;               ///< Values of unique points.
  /// Columnar (SoA) mirror of points_: cols_[d][u] == points_[u][d], kept
  /// in lockstep so assembly streams contiguous columns per dimension.
  std::vector<std::vector<double>> cols_;
  DistanceKind distance_kind_ = DistanceKind::kCustom;
  std::vector<Slot> slots_;                  ///< Caller-visible order.

  std::size_t border_ = 0;     ///< Lagrange/drift columns.
  std::size_t base_points_ = 0;  ///< Unique points inside the base block.

  std::vector<Factor> factors_;          ///< Plain + ladder-rung factors.
  std::vector<double> singular_shifts_;  ///< Shifts known to be singular.
  SystemStats stats_;
};

}  // namespace ace::kriging
