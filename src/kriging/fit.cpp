#include "kriging/fit.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

#include "util/contract.hpp"

namespace ace::kriging {

std::string family_name(ModelFamily family) {
  switch (family) {
    case ModelFamily::kLinear: return "linear";
    case ModelFamily::kSpherical: return "spherical";
    case ModelFamily::kExponential: return "exponential";
    case ModelFamily::kGaussian: return "gaussian";
    case ModelFamily::kPower: return "power";
  }
  return "unknown";
}

namespace {

struct WeightedFit {
  double nugget = 0.0;
  double scale = 0.0;  // sill or slope, depending on basis.
  double sse = std::numeric_limits<double>::infinity();
};

/// Weighted LS of γ̂ ≈ nugget + scale·basis(d) with both coefficients
/// clamped to >= 0 (a variogram must be non-negative and non-decreasing for
/// our basis choices). Solves the 2x2 normal equations directly and falls
/// back to the boundary solutions when a coefficient goes negative.
WeightedFit fit_basis(const std::vector<VariogramBin>& bins,
                      const std::function<double(double)>& basis) {
  double sw = 0.0, sb = 0.0, sbb = 0.0, sg = 0.0, sbg = 0.0;
  for (const auto& bin : bins) {
    const double w = static_cast<double>(bin.pair_count);
    const double b = basis(bin.distance);
    sw += w;
    sb += w * b;
    sbb += w * b * b;
    sg += w * bin.gamma;
    sbg += w * b * bin.gamma;
  }
  auto sse_for = [&](double nugget, double scale) {
    double acc = 0.0;
    for (const auto& bin : bins) {
      const double r = bin.gamma - (nugget + scale * basis(bin.distance));
      acc += static_cast<double>(bin.pair_count) * r * r;
    }
    return acc;
  };

  WeightedFit best;
  const double det = sw * sbb - sb * sb;
  if (std::abs(det) > 1e-30) {
    const double nugget = (sg * sbb - sb * sbg) / det;
    const double scale = (sw * sbg - sb * sg) / det;
    if (nugget >= 0.0 && scale >= 0.0) {
      best = {nugget, scale, sse_for(nugget, scale)};
      return best;
    }
  }
  // Boundary: nugget = 0.
  if (sbb > 0.0) {
    const double scale = std::max(0.0, sbg / sbb);
    const double sse = sse_for(0.0, scale);
    if (sse < best.sse) best = {0.0, scale, sse};
  }
  // Boundary: scale = 0 (flat).
  if (sw > 0.0) {
    const double nugget = std::max(0.0, sg / sw);
    const double sse = sse_for(nugget, 0.0);
    if (sse < best.sse) best = {nugget, 0.0, sse};
  }
  if (!std::isfinite(best.sse)) best = {0.0, 0.0, sse_for(0.0, 0.0)};
  return best;
}

FitResult make_result(std::unique_ptr<VariogramModel> model,
                      ModelFamily family, double sse) {
  FitResult r;
  r.model = std::move(model);
  r.family = family;
  r.weighted_sse = sse;
  ACE_ENSURE(std::isfinite(r.weighted_sse) && r.weighted_sse >= 0.0,
             "weighted SSE is a sum of weighted squares");
#if ACE_CONTRACTS_ENABLED
  // Monotonicity spot-check: every family we fit (non-negative nugget +
  // non-negative scale on a non-decreasing basis) must yield a
  // non-decreasing γ — a decreasing variogram would claim that far-apart
  // samples agree better than close ones.
  {
    double prev = r.model->gamma(0.0);
    for (const double d : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
      const double g = r.model->gamma(d);
      ACE_ENSURE(g >= prev - 1e-12, "fitted variogram must be non-decreasing");
      prev = g;
    }
  }
#endif
  return r;
}

}  // namespace

FitResult fit_family(const EmpiricalVariogram& ev, ModelFamily family,
                     const FitOptions& options) {
  const auto& bins = ev.bins();
  if (bins.empty())
    throw std::invalid_argument("fit_family: empirical variogram has no bins");

  const double dmax = std::max(ev.max_distance(), 1e-12);

  switch (family) {
    case ModelFamily::kLinear: {
      const auto fit = fit_basis(bins, [](double d) { return d; });
      return make_result(
          std::make_unique<LinearVariogram>(fit.nugget, fit.scale), family,
          fit.sse);
    }
    case ModelFamily::kPower: {
      WeightedFit best;
      double best_p = 1.0;
      for (int i = 1; i <= 18; ++i) {
        const double p = 0.1 * static_cast<double>(i);  // 0.1 .. 1.8
        const auto fit =
            fit_basis(bins, [p](double d) { return std::pow(d, p); });
        if (fit.sse < best.sse) {
          best = fit;
          best_p = p;
        }
      }
      return make_result(
          std::make_unique<PowerVariogram>(best.nugget, best.scale, best_p),
          family, best.sse);
    }
    case ModelFamily::kSpherical:
    case ModelFamily::kExponential:
    case ModelFamily::kGaussian: {
      WeightedFit best;
      double best_range = dmax;
      const int grid = std::max(options.range_grid, 2);
      for (int i = 1; i <= grid; ++i) {
        // Ranges from a fraction of the max lag to well past it.
        const double range =
            dmax * (0.25 + 2.75 * static_cast<double>(i) /
                               static_cast<double>(grid));
        std::function<double(double)> basis;
        if (family == ModelFamily::kSpherical) {
          basis = [range](double d) {
            const double h = d / range;
            return h >= 1.0 ? 1.0 : 1.5 * h - 0.5 * h * h * h;
          };
        } else if (family == ModelFamily::kExponential) {
          basis = [range](double d) { return 1.0 - std::exp(-3.0 * d / range); };
        } else {
          basis = [range](double d) {
            const double h = d / range;
            return 1.0 - std::exp(-3.0 * h * h);
          };
        }
        const auto fit = fit_basis(bins, basis);
        if (fit.sse < best.sse) {
          best = fit;
          best_range = range;
        }
      }
      std::unique_ptr<VariogramModel> model;
      if (family == ModelFamily::kSpherical)
        model = std::make_unique<SphericalVariogram>(best.nugget, best.scale,
                                                     best_range);
      else if (family == ModelFamily::kExponential)
        model = std::make_unique<ExponentialVariogram>(best.nugget, best.scale,
                                                       best_range);
      else
        model = std::make_unique<GaussianVariogram>(best.nugget, best.scale,
                                                    best_range);
      return make_result(std::move(model), family, best.sse);
    }
  }
  throw std::logic_error("fit_family: unreachable");
}

std::vector<FitResult> fit_all(const EmpiricalVariogram& ev,
                               const FitOptions& options) {
  std::vector<FitResult> results;
  results.reserve(options.families.size());
  for (const auto family : options.families)
    results.push_back(fit_family(ev, family, options));
  std::sort(results.begin(), results.end(),
            [](const FitResult& a, const FitResult& b) {
              return a.weighted_sse < b.weighted_sse;
            });
  return results;
}

FitResult fit_best(const EmpiricalVariogram& ev, const FitOptions& options) {
  auto all = fit_all(ev, options);
  if (all.empty()) throw std::invalid_argument("fit_best: no families");
  return std::move(all.front());
}

}  // namespace ace::kriging
