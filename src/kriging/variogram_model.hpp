// Parametric semi-variogram models γ(d).
//
// The paper (Sec. III-A) identifies the empirical semi-variogram with "a
// particular type of semi-variogram [19]"; the classical catalogue from
// Wackernagel's Geostatistics is implemented here: linear, spherical,
// exponential, gaussian and power models, all with an optional nugget.
// Every model satisfies γ(0) = nugget >= 0 and is non-decreasing for the
// parameter ranges enforced by the constructors.
#pragma once

#include <memory>
#include <string>

namespace ace::kriging {

/// Interface of a fitted semi-variogram model.
class VariogramModel {
 public:
  virtual ~VariogramModel() = default;

  /// Semi-variance at distance d >= 0 (callers pass non-negative d;
  /// negative input throws std::invalid_argument).
  virtual double gamma(double d) const = 0;

  /// Model family name ("spherical", ...).
  virtual std::string name() const = 0;

  /// Human-readable description with parameter values.
  virtual std::string describe() const = 0;

  virtual std::unique_ptr<VariogramModel> clone() const = 0;

  /// Fitted nugget — the discontinuity γ(0) at the origin. Every model in
  /// the catalogue satisfies γ(0) = nugget, so the default forwards there;
  /// concrete models return the parameter directly. The stochastic-kriging
  /// policy reads this as its measurement-noise estimate τ² when
  /// `PolicyOptions::nugget_from_fit` is set (see SystemSpec::noise_nugget).
  virtual double nugget() const { return gamma(0.0); }

 protected:
  static void check_distance(double d);
};

/// γ(d) = nugget + slope·d. The unbounded default; safe for any metric.
class LinearVariogram final : public VariogramModel {
 public:
  /// nugget >= 0, slope >= 0; throws std::invalid_argument otherwise.
  LinearVariogram(double nugget, double slope);
  double gamma(double d) const override;
  std::string name() const override { return "linear"; }
  std::string describe() const override;
  std::unique_ptr<VariogramModel> clone() const override;
  double nugget() const override { return nugget_; }
  double slope() const { return slope_; }

 private:
  double nugget_;
  double slope_;
};

/// γ(d) = nugget + sill·(1.5·h − 0.5·h³) for h = d/range < 1, else
/// nugget + sill. The classical bounded model.
class SphericalVariogram final : public VariogramModel {
 public:
  /// nugget, sill >= 0; range > 0.
  SphericalVariogram(double nugget, double sill, double range);
  double gamma(double d) const override;
  std::string name() const override { return "spherical"; }
  std::string describe() const override;
  std::unique_ptr<VariogramModel> clone() const override;
  double nugget() const override { return nugget_; }
  double sill() const { return sill_; }
  double range() const { return range_; }

 private:
  double nugget_;
  double sill_;
  double range_;
};

/// γ(d) = nugget + sill·(1 − exp(−3d/range)).
class ExponentialVariogram final : public VariogramModel {
 public:
  ExponentialVariogram(double nugget, double sill, double range);
  double gamma(double d) const override;
  std::string name() const override { return "exponential"; }
  std::string describe() const override;
  std::unique_ptr<VariogramModel> clone() const override;
  double nugget() const override { return nugget_; }
  double sill() const { return sill_; }
  double range() const { return range_; }

 private:
  double nugget_;
  double sill_;
  double range_;
};

/// γ(d) = nugget + sill·(1 − exp(−3(d/range)²)). Very smooth near 0.
class GaussianVariogram final : public VariogramModel {
 public:
  GaussianVariogram(double nugget, double sill, double range);
  double gamma(double d) const override;
  std::string name() const override { return "gaussian"; }
  std::string describe() const override;
  std::unique_ptr<VariogramModel> clone() const override;
  double nugget() const override { return nugget_; }
  double sill() const { return sill_; }
  double range() const { return range_; }

 private:
  double nugget_;
  double sill_;
  double range_;
};

/// γ(d) = nugget + scale·d^exponent, exponent in (0, 2).
class PowerVariogram final : public VariogramModel {
 public:
  PowerVariogram(double nugget, double scale, double exponent);
  double gamma(double d) const override;
  std::string name() const override { return "power"; }
  std::string describe() const override;
  std::unique_ptr<VariogramModel> clone() const override;
  double nugget() const override { return nugget_; }
  double scale() const { return scale_; }
  double exponent() const { return exponent_; }

 private:
  double nugget_;
  double scale_;
  double exponent_;
};

}  // namespace ace::kriging
