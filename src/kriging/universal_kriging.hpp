// Universal kriging (kriging with a drift): extends the paper's ordinary
// kriging (constant unknown mean, Eq. 3) with a low-order polynomial trend
// over the configuration space.
//
// Word-length accuracy surfaces are strongly *trending* — accuracy climbs
// roughly linearly in every word length (≈6 dB/bit) — which violates
// ordinary kriging's constant-mean assumption when support points sit on
// one side of the query. Universal kriging with a linear drift models
//   λ(e) = Σ_l β_l f_l(e) + Z(e),   f = [1, e_1, …, e_Nv],
// and augments the bordered system with one unbiasedness constraint per
// basis function:
//   [ Γ  F ] [w]   [γ_q]
//   [ Fᵀ 0 ] [μ] = [f(q)].
// With the constant basis only this reduces exactly to Eq. 9-10 of the
// paper. This module is an extension beyond the paper (see DESIGN.md) and
// is compared against ordinary kriging in bench/ablation_estimator.
#pragma once

#include <optional>
#include <vector>

#include "kriging/empirical_variogram.hpp"
#include "kriging/ordinary_kriging.hpp"
#include "kriging/variogram_model.hpp"

namespace ace::kriging {

/// Drift (trend) models for universal kriging.
enum class DriftKind {
  kConstant,  ///< f = [1]: identical to ordinary kriging.
  kLinear,    ///< f = [1, e_1, …, e_Nv]: linear trend per coordinate.
};

/// Universal kriging estimate at `query`.
///
/// Falls back to the constant drift when the support set is too small to
/// identify a linear trend (fewer than dimension + 2 points), mirroring
/// standard geostatistical practice. Returns nullopt when the bordered
/// system cannot be solved even with ridge regularization.
/// Throws std::invalid_argument on empty/ragged inputs.
std::optional<KrigingResult> krige_with_drift(
    const std::vector<std::vector<double>>& support_points,
    const std::vector<double>& support_values,
    const std::vector<double>& query, const VariogramModel& model,
    DriftKind drift, const DistanceFn& distance = l1_distance);

}  // namespace ace::kriging
