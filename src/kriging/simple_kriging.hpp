// Simple kriging (known mean, covariance form).
//
// The paper's prose calls its method "a simple kriging technique" while
// its equations (the ones-bordered system, Eq. 9-10) are ordinary
// kriging — the variant that estimates the unknown mean via a Lagrange
// constraint. This module implements actual simple kriging so the
// difference is measurable (bench/ablation_estimator):
//   C·w = c_q,   λ̂ = m + Σ w_k (λ_k − m),   σ² = C(0) − wᵀc_q,
// with the covariance derived from the variogram, C(d) = sill − γ(d)
// (clamped at 0). Simple kriging needs the mean m and the sill supplied
// by the caller — exactly the extra assumptions ordinary kriging removes.
#pragma once

#include <optional>
#include <vector>

#include "kriging/empirical_variogram.hpp"
#include "kriging/ordinary_kriging.hpp"
#include "kriging/variogram_model.hpp"

namespace ace::kriging {

/// Simple-kriging estimate at `query`. `sill` must be positive; the
/// covariance is max(sill − γ(d), 0). Returns nullopt when the covariance
/// system cannot be solved even with ridge regularization. Throws
/// std::invalid_argument on empty/ragged inputs or non-positive sill.
std::optional<KrigingResult> simple_krige(
    const std::vector<std::vector<double>>& support_points,
    const std::vector<double>& support_values,
    const std::vector<double>& query, const VariogramModel& model,
    double sill, double mean, const DistanceFn& distance = l1_distance);

}  // namespace ace::kriging
