#include "kriging/empirical_variogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contract.hpp"
#include "util/errors.hpp"

namespace ace::kriging {

double l1_distance(const std::vector<double>& a,
                   const std::vector<double>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("l1_distance: dimension mismatch");
  double acc = 0.0;
  // The canonical definition every other path must match.
  // ace-lint: allow(raw-distance-loop)
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc;
}

double l2_distance(const std::vector<double>& a,
                   const std::vector<double>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("l2_distance: dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

EmpiricalVariogram::EmpiricalVariogram(DistanceFn distance, double bin_width)
    : distance_(std::move(distance)), bin_width_(bin_width) {
  if (bin_width_ <= 0.0)
    throw std::invalid_argument("EmpiricalVariogram: bin_width must be > 0");
}

EmpiricalVariogram::EmpiricalVariogram(
    const std::vector<std::vector<double>>& points,
    const std::vector<double>& values, DistanceFn distance, double bin_width)
    : EmpiricalVariogram(std::move(distance), bin_width) {
  if (points.size() != values.size())
    throw std::invalid_argument("EmpiricalVariogram: size mismatch");
  if (points.size() < 2)
    throw std::invalid_argument("EmpiricalVariogram: need >= 2 points");
  extend(points, values);
}

void EmpiricalVariogram::extend(
    const std::vector<std::vector<double>>& points,
    const std::vector<double>& values) {
  if (points.size() != values.size())
    throw std::invalid_argument("EmpiricalVariogram::extend: size mismatch");

  // Validate the whole block before folding anything in: one NaN pair
  // would silently poison every bin it touches, and rejecting mid-fold
  // would leave the accumulators half-updated.
  for (std::size_t s = 0; s < points.size(); ++s) {
    if (!std::isfinite(values[s]))
      throw util::NonFiniteError("EmpiricalVariogram::extend: non-finite value");
    for (const double c : points[s])
      if (!std::isfinite(c))
        throw util::NonFiniteError(
            "EmpiricalVariogram::extend: non-finite coordinate");
  }

  const util::LockGuard lock(mutex_);
  for (std::size_t s = 0; s < points.size(); ++s) {
    // Pair the new sample k against every sample already held — the same
    // (j < k) enumeration a full rebuild performs, just arriving in
    // chronological blocks.
    for (std::size_t j = 0; j < points_.size(); ++j) {
      const double d = distance_(points_[j], points[s]);
      max_distance_ = std::max(max_distance_, d);
      const auto bin = static_cast<long long>(std::floor(d / bin_width_));
      auto& slot = accum_[bin];
      const double diff = values_[j] - values[s];
      slot.sum_sq_diff += diff * diff;
      slot.sum_distance += d;
      ++slot.pairs;
      ++total_pairs_;
    }
    points_.push_back(points[s]);
    values_.push_back(values[s]);

    // Welford update of the running sample variance (sill estimate).
    const double n = static_cast<double>(values_.size());
    const double delta = values[s] - value_mean_;
    value_mean_ += delta / n;
    value_m2_ += delta * (values[s] - value_mean_);
    value_variance_ = values_.size() > 1 ? value_m2_ / (n - 1.0) : 0.0;
  }
  rebuild_view();
}

void EmpiricalVariogram::rebuild_view() {
  bins_.clear();
  bins_.reserve(accum_.size());
  for (const auto& [bin, slot] : accum_) {
    ACE_INVARIANT(slot.pairs > 0, "a materialized bin must hold >= 1 pair");
    VariogramBin out;
    out.distance = slot.sum_distance / static_cast<double>(slot.pairs);
    out.gamma = slot.sum_sq_diff / (2.0 * static_cast<double>(slot.pairs));
    out.pair_count = slot.pairs;
    ACE_ENSURE(out.gamma >= 0.0 && std::isfinite(out.gamma),
               "empirical semi-variance is a mean of squares");
    bins_.push_back(out);
  }
}

}  // namespace ace::kriging
