#include "kriging/empirical_variogram.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace ace::kriging {

double l1_distance(const std::vector<double>& a,
                   const std::vector<double>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("l1_distance: dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc;
}

double l2_distance(const std::vector<double>& a,
                   const std::vector<double>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("l2_distance: dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

EmpiricalVariogram::EmpiricalVariogram(
    const std::vector<std::vector<double>>& points,
    const std::vector<double>& values, DistanceFn distance, double bin_width) {
  if (points.size() != values.size())
    throw std::invalid_argument("EmpiricalVariogram: size mismatch");
  if (points.size() < 2)
    throw std::invalid_argument("EmpiricalVariogram: need >= 2 points");
  if (bin_width <= 0.0)
    throw std::invalid_argument("EmpiricalVariogram: bin_width must be > 0");

  // Value variance (sill estimate).
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  value_variance_ =
      values.size() > 1 ? var / static_cast<double>(values.size() - 1) : 0.0;

  struct BinAccum {
    double sum_sq_diff = 0.0;  // Σ (λj − λk)²
    double sum_distance = 0.0;
    std::size_t pairs = 0;
  };
  std::map<long long, BinAccum> accum;

  for (std::size_t j = 0; j < points.size(); ++j) {
    for (std::size_t k = j + 1; k < points.size(); ++k) {
      const double d = distance(points[j], points[k]);
      max_distance_ = std::max(max_distance_, d);
      const auto bin = static_cast<long long>(std::floor(d / bin_width));
      auto& slot = accum[bin];
      const double diff = values[j] - values[k];
      slot.sum_sq_diff += diff * diff;
      slot.sum_distance += d;
      ++slot.pairs;
      ++total_pairs_;
    }
  }

  bins_.reserve(accum.size());
  for (const auto& [bin, slot] : accum) {
    VariogramBin out;
    out.distance = slot.sum_distance / static_cast<double>(slot.pairs);
    out.gamma = slot.sum_sq_diff / (2.0 * static_cast<double>(slot.pairs));
    out.pair_count = slot.pairs;
    bins_.push_back(out);
  }
}

}  // namespace ace::kriging
