#include "kriging/system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/contract.hpp"
#include "util/simd.hpp"

namespace ace::kriging {

namespace {

constexpr double kInitialRidge = 1e-10;
constexpr double kMaxRidge = 1e-2;
constexpr double kMaxSolutionNorm = 1e6;

/// The legacy robust_solve acceptability test: finite and norm-bounded.
bool acceptable(const linalg::Vector& x) {
  for (std::size_t i = 0; i < x.size(); ++i)
    if (!std::isfinite(x[i]) || std::abs(x[i]) > kMaxSolutionNorm)
      return false;
  return true;
}

/// Raw function-pointer form of DistanceFn — what the defaulted built-in
/// distances are stored as inside the std::function.
using RawDistance = double (*)(const std::vector<double>&,
                               const std::vector<double>&);

}  // namespace

KrigingSystem::KrigingSystem(SystemSpec spec,
                             std::vector<std::vector<double>> support_points,
                             std::vector<double> support_values,
                             const VariogramModel& model, DistanceFn distance,
                             Layout layout)
    : spec_(spec), model_(model.clone()), distance_(std::move(distance)),
      layout_(layout) {
  if (support_points.empty())
    throw std::invalid_argument("KrigingSystem: empty support set");
  if (support_points.size() != support_values.size())
    throw std::invalid_argument("KrigingSystem: points/values mismatch");
  dim_ = support_points.front().size();
  for (const auto& p : support_points)
    if (p.size() != dim_)
      throw std::invalid_argument("KrigingSystem: ragged support set");
  if (spec_.kind == SystemKind::kSimple &&
      (spec_.sill <= 0.0 || !std::isfinite(spec_.sill)))
    throw std::invalid_argument("KrigingSystem: sill must be positive");
  if (spec_.noise_nugget < 0.0 || !std::isfinite(spec_.noise_nugget))
    throw std::invalid_argument(
        "KrigingSystem: noise nugget must be finite and non-negative");

  // Dedupe coincident support points: duplicates make the variogram block
  // rank deficient (two identical rows), which used to push every solve
  // into the ridge fallback. The first occurrence carries the weight;
  // later copies become zero-weight slots.
  for (std::size_t s = 0; s < support_points.size(); ++s) {
    auto& p = support_points[s];
    std::size_t u = points_.size();
    for (std::size_t i = 0; i < points_.size(); ++i)
      if (points_[i] == p) {
        u = i;
        break;
      }
    if (u == points_.size()) {
      points_.push_back(std::move(p));
      values_.push_back(support_values[s]);
      slots_.push_back({u, true});
    } else {
      slots_.push_back({u, false});
    }
  }
  // Batched assembly can only vectorize distances it can prove identical
  // to the configured functor: recognise the two built-ins by address.
  if (const RawDistance* raw = distance_.target<RawDistance>()) {
    if (*raw == &l1_distance)
      distance_kind_ = DistanceKind::kL1;
    else if (*raw == &l2_distance)
      distance_kind_ = DistanceKind::kL2;
  }
  rebuild_columns();
  (void)refresh_border();
  base_points_ = layout_ == Layout::kAllInBase
                     ? points_.size()
                     : std::min(points_.size(),
                                std::max<std::size_t>(1, border_));
}

void KrigingSystem::rebuild_columns() {
  cols_.assign(dim_, {});
  for (auto& c : cols_) c.reserve(points_.size());
  for (const auto& p : points_)
    for (std::size_t d = 0; d < dim_; ++d) cols_[d].push_back(p[d]);
}

void KrigingSystem::distances_to(const std::vector<double>& x,
                                 std::size_t first, double* out) const {
  const std::size_t n = points_.size();
  if (distance_kind_ == DistanceKind::kCustom) {
    for (std::size_t k = first; k < n; ++k)
      out[k - first] = distance_(x, points_[k]);
    return;
  }
  std::vector<const double*> cols(dim_);
  for (std::size_t d = 0; d < dim_; ++d) cols[d] = cols_[d].data() + first;
  if (distance_kind_ == DistanceKind::kL1)
    util::simd::l1_distances_f64(cols.data(), dim_, x.data(), n - first, out);
  else
    util::simd::l2_distances_f64(cols.data(), dim_, x.data(), n - first, out);
}

bool KrigingSystem::refresh_border() {
  DriftKind effective = spec_.drift;
  std::size_t border = 0;
  switch (spec_.kind) {
    case SystemKind::kOrdinary:
      border = 1;
      break;
    case SystemKind::kSimple:
      border = 0;
      break;
    case SystemKind::kUniversal:
      // A linear drift adds dim + 1 constraints; identifying it needs at
      // least dim + 2 support points — otherwise degrade gracefully to the
      // constant drift (= ordinary kriging), as the legacy wrapper did.
      if (effective == DriftKind::kLinear && points_.size() < dim_ + 2)
        effective = DriftKind::kConstant;
      border = effective == DriftKind::kConstant ? 1 : dim_ + 1;
      break;
  }
  const bool changed =
      border != border_ || effective != effective_drift_;
  effective_drift_ = effective;
  border_ = border;
  return changed;
}

double KrigingSystem::entry_of(double d) const {
  if (spec_.kind == SystemKind::kSimple)
    return std::max(spec_.sill - model_->gamma(d), 0.0);
  return model_->gamma(d);
}

double KrigingSystem::diagonal_entry() const {
  // Guard the zero case exactly: τ² = 0 must assemble bit-identically to
  // the pre-nugget system (the policy's default-gate identity contract).
  if (spec_.noise_nugget == 0.0)  // ace-lint: allow(float-equality)
    return entry_of(0.0);
  return spec_.kind == SystemKind::kSimple
             ? entry_of(0.0) + spec_.noise_nugget
             : entry_of(0.0) - spec_.noise_nugget;
}

double KrigingSystem::pair_entry(std::size_t i, std::size_t j) const {
  return entry_of(distance_(points_[i], points_[j]));
}

double KrigingSystem::query_entry(const std::vector<double>& q,
                                  std::size_t k) const {
  return entry_of(distance_(q, points_[k]));
}

std::vector<double> KrigingSystem::drift_basis(
    const std::vector<double>& x) const {
  switch (spec_.kind) {
    case SystemKind::kSimple:
      return {};
    case SystemKind::kOrdinary:
      return {1.0};
    case SystemKind::kUniversal:
      break;
  }
  if (effective_drift_ == DriftKind::kConstant) return {1.0};
  std::vector<double> f;
  f.reserve(x.size() + 1);
  f.push_back(1.0);
  f.insert(f.end(), x.begin(), x.end());
  return f;
}

std::size_t KrigingSystem::matrix_index(std::size_t i) const {
  return i < base_points_ ? i : i + border_;
}

linalg::Matrix KrigingSystem::assemble(double shift) const {
  const std::size_t n = points_.size();
  const std::size_t m = system_size();
  linalg::Matrix a(m, m);
  // Variogram block, one batched row at a time: distances from point j to
  // the contiguous tail j..n-1 stream the SoA columns through the SIMD
  // kernel (bit-identical per-entry to the scalar distance_ call).
  std::vector<double> dists(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t mj = matrix_index(j);
    distances_to(points_[j], j, dists.data());
    for (std::size_t k = j; k < n; ++k) {
      const std::size_t mk = matrix_index(k);
      const double g = k == j ? diagonal_entry() : entry_of(dists[k - j]);
      a(mj, mk) = g;
      a(mk, mj) = g;
    }
    const auto fj = drift_basis(points_[j]);
    for (std::size_t l = 0; l < border_; ++l) {
      a(mj, base_points_ + l) = fj[l];
      a(base_points_ + l, mj) = fj[l];
    }
    a(mj, mj) += shift;
  }
  return a;
}

linalg::Vector KrigingSystem::assemble_rhs(const std::vector<double>& q) const {
  linalg::Vector rhs(system_size());
  const std::size_t n = points_.size();
  // Batched γ-vector: all query→support distances in one kernel pass.
  std::vector<double> dists(n);
  distances_to(q, 0, dists.data());
  for (std::size_t k = 0; k < n; ++k)
    rhs[matrix_index(k)] = entry_of(dists[k]);
  const auto fq = drift_basis(q);
  for (std::size_t l = 0; l < border_; ++l) rhs[base_points_ + l] = fq[l];
  return rhs;
}

std::vector<double> KrigingSystem::coupling_of(std::size_t i) const {
  // Coupling of unique point i against points 0..i-1 plus the border — the
  // exact state of a factor that already holds everything before i.
  std::vector<double> c(i + border_, 0.0);
  for (std::size_t j = 0; j < i; ++j)
    c[matrix_index(j)] = pair_entry(i, j);
  const auto fi = drift_basis(points_[i]);
  for (std::size_t l = 0; l < border_; ++l) c[base_points_ + l] = fi[l];
  return c;
}

double KrigingSystem::ladder_scale() const {
  // The exact scale of linalg::robust_solve: max(|A|, 1) over the
  // *unshifted* matrix. Reuse the plain factor's assembled copy when one
  // exists; otherwise assemble once.
  for (const Factor& f : factors_)
    if (f.shift == 0.0)  // ace-lint: allow(float-equality)
      return std::max(f.ldlt->assembled().max_abs(), 1.0);
  return std::max(assemble(0.0).max_abs(), 1.0);
}

void KrigingSystem::invalidate_factors() {
  factors_.clear();
  singular_shifts_.clear();
}

linalg::BorderedLdlt* KrigingSystem::factor_at(double shift) {
  // Shifts are recomputed identically per query while the support stands
  // still (ridge · scale over the same matrix), so exact comparison is the
  // correct memo key; both memos are cleared on any support change.
  for (Factor& f : factors_)
    if (f.shift == shift)  // ace-lint: allow(float-equality)
      return f.ldlt.get();
  for (double s : singular_shifts_)
    if (s == shift)  // ace-lint: allow(float-equality)
      return nullptr;

  const std::size_t n = points_.size();
  auto build_all_in_base = [&]() -> std::unique_ptr<linalg::BorderedLdlt> {
    ++stats_.full_factorizations;
    auto ldlt = std::make_unique<linalg::BorderedLdlt>(assemble(shift), shift);
    return ldlt->ok() ? std::move(ldlt) : nullptr;
  };

  std::unique_ptr<linalg::BorderedLdlt> ldlt;
  if (base_points_ >= n) {
    ldlt = build_all_in_base();
  } else {
    // Incremental layout: factor the minimal base (first points + border),
    // then fold the remaining support in one Schur pivot at a time.
    const std::size_t nb = base_points_ + border_;
    linalg::Matrix base(nb, nb);
    {
      const linalg::Matrix full = assemble(shift);
      for (std::size_t r = 0; r < nb; ++r)
        for (std::size_t c = 0; c < nb; ++c) base(r, c) = full(r, c);
    }
    ++stats_.full_factorizations;
    ldlt = std::make_unique<linalg::BorderedLdlt>(std::move(base), shift);
    bool incremental_ok = ldlt->ok();
    for (std::size_t u = base_points_; incremental_ok && u < n; ++u) {
      if (ldlt->append_point(coupling_of(u), diagonal_entry()))
        ++stats_.appends;
      else
        incremental_ok = false;
    }
    // Degrade rather than fail: a base or pivot collapse the whole-matrix
    // pivoted LU could still handle (e.g. a collinear base in universal
    // kriging) must not make the incremental layout reject a query the
    // direct path would answer — that would let optimizer decisions
    // diverge between the cached and direct paths.
    if (!incremental_ok) ldlt = build_all_in_base();
  }

  if (!ldlt) {
    singular_shifts_.push_back(shift);
    return nullptr;
  }
  factors_.push_back(Factor{shift, std::move(ldlt)});
  return factors_.back().ldlt.get();
}

std::optional<KrigingResult> KrigingSystem::query(
    const std::vector<double>& q) {
  if (q.size() != dim_)
    throw std::invalid_argument("KrigingSystem: dimension mismatch");
  ++stats_.solves;
  const linalg::Vector rhs = assemble_rhs(q);

  // The legacy robust_solve ladder, rung for rung: plain solve first, then
  // growing ridge on the non-border diagonal. Factor construction (and its
  // singularity) depends only on the matrix, so factors and singularity
  // verdicts are memoized across queries; the acceptability test depends
  // on the right-hand side and is re-run per query.
  double shift = 0.0;
  std::optional<linalg::Vector> solution;
  linalg::BorderedLdlt* used = nullptr;
  if (linalg::BorderedLdlt* f = factor_at(0.0)) {
    linalg::Vector x = f->solve(rhs);
    if (acceptable(x)) {
      solution = std::move(x);
      used = f;
    }
  }
  if (!solution) {
    const double scale = ladder_scale();
    for (double ridge = kInitialRidge; ridge <= kMaxRidge; ridge *= 100.0) {
      shift = ridge * scale;
      linalg::BorderedLdlt* f = factor_at(shift);
      if (!f) continue;
      linalg::Vector x = f->solve(rhs);
      if (acceptable(x)) {
        solution = std::move(x);
        used = f;
        break;
      }
    }
    if (!solution) return std::nullopt;
  }
  return finalize(q, rhs, *solution, shift, used);
}

std::vector<std::optional<KrigingResult>> KrigingSystem::query_batch(
    const std::vector<std::vector<double>>& queries) {
  std::vector<std::optional<KrigingResult>> results(queries.size());
  if (queries.empty()) return results;
  for (const auto& q : queries)
    if (q.size() != dim_)
      throw std::invalid_argument("KrigingSystem: dimension mismatch");
  stats_.solves += queries.size();

  const std::size_t m = system_size();
  const std::size_t nq = queries.size();
  std::vector<linalg::Vector> rhs;
  rhs.reserve(nq);
  for (const auto& q : queries) rhs.push_back(assemble_rhs(q));

  // The same ladder as query(), run rung-by-rung over the whole batch:
  // each rung factors once and solves every still-open query in one
  // multi-RHS call. Acceptability stays per-query, so every query climbs
  // exactly the rungs it would have climbed alone.
  struct Solved {
    linalg::Vector x;
    double shift = 0.0;
    const linalg::BorderedLdlt* used = nullptr;
  };
  std::vector<std::optional<Solved>> solved(nq);
  std::size_t open_count = nq;

  const auto attempt = [&](double shift) {
    std::vector<std::size_t> open;
    open.reserve(open_count);
    for (std::size_t i = 0; i < nq; ++i)
      if (!solved[i]) open.push_back(i);
    linalg::BorderedLdlt* f = factor_at(shift);
    if (!f) return;
    linalg::Matrix b(m, open.size());
    for (std::size_t c = 0; c < open.size(); ++c)
      for (std::size_t r = 0; r < m; ++r) b(r, c) = rhs[open[c]][r];
    const linalg::Matrix x = f->solve(b);
    for (std::size_t c = 0; c < open.size(); ++c) {
      linalg::Vector xc = x.col(c);
      if (acceptable(xc)) {
        solved[open[c]] = Solved{std::move(xc), shift, f};
        --open_count;
      }
    }
  };

  attempt(0.0);
  if (open_count > 0) {
    const double scale = ladder_scale();
    for (double ridge = kInitialRidge;
         ridge <= kMaxRidge && open_count > 0; ridge *= 100.0)
      attempt(ridge * scale);
  }
  for (std::size_t i = 0; i < nq; ++i)
    if (solved[i])
      results[i] = finalize(queries[i], rhs[i], solved[i]->x,
                            solved[i]->shift, solved[i]->used);
  return results;
}

std::optional<KrigingSystem::LooReport> KrigingSystem::loo_residuals() {
  const std::size_t n = points_.size();
  // One point leaves nothing to predict from; universal kriging further
  // needs the LOO subsets to keep the same effective drift as the full
  // system for Dubrule's identity to describe a real scratch refit.
  if (n < 2) return std::nullopt;
  if (spec_.kind == SystemKind::kUniversal &&
      effective_drift_ == DriftKind::kLinear && n < dim_ + 3)
    return std::nullopt;
  const std::size_t m = system_size();

  // z̃ in layout order: (centred) values on data rows, zeros on the border.
  linalg::Vector z(m);
  for (std::size_t k = 0; k < n; ++k)
    z[matrix_index(k)] = spec_.kind == SystemKind::kSimple
                             ? values_[k] - spec_.mean
                             : values_[k];

  // Dubrule's identity on whichever shifted matrix actually factors: with
  // B = A⁻¹, u = B·z̃, e_i = u_i / B_ii and σ²₍ᵢ₎ = 1/B_ii (covariance
  // form). The γ-form bordered matrix is A_γ = −S·A_cov·S for the sign
  // flip S = diag(I, −I_border), so its data-block inverse diagonal is the
  // negated covariance one: the residual ratio is unchanged and the LOO
  // variance becomes −1/B_ii.
  const auto attempt = [&](double shift) -> std::optional<LooReport> {
    linalg::BorderedLdlt* f = factor_at(shift);
    if (!f) return std::nullopt;
    const linalg::Vector u = f->solve(z);
    const linalg::Vector diag = f->inverse_diagonal();
    LooReport report;
    report.shift = shift;
    report.regularized = shift > 0.0;
    report.residuals.resize(n);
    report.variances.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t mk = matrix_index(k);
      const double d = diag[mk];
      if (!std::isfinite(d) || d == 0.0 ||  // ace-lint: allow(float-equality)
          !std::isfinite(u[mk]))
        return std::nullopt;
      const double e = u[mk] / d;
      if (!std::isfinite(e) || std::abs(e) > kMaxSolutionNorm)
        return std::nullopt;
      report.residuals[k] = e;
      const double var =
          spec_.kind == SystemKind::kSimple ? 1.0 / d : -1.0 / d;
      report.variances[k] = std::max(var, 0.0);
    }
    return report;
  };

  // The same ladder as query(): plain solve first, then growing ridge.
  if (auto report = attempt(0.0)) return report;
  const double scale = ladder_scale();
  for (double ridge = kInitialRidge; ridge <= kMaxRidge; ridge *= 100.0)
    if (auto report = attempt(ridge * scale)) return report;
  return std::nullopt;
}

std::optional<KrigingResult> KrigingSystem::finalize(
    const std::vector<double>& q, const linalg::Vector& rhs,
    const linalg::Vector& x, double shift,
    const linalg::BorderedLdlt* used) const {
  const std::size_t n = points_.size();
  KrigingResult result;
  result.regularized = shift > 0.0;
  result.ridge = shift;
  result.rcond = used->rcond_estimate();

  double estimate = spec_.kind == SystemKind::kSimple ? spec_.mean : 0.0;
  double variance =
      spec_.kind == SystemKind::kSimple
          ? std::max(spec_.sill - model_->gamma(0.0), 0.0)
          : 0.0;
  std::vector<double> unique_weights(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double w = x[matrix_index(k)];
    unique_weights[k] = w;
    switch (spec_.kind) {
      case SystemKind::kOrdinary:
      case SystemKind::kUniversal:
        estimate += w * values_[k];
        variance += w * rhs[matrix_index(k)];
        break;
      case SystemKind::kSimple:
        estimate += w * (values_[k] - spec_.mean);
        variance -= w * rhs[matrix_index(k)];
        break;
    }
  }
  // Lagrange / drift multiplier terms of the kriging variance.
  if (spec_.kind != SystemKind::kSimple) {
    const auto fq = drift_basis(q);
    for (std::size_t l = 0; l < border_; ++l)
      variance += x[base_points_ + l] * fq[l];
  }
  if (!std::isfinite(estimate)) return std::nullopt;
  result.estimate = estimate;
  result.variance = std::max(variance, 0.0);
  result.weights.resize(slots_.size(), 0.0);
  for (std::size_t s = 0; s < slots_.size(); ++s)
    result.weights[s] = slots_[s].owner ? unique_weights[slots_[s].unique] : 0.0;

#if ACE_CONTRACTS_ENABLED
  // The first border row (Σ w_k = 1, unbiasedness) is an *exact* equation
  // of the solved system — the ridge fallback shifts only the non-border
  // diagonal, never the border — so the solved weights must honour it to
  // solver precision. Simple kriging has no such constraint (known mean).
  if (spec_.kind != SystemKind::kSimple) {
    double weight_sum = 0.0;
    double abs_sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      weight_sum += unique_weights[k];
      abs_sum += std::abs(unique_weights[k]);
    }
    ACE_ENSURE(std::abs(weight_sum - 1.0) <= 1e-8 * std::max(1.0, abs_sum),
               "kriging weights must sum to 1 (unbiasedness)");
  }
#endif
  ACE_ENSURE(std::isfinite(result.variance) && result.variance >= 0.0,
             "kriging variance must be finite and non-negative");
  return result;
}

void KrigingSystem::append_point(std::vector<double> point, double value) {
  if (point.size() != dim_)
    throw std::invalid_argument("KrigingSystem: dimension mismatch");
  for (std::size_t i = 0; i < points_.size(); ++i)
    if (points_[i] == point) {
      slots_.push_back({i, false});  // Coincident: zero-weight slot.
      return;
    }

  const std::size_t u = points_.size();
  points_.push_back(std::move(point));
  values_.push_back(value);
  for (std::size_t d = 0; d < dim_; ++d) cols_[d].push_back(points_[u][d]);
  slots_.push_back({u, true});

  if (layout_ == Layout::kAllInBase) {
    base_points_ = points_.size();
    (void)refresh_border();
    invalidate_factors();
    return;
  }
  if (refresh_border()) {
    // The border width changed (universal kriging crossing the dim + 2
    // threshold): the layout itself moved, so every factor is stale.
    base_points_ = std::min(points_.size(),
                            std::max<std::size_t>(1, border_));
    invalidate_factors();
    return;
  }
  // Extend the plain factor in place; ladder-rung factors and singularity
  // memos are matrix-dependent and must be rebuilt on demand.
  std::unique_ptr<linalg::BorderedLdlt> primary;
  for (Factor& f : factors_)
    if (f.shift == 0.0)  // ace-lint: allow(float-equality)
      primary = std::move(f.ldlt);
  factors_.clear();
  singular_shifts_.clear();
  if (primary && primary->size() == system_size() - 1 &&
      primary->append_point(coupling_of(u), diagonal_entry())) {
    ++stats_.appends;
    factors_.push_back(Factor{0.0, std::move(primary)});
  }
}

bool KrigingSystem::removable(std::size_t slot) const {
  if (slot >= slots_.size()) return false;
  if (!slots_[slot].owner) return true;  // Zero-weight duplicate.
  if (slots_[slot].unique < base_points_) return false;
  // An owner with remaining duplicate slots cannot be dropped: the
  // duplicates would dangle.
  for (std::size_t s = 0; s < slots_.size(); ++s)
    if (s != slot && slots_[s].unique == slots_[slot].unique) return false;
  return true;
}

bool KrigingSystem::remove_point(std::size_t slot) {
  if (!removable(slot)) return false;
  const Slot victim = slots_[slot];
  slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(slot));
  if (!victim.owner) return true;  // No factor content to touch.

  const std::size_t u = victim.unique;
  points_.erase(points_.begin() + static_cast<std::ptrdiff_t>(u));
  values_.erase(values_.begin() + static_cast<std::ptrdiff_t>(u));
  for (auto& c : cols_) c.erase(c.begin() + static_cast<std::ptrdiff_t>(u));
  for (Slot& s : slots_)
    if (s.unique > u) --s.unique;

  // Downdate the plain factor when possible; a degenerate downdate (or a
  // border-width change) just invalidates, and the next query refactors.
  std::unique_ptr<linalg::BorderedLdlt> primary;
  for (Factor& f : factors_)
    if (f.shift == 0.0)  // ace-lint: allow(float-equality)
      primary = std::move(f.ldlt);
  factors_.clear();
  singular_shifts_.clear();
  if (refresh_border()) {
    base_points_ = std::min(points_.size(),
                            std::max<std::size_t>(1, border_));
  } else if (primary && primary->remove_point(u - base_points_)) {
    ++stats_.removals;
    factors_.push_back(Factor{0.0, std::move(primary)});
  }
  return true;
}

}  // namespace ace::kriging
