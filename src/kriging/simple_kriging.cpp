// Thin strategy wrapper over kriging::KrigingSystem — the covariance
// assembly C(d) = max(sill − γ(d), 0) and the ridge-fallback ladder are
// shared with the other estimators there. Direct linalg solver calls from
// here are forbidden by the `kriging-direct-solve` lint rule.
#include "kriging/simple_kriging.hpp"

#include <cmath>
#include <stdexcept>

#include "kriging/system.hpp"

namespace ace::kriging {

std::optional<KrigingResult> simple_krige(
    const std::vector<std::vector<double>>& support_points,
    const std::vector<double>& support_values,
    const std::vector<double>& query, const VariogramModel& model,
    double sill, double mean, const DistanceFn& distance) {
  if (support_points.empty())
    throw std::invalid_argument("simple_krige: empty support set");
  if (support_points.size() != support_values.size())
    throw std::invalid_argument("simple_krige: points/values mismatch");
  if (sill <= 0.0 || !std::isfinite(sill))
    throw std::invalid_argument("simple_krige: sill must be positive");
  for (const auto& p : support_points)
    if (p.size() != query.size())
      throw std::invalid_argument("simple_krige: dimension mismatch");

  SystemSpec spec;
  spec.kind = SystemKind::kSimple;
  spec.sill = sill;
  spec.mean = mean;
  KrigingSystem system(spec, support_points, support_values, model, distance);
  return system.query(query);
}

}  // namespace ace::kriging
