#include "kriging/simple_kriging.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "linalg/vector.hpp"
#include "util/contract.hpp"

namespace ace::kriging {

std::optional<KrigingResult> simple_krige(
    const std::vector<std::vector<double>>& support_points,
    const std::vector<double>& support_values,
    const std::vector<double>& query, const VariogramModel& model,
    double sill, double mean, const DistanceFn& distance) {
  if (support_points.empty())
    throw std::invalid_argument("simple_krige: empty support set");
  if (support_points.size() != support_values.size())
    throw std::invalid_argument("simple_krige: points/values mismatch");
  if (sill <= 0.0 || !std::isfinite(sill))
    throw std::invalid_argument("simple_krige: sill must be positive");
  for (const auto& p : support_points)
    if (p.size() != query.size())
      throw std::invalid_argument("simple_krige: dimension mismatch");

  const std::size_t n = support_points.size();
  auto covariance = [&](double d) {
    return std::max(sill - model.gamma(d), 0.0);
  };

  linalg::Matrix cov(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t k = j; k < n; ++k) {
      const double c =
          covariance(distance(support_points[j], support_points[k]));
      cov(j, k) = c;
      cov(k, j) = c;
    }
  linalg::Vector cq(n);
  for (std::size_t k = 0; k < n; ++k)
    cq[k] = covariance(distance(query, support_points[k]));

  linalg::SolveReport report;
  const auto weights = linalg::robust_solve(cov, cq, report, /*border=*/0);
  if (!weights) return std::nullopt;

  KrigingResult result;
  result.regularized = report.regularized;
  result.weights.resize(n);
  double estimate = mean;
  double variance = covariance(0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const double w = (*weights)[k];
    result.weights[k] = w;
    estimate += w * (support_values[k] - mean);
    variance -= w * cq[k];
  }
  if (!std::isfinite(estimate)) return std::nullopt;
  result.estimate = estimate;
  result.variance = std::max(variance, 0.0);
  // Simple kriging has no unbiasedness constraint (the mean is known), so
  // only the variance contract applies.
  ACE_ENSURE(std::isfinite(result.variance) && result.variance >= 0.0,
             "kriging variance must be finite and non-negative");
  return result;
}

}  // namespace ace::kriging
