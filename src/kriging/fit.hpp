// Weighted least-squares identification of a parametric semi-variogram
// model from an empirical one ("the identification of the semi-variogram
// has to be done once for a particular metric and application", paper
// Sec. III-A).
//
// Bounded families (spherical / exponential / gaussian) are fitted by a
// grid search over the range parameter with a closed-form weighted linear
// solve for (nugget, sill) at each candidate; the power family grids the
// exponent likewise. Bins are weighted by their pair count |N(d)|.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kriging/empirical_variogram.hpp"
#include "kriging/variogram_model.hpp"

namespace ace::kriging {

/// Families the fitter knows.
enum class ModelFamily { kLinear, kSpherical, kExponential, kGaussian, kPower };

std::string family_name(ModelFamily family);

/// One fitted candidate.
struct FitResult {
  std::unique_ptr<VariogramModel> model;
  ModelFamily family = ModelFamily::kLinear;
  double weighted_sse = 0.0;  ///< Σ |N(d)|·(γ̂(d) − γ(d))² over bins.
};

/// Fitting knobs.
struct FitOptions {
  std::vector<ModelFamily> families = {
      ModelFamily::kLinear, ModelFamily::kSpherical, ModelFamily::kExponential,
      ModelFamily::kGaussian, ModelFamily::kPower};
  int range_grid = 24;  ///< Candidates per bounded-family range sweep.
};

/// Fit a single family to the empirical variogram.
/// Throws std::invalid_argument if the variogram has no bins.
FitResult fit_family(const EmpiricalVariogram& ev, ModelFamily family,
                     const FitOptions& options = {});

/// Fit every requested family; results sorted by ascending weighted SSE.
std::vector<FitResult> fit_all(const EmpiricalVariogram& ev,
                               const FitOptions& options = {});

/// Fit all families and return the best (lowest weighted SSE).
FitResult fit_best(const EmpiricalVariogram& ev,
                   const FitOptions& options = {});

}  // namespace ace::kriging
