// Empirical semi-variogram (paper Eq. 4):
//   γ̂(d) = 1 / (2|N(d)|) · Σ_{(j,k) ∈ N(d)} (λ(e_j) − λ(e_k))²
// where N(d) is the set of sample pairs at (binned) distance d.
//
// Configurations live on an integer lattice and distances are L1, so with
// bin_width = 1 the binning is exact, matching the paper's discrete
// hypercube setting.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace ace::kriging {

/// Distance function over configuration vectors.
using DistanceFn =
    std::function<double(const std::vector<double>&, const std::vector<double>&)>;

/// L1 (Manhattan) distance — the paper's choice (Algs. 1-2 line 9).
double l1_distance(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean distance (provided for comparison/ablation).
double l2_distance(const std::vector<double>& a, const std::vector<double>& b);

/// One bin of the empirical semi-variogram.
struct VariogramBin {
  double distance = 0.0;      ///< Representative distance (bin centre).
  double gamma = 0.0;         ///< γ̂(d).
  std::size_t pair_count = 0; ///< |N(d)| — used as fit weight.
};

/// Empirical semi-variogram over a sample set.
class EmpiricalVariogram {
 public:
  /// Compute from points/values. bin_width groups pairwise distances into
  /// [k·w, (k+1)·w) bins represented by their mean distance.
  /// Throws std::invalid_argument on size mismatch, < 2 points, or
  /// non-positive bin width.
  EmpiricalVariogram(const std::vector<std::vector<double>>& points,
                     const std::vector<double>& values,
                     DistanceFn distance = l1_distance,
                     double bin_width = 1.0);

  const std::vector<VariogramBin>& bins() const { return bins_; }
  std::size_t total_pairs() const { return total_pairs_; }

  /// Largest pairwise distance observed.
  double max_distance() const { return max_distance_; }

  /// Sample variance of the values — the natural sill estimate.
  double value_variance() const { return value_variance_; }

 private:
  std::vector<VariogramBin> bins_;
  std::size_t total_pairs_ = 0;
  double max_distance_ = 0.0;
  double value_variance_ = 0.0;
};

}  // namespace ace::kriging
