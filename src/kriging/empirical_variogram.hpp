// Empirical semi-variogram (paper Eq. 4):
//   γ̂(d) = 1 / (2|N(d)|) · Σ_{(j,k) ∈ N(d)} (λ(e_j) − λ(e_k))²
// where N(d) is the set of sample pairs at (binned) distance d.
//
// Configurations live on an integer lattice and distances are L1, so with
// bin_width = 1 the binning is exact, matching the paper's discrete
// hypercube setting.
//
// The variogram is *extendable*: extend() folds only the new samples'
// pairs into the existing bins — O(k·N) for k new points over N existing
// ones — so a periodically refitted model does not pay the O(N²) full
// rebuild on every refit (cf. fast cross-validation for sequential
// designs, Le Gratiet & Cannamela, arXiv:1210.6187).
//
// Thread-safety: all mutable state is guarded by an annotated mutex, so
// the Clang capability analysis (-Wthread-safety) proves that extend() and
// every accessor take the lock. A mutex member makes the class non-copyable
// — no caller copied it anyway (it is held by unique_ptr or const&).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ace::kriging {

/// Distance function over configuration vectors.
using DistanceFn =
    std::function<double(const std::vector<double>&, const std::vector<double>&)>;

/// L1 (Manhattan) distance — the paper's choice (Algs. 1-2 line 9).
double l1_distance(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean distance (provided for comparison/ablation).
double l2_distance(const std::vector<double>& a, const std::vector<double>& b);

/// One bin of the empirical semi-variogram.
struct VariogramBin {
  double distance = 0.0;      ///< Representative distance (bin centre).
  double gamma = 0.0;         ///< γ̂(d).
  std::size_t pair_count = 0; ///< |N(d)| — used as fit weight.
};

/// Empirical semi-variogram over a growing sample set.
class EmpiricalVariogram {
 public:
  /// Empty, extendable variogram. bin_width groups pairwise distances into
  /// [k·w, (k+1)·w) bins represented by their mean distance. Throws
  /// std::invalid_argument on non-positive bin width.
  explicit EmpiricalVariogram(DistanceFn distance = l1_distance,
                              double bin_width = 1.0);

  /// Compute from points/values in one shot. Throws std::invalid_argument
  /// on size mismatch, < 2 points, or non-positive bin width.
  EmpiricalVariogram(const std::vector<std::vector<double>>& points,
                     const std::vector<double>& values,
                     DistanceFn distance = l1_distance,
                     double bin_width = 1.0);

  /// Fold new samples into the variogram: each new point is paired against
  /// every already-held point and against the earlier new points, updating
  /// the existing bins in place. Throws std::invalid_argument on
  /// points/values size mismatch and util::NonFiniteError when any value
  /// or coordinate is NaN/Inf (checked up front — the bins are untouched
  /// on rejection).
  void extend(const std::vector<std::vector<double>>& points,
              const std::vector<double>& values) ACE_EXCLUDES(mutex_);

  /// Number of samples folded in so far.
  std::size_t sample_count() const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return points_.size();
  }

  /// Bins in ascending distance order. The reference stays valid until the
  /// next extend(); callers interleaving reads with concurrent extends
  /// must copy instead.
  const std::vector<VariogramBin>& bins() const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return bins_;
  }
  std::size_t total_pairs() const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return total_pairs_;
  }

  /// Largest pairwise distance observed.
  double max_distance() const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return max_distance_;
  }

  /// Sample variance of the values — the natural sill estimate.
  double value_variance() const ACE_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return value_variance_;
  }

 private:
  struct BinAccum {
    double sum_sq_diff = 0.0;  // Σ (λj − λk)²
    double sum_distance = 0.0;
    std::size_t pairs = 0;
  };

  /// Materialize bins_ from accum_ (cheap: the bin count is small).
  void rebuild_view() ACE_REQUIRES(mutex_);

  DistanceFn distance_;  ///< Immutable after construction.
  double bin_width_;     ///< Immutable after construction.
  std::vector<std::vector<double>> points_ ACE_GUARDED_BY(mutex_);
  std::vector<double> values_ ACE_GUARDED_BY(mutex_);
  std::map<long long, BinAccum> accum_ ACE_GUARDED_BY(mutex_);
  std::vector<VariogramBin> bins_ ACE_GUARDED_BY(mutex_);
  std::size_t total_pairs_ ACE_GUARDED_BY(mutex_) = 0;
  double max_distance_ ACE_GUARDED_BY(mutex_) = 0.0;
  // Welford running variance of the sample values.
  double value_mean_ ACE_GUARDED_BY(mutex_) = 0.0;
  double value_m2_ ACE_GUARDED_BY(mutex_) = 0.0;
  double value_variance_ ACE_GUARDED_BY(mutex_) = 0.0;
  mutable util::Mutex mutex_{util::lock_order::Rank::kVariogram,
                             "kriging.variogram"};
};

}  // namespace ace::kriging
