// Ordinary kriging estimator (paper Eq. 3 and 7-10).
//
// Given support configurations e_0..e_{N-1} with measured metric values
// λ_0..λ_{N-1} and a semi-variogram model γ, the estimate at query e_i is
//   λ̂(e_i) = γ_i · Γ⁻¹ · λ                                   (Eq. 10)
// where Γ is the (N+1)×(N+1) bordered matrix of Eq. 9 (pairwise
// semi-variances with a Lagrange row enforcing Σμ = 1, i.e. unbiasedness,
// Eq. 6), γ_i the query semi-variance vector of Eq. 8, and λ the value
// vector padded with a trailing 0 (Eq. 7).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "kriging/empirical_variogram.hpp"
#include "kriging/variogram_model.hpp"

namespace ace::kriging {

/// Result of one kriging interpolation.
struct KrigingResult {
  double estimate = 0.0;       ///< λ̂(e_i).
  double variance = 0.0;       ///< Kriging variance (>= 0 up to round-off).
  bool regularized = false;    ///< Ridge fallback was used on Γ.
  double ridge = 0.0;          ///< Diagonal shift used (0 when unregularized).
  double rcond = 0.0;          ///< Pivot-ratio condition estimate of the solve.
  std::vector<double> weights; ///< The μ_k of Eq. 3 (size N).
};

/// One-shot ordinary kriging.
///
/// Throws std::invalid_argument on empty support, size mismatches, or
/// dimension mismatches. Returns nullopt when the bordered system cannot
/// be solved even with regularization — callers fall back to simulation.
std::optional<KrigingResult> krige(
    const std::vector<std::vector<double>>& support_points,
    const std::vector<double>& support_values,
    const std::vector<double>& query, const VariogramModel& model,
    const DistanceFn& distance = l1_distance);

class KrigingSystem;

/// Reusable estimator: factors Γ once for a fixed support set, then serves
/// many queries (the shared KrigingSystem memoizes the factorization, so
/// repeated estimates pay only the O(N²) solve). Used by the
/// exhaustive-surface benches where hundreds of queries share one
/// neighbourhood. Not thread-safe: concurrent estimate() calls race on the
/// internal factor cache.
class OrdinaryKriging {
 public:
  /// Throws std::invalid_argument on empty/ragged support.
  OrdinaryKriging(std::vector<std::vector<double>> support_points,
                  std::vector<double> support_values,
                  const VariogramModel& model,
                  DistanceFn distance = l1_distance);
  ~OrdinaryKriging();

  /// Interpolate at a query configuration; nullopt when the system is
  /// unsolvable.
  std::optional<KrigingResult> estimate(const std::vector<double>& query) const;

  std::size_t support_size() const;

 private:
  /// Mutable: queries memoize factorizations inside the system.
  mutable std::unique_ptr<KrigingSystem> system_;
};

}  // namespace ace::kriging
