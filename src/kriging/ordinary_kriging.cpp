// Thin strategy wrapper: assembly, the ridge-fallback ladder and the
// coincident-point dedupe all live in kriging::KrigingSystem — this
// translation unit only binds the ordinary-kriging SystemSpec. Direct
// linalg solver calls from here are forbidden by the `kriging-direct-solve`
// lint rule (tools/lint/ace_lint.py).
#include "kriging/ordinary_kriging.hpp"

#include <stdexcept>

#include "kriging/system.hpp"

namespace ace::kriging {

namespace {

void validate(const std::vector<std::vector<double>>& points,
              const std::vector<double>& values,
              const std::vector<double>& query) {
  if (points.empty())
    throw std::invalid_argument("krige: empty support set");
  if (points.size() != values.size())
    throw std::invalid_argument("krige: points/values size mismatch");
  for (const auto& p : points)
    if (p.size() != query.size())
      throw std::invalid_argument("krige: dimension mismatch");
}

}  // namespace

std::optional<KrigingResult> krige(
    const std::vector<std::vector<double>>& support_points,
    const std::vector<double>& support_values, const std::vector<double>& query,
    const VariogramModel& model, const DistanceFn& distance) {
  validate(support_points, support_values, query);
  KrigingSystem system(SystemSpec{SystemKind::kOrdinary}, support_points,
                       support_values, model, distance);
  return system.query(query);
}

OrdinaryKriging::OrdinaryKriging(std::vector<std::vector<double>> support_points,
                                 std::vector<double> support_values,
                                 const VariogramModel& model,
                                 DistanceFn distance) {
  if (support_points.empty())
    throw std::invalid_argument("OrdinaryKriging: empty support set");
  if (support_points.size() != support_values.size())
    throw std::invalid_argument("OrdinaryKriging: points/values mismatch");
  const std::size_t dim = support_points.front().size();
  for (const auto& p : support_points)
    if (p.size() != dim)
      throw std::invalid_argument("OrdinaryKriging: ragged support set");
  system_ = std::make_unique<KrigingSystem>(
      SystemSpec{SystemKind::kOrdinary}, std::move(support_points),
      std::move(support_values), model, std::move(distance));
}

OrdinaryKriging::~OrdinaryKriging() = default;

std::size_t OrdinaryKriging::support_size() const {
  return system_->support_size();
}

std::optional<KrigingResult> OrdinaryKriging::estimate(
    const std::vector<double>& query) const {
  if (query.size() != system_->dimension())
    throw std::invalid_argument("OrdinaryKriging: dimension mismatch");
  return system_->query(query);
}

}  // namespace ace::kriging
