#include "kriging/ordinary_kriging.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "linalg/vector.hpp"
#include "util/contract.hpp"

namespace ace::kriging {

namespace {

void validate(const std::vector<std::vector<double>>& points,
              const std::vector<double>& values,
              const std::vector<double>& query) {
  if (points.empty())
    throw std::invalid_argument("krige: empty support set");
  if (points.size() != values.size())
    throw std::invalid_argument("krige: points/values size mismatch");
  for (const auto& p : points)
    if (p.size() != query.size())
      throw std::invalid_argument("krige: dimension mismatch");
}

/// Builds the bordered Γ of Eq. 9 and the query vector γ_i of Eq. 8, then
/// solves Γ·μ = γ_i. The weight vector's first N entries are the kriging
/// weights; the last entry is the Lagrange multiplier.
std::optional<KrigingResult> solve_system(
    const std::vector<std::vector<double>>& points,
    const std::vector<double>& values, const std::vector<double>& query,
    const VariogramModel& model, const DistanceFn& distance) {
  const std::size_t n = points.size();

  linalg::Matrix gamma_mat(n + 1, n + 1);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = j; k < n; ++k) {
      const double g = model.gamma(distance(points[j], points[k]));
      gamma_mat(j, k) = g;
      gamma_mat(k, j) = g;
    }
    gamma_mat(j, n) = 1.0;
    gamma_mat(n, j) = 1.0;
  }
  gamma_mat(n, n) = 0.0;

  linalg::Vector gamma_query(n + 1);
  for (std::size_t k = 0; k < n; ++k)
    gamma_query[k] = model.gamma(distance(query, points[k]));
  gamma_query[n] = 1.0;

  linalg::SolveReport report;
  const auto weights =
      linalg::robust_solve(gamma_mat, gamma_query, report, /*border=*/1);
  if (!weights) return std::nullopt;

  KrigingResult result;
  result.regularized = report.regularized;
  result.weights.resize(n);
  double estimate = 0.0;
  double variance = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double w = (*weights)[k];
    result.weights[k] = w;
    estimate += w * values[k];   // Eq. 10 with λ padded by 0.
    variance += w * gamma_query[k];
  }
  variance += (*weights)[n];  // Lagrange multiplier term of σ²_OK.
  if (!std::isfinite(estimate)) return std::nullopt;
  result.estimate = estimate;
  result.variance = std::max(variance, 0.0);
#if ACE_CONTRACTS_ENABLED
  // The Lagrange row Σ w_k = 1 is an *exact* equation of the solved
  // system (the ridge fallback regularizes only the ΓΓ core, never the
  // border), so the solved weights must honour it to solver precision —
  // a violated sum means an unbiasedness failure, not noise.
  {
    double weight_sum = 0.0;
    double abs_sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      weight_sum += result.weights[k];
      abs_sum += std::abs(result.weights[k]);
    }
    ACE_ENSURE(std::abs(weight_sum - 1.0) <= 1e-8 * std::max(1.0, abs_sum),
               "ordinary kriging weights must sum to 1 (unbiasedness)");
  }
#endif
  ACE_ENSURE(std::isfinite(result.variance) && result.variance >= 0.0,
             "kriging variance must be finite and non-negative");
  return result;
}

}  // namespace

std::optional<KrigingResult> krige(
    const std::vector<std::vector<double>>& support_points,
    const std::vector<double>& support_values, const std::vector<double>& query,
    const VariogramModel& model, const DistanceFn& distance) {
  validate(support_points, support_values, query);
  return solve_system(support_points, support_values, query, model, distance);
}

OrdinaryKriging::OrdinaryKriging(std::vector<std::vector<double>> support_points,
                                 std::vector<double> support_values,
                                 const VariogramModel& model,
                                 DistanceFn distance)
    : points_(std::move(support_points)),
      values_(std::move(support_values)),
      model_(model.clone()),
      distance_(std::move(distance)) {
  if (points_.empty())
    throw std::invalid_argument("OrdinaryKriging: empty support set");
  if (points_.size() != values_.size())
    throw std::invalid_argument("OrdinaryKriging: points/values mismatch");
  const std::size_t dim = points_.front().size();
  for (const auto& p : points_)
    if (p.size() != dim)
      throw std::invalid_argument("OrdinaryKriging: ragged support set");
}

std::optional<KrigingResult> OrdinaryKriging::estimate(
    const std::vector<double>& query) const {
  validate(points_, values_, query);
  return solve_system(points_, values_, query, *model_, distance_);
}

}  // namespace ace::kriging
