#include "kriging/universal_kriging.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "linalg/vector.hpp"
#include "util/contract.hpp"

namespace ace::kriging {

namespace {

/// Drift basis f(x) for the effective drift (after small-support fallback).
std::vector<double> basis(const std::vector<double>& x, DriftKind drift) {
  std::vector<double> f;
  if (drift == DriftKind::kConstant) {
    f = {1.0};
  } else {
    f.reserve(x.size() + 1);
    f.push_back(1.0);
    f.insert(f.end(), x.begin(), x.end());
  }
  return f;
}

}  // namespace

std::optional<KrigingResult> krige_with_drift(
    const std::vector<std::vector<double>>& support_points,
    const std::vector<double>& support_values,
    const std::vector<double>& query, const VariogramModel& model,
    DriftKind drift, const DistanceFn& distance) {
  if (support_points.empty())
    throw std::invalid_argument("krige_with_drift: empty support set");
  if (support_points.size() != support_values.size())
    throw std::invalid_argument("krige_with_drift: points/values mismatch");
  for (const auto& p : support_points)
    if (p.size() != query.size())
      throw std::invalid_argument("krige_with_drift: dimension mismatch");

  const std::size_t n = support_points.size();
  const std::size_t dim = query.size();

  // A linear drift adds dim + 1 constraints; identifying it needs at least
  // dim + 2 support points — otherwise degrade gracefully to the constant
  // drift (= ordinary kriging).
  DriftKind effective = drift;
  if (drift == DriftKind::kLinear && n < dim + 2)
    effective = DriftKind::kConstant;
  const std::size_t p = effective == DriftKind::kConstant ? 1 : dim + 1;

  linalg::Matrix system(n + p, n + p);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = j; k < n; ++k) {
      const double g =
          model.gamma(distance(support_points[j], support_points[k]));
      system(j, k) = g;
      system(k, j) = g;
    }
    const auto fj = basis(support_points[j], effective);
    for (std::size_t l = 0; l < p; ++l) {
      system(j, n + l) = fj[l];
      system(n + l, j) = fj[l];
    }
  }

  linalg::Vector rhs(n + p);
  for (std::size_t k = 0; k < n; ++k)
    rhs[k] = model.gamma(distance(query, support_points[k]));
  const auto fq = basis(query, effective);
  for (std::size_t l = 0; l < p; ++l) rhs[n + l] = fq[l];

  linalg::SolveReport report;
  const auto solution = linalg::robust_solve(system, rhs, report,
                                             /*border=*/p);
  if (!solution) return std::nullopt;

  KrigingResult result;
  result.regularized = report.regularized;
  result.weights.resize(n);
  double estimate = 0.0;
  double variance = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double w = (*solution)[k];
    result.weights[k] = w;
    estimate += w * support_values[k];
    variance += w * rhs[k];
  }
  for (std::size_t l = 0; l < p; ++l)
    variance += (*solution)[n + l] * fq[l];
  if (!std::isfinite(estimate)) return std::nullopt;
  result.estimate = estimate;
  result.variance = std::max(variance, 0.0);
#if ACE_CONTRACTS_ENABLED
  // The first drift constraint row (Σ w_k · f_0 = f_0(query), f_0 ≡ 1) is
  // exact in the solved system — the ridge fallback regularizes only the
  // ΓΓ core, never the border — so the weights must sum to 1.
  {
    double weight_sum = 0.0;
    double abs_sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      weight_sum += result.weights[k];
      abs_sum += std::abs(result.weights[k]);
    }
    ACE_ENSURE(std::abs(weight_sum - 1.0) <= 1e-8 * std::max(1.0, abs_sum),
               "universal kriging weights must sum to 1 (unbiasedness)");
  }
#endif
  ACE_ENSURE(std::isfinite(result.variance) && result.variance >= 0.0,
             "kriging variance must be finite and non-negative");
  return result;
}

}  // namespace ace::kriging
