// Thin strategy wrapper over kriging::KrigingSystem — the drift-bordered
// assembly [Γ F; Fᵀ 0], the small-support fallback to the constant drift
// and the ridge ladder are all shared with the other estimators there.
// Direct linalg solver calls from here are forbidden by the
// `kriging-direct-solve` lint rule.
#include "kriging/universal_kriging.hpp"

#include <stdexcept>

#include "kriging/system.hpp"

namespace ace::kriging {

std::optional<KrigingResult> krige_with_drift(
    const std::vector<std::vector<double>>& support_points,
    const std::vector<double>& support_values,
    const std::vector<double>& query, const VariogramModel& model,
    DriftKind drift, const DistanceFn& distance) {
  if (support_points.empty())
    throw std::invalid_argument("krige_with_drift: empty support set");
  if (support_points.size() != support_values.size())
    throw std::invalid_argument("krige_with_drift: points/values mismatch");
  for (const auto& p : support_points)
    if (p.size() != query.size())
      throw std::invalid_argument("krige_with_drift: dimension mismatch");

  SystemSpec spec;
  spec.kind = SystemKind::kUniversal;
  spec.drift = drift;
  KrigingSystem system(spec, support_points, support_values, model, distance);
  return system.query(query);
}

}  // namespace ace::kriging
