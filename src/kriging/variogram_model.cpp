#include "kriging/variogram_model.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/contract.hpp"

namespace ace::kriging {

void VariogramModel::check_distance(double d) {
  if (d < 0.0)
    throw std::invalid_argument("VariogramModel: negative distance");
}

namespace {
// Parameter validity is a numerical contract (Debug-checked, compiled out
// in Release): a negative nugget/sill makes γ non-monotone and the kriging
// system indefinite, which surfaces later as an unsolvable factorization.
void check_nonneg(double v, const char* what) {
  ACE_REQUIRE(std::isfinite(v) && v >= 0.0,
              std::string("Variogram: ") + what + " must be finite and >= 0");
}
void check_pos(double v, const char* what) {
  ACE_REQUIRE(std::isfinite(v) && v > 0.0,
              std::string("Variogram: ") + what + " must be finite and > 0");
}
}  // namespace

// ---------------------------------------------------------------- linear
LinearVariogram::LinearVariogram(double nugget, double slope)
    : nugget_(nugget), slope_(slope) {
  check_nonneg(nugget, "nugget");
  check_nonneg(slope, "slope");
}

double LinearVariogram::gamma(double d) const {
  check_distance(d);
  // γ(0) = 0 by definition; the nugget applies only to d > 0.
  return d == 0.0 ? 0.0 : nugget_ + slope_ * d;  // ace-lint: allow(float-equality)
}

std::string LinearVariogram::describe() const {
  std::ostringstream ss;
  ss << "linear(nugget=" << nugget_ << ", slope=" << slope_ << ")";
  return ss.str();
}

std::unique_ptr<VariogramModel> LinearVariogram::clone() const {
  return std::make_unique<LinearVariogram>(*this);
}

// ------------------------------------------------------------- spherical
SphericalVariogram::SphericalVariogram(double nugget, double sill,
                                       double range)
    : nugget_(nugget), sill_(sill), range_(range) {
  check_nonneg(nugget, "nugget");
  check_nonneg(sill, "sill");
  check_pos(range, "range");
}

double SphericalVariogram::gamma(double d) const {
  check_distance(d);
  if (d == 0.0) return 0.0;  // ace-lint: allow(float-equality)
  const double h = d / range_;
  if (h >= 1.0) return nugget_ + sill_;
  return nugget_ + sill_ * (1.5 * h - 0.5 * h * h * h);
}

std::string SphericalVariogram::describe() const {
  std::ostringstream ss;
  ss << "spherical(nugget=" << nugget_ << ", sill=" << sill_
     << ", range=" << range_ << ")";
  return ss.str();
}

std::unique_ptr<VariogramModel> SphericalVariogram::clone() const {
  return std::make_unique<SphericalVariogram>(*this);
}

// ----------------------------------------------------------- exponential
ExponentialVariogram::ExponentialVariogram(double nugget, double sill,
                                           double range)
    : nugget_(nugget), sill_(sill), range_(range) {
  check_nonneg(nugget, "nugget");
  check_nonneg(sill, "sill");
  check_pos(range, "range");
}

double ExponentialVariogram::gamma(double d) const {
  check_distance(d);
  if (d == 0.0) return 0.0;  // ace-lint: allow(float-equality)
  return nugget_ + sill_ * (1.0 - std::exp(-3.0 * d / range_));
}

std::string ExponentialVariogram::describe() const {
  std::ostringstream ss;
  ss << "exponential(nugget=" << nugget_ << ", sill=" << sill_
     << ", range=" << range_ << ")";
  return ss.str();
}

std::unique_ptr<VariogramModel> ExponentialVariogram::clone() const {
  return std::make_unique<ExponentialVariogram>(*this);
}

// -------------------------------------------------------------- gaussian
GaussianVariogram::GaussianVariogram(double nugget, double sill, double range)
    : nugget_(nugget), sill_(sill), range_(range) {
  check_nonneg(nugget, "nugget");
  check_nonneg(sill, "sill");
  check_pos(range, "range");
}

double GaussianVariogram::gamma(double d) const {
  check_distance(d);
  if (d == 0.0) return 0.0;  // ace-lint: allow(float-equality)
  const double h = d / range_;
  return nugget_ + sill_ * (1.0 - std::exp(-3.0 * h * h));
}

std::string GaussianVariogram::describe() const {
  std::ostringstream ss;
  ss << "gaussian(nugget=" << nugget_ << ", sill=" << sill_
     << ", range=" << range_ << ")";
  return ss.str();
}

std::unique_ptr<VariogramModel> GaussianVariogram::clone() const {
  return std::make_unique<GaussianVariogram>(*this);
}

// ----------------------------------------------------------------- power
PowerVariogram::PowerVariogram(double nugget, double scale, double exponent)
    : nugget_(nugget), scale_(scale), exponent_(exponent) {
  check_nonneg(nugget, "nugget");
  check_nonneg(scale, "scale");
  ACE_REQUIRE(exponent > 0.0 && exponent < 2.0,
              "PowerVariogram: exponent must be in (0, 2) for a valid "
              "(conditionally negative definite) variogram");
}

double PowerVariogram::gamma(double d) const {
  check_distance(d);
  if (d == 0.0) return 0.0;  // ace-lint: allow(float-equality)
  return nugget_ + scale_ * std::pow(d, exponent_);
}

std::string PowerVariogram::describe() const {
  std::ostringstream ss;
  ss << "power(nugget=" << nugget_ << ", scale=" << scale_
     << ", exponent=" << exponent_ << ")";
  return ss.str();
}

std::unique_ptr<VariogramModel> PowerVariogram::clone() const {
  return std::make_unique<PowerVariogram>(*this);
}

}  // namespace ace::kriging
