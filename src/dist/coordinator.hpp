// Crash-tolerant coordinator: shards one batch of guarded simulations
// across worker transports and merges the results deterministically.
//
// The coordinator is a dse::BatchSimulator, so it plugs into
// KrigingPolicy::evaluate_batch exactly where PooledBatchSimulator does.
// The policy's partition and index-ordered fold are untouched; this class
// only has to honour the backend contract — result[i] is the GuardedCall
// for configs[i], with the same classification and accounting that
// util::call_with_retry would produce in-process. Everything below is in
// service of keeping that contract under arbitrary worker failure:
//
//  * Lease-based assignment. Every dispatch creates a lease with a
//    heartbeat deadline. An expired lease marks the worker as a straggler
//    and makes the task *stealable*: it is re-dispatched to another
//    worker while the original lease stays open, and whichever result
//    arrives first wins. First-wins is safe because a worker's reply is a
//    pure function of (config, retry options, task key) — duplicates are
//    bit-identical by construction.
//  * Bounded re-dispatch with deterministic backoff. A task is shipped at
//    most `max_dispatches` times (per-task counter that survives worker
//    respawn); the delay before re-dispatch k derives from
//    util::backoff_delay_ms(·, task key, k) — a pure function, so the
//    schedule does not depend on thread timing.
//  * The decision-identity invariant: a transport failure NEVER produces
//    a task fault. When the dispatch budget is exhausted, or no healthy
//    worker remains and the respawn budget is spent, the task runs on the
//    coordinator's own local simulator — same guarded call, same key —
//    so the merged outcome is indistinguishable from a single-process
//    run. Worker *faults* (the simulator itself threw / went non-finite),
//    by contrast, are real results: they merge as-is and quarantine.
//  * Per-config fault quarantine. A config whose simulation faulted
//    terminally is never re-shipped — later requests replay the recorded
//    outcome. The map outlives batches and re-dispatch, bounding the
//    damage of a persistently faulting config to one simulation.
//  * Respawn budget + graceful degradation. Dead workers are respawned
//    through the TransportFactory until the budget runs out; after that
//    the coordinator degrades to all-local evaluation (degraded() turns
//    true) instead of failing the run.
//
// Threading: one reader thread per worker feeds a single event queue; the
// coordinator thread owns every other piece of state, so the merge order
// is decided in exactly one place. The public API is externally
// synchronized (the policy calls simulate_many under its own mutex).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dist/transport.hpp"
#include "dse/batch_sim.hpp"
#include "dse/fault.hpp"
#include "util/retry.hpp"

namespace ace::dist {

struct DistOptions {
  std::size_t workers = 4;
  std::size_t inflight_per_worker = 2;  ///< Pipelining depth per worker.
  std::chrono::milliseconds lease_ms{1000};      ///< Heartbeat deadline.
  std::chrono::milliseconds handshake_ms{5000};  ///< HELLO->READY budget.
  std::size_t max_dispatches = 3;   ///< Transport attempts before local run.
  std::size_t respawn_budget = 8;   ///< Worker respawns across the run.
  std::size_t strike_limit = 3;     ///< Expired leases before a recycle.
  double redispatch_backoff_ms = 0.0;  ///< Base delay before re-dispatch.
  util::RetryOptions retry;  ///< Shipped to workers in HELLO; must match the
                             ///< policy's retry options or stats diverge.
};

/// Counters for the bench and for post-mortems. All transport-level; task
/// outcomes themselves merge into the policy's PolicyStats as usual.
struct DistStats {
  std::size_t tasks = 0;
  std::size_t dispatches = 0;
  std::size_t redispatches = 0;
  std::size_t steals = 0;            ///< Re-dispatches past a live straggler.
  std::size_t lease_expiries = 0;
  std::size_t worker_deaths = 0;
  std::size_t respawns = 0;
  std::size_t spawn_failures = 0;
  std::size_t corrupt_frames = 0;
  std::size_t truncated_frames = 0;
  std::size_t worker_errors = 0;     ///< ERR frames (poisoned worker).
  std::size_t duplicate_results = 0; ///< Steal raced the original; dropped.
  std::size_t stale_results = 0;     ///< Result for a lease no longer open.
  std::size_t local_fallbacks = 0;   ///< Tasks that exhausted the wire.
  std::size_t quarantine_hits = 0;   ///< Replayed recorded fault outcomes.
  std::size_t degraded_batches = 0;
  std::map<dse::FaultCode, std::size_t> redispatch_reasons;
};

class Coordinator final : public dse::BatchSimulator {
 public:
  using TransportFactory = std::function<std::unique_ptr<Transport>()>;

  /// `local` is the canonical simulator — the SAME function the workers
  /// run — used for fallback and degraded evaluation so a local result is
  /// bit-identical to a worker result.
  Coordinator(TransportFactory factory, dse::SimulatorFn local,
              DistOptions options);
  ~Coordinator() override;

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  std::vector<util::GuardedCall> simulate_many(
      const std::vector<dse::Config>& configs) override;

  const DistStats& stats() const { return stats_; }
  bool degraded() const { return degraded_; }
  std::size_t healthy_workers() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Event {
    std::size_t slot = 0;
    std::uint64_t incarnation = 0;
    bool eof = false;
    std::string line;
  };

  /// MPSC event queue: reader threads in, coordinator thread out.
  class EventQueue {
   public:
    void push(Event event);
    bool pop(Event& event, Clock::time_point deadline);

   private:
    util::Mutex mutex_{util::lock_order::Rank::kEventQueue,
                       "dist.event_queue"};
    std::condition_variable cv_;
    std::deque<Event> events_ ACE_GUARDED_BY(mutex_);
  };

  struct Slot {
    std::unique_ptr<Transport> transport;
    std::thread reader;
    std::uint64_t incarnation = 0;
    bool alive = false;
    bool ready = false;
    std::size_t strikes = 0;
    std::vector<std::uint64_t> leases;  ///< Open lease ids on this worker.
    Clock::time_point handshake_deadline{};
    bool ever_spawned = false;
  };

  struct Task {
    dse::Config config;
    std::uint64_t key = 0;  ///< ConfigHash — retry jitter + backoff key.
    bool done = false;
    util::GuardedCall result;
    std::size_t dispatches = 0;
    std::size_t open_leases = 0;
    Clock::time_point earliest_dispatch{};  ///< Backoff gate.
  };

  struct Lease {
    std::size_t task = 0;
    std::size_t slot = 0;
    std::uint64_t incarnation = 0;
    Clock::time_point deadline{};
    bool expired = false;
  };

  void ensure_workers(Clock::time_point now);
  void spawn_slot(std::size_t index, Clock::time_point now);
  void mark_dead(std::size_t index, dse::FaultCode reason,
                 std::vector<Task>& tasks);
  void recycle(std::size_t index, dse::FaultCode reason,
               std::vector<Task>& tasks, Clock::time_point now);
  void release_lease(std::uint64_t id, std::vector<Task>& tasks,
                     dse::FaultCode reason, Clock::time_point now);
  void dispatch_ready(std::vector<Task>& tasks, Clock::time_point now);
  void handle_event(const Event& event, std::vector<Task>& tasks,
                    Clock::time_point now);
  void expire_deadlines(std::vector<Task>& tasks, Clock::time_point now);
  void run_local(Task& task);
  void finish_task(Task& task, const util::GuardedCall& call);
  Clock::time_point next_deadline(const std::vector<Task>& tasks,
                                  Clock::time_point now) const;
  bool any_usable_worker() const;
  bool can_spawn() const;

  TransportFactory factory_;
  dse::SimulatorFn local_;
  DistOptions options_;
  std::vector<Slot> slots_;
  EventQueue events_;
  std::unordered_map<std::uint64_t, Lease> open_leases_;
  std::unordered_map<dse::Config, util::GuardedCall, dse::ConfigHash>
      quarantine_;
  std::uint64_t next_lease_id_ = 1;  ///< Monotonic across batches.
  std::size_t pending_ = 0;          ///< Undone tasks in the current batch.
  bool degraded_ = false;
  DistStats stats_;
};

/// Convenience: build the default chaos-free distributed backend over
/// spawned `ace_worker` subprocesses.
std::unique_ptr<Coordinator> make_subprocess_coordinator(
    const std::string& worker_binary, const std::string& kernel,
    dse::SimulatorFn local, const DistOptions& options);

}  // namespace ace::dist
