#include "dist/chaos.hpp"

#include <algorithm>
#include <thread>

namespace ace::dist {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kSendSalt = 0x5eed0001u;
constexpr std::uint64_t kRecvSalt = 0x5eed0002u;

/// Map 64 random bits to [0, 1).
double unit(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

std::uint64_t FaultInjectingTransport::draw(std::uint64_t side_salt,
                                            std::uint64_t counter) const {
  return splitmix64(options_.seed ^ (side_salt * 0x9e3779b97f4a7c15ull) ^
                    counter);
}

bool FaultInjectingTransport::roll(std::uint64_t side_salt,
                                   std::uint64_t counter, double p,
                                   unsigned lane) const {
  if (p <= 0.0) return false;
  // Each failure mode draws from its own lane so enabling one mode never
  // shifts another mode's decisions for the same seed.
  return unit(draw(side_salt ^ (0x1000ull + lane), counter)) < p;
}

void FaultInjectingTransport::corrupt(std::string& line,
                                      std::uint64_t entropy) const {
  if (line.empty()) {
    line.push_back('?');
    return;
  }
  switch (entropy % 3) {
    case 0:  // Truncate: the classic torn write.
      line.resize(line.size() / 2);
      break;
    case 1: {  // Flip one byte somewhere in the payload.
      const std::size_t at = (entropy >> 8) % line.size();
      line[at] = static_cast<char>('!' + ((line[at] + 13) % 64));
      break;
    }
    default:  // Replace wholesale with junk that still looks line-ish.
      // Built with clear+append: assigning a literal trips a GCC 12
      // -Wrestrict false positive inside libstdc++ under -O2 -Werror.
      line.clear();
      line.append("RESULT 999999 bogus payload from the void");
      break;
  }
}

bool FaultInjectingTransport::send_line(const std::string& line) {
  const std::uint64_t event = send_events_++;
  if (roll(kSendSalt, event, options_.kill_on_send, 0)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    inner_->shutdown();  // The frame never arrives.
    return false;
  }
  return inner_->send_line(line);
}

Transport::Recv FaultInjectingTransport::recv_line(
    std::string& line, std::chrono::milliseconds timeout) {
  const auto now = std::chrono::steady_clock::now();
  if (held_) {
    // A stalled reply is released only once its hold expires; until then
    // the transport looks silent (kTimeout), exactly like a straggler.
    if (now < release_) {
      std::this_thread::sleep_for(
          std::min(timeout, std::chrono::duration_cast<std::chrono::milliseconds>(
                                release_ - now)));
      return Recv::kTimeout;
    }
    line = std::move(*held_);
    held_.reset();
    return Recv::kLine;
  }

  const Recv got = inner_->recv_line(line, timeout);
  if (got != Recv::kLine) return got;

  const std::uint64_t event = recv_events_++;
  if (roll(kRecvSalt, event, options_.kill_on_recv, 1)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    inner_->shutdown();  // The worker died right after replying...
    return Recv::kEof;   // ...and its reply died with it.
  }
  if (roll(kRecvSalt, event, options_.garbage, 2)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    corrupt(line, draw(kRecvSalt ^ 0x6a5bull, event));
    return Recv::kLine;
  }
  if (roll(kRecvSalt, event, options_.stall, 3)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    held_ = std::move(line);
    release_ = now + options_.stall_hold;
    return Recv::kTimeout;
  }
  return Recv::kLine;
}

std::size_t FaultInjectingTransport::injected_faults() const {
  return injected_.load(std::memory_order_relaxed);
}

}  // namespace ace::dist
