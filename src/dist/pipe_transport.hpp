// Subprocess worker transport: frames over stdin/stdout pipes.
//
// Wraps util::Subprocess with a receive buffer that reassembles
// newline-delimited frames from arbitrary read chunks. A child killed
// mid-frame leaves a partial tail in the buffer; recv_line() never
// surfaces it as a line — it reports kEof and remembers the truncation
// (`saw_truncated_tail()`), which the coordinator counts as a
// kTruncatedPayload event.
//
// Threading: send_line() (coordinator thread) writes the stdin fd,
// recv_line() (reader thread) reads the stdout fd — distinct fds, no
// shared state, safe concurrently. shutdown() only signals (SIGKILL) and
// never closes fds, so it is safe to race a blocked recv_line: the child
// dying flips the pipe to EOF. Reaping and fd close happen in the
// destructor, which the coordinator runs only after joining the reader.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dist/transport.hpp"
#include "util/subprocess.hpp"

namespace ace::dist {

class PipeTransport final : public Transport {
 public:
  /// Spawn `argv` as a worker. Throws std::runtime_error when the spawn
  /// itself fails (callers map that to a dead slot, not a crash).
  static std::unique_ptr<PipeTransport> spawn(
      const std::vector<std::string>& argv);

  explicit PipeTransport(util::Subprocess child);
  ~PipeTransport() override;

  bool send_line(const std::string& line) override;
  Recv recv_line(std::string& line, std::chrono::milliseconds timeout) override;
  void shutdown() override;
  bool alive() const override;

  /// True when the stream ended inside an unterminated frame.
  bool saw_truncated_tail() const;

 private:
  util::Subprocess child_;
  std::string buffer_;          // Reader-thread only.
  bool truncated_tail_ = false; // Written by reader, read after join.
  mutable util::Mutex state_mutex_{
      util::lock_order::Rank::kTransportLifecycle, "dist.pipe"};
  bool dead_ ACE_GUARDED_BY(state_mutex_) = false;
};

}  // namespace ace::dist
