#include "dist/protocol.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "dse/fault.hpp"

namespace ace::dist {
namespace {

using dse::FaultCode;
using dse::PayloadError;

// Hexfloat round-trip, shared with the checkpoint format: "%a" prints the
// exact bit pattern (including inf/nan), strtod restores it.
std::string hex_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", v);
  return buffer;
}

[[noreturn]] void corrupt(const std::string& what) {
  throw PayloadError(FaultCode::kCorruptPayload, "wire: " + what);
}

/// Whitespace-token reader over one payload line.
class Tokens {
 public:
  explicit Tokens(const std::string& payload) : in_(payload) {}

  std::string next(const char* what) {
    std::string token;
    if (!(in_ >> token)) corrupt(std::string("missing ") + what);
    return token;
  }

  std::uint64_t integer(const char* what) {
    const std::string token = next(what);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0')
      corrupt(std::string("bad integer for ") + what + ": " + token);
    return static_cast<std::uint64_t>(v);
  }

  int signed_int(const char* what) {
    const std::string token = next(what);
    char* end = nullptr;
    const long v = std::strtol(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0')
      corrupt(std::string("bad integer for ") + what + ": " + token);
    return static_cast<int>(v);
  }

  double real(const char* what) {
    const std::string token = next(what);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0')
      corrupt(std::string("bad real for ") + what + ": " + token);
    return v;
  }

  /// Everything after the tokens consumed so far, without the leading space.
  std::string rest() {
    std::string tail;
    std::getline(in_, tail);
    if (!tail.empty() && tail.front() == ' ') tail.erase(tail.begin());
    return tail;
  }

  void done(const char* verb) {
    std::string extra;
    if (in_ >> extra)
      corrupt(std::string("trailing token after ") + verb + ": " + extra);
  }

 private:
  std::istringstream in_;
};

}  // namespace

std::uint64_t fnv1a64(const std::string& payload) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char ch : payload) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string encode_frame(const std::string& payload) {
  char trailer[32];
  std::snprintf(trailer, sizeof(trailer), " ~%016llx",
                static_cast<unsigned long long>(fnv1a64(payload)));
  return payload + trailer;
}

std::string decode_frame(const std::string& line) {
  // Trailer = " ~" + exactly 16 hex digits at the very end of the line.
  constexpr std::size_t kTrailer = 2 + 16;
  const std::size_t mark = line.rfind(" ~");
  if (mark == std::string::npos || line.size() - mark != kTrailer)
    throw PayloadError(FaultCode::kTruncatedPayload,
                       "wire: frame has no checksum trailer (cut off?): " +
                           line.substr(0, 80));
  std::uint64_t declared = 0;
  for (std::size_t i = mark + 2; i < line.size(); ++i) {
    const char ch = line[i];
    int digit;
    if (ch >= '0' && ch <= '9')
      digit = ch - '0';
    else if (ch >= 'a' && ch <= 'f')
      digit = 10 + (ch - 'a');
    else
      throw PayloadError(FaultCode::kCorruptPayload,
                         "wire: non-hex checksum digit");
    declared = (declared << 4) | static_cast<std::uint64_t>(digit);
  }
  std::string payload = line.substr(0, mark);
  if (fnv1a64(payload) != declared)
    throw PayloadError(FaultCode::kCorruptPayload,
                       "wire: checksum mismatch on: " + payload.substr(0, 80));
  return payload;
}

std::string encode_hello(const util::RetryOptions& retry) {
  std::string payload = "HELLO ";
  payload += std::to_string(kProtocolVersion);
  payload += ' ';
  payload += std::to_string(retry.max_attempts);
  payload += ' ';
  payload += hex_double(retry.base_backoff_ms);
  payload += ' ';
  payload += hex_double(retry.backoff_multiplier);
  payload += ' ';
  payload += hex_double(retry.max_backoff_ms);
  payload += ' ';
  payload += hex_double(retry.jitter_fraction);
  payload += ' ';
  payload += std::to_string(retry.jitter_seed);
  payload += ' ';
  payload += hex_double(retry.deadline_ms);
  return encode_frame(payload);
}

std::string encode_ready() {
  return encode_frame("READY " + std::to_string(kProtocolVersion));
}

std::string encode_task(std::uint64_t id, const dse::Config& config) {
  std::string payload = "TASK ";
  payload += std::to_string(id);
  payload += ' ';
  payload += std::to_string(config.size());
  for (const int coordinate : config) {
    payload += ' ';
    payload += std::to_string(coordinate);
  }
  return encode_frame(payload);
}

std::string encode_outcome(std::uint64_t id, const util::GuardedCall& call) {
  std::string payload = "OUT ";
  payload += std::to_string(id);
  payload += ' ';
  payload += std::to_string(static_cast<int>(call.fault));
  payload += ' ';
  payload += std::to_string(call.attempts);
  payload += ' ';
  payload += std::to_string(call.faulted_attempts);
  payload += ' ';
  payload += std::to_string(call.timeouts);
  payload += ' ';
  payload += hex_double(call.value);
  if (!call.message.empty()) {
    payload += ' ';
    // The message rides as the tail of the line; newlines would break the
    // framing, so flatten them.
    std::string flat = call.message;
    for (char& ch : flat)
      if (ch == '\n' || ch == '\r') ch = ' ';
    payload += flat;
  }
  return encode_frame(payload);
}

std::string encode_ping(std::uint64_t nonce) {
  return encode_frame("PING " + std::to_string(nonce));
}

std::string encode_pong(std::uint64_t nonce) {
  return encode_frame("PONG " + std::to_string(nonce));
}

std::string encode_quit() { return encode_frame("QUIT"); }

std::string encode_err(const std::string& detail) {
  std::string flat = detail;
  for (char& ch : flat)
    if (ch == '\n' || ch == '\r') ch = ' ';
  return encode_frame("ERR " + flat);
}

WireMessage parse_message(const std::string& payload) {
  Tokens tokens(payload);
  const std::string verb = tokens.next("verb");
  WireMessage msg;
  if (verb == "HELLO") {
    msg.type = MsgType::kHello;
    const std::uint64_t version = tokens.integer("protocol version");
    if (version != static_cast<std::uint64_t>(kProtocolVersion))
      corrupt("protocol version mismatch: " + std::to_string(version));
    msg.retry.max_attempts =
        static_cast<std::size_t>(tokens.integer("max_attempts"));
    msg.retry.base_backoff_ms = tokens.real("base_backoff_ms");
    msg.retry.backoff_multiplier = tokens.real("backoff_multiplier");
    msg.retry.max_backoff_ms = tokens.real("max_backoff_ms");
    msg.retry.jitter_fraction = tokens.real("jitter_fraction");
    msg.retry.jitter_seed = tokens.integer("jitter_seed");
    msg.retry.deadline_ms = tokens.real("deadline_ms");
    tokens.done("HELLO");
  } else if (verb == "READY") {
    msg.type = MsgType::kReady;
    const std::uint64_t version = tokens.integer("protocol version");
    if (version != static_cast<std::uint64_t>(kProtocolVersion))
      corrupt("protocol version mismatch: " + std::to_string(version));
    tokens.done("READY");
  } else if (verb == "TASK") {
    msg.type = MsgType::kTask;
    msg.id = tokens.integer("task id");
    const std::uint64_t dims = tokens.integer("dimension count");
    if (dims > 4096) corrupt("implausible task dimension count");
    msg.config.reserve(static_cast<std::size_t>(dims));
    for (std::uint64_t i = 0; i < dims; ++i)
      msg.config.push_back(tokens.signed_int("coordinate"));
    tokens.done("TASK");
  } else if (verb == "OUT") {
    msg.type = MsgType::kOutcome;
    msg.id = tokens.integer("task id");
    const int fault = tokens.signed_int("fault code");
    if (fault < 0 ||
        fault > static_cast<int>(util::CallFault::kContractViolation))
      corrupt("fault code out of range: " + std::to_string(fault));
    msg.call.fault = static_cast<util::CallFault>(fault);
    msg.call.attempts = static_cast<std::size_t>(tokens.integer("attempts"));
    msg.call.faulted_attempts =
        static_cast<std::size_t>(tokens.integer("faulted_attempts"));
    msg.call.timeouts = static_cast<std::size_t>(tokens.integer("timeouts"));
    msg.call.value = tokens.real("value");
    msg.call.message = tokens.rest();
  } else if (verb == "PING") {
    msg.type = MsgType::kPing;
    msg.id = tokens.integer("nonce");
    tokens.done("PING");
  } else if (verb == "PONG") {
    msg.type = MsgType::kPong;
    msg.id = tokens.integer("nonce");
    tokens.done("PONG");
  } else if (verb == "QUIT") {
    msg.type = MsgType::kQuit;
    tokens.done("QUIT");
  } else if (verb == "ERR") {
    msg.type = MsgType::kErr;
    msg.text = tokens.rest();
  } else {
    corrupt("unknown verb: " + verb);
  }
  return msg;
}

}  // namespace ace::dist
