#include "dist/worker.hpp"

#include <chrono>

#include "dist/protocol.hpp"
#include "dse/fault.hpp"
#include "util/retry.hpp"

namespace ace::dist {

bool StreamChannel::read_line(std::string& line) {
  return static_cast<bool>(std::getline(in_, line));
}

bool StreamChannel::write_line(const std::string& line) {
  out_ << line << '\n';
  out_.flush();
  return static_cast<bool>(out_);
}

bool QueueChannel::read_line(std::string& line) {
  for (;;) {
    switch (in_.pop(line, std::chrono::milliseconds(60'000))) {
      case Transport::Recv::kLine:
        return true;
      case Transport::Recv::kEof:
        return false;
      case Transport::Recv::kTimeout:
        continue;  // Workers have no deadline of their own; keep waiting.
    }
  }
}

bool QueueChannel::write_line(const std::string& line) {
  return out_.push(line);
}

int serve(WorkerChannel& channel, const dse::SimulatorFn& simulate) {
  std::string line;

  // Handshake: the very first frame must be HELLO carrying the retry
  // policy; nothing is simulated before it.
  if (!channel.read_line(line)) return 1;
  util::RetryOptions retry;
  try {
    const WireMessage hello = parse_message(decode_frame(line));
    if (hello.type != MsgType::kHello) {
      (void)channel.write_line(encode_err("expected HELLO"));
      return 1;
    }
    retry = hello.retry;
  } catch (const dse::PayloadError& error) {
    (void)channel.write_line(encode_err(error.what()));
    return 1;
  }
  if (!channel.write_line(encode_ready())) return 0;

  while (channel.read_line(line)) {
    WireMessage msg;
    try {
      msg = parse_message(decode_frame(line));
    } catch (const dse::PayloadError& error) {
      // A line that fails its checksum means the stream itself cannot be
      // trusted (a partial write shifts every following frame). Report and
      // exit; the coordinator respawns a clean worker.
      (void)channel.write_line(encode_err(error.what()));
      return 2;
    }
    switch (msg.type) {
      case MsgType::kTask: {
        const dse::Config config = msg.config;
        const util::GuardedCall call = util::call_with_retry(
            retry, dse::ConfigHash{}(config),
            [&simulate, &config] { return simulate(config); });
        if (!channel.write_line(encode_outcome(msg.id, call))) return 0;
        break;
      }
      case MsgType::kPing:
        if (!channel.write_line(encode_pong(msg.id))) return 0;
        break;
      case MsgType::kQuit:
        return 0;
      default:
        (void)channel.write_line(
            encode_err("unexpected message in serve loop"));
        return 2;
    }
  }
  return 0;  // Coordinator hung up; nothing left to do.
}

}  // namespace ace::dist
