// Chaos harness: a Transport decorator that injects failures at protocol
// points, driven entirely by a seed.
//
// Each side of the transport keeps its own event counter (the coordinator
// thread sends, the reader thread receives; sharing one counter would make
// injection order depend on the thread schedule). Event k on side s draws
// splitmix64(seed ^ side_salt ^ k), so a given (seed, options) pair
// injects exactly the same faults at exactly the same protocol points on
// every run — which is what lets bench/distributed_recovery assert
// bit-identical recovery rather than merely "it didn't crash".
//
// Failure modes:
//  * kill_on_send  — worker dies before the frame reaches it (the classic
//    "dispatched but never received" lease expiry);
//  * kill_on_recv  — worker dies right after producing a reply; the reply
//    is dropped with it (result computed but lost);
//  * garbage       — the reply is corrupted in flight (checksum must
//    catch it; the coordinator must treat the worker as poisoned);
//  * stall         — the reply is held past `stall` for `stall_hold`,
//    modelling a straggler that is alive but too slow (work stealing must
//    kick in; the late original must be merged or dropped cleanly).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "dist/transport.hpp"

namespace ace::dist {

struct ChaosOptions {
  std::uint64_t seed = 1;
  double kill_on_send = 0.0;  ///< P(kill worker instead of delivering send).
  double kill_on_recv = 0.0;  ///< P(kill worker and drop a received reply).
  double garbage = 0.0;       ///< P(corrupt a received reply in flight).
  double stall = 0.0;         ///< P(hold a received reply back).
  std::chrono::milliseconds stall_hold{100};  ///< How long a stall lasts.
};

class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner,
                          const ChaosOptions& options)
      : inner_(std::move(inner)), options_(options) {}

  bool send_line(const std::string& line) override;
  Recv recv_line(std::string& line, std::chrono::milliseconds timeout) override;
  void shutdown() override { inner_->shutdown(); }
  bool alive() const override { return inner_->alive(); }

  std::size_t injected_faults() const;  ///< Total events injected (any mode).

 private:
  std::uint64_t draw(std::uint64_t side_salt, std::uint64_t counter) const;
  bool roll(std::uint64_t side_salt, std::uint64_t counter, double p,
            unsigned lane) const;
  void corrupt(std::string& line, std::uint64_t entropy) const;

  std::unique_ptr<Transport> inner_;
  ChaosOptions options_;
  std::uint64_t send_events_ = 0;  // Coordinator-thread only.
  std::uint64_t recv_events_ = 0;  // Reader-thread only.
  std::optional<std::string> held_;  // Reader-thread only (stall state).
  std::chrono::steady_clock::time_point release_{};
  std::atomic<std::size_t> injected_{0};
};

}  // namespace ace::dist
