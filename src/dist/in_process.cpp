#include "dist/in_process.hpp"

#include <utility>

#include "dist/worker.hpp"

namespace ace::dist {

InProcessTransport::InProcessTransport(dse::SimulatorFn simulate) {
  util::LockGuard lock(lifecycle_mutex_);
  worker_ = std::thread([this, simulate = std::move(simulate)] {
    QueueChannel channel(to_worker_, from_worker_);
    (void)serve(channel, simulate);
    // Mirror a process exit: once serve returns, the coordinator-facing
    // queue reports EOF instead of blocking forever.
    from_worker_.close();
  });
}

InProcessTransport::~InProcessTransport() { shutdown(); }

bool InProcessTransport::send_line(const std::string& line) {
  return to_worker_.push(line);
}

Transport::Recv InProcessTransport::recv_line(std::string& line,
                                              std::chrono::milliseconds timeout) {
  return from_worker_.pop(line, timeout);
}

void InProcessTransport::shutdown() {
  util::LockGuard lock(lifecycle_mutex_);
  if (dead_) return;
  dead_ = true;
  to_worker_.close();
  from_worker_.close();
  if (worker_.joinable()) worker_.join();
}

bool InProcessTransport::alive() const {
  util::LockGuard lock(lifecycle_mutex_);
  return !dead_;
}

}  // namespace ace::dist
