#include "dist/in_process.hpp"

#include <utility>

#include "dist/worker.hpp"

namespace ace::dist {

InProcessTransport::InProcessTransport(dse::SimulatorFn simulate) {
  util::LockGuard lock(lifecycle_mutex_);
  worker_ = std::thread([this, simulate = std::move(simulate)] {
    QueueChannel channel(to_worker_, from_worker_);
    (void)serve(channel, simulate);
    // Mirror a process exit: once serve returns, the coordinator-facing
    // queue reports EOF instead of blocking forever.
    from_worker_.close();
  });
}

InProcessTransport::~InProcessTransport() { shutdown(); }

bool InProcessTransport::send_line(const std::string& line) {
  return to_worker_.push(line);
}

Transport::Recv InProcessTransport::recv_line(std::string& line,
                                              std::chrono::milliseconds timeout) {
  return from_worker_.pop(line, timeout);
}

void InProcessTransport::shutdown() {
  util::UniqueLock lock(lifecycle_mutex_);
  // A concurrent shutdown is mid-join: wait for it rather than racing it,
  // so every caller still returns only once the worker is gone.
  while (joiner_active_) lock.wait(join_cv_);
  if (dead_) return;
  dead_ = true;
  to_worker_.close();
  from_worker_.close();
  std::thread worker = std::move(worker_);
  joiner_active_ = true;
  lock.unlock();
  // The join can block for as long as an in-flight simulation runs; doing
  // it under lifecycle_mutex_ would stall every alive()/send poller (and
  // trips the blocking-under-lock lint).
  if (worker.joinable()) worker.join();
  lock.lock();
  joiner_active_ = false;
  join_cv_.notify_all();
}

bool InProcessTransport::alive() const {
  util::LockGuard lock(lifecycle_mutex_);
  return !dead_;
}

}  // namespace ace::dist
