// Wire protocol of the coordinator/worker split.
//
// Line-oriented text frames over any byte channel (subprocess pipes, an
// in-process queue pair): one message per line, doubles encoded as C99
// hexfloats exactly like the ACE-CHECKPOINT format, so a value that
// crossed the wire is bit-identical to one computed in-process — the
// foundation of the distributed layer's decision-identity guarantee.
//
// Every frame carries an FNV-1a 64 checksum trailer (" ~<16 hex>"):
// a worker crash can truncate a line mid-write and chaos testing flips
// bytes on purpose, and a corrupted RESULT that still parsed would
// silently fork the optimizer's decision sequence. decode_frame() turns
// both failure classes into typed dse::PayloadError faults
// (kTruncatedPayload: no checksum trailer — the line was cut off;
// kCorruptPayload: trailer present but mismatched or unparseable).
//
// Messages (payload part, before the checksum trailer):
//   HELLO <7 retry fields>        coordinator -> worker, once, first line
//   READY <protocol version>      worker -> coordinator handshake reply
//   TASK <id> <dim> <c0> ... <c{dim-1}>
//   OUT <id> <fault> <attempts> <faulted> <timeouts> <value> [message...]
//   PING <nonce> / PONG <nonce>
//   QUIT                          coordinator -> worker, drain and exit
//   ERR <detail...>               worker -> coordinator: it received a
//                                 frame it could not honour (poisoned
//                                 stream); the coordinator recycles it
#pragma once

#include <cstdint>
#include <string>

#include "dse/config.hpp"
#include "util/retry.hpp"

namespace ace::dist {

constexpr int kProtocolVersion = 1;

/// FNV-1a 64-bit over the payload bytes — tiny, stateless, and plenty to
/// reject random corruption (the threat model is crashes and bit rot, not
/// an adversary).
std::uint64_t fnv1a64(const std::string& payload);

/// Append the checksum trailer: "<payload> ~<16-hex-digit fnv64>".
std::string encode_frame(const std::string& payload);

/// Validate and strip the trailer. Throws dse::PayloadError with
/// kTruncatedPayload when no trailer is present (line cut off mid-write)
/// and kCorruptPayload when the checksum does not match.
std::string decode_frame(const std::string& line);

enum class MsgType : unsigned char {
  kHello = 0,
  kReady,
  kTask,
  kOutcome,
  kPing,
  kPong,
  kQuit,
  kErr,
};

/// One parsed wire message; which fields are meaningful depends on `type`.
struct WireMessage {
  MsgType type = MsgType::kErr;
  std::uint64_t id = 0;         ///< Task id (kTask/kOutcome), nonce (ping).
  dse::Config config;           ///< kTask.
  util::RetryOptions retry;     ///< kHello.
  util::GuardedCall call;       ///< kOutcome (value/fault/attempt counters).
  std::string text;             ///< kErr detail.
};

std::string encode_hello(const util::RetryOptions& retry);
std::string encode_ready();
std::string encode_task(std::uint64_t id, const dse::Config& config);
std::string encode_outcome(std::uint64_t id, const util::GuardedCall& call);
std::string encode_ping(std::uint64_t nonce);
std::string encode_pong(std::uint64_t nonce);
std::string encode_quit();
std::string encode_err(const std::string& detail);

/// Parse a decoded payload. Throws dse::PayloadError(kCorruptPayload) on
/// an unknown verb, missing fields, or malformed numbers.
WireMessage parse_message(const std::string& payload);

}  // namespace ace::dist
