// Worker side of the protocol: the serve() loop and its byte channels.
//
// A worker is deliberately dumb — it owns no retry policy of its own (the
// coordinator ships RetryOptions in HELLO, so fault classification is
// bit-identical to an in-process run), no queue, and no state beyond the
// handshake. All crash-tolerance logic lives in the coordinator; a worker
// that receives garbage reports ERR and exits, trusting the coordinator
// to respawn it.
//
// The same serve() runs in two habitats:
//  * tools/ace_worker.cpp — a real subprocess over stdin/stdout
//    (StreamChannel), killed with SIGKILL by the chaos sweeps;
//  * InProcessTransport (in_process.hpp) — a thread over LineQueues
//    (QueueChannel), "killed" by closing the queues.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "dist/transport.hpp"
#include "dse/kriging_policy.hpp"  // SimulatorFn

namespace ace::dist {

/// Blocking line channel as seen from the worker.
class WorkerChannel {
 public:
  virtual ~WorkerChannel() = default;
  /// Blocking read of one frame; false on EOF (coordinator gone).
  virtual bool read_line(std::string& line) = 0;
  /// False when the peer is gone.
  virtual bool write_line(const std::string& line) = 0;
};

/// stdin/stdout habitat (the ace_worker binary). Flushes every line —
/// a buffered frame inside a SIGKILLed worker would otherwise vanish
/// *after* the coordinator could have observed it.
class StreamChannel final : public WorkerChannel {
 public:
  StreamChannel(std::istream& in, std::ostream& out) : in_(in), out_(out) {}
  bool read_line(std::string& line) override;
  bool write_line(const std::string& line) override;

 private:
  std::istream& in_;
  std::ostream& out_;
};

/// LineQueue habitat (InProcessTransport's worker thread).
class QueueChannel final : public WorkerChannel {
 public:
  QueueChannel(LineQueue& in, LineQueue& out) : in_(in), out_(out) {}
  bool read_line(std::string& line) override;
  bool write_line(const std::string& line) override;

 private:
  LineQueue& in_;
  LineQueue& out_;
};

/// Run the worker protocol until QUIT or EOF. Returns a process exit code:
/// 0 clean (QUIT / coordinator hung up), 1 handshake failure, 2 poisoned
/// stream (a frame failed to decode — the worker cannot resynchronise a
/// line it cannot trust, so it reports ERR and exits).
int serve(WorkerChannel& channel, const dse::SimulatorFn& simulate);

}  // namespace ace::dist
