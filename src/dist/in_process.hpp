// In-process worker transport: the real serve() loop on a thread,
// connected by two LineQueues.
//
// This is the chaos harness's habitat of choice. Killing a subprocess is
// only *mostly* deterministic (signal delivery races the pipe flush);
// closing a queue pair is exact — frames pushed before the close are
// still delivered, frames after it are dropped, precisely the semantics
// of a SIGKILL racing buffered pipe bytes, but reproducible bit-for-bit
// from a seed. The coordinator cannot tell the difference, which is the
// point: every recovery path exercised here is the same code that runs
// against real subprocess workers.
#pragma once

#include <condition_variable>
#include <thread>

#include "dist/transport.hpp"
#include "dse/kriging_policy.hpp"  // SimulatorFn

namespace ace::dist {

class InProcessTransport final : public Transport {
 public:
  /// Starts the worker thread immediately; it blocks waiting for HELLO.
  explicit InProcessTransport(dse::SimulatorFn simulate);
  ~InProcessTransport() override;

  bool send_line(const std::string& line) override;
  Recv recv_line(std::string& line, std::chrono::milliseconds timeout) override;

  /// SIGKILL analogue: close both queues (the serve loop reads EOF and
  /// unwinds) and join the worker thread. A simulation already in flight
  /// runs to completion but its result is dropped at the closed queue.
  void shutdown() override;

  bool alive() const override;

 private:
  LineQueue to_worker_;
  LineQueue from_worker_;
  /// Taken before the LineQueue locks (shutdown closes the queues while
  /// holding it); the worker join itself happens OUTSIDE this lock —
  /// joiner_active_/join_cv_ keep the "returns only once joined" contract.
  mutable util::Mutex lifecycle_mutex_{
      util::lock_order::Rank::kTransportLifecycle, "dist.in_process"};
  std::thread worker_ ACE_GUARDED_BY(lifecycle_mutex_);
  bool dead_ ACE_GUARDED_BY(lifecycle_mutex_) = false;
  /// True while a shutdown caller is joining the worker off-lock.
  bool joiner_active_ ACE_GUARDED_BY(lifecycle_mutex_) = false;
  std::condition_variable join_cv_;
};

}  // namespace ace::dist
