#include "dist/pipe_transport.hpp"

#include <algorithm>
#include <utility>

namespace ace::dist {

std::unique_ptr<PipeTransport> PipeTransport::spawn(
    const std::vector<std::string>& argv) {
  return std::make_unique<PipeTransport>(util::Subprocess::spawn(argv));
}

PipeTransport::PipeTransport(util::Subprocess child)
    : child_(std::move(child)) {}

PipeTransport::~PipeTransport() {
  shutdown();
  // Reap and close fds. Contract: the reader thread has been joined by
  // now, so no concurrent read_some() can touch the dying fds.
  (void)child_.wait();
}

bool PipeTransport::send_line(const std::string& line) {
  {
    util::LockGuard lock(state_mutex_);
    if (dead_) return false;
  }
  std::string framed = line;
  framed += '\n';
  return child_.write_all(framed.data(), framed.size());
}

Transport::Recv PipeTransport::recv_line(std::string& line,
                                         std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return Recv::kLine;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return Recv::kTimeout;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    char chunk[4096];
    std::size_t got = 0;
    switch (child_.read_some(chunk, sizeof(chunk),
                             std::max(remaining, std::chrono::milliseconds(1)),
                             &got)) {
      case util::ReadStatus::kData:
        buffer_.append(chunk, got);
        break;
      case util::ReadStatus::kEof:
        if (!buffer_.empty()) {
          // The child died mid-frame. Never deliver the fragment — a
          // partial RESULT that happened to parse would poison the merge.
          truncated_tail_ = true;
          buffer_.clear();
        }
        return Recv::kEof;
      case util::ReadStatus::kTimeout:
        return Recv::kTimeout;
    }
  }
}

void PipeTransport::shutdown() {
  util::LockGuard lock(state_mutex_);
  if (dead_) return;
  dead_ = true;
  // Signal only — fd teardown waits for the destructor so a concurrently
  // blocked recv_line() observes a clean EOF instead of a closed fd.
  child_.kill_hard();
}

bool PipeTransport::alive() const {
  util::LockGuard lock(state_mutex_);
  return !dead_;
}

bool PipeTransport::saw_truncated_tail() const { return truncated_tail_; }

}  // namespace ace::dist
