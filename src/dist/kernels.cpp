#include "dist/kernels.hpp"

#include <cmath>
#include <stdexcept>

namespace ace::dist {
namespace {

/// The weighted-sum lattice metric used across the benches: cheap, smooth,
/// and a pure function of w.
double lattice_lambda(const dse::Config& w) {
  double acc = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i)
    acc += (0.4 + 0.03 * static_cast<double>(i)) * static_cast<double>(w[i]);
  return acc;
}

/// ~100-200 µs of real arithmetic before returning the lattice metric —
/// heavy enough that shipping it to a worker can pay for the pipe
/// round-trip, which is what the overhead bench measures.
double busy_lattice_lambda(const dse::Config& w) {
  double acc = 0.0;
  for (int k = 0; k < 60000; ++k) {
    double x = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i)
      x += static_cast<double>(w[i]) * (1.0 + 0.05 * static_cast<double>(i));
    acc += std::sqrt(x + static_cast<double>(k));
  }
  // Fold the busywork in at a scale that cannot change any comparison but
  // keeps the compiler from eliminating the loop.
  return lattice_lambda(w) + acc * 1e-300;
}

/// Mildly nonlinear variant so kriging-rich runs have curvature to fit.
double curved_lambda(const dse::Config& w) {
  double acc = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double v = static_cast<double>(w[i]);
    acc += (1.0 + 0.07 * static_cast<double>(i)) * std::sqrt(std::abs(v) + 1.0);
  }
  return acc;
}

struct Kernel {
  const char* name;
  double (*fn)(const dse::Config&);
};

constexpr Kernel kKernels[] = {
    {"lattice", lattice_lambda},
    {"busy-lattice", busy_lattice_lambda},
    {"curved", curved_lambda},
};

}  // namespace

dse::SimulatorFn find_kernel(const std::string& name) {
  for (const Kernel& kernel : kKernels)
    if (name == kernel.name) return dse::SimulatorFn(kernel.fn);
  throw std::invalid_argument("unknown kernel: " + name);
}

std::vector<std::string> kernel_names() {
  std::vector<std::string> names;
  for (const Kernel& kernel : kKernels) names.emplace_back(kernel.name);
  return names;
}

}  // namespace ace::dist
