// Named simulator kernels shared by the worker binary and the benches.
//
// A subprocess worker cannot receive a std::function over a pipe; it
// receives a *name* (`ace_worker --kernel <name>`) and resolves it here.
// The coordinator's local fallback resolves the same name, which is what
// makes a local fallback result bit-identical to a worker result — both
// sides run literally the same function. Every kernel is a pure,
// deterministic function of the configuration (lint rules already ban
// wall-clock and unseeded RNG in library code, but purity across *process
// boundaries* is the property the distributed layer leans on).
#pragma once

#include <string>
#include <vector>

#include "dse/kriging_policy.hpp"  // SimulatorFn

namespace ace::dist {

/// Resolve a kernel by name. Throws std::invalid_argument for unknown
/// names (the worker binary turns that into a usage error at startup).
dse::SimulatorFn find_kernel(const std::string& name);

/// All registered kernel names, for --help output and tests.
std::vector<std::string> kernel_names();

}  // namespace ace::dist
