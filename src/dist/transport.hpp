// Byte-channel abstraction between the coordinator and one worker.
//
// A Transport carries whole frames (newline-delimited lines, produced by
// protocol.hpp) in both directions and models worker death explicitly:
// send_line() returning false and recv_line() returning kEof both mean
// "the peer is gone", which the coordinator treats as a routine,
// recoverable event — never an exception.
//
// Two implementations live in the library:
//  * InProcessTransport — runs the real worker serve() loop on a thread,
//    connected by a pair of line queues. shutdown() is the SIGKILL
//    analogue: both queues close, the loop sees EOF and unwinds. This is
//    what the chaos harness drives, because a killed thread-worker is
//    deterministic where a killed process is only mostly so.
//  * PipeTransport (pipe_transport.hpp) — a real subprocess over
//    stdin/stdout pipes via util::Subprocess.
// FaultInjectingTransport (chaos.hpp) decorates either with seeded
// failures.
//
// Threading contract: exactly one thread calls send_line() (the
// coordinator) and exactly one thread calls recv_line() (that worker's
// reader); shutdown() may be called from either, and also races worker
// death. alive() is safe from any thread.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <string>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ace::dist {

class Transport {
 public:
  enum class Recv : unsigned char {
    kLine = 0,  ///< A whole frame arrived.
    kEof,       ///< Peer is gone; no more frames will ever arrive.
    kTimeout,   ///< Deadline elapsed; the peer may still be alive.
  };

  virtual ~Transport() = default;

  /// Send one frame (no trailing newline). False = peer gone.
  virtual bool send_line(const std::string& line) = 0;

  /// Wait up to `timeout` for one frame.
  virtual Recv recv_line(std::string& line,
                         std::chrono::milliseconds timeout) = 0;

  /// Kill the peer and close the channel. Idempotent; safe to race with a
  /// blocked recv_line (which then reports kEof).
  virtual void shutdown() = 0;

  /// False once shutdown() ran or the peer was observed dead.
  virtual bool alive() const = 0;
};

/// Unbounded, close-aware MPSC queue of frames — the in-process stand-in
/// for one direction of a pipe.
class LineQueue {
 public:
  /// Returns false (dropping the line) once closed — like writing to a
  /// pipe whose reader died.
  bool push(std::string line);

  /// Wakes every blocked pop() with kEof once drained. Idempotent.
  void close();

  /// Lines already queued are still delivered after close() (a pipe's
  /// buffered bytes survive the writer); kEof only after the drain.
  Transport::Recv pop(std::string& line, std::chrono::milliseconds timeout);

 private:
  /// Innermost rank in the hierarchy: transports push/close queues while
  /// holding their lifecycle locks, and nothing is acquired under this.
  mutable util::Mutex mutex_{util::lock_order::Rank::kLineQueue,
                             "dist.line_queue"};
  std::condition_variable cv_;
  std::deque<std::string> lines_ ACE_GUARDED_BY(mutex_);
  bool closed_ ACE_GUARDED_BY(mutex_) = false;
};

}  // namespace ace::dist
