#include "dist/coordinator.hpp"

#include <algorithm>
#include <utility>

#include "dist/pipe_transport.hpp"
#include "dist/protocol.hpp"

namespace ace::dist {
namespace {

/// Reader threads poll their transport on this tick so a shutdown is
/// observed promptly even if the transport cannot interrupt a block.
constexpr std::chrono::milliseconds kReaderPollTick{250};

/// Upper bound on one event-loop sleep: the loop re-checks liveness at
/// least this often even with no deadline in sight.
constexpr std::chrono::milliseconds kMaxLoopWait{100};

}  // namespace

void Coordinator::EventQueue::push(Event event) {
  {
    util::LockGuard lock(mutex_);
    events_.push_back(std::move(event));
  }
  cv_.notify_one();
}

bool Coordinator::EventQueue::pop(Event& event, Clock::time_point deadline) {
  util::UniqueLock lock(mutex_);
  for (;;) {
    if (!events_.empty()) {
      event = std::move(events_.front());
      events_.pop_front();
      return true;
    }
    const auto now = Clock::now();
    if (now >= deadline) return false;
    (void)lock.wait_for(cv_, deadline - now);
  }
}

Coordinator::Coordinator(TransportFactory factory, dse::SimulatorFn local,
                         DistOptions options)
    : factory_(std::move(factory)),
      local_(std::move(local)),
      options_(options) {
  if (options_.inflight_per_worker == 0) options_.inflight_per_worker = 1;
  if (options_.max_dispatches == 0) options_.max_dispatches = 1;
  if (options_.strike_limit == 0) options_.strike_limit = 1;
  if (!factory_ || options_.workers == 0) degraded_ = true;
  slots_.resize(options_.workers);
}

Coordinator::~Coordinator() {
  for (Slot& slot : slots_) {
    if (slot.transport && slot.alive)
      (void)slot.transport->send_line(encode_quit());
    if (slot.transport) slot.transport->shutdown();
    if (slot.reader.joinable()) slot.reader.join();
    slot.transport.reset();
  }
}

std::size_t Coordinator::healthy_workers() const {
  std::size_t healthy = 0;
  for (const Slot& slot : slots_)
    if (slot.alive && slot.ready) ++healthy;
  return healthy;
}

bool Coordinator::can_spawn() const {
  return stats_.respawns < options_.respawn_budget;
}

bool Coordinator::any_usable_worker() const {
  if (!factory_) return false;
  for (const Slot& slot : slots_) {
    if (slot.alive) return true;
    if (!slot.ever_spawned || can_spawn()) return true;
  }
  return false;
}

void Coordinator::spawn_slot(std::size_t index, Clock::time_point now) {
  Slot& slot = slots_[index];
  // The previous incarnation's reader is joined by mark_dead(); destroying
  // the old transport here reaps a subprocess child.
  slot.transport.reset();
  ++slot.incarnation;
  slot.alive = false;
  slot.ready = false;
  slot.strikes = 0;
  slot.leases.clear();
  try {
    slot.transport = factory_();
  } catch (const std::exception&) {
    ++stats_.spawn_failures;
    slot.transport.reset();
    return;
  }
  if (!slot.transport ||
      !slot.transport->send_line(encode_hello(options_.retry))) {
    ++stats_.spawn_failures;
    if (slot.transport) slot.transport->shutdown();
    return;
  }
  slot.alive = true;
  slot.handshake_deadline = now + options_.handshake_ms;
  Transport* transport = slot.transport.get();
  const std::uint64_t incarnation = slot.incarnation;
  slot.reader = std::thread([this, transport, incarnation, index] {
    std::string line;
    for (;;) {
      switch (transport->recv_line(line, kReaderPollTick)) {
        case Transport::Recv::kLine:
          events_.push(Event{index, incarnation, false, std::move(line)});
          line.clear();
          break;
        case Transport::Recv::kEof:
          events_.push(Event{index, incarnation, true, {}});
          return;
        case Transport::Recv::kTimeout:
          break;
      }
    }
  });
}

void Coordinator::ensure_workers(Clock::time_point now) {
  if (!factory_) return;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.alive) continue;
    if (slot.ever_spawned) {
      // A respawn (as opposed to the initial spawn) draws on the budget,
      // which is what bounds re-dispatch churn under a persistent fault.
      if (!can_spawn()) continue;
      ++stats_.respawns;
    }
    slot.ever_spawned = true;
    spawn_slot(i, now);
  }
}

void Coordinator::release_lease(std::uint64_t id, std::vector<Task>& tasks,
                                dse::FaultCode reason, Clock::time_point now) {
  const auto it = open_leases_.find(id);
  if (it == open_leases_.end()) return;
  const Lease lease = it->second;
  open_leases_.erase(it);
  Task& task = tasks[lease.task];
  if (!lease.expired && task.open_leases > 0) --task.open_leases;
  if (task.done) return;
  ++stats_.redispatch_reasons[reason];
  if (options_.redispatch_backoff_ms > 0.0 && task.dispatches > 0) {
    util::RetryOptions backoff;
    backoff.base_backoff_ms = options_.redispatch_backoff_ms;
    backoff.jitter_seed = options_.retry.jitter_seed ^ 0xd15bull;
    const double delay_ms =
        util::backoff_delay_ms(backoff, task.key, task.dispatches - 1);
    task.earliest_dispatch =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(delay_ms));
  }
}

void Coordinator::mark_dead(std::size_t index, dse::FaultCode reason,
                            std::vector<Task>& tasks) {
  Slot& slot = slots_[index];
  if (!slot.alive) return;
  slot.alive = false;
  slot.ready = false;
  slot.transport->shutdown();
  if (slot.reader.joinable()) slot.reader.join();
  const auto now = Clock::now();
  const std::vector<std::uint64_t> leases = std::move(slot.leases);
  slot.leases.clear();
  for (const std::uint64_t id : leases) release_lease(id, tasks, reason, now);
}

void Coordinator::recycle(std::size_t index, dse::FaultCode reason,
                          std::vector<Task>& tasks, Clock::time_point now) {
  mark_dead(index, reason, tasks);
  if (can_spawn()) {
    ++stats_.respawns;
    spawn_slot(index, now);
  }
}

void Coordinator::finish_task(Task& task, const util::GuardedCall& call) {
  task.done = true;
  task.result = call;
  if (pending_ > 0) --pending_;
  // Terminal simulator faults quarantine by config: the outcome is real
  // (it merges into the policy as-is), but this config is never shipped
  // to a worker again — later batches replay the recorded call.
  if (!call.ok()) quarantine_[task.config] = call;
}

void Coordinator::run_local(Task& task) {
  ++stats_.local_fallbacks;
  const dse::Config& config = task.config;
  finish_task(task,
              util::call_with_retry(options_.retry, task.key,
                                    [this, &config] { return local_(config); }));
}

void Coordinator::dispatch_ready(std::vector<Task>& tasks,
                                 Clock::time_point now) {
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    Task& task = tasks[i];
    if (task.done || task.open_leases > 0) continue;
    if (task.dispatches >= options_.max_dispatches) {
      // Dispatch budget exhausted: the decision-identity invariant says a
      // transport failure must never fault a task, so it runs here.
      run_local(task);
      continue;
    }
    if (now < task.earliest_dispatch) continue;
    for (;;) {
      std::size_t best = slots_.size();
      // Prefer unstruck workers, then the least-loaded one: a straggler
      // whose capacity was revoked looks idle but should be the last
      // resort, not the first pick.
      std::pair<std::size_t, std::size_t> best_rank{static_cast<std::size_t>(-1),
                                                    static_cast<std::size_t>(-1)};
      for (std::size_t j = 0; j < slots_.size(); ++j) {
        const Slot& slot = slots_[j];
        if (!slot.alive || !slot.ready) continue;
        if (slot.leases.size() >= options_.inflight_per_worker) continue;
        const std::pair<std::size_t, std::size_t> rank{slot.strikes,
                                                       slot.leases.size()};
        if (rank < best_rank) {
          best_rank = rank;
          best = j;
        }
      }
      if (best == slots_.size()) return;  // No capacity anywhere right now.
      Slot& slot = slots_[best];
      const std::uint64_t id = next_lease_id_++;
      if (!slot.transport->send_line(encode_task(id, task.config))) {
        ++stats_.worker_deaths;
        mark_dead(best, dse::FaultCode::kWorkerLost, tasks);
        continue;  // Try the next-best worker for the same task.
      }
      bool steal = false;
      for (const auto& [other_id, other] : open_leases_) {
        if (other.task == i && other.expired && slots_[other.slot].alive) {
          steal = true;
          break;
        }
      }
      if (steal) ++stats_.steals;
      open_leases_.emplace(
          id, Lease{i, best, slot.incarnation, now + options_.lease_ms, false});
      slot.leases.push_back(id);
      ++task.open_leases;
      ++task.dispatches;
      ++stats_.dispatches;
      if (task.dispatches > 1) ++stats_.redispatches;
      break;
    }
  }
}

void Coordinator::expire_deadlines(std::vector<Task>& tasks,
                                   Clock::time_point now) {
  std::vector<std::size_t> to_recycle;
  for (auto& [id, lease] : open_leases_) {
    if (lease.expired || now < lease.deadline) continue;
    // The lease expired but stays open: the straggler's late reply is
    // still acceptable (first result wins). The task becomes
    // re-dispatchable, the worker earns a strike, and its capacity slot
    // is revoked — otherwise a fleet of stalled workers would pin every
    // slot on expired leases and dispatch would starve.
    lease.expired = true;
    ++stats_.lease_expiries;
    Task& task = tasks[lease.task];
    if (task.open_leases > 0) --task.open_leases;
    if (!task.done)
      ++stats_.redispatch_reasons[dse::FaultCode::kLeaseExpired];
    Slot& slot = slots_[lease.slot];
    const auto pos = std::find(slot.leases.begin(), slot.leases.end(), id);
    if (pos != slot.leases.end()) slot.leases.erase(pos);
    if (slot.alive && ++slot.strikes >= options_.strike_limit)
      to_recycle.push_back(lease.slot);
  }
  std::sort(to_recycle.begin(), to_recycle.end());
  to_recycle.erase(std::unique(to_recycle.begin(), to_recycle.end()),
                   to_recycle.end());
  for (const std::size_t index : to_recycle)
    recycle(index, dse::FaultCode::kLeaseExpired, tasks, now);

  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.alive && !slot.ready && now >= slot.handshake_deadline)
      recycle(i, dse::FaultCode::kWorkerLost, tasks, now);
  }
}

void Coordinator::handle_event(const Event& event, std::vector<Task>& tasks,
                               Clock::time_point now) {
  if (event.slot >= slots_.size()) return;
  Slot& slot = slots_[event.slot];
  if (event.incarnation != slot.incarnation || !slot.alive) return;  // Stale.
  if (event.eof) {
    ++stats_.worker_deaths;
    mark_dead(event.slot, dse::FaultCode::kWorkerLost, tasks);
    return;
  }
  WireMessage msg;
  try {
    msg = parse_message(decode_frame(event.line));
  } catch (const dse::PayloadError& error) {
    // A frame that fails its checksum poisons the whole stream (a torn
    // write desynchronises every later line): kill and respawn.
    if (error.code() == dse::FaultCode::kTruncatedPayload)
      ++stats_.truncated_frames;
    else
      ++stats_.corrupt_frames;
    recycle(event.slot, error.code(), tasks, now);
    return;
  }
  switch (msg.type) {
    case MsgType::kReady:
      slot.ready = true;
      slot.strikes = 0;
      return;
    case MsgType::kPong:
      slot.strikes = 0;
      return;
    case MsgType::kErr:
      ++stats_.worker_errors;
      recycle(event.slot, dse::FaultCode::kCorruptPayload, tasks, now);
      return;
    case MsgType::kOutcome:
      break;
    default:
      ++stats_.corrupt_frames;
      recycle(event.slot, dse::FaultCode::kCorruptPayload, tasks, now);
      return;
  }

  slot.strikes = 0;  // It answered; it is no longer a straggler.
  const auto it = open_leases_.find(msg.id);
  if (it == open_leases_.end()) {
    ++stats_.stale_results;  // Lease already resolved (or prior batch).
    return;
  }
  const Lease lease = it->second;
  open_leases_.erase(it);
  Slot& owner = slots_[lease.slot];
  const auto pos = std::find(owner.leases.begin(), owner.leases.end(), msg.id);
  if (pos != owner.leases.end()) owner.leases.erase(pos);
  Task& task = tasks[lease.task];
  if (!lease.expired && task.open_leases > 0) --task.open_leases;
  if (task.done) {
    // A steal raced the original and both finished. The replies are
    // bit-identical by construction, so dropping the loser is safe.
    ++stats_.duplicate_results;
    return;
  }
  finish_task(task, msg.call);
}

Coordinator::Clock::time_point Coordinator::next_deadline(
    const std::vector<Task>& tasks, Clock::time_point now) const {
  Clock::time_point deadline = now + kMaxLoopWait;
  for (const auto& [id, lease] : open_leases_)
    if (!lease.expired) deadline = std::min(deadline, lease.deadline);
  for (const Slot& slot : slots_)
    if (slot.alive && !slot.ready)
      deadline = std::min(deadline, slot.handshake_deadline);
  for (const Task& task : tasks)
    if (!task.done && task.open_leases == 0 && task.earliest_dispatch > now)
      deadline = std::min(deadline, task.earliest_dispatch);
  return std::max(deadline, now + std::chrono::milliseconds(1));
}

std::vector<util::GuardedCall> Coordinator::simulate_many(
    const std::vector<dse::Config>& configs) {
  stats_.tasks += configs.size();
  std::vector<Task> tasks(configs.size());
  pending_ = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    Task& task = tasks[i];
    task.config = configs[i];
    task.key = dse::ConfigHash{}(configs[i]);
    const auto hit = quarantine_.find(task.config);
    if (hit != quarantine_.end()) {
      task.done = true;
      task.result = hit->second;
      ++stats_.quarantine_hits;
    } else {
      ++pending_;
    }
  }

  if (pending_ > 0 && !degraded_) {
    ensure_workers(Clock::now());
    while (pending_ > 0) {
      const auto now = Clock::now();
      expire_deadlines(tasks, now);
      ensure_workers(now);
      if (!any_usable_worker()) {
        // Respawn budget exhausted with nobody left: degrade for good.
        degraded_ = true;
        ++stats_.degraded_batches;
        break;
      }
      dispatch_ready(tasks, now);
      if (pending_ == 0) break;
      Event event;
      if (events_.pop(event, next_deadline(tasks, Clock::now()))) {
        handle_event(event, tasks, Clock::now());
        // Drain whatever else is already queued before sleeping again.
        while (pending_ > 0 && events_.pop(event, Clock::now()))
          handle_event(event, tasks, Clock::now());
      }
    }
  }

  // Degraded (from the start or mid-batch): everything left runs locally,
  // in index order — the merge stays deterministic by construction.
  for (Task& task : tasks)
    if (!task.done) run_local(task);

  std::vector<util::GuardedCall> results;
  results.reserve(tasks.size());
  for (Task& task : tasks) results.push_back(std::move(task.result));
  open_leases_.clear();  // Late stragglers next batch count as stale.
  for (Slot& slot : slots_) slot.leases.clear();
  return results;
}

std::unique_ptr<Coordinator> make_subprocess_coordinator(
    const std::string& worker_binary, const std::string& kernel,
    dse::SimulatorFn local, const DistOptions& options) {
  std::vector<std::string> argv{worker_binary, "--kernel", kernel};
  Coordinator::TransportFactory factory =
      [argv = std::move(argv)]() -> std::unique_ptr<Transport> {
    return PipeTransport::spawn(argv);
  };
  return std::make_unique<Coordinator>(std::move(factory), std::move(local),
                                       options);
}

}  // namespace ace::dist
