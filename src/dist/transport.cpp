#include "dist/transport.hpp"

#include <utility>

namespace ace::dist {

bool LineQueue::push(std::string line) {
  {
    util::LockGuard lock(mutex_);
    if (closed_) return false;
    lines_.push_back(std::move(line));
  }
  cv_.notify_one();
  return true;
}

void LineQueue::close() {
  {
    util::LockGuard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

Transport::Recv LineQueue::pop(std::string& line,
                               std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  util::UniqueLock lock(mutex_);
  for (;;) {
    if (!lines_.empty()) {
      line = std::move(lines_.front());
      lines_.pop_front();
      return Transport::Recv::kLine;
    }
    if (closed_) return Transport::Recv::kEof;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return Transport::Recv::kTimeout;
    (void)lock.wait_for(cv_, deadline - now);
  }
}

}  // namespace ace::dist
