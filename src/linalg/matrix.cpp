#include "linalg/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace ace::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_)
      throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_)
    throw std::out_of_range("Matrix::operator(): index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_)
    throw std::out_of_range("Matrix::operator(): index out of range");
  return data_[r * cols_ + c];
}

namespace {
void require_same_shape(const Matrix& a, const Matrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument(std::string("Matrix ") + op +
                                ": shape mismatch");
}
}  // namespace

Matrix& Matrix::operator+=(const Matrix& rhs) {
  require_same_shape(*this, rhs, "+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  require_same_shape(*this, rhs, "-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Vector Matrix::operator*(const Vector& v) const {
  if (cols_ != v.size())
    throw std::invalid_argument("Matrix*Vector: dimension mismatch");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += data_[r * cols_ + c] * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_)
    throw std::invalid_argument("Matrix*Matrix: dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[r * cols_ + k];
      // Sparsity short-circuit: only an exact zero is skippable.
      if (a == 0.0) continue;  // ace-lint: allow(float-equality)
      for (std::size_t c = 0; c < rhs.cols_; ++c)
        out(r, c) += a * rhs(k, c);
    }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

Vector Matrix::row(std::size_t r) const {
  Vector out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

Vector Matrix::col(std::size_t c) const {
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

}  // namespace ace::linalg
