// Householder QR factorization — used for robust linear least squares in
// variogram model fitting (better conditioned than normal equations).
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace ace::linalg {

/// Householder QR of an m×n matrix with m >= n.
///
/// Supports least-squares solves min‖A·x − b‖₂. `rank_deficient()` reports a
/// collapsed diagonal of R; solves then throw.
class QrDecomposition {
 public:
  /// Factorize. Throws std::invalid_argument if rows < cols.
  explicit QrDecomposition(Matrix a, double tolerance = 1e-12);

  bool rank_deficient() const { return rank_deficient_; }
  std::size_t rows() const { return qr_.rows(); }
  std::size_t cols() const { return qr_.cols(); }

  /// Least-squares solution of A·x = b (size m); returns x (size n).
  Vector solve(const Vector& b) const;

 private:
  Matrix qr_;            // Householder vectors below diagonal, R on/above.
  Vector r_diag_;        // Diagonal of R.
  bool rank_deficient_ = false;
};

/// Convenience: least-squares solve min‖A·x − b‖₂ via QR.
/// Throws std::runtime_error if A is rank deficient.
Vector least_squares(const Matrix& a, const Vector& b);

}  // namespace ace::linalg
