// Incremental bordered factorization for kriging systems.
//
// The bordered Γ matrix of paper Eq. 9 is symmetric but indefinite (the
// Lagrange border carries a zero diagonal), so neither Cholesky nor an
// unpivoted LDLT applies to the whole matrix: the very first diagonal
// entry is γ(0) = nugget, which is frequently 0. BorderedLdlt therefore
// factors a *base block* — everything known at construction, border rows
// included — with pivoted LU, and maintains the trailing appended points
// through the Schur complement
//   S = C − Uᵀ·B⁻¹·U
// of the 2×2 block partition [B U; Uᵀ C], where S itself is kept as a
// small dense LDLT that grows by one pivot per append_point() and shrinks
// by one per remove_point(). Appending therefore costs one base solve
// O(n²) instead of the O(n³) refactorization a from-scratch LU pays, which
// is what makes the policy-level factor cache (dse/factor_cache) worth
// keying on support-index sets.
//
// With zero appended points solve() is *bit-identical* to
// LuDecomposition(base).solve(b) — the KrigingSystem layer relies on this
// to reproduce the legacy direct-solve numerics exactly. With appended
// points the block solve is followed by one iterative-refinement sweep
// against the stored assembled matrix, keeping the incremental solution
// within ~1e-12 of the from-scratch one (tests/test_linalg_ldlt.cpp).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace ace::linalg {

/// Growable symmetric factorization: pivoted-LU base block plus an
/// incremental LDLT of the Schur complement of appended rows/columns.
///
/// The caller applies any ridge shift to the base block *before*
/// construction; `append_shift` is the shift added to the diagonal of
/// every appended point (appended points are always core — never border —
/// so a uniform shift keeps the assembled matrix equal to A + shift·I_core
/// at every size).
class BorderedLdlt {
 public:
  /// Factor the base block eagerly. `ok()` reports whether the pivoted LU
  /// succeeded; all other operations require ok().
  explicit BorderedLdlt(Matrix base, double append_shift = 0.0,
                        double pivot_tolerance = 1e-13);

  /// Base factorization succeeded (appends can only refine, never repair).
  bool ok() const { return ok_; }

  std::size_t base_size() const { return base_n_; }
  std::size_t appended() const { return ldl_d_.size(); }
  std::size_t size() const { return base_n_ + appended(); }

  /// Extend the factorization by one symmetric row/column. `coupling`
  /// holds the new point's off-diagonal entries against every existing
  /// index (length size()); `diagonal` is its raw diagonal entry (the
  /// append shift is added internally). Returns false — leaving the
  /// factor untouched — when the new Schur pivot degenerates (e.g. the
  /// appended point coincides with an existing one).
  bool append_point(const std::vector<double>& coupling, double diagonal);

  /// Downdate: drop the `appended_index`-th appended point (0-based among
  /// appended points; base points cannot be removed). The remaining Schur
  /// complement is refactored in place — O(k³) on the k appended points
  /// only, never the base. Returns false (factor unchanged) on an
  /// out-of-range index or a degenerate refactorization.
  bool remove_point(std::size_t appended_index);

  /// Solve A·x = b for the currently assembled matrix. Requires ok() and
  /// b.size() == size(); throws std::invalid_argument/std::runtime_error
  /// otherwise (mirroring LuDecomposition::solve).
  Vector solve(const Vector& b) const;

  /// Solve for multiple right-hand sides (columns of B) against the one
  /// shared factorization. Column c of the result is bit-identical to
  /// solve(b.col(c)) — the multi-RHS form exists so a batch of queries
  /// over one support set pays the factorization once, not so results
  /// can drift from the per-query path.
  Matrix solve(const Matrix& b) const;

  /// Pivot-ratio condition estimate over base LU pivots and Schur pivots
  /// combined — the incremental analogue of LuDecomposition's estimate.
  double rcond_estimate() const;

  /// Diagonal of A⁻¹ for the currently assembled matrix (appends
  /// included), one unit-vector solve per entry against the existing
  /// factorization — O(n²) per entry instead of the O(n³) a scratch
  /// refactorization per leave-one-out subset would cost. Entry i uses the
  /// same refined solve path as solve(), so with zero appended points it is
  /// bit-identical to LuDecomposition::inverse_diagonal()[i].
  Vector inverse_diagonal() const;

  /// The assembled matrix the factor currently represents (base shift and
  /// append shifts included). Exposed for verification and refinement.
  const Matrix& assembled() const { return a_; }

 private:
  /// Block solve without the refinement sweep.
  Vector block_solve(const Vector& b) const;

  /// Refactor the Schur LDLT from s_; returns false on pivot collapse.
  bool refactor_schur();

  Matrix a_;                       ///< Assembled matrix, grown per append.
  std::optional<LuDecomposition> lu_;  ///< Base block factor.
  std::size_t base_n_ = 0;
  double append_shift_ = 0.0;
  double tol_ = 1e-13;
  bool ok_ = false;

  /// y_j = B⁻¹·u_j for each appended point's base coupling u_j.
  std::vector<Vector> ys_;
  /// Dense Schur complement S (k×k), kept for downdates.
  std::vector<std::vector<double>> s_;
  /// Unit-lower LDLT factors of S: L (strictly lower rows) and pivots d.
  std::vector<std::vector<double>> ldl_l_;
  std::vector<double> ldl_d_;
};

}  // namespace ace::linalg
