#include "linalg/qr.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace ace::linalg {

QrDecomposition::QrDecomposition(Matrix a, double tolerance)
    : qr_(std::move(a)), r_diag_(qr_.cols()) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  if (m < n)
    throw std::invalid_argument("QrDecomposition: need rows >= cols");

  const double scale = std::max(qr_.max_abs(), 1e-300);
  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k.
    double norm = 0.0;
    for (std::size_t r = k; r < m; ++r) norm += qr_(r, k) * qr_(r, k);
    norm = std::sqrt(norm);
    if (norm <= tolerance * scale) {
      rank_deficient_ = true;
      r_diag_[k] = 0.0;
      continue;
    }
    if (qr_(k, k) < 0.0) norm = -norm;
    for (std::size_t r = k; r < m; ++r) qr_(r, k) /= norm;
    qr_(k, k) += 1.0;
    // Apply transform to remaining columns.
    for (std::size_t c = k + 1; c < n; ++c) {
      double s = 0.0;
      for (std::size_t r = k; r < m; ++r) s += qr_(r, k) * qr_(r, c);
      s = -s / qr_(k, k);
      for (std::size_t r = k; r < m; ++r) qr_(r, c) += s * qr_(r, k);
    }
    r_diag_[k] = -norm;
  }
}

Vector QrDecomposition::solve(const Vector& b) const {
  if (rank_deficient_)
    throw std::runtime_error("QrDecomposition::solve: rank deficient");
  const std::size_t m = rows();
  const std::size_t n = cols();
  if (b.size() != m)
    throw std::invalid_argument("QrDecomposition::solve: size mismatch");

  // y = Qᵀ·b by applying the stored Householder reflections.
  Vector y = b;
  for (std::size_t k = 0; k < n; ++k) {
    double s = 0.0;
    for (std::size_t r = k; r < m; ++r) s += qr_(r, k) * y[r];
    s = -s / qr_(k, k);
    for (std::size_t r = k; r < m; ++r) y[r] += s * qr_(r, k);
  }
  // Back substitution through R.
  Vector x(n);
  for (std::size_t ki = n; ki-- > 0;) {
    double acc = y[ki];
    for (std::size_t c = ki + 1; c < n; ++c) acc -= qr_(ki, c) * x[c];
    x[ki] = acc / r_diag_[ki];
  }
  return x;
}

Vector least_squares(const Matrix& a, const Vector& b) {
  return QrDecomposition(a).solve(b);
}

}  // namespace ace::linalg
