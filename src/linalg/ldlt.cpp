#include "linalg/ldlt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ace::linalg {

BorderedLdlt::BorderedLdlt(Matrix base, double append_shift,
                           double pivot_tolerance)
    : a_(std::move(base)), append_shift_(append_shift),
      tol_(pivot_tolerance) {
  if (!a_.square())
    throw std::invalid_argument("BorderedLdlt: base must be square");
  base_n_ = a_.rows();
  lu_.emplace(a_, tol_);
  ok_ = !lu_->singular();
}

bool BorderedLdlt::append_point(const std::vector<double>& coupling,
                                double diagonal) {
  if (!ok_)
    throw std::runtime_error("BorderedLdlt::append_point: singular base");
  const std::size_t m = size();
  if (coupling.size() != m)
    throw std::invalid_argument("BorderedLdlt::append_point: size mismatch");
  const std::size_t k = appended();
  const double shifted_diag = diagonal + append_shift_;

  // Base coupling and its base solve y = B⁻¹·u.
  Vector ub(base_n_);
  for (std::size_t i = 0; i < base_n_; ++i) ub[i] = coupling[i];
  const Vector y = lu_->solve(ub);

  // New Schur row: s_j = A(m, n0+j) − u_jᵀ·B⁻¹·u  (symmetric in u, u_j).
  std::vector<double> s_row(k + 1, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    double dot = 0.0;
    for (std::size_t i = 0; i < base_n_; ++i) dot += a_(base_n_ + j, i) * y[i];
    s_row[j] = coupling[base_n_ + j] - dot;
  }
  {
    double dot = 0.0;
    for (std::size_t i = 0; i < base_n_; ++i) dot += ub[i] * y[i];
    s_row[k] = shifted_diag - dot;
  }

  // One LDLT step on S: forward-solve the new strictly-lower row, then
  // form the new pivot. A collapsed pivot means the appended point adds no
  // independent information (coincident/collinear support) — reject it.
  std::vector<double> l_row(k, 0.0);
  double pivot = s_row[k];
  for (std::size_t i = 0; i < k; ++i) {
    double acc = s_row[i];
    for (std::size_t j = 0; j < i; ++j)
      acc -= l_row[j] * ldl_d_[j] * ldl_l_[i][j];
    l_row[i] = acc / ldl_d_[i];
    pivot -= l_row[i] * l_row[i] * ldl_d_[i];
  }
  const double scale =
      std::max({a_.max_abs(), std::abs(shifted_diag), 1e-300});
  if (!std::isfinite(pivot) || std::abs(pivot) <= tol_ * scale) return false;

  // Commit: grow the assembled matrix, the Schur complement and the LDLT.
  Matrix grown(m + 1, m + 1);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < m; ++c) grown(r, c) = a_(r, c);
  for (std::size_t i = 0; i < m; ++i) {
    grown(m, i) = coupling[i];
    grown(i, m) = coupling[i];
  }
  grown(m, m) = shifted_diag;
  a_ = std::move(grown);

  ys_.push_back(y);
  for (std::size_t j = 0; j < k; ++j) s_[j].push_back(s_row[j]);
  s_.push_back(std::move(s_row));
  ldl_l_.push_back(std::move(l_row));
  ldl_d_.push_back(pivot);
  return true;
}

bool BorderedLdlt::refactor_schur() {
  const std::size_t k = s_.size();
  std::vector<std::vector<double>> l(k);
  std::vector<double> d(k, 0.0);
  const double scale = std::max(a_.max_abs(), 1e-300);
  for (std::size_t r = 0; r < k; ++r) {
    l[r].assign(r, 0.0);
    double pivot = s_[r][r];
    for (std::size_t i = 0; i < r; ++i) {
      double acc = s_[r][i];
      for (std::size_t j = 0; j < i; ++j) acc -= l[r][j] * d[j] * l[i][j];
      l[r][i] = acc / d[i];
      pivot -= l[r][i] * l[r][i] * d[i];
    }
    if (!std::isfinite(pivot) || std::abs(pivot) <= tol_ * scale)
      return false;
    d[r] = pivot;
  }
  ldl_l_ = std::move(l);
  ldl_d_ = std::move(d);
  return true;
}

bool BorderedLdlt::remove_point(std::size_t appended_index) {
  const std::size_t k = appended();
  if (appended_index >= k) return false;

  // Stage the downdated state, refactor, and only then commit — a
  // degenerate refactorization must leave the object untouched.
  const std::size_t m = size();
  const std::size_t drop = base_n_ + appended_index;
  Matrix shrunk(m - 1, m - 1);
  for (std::size_t r = 0, rr = 0; r < m; ++r) {
    if (r == drop) continue;
    for (std::size_t c = 0, cc = 0; c < m; ++c) {
      if (c == drop) continue;
      shrunk(rr, cc) = a_(r, c);
      ++cc;
    }
    ++rr;
  }
  auto s_backup = s_;
  s_.erase(s_.begin() + static_cast<std::ptrdiff_t>(appended_index));
  for (auto& row : s_)
    row.erase(row.begin() + static_cast<std::ptrdiff_t>(appended_index));
  if (!refactor_schur()) {
    s_ = std::move(s_backup);
    return false;
  }
  a_ = std::move(shrunk);
  ys_.erase(ys_.begin() + static_cast<std::ptrdiff_t>(appended_index));
  return true;
}

Vector BorderedLdlt::block_solve(const Vector& b) const {
  const std::size_t k = appended();
  Vector b1(base_n_);
  for (std::size_t i = 0; i < base_n_; ++i) b1[i] = b[i];
  const Vector u1 = lu_->solve(b1);
  if (k == 0) return u1;

  // t = b2 − Uᵀ·B⁻¹·b1, then S·x2 = t via the LDLT factors.
  std::vector<double> t(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    double dot = 0.0;
    for (std::size_t i = 0; i < base_n_; ++i) dot += a_(base_n_ + j, i) * u1[i];
    t[j] = b[base_n_ + j] - dot;
  }
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < i; ++j) t[i] -= ldl_l_[i][j] * t[j];
  for (std::size_t i = 0; i < k; ++i) t[i] /= ldl_d_[i];
  for (std::size_t ii = k; ii-- > 0;)
    for (std::size_t j = ii + 1; j < k; ++j) t[ii] -= ldl_l_[j][ii] * t[j];

  // x1 = B⁻¹·b1 − Σ_j x2_j · y_j.
  Vector x(base_n_ + k);
  for (std::size_t i = 0; i < base_n_; ++i) {
    double acc = u1[i];
    for (std::size_t j = 0; j < k; ++j) acc -= t[j] * ys_[j][i];
    x[i] = acc;
  }
  for (std::size_t j = 0; j < k; ++j) x[base_n_ + j] = t[j];
  return x;
}

Vector BorderedLdlt::solve(const Vector& b) const {
  if (!ok_) throw std::runtime_error("BorderedLdlt::solve: singular base");
  if (b.size() != size())
    throw std::invalid_argument("BorderedLdlt::solve: size mismatch");
  Vector x = block_solve(b);
  if (appended() == 0) return x;  // bit-identical to the base LU solve.

  // One iterative-refinement sweep against the assembled matrix pulls the
  // incremental solution onto the from-scratch one to ~1e-12.
  Vector r(size());
  for (std::size_t i = 0; i < size(); ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < size(); ++j) acc -= a_(i, j) * x[j];
    r[i] = acc;
  }
  const Vector dx = block_solve(r);
  for (std::size_t i = 0; i < size(); ++i) x[i] += dx[i];
  return x;
}

Matrix BorderedLdlt::solve(const Matrix& b) const {
  if (b.rows() != size())
    throw std::invalid_argument("BorderedLdlt::solve: row mismatch");
  // Column-by-column through the single-RHS path: the factorization (the
  // expensive part) is shared, and each column stays bit-identical to a
  // standalone solve — the contract KrigingSystem::query_batch relies on.
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vector xc = solve(b.col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = xc[r];
  }
  return x;
}

Vector BorderedLdlt::inverse_diagonal() const {
  if (!ok_)
    throw std::runtime_error("BorderedLdlt::inverse_diagonal: singular base");
  const std::size_t n = size();
  Vector diag(n);
  Vector e(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) e[j] = (j == i) ? 1.0 : 0.0;
    diag[i] = solve(e)[i];
  }
  return diag;
}

double BorderedLdlt::rcond_estimate() const {
  if (!ok_) return 0.0;
  double lo = lu_->min_abs_pivot();
  double hi = lu_->max_abs_pivot();
  for (double d : ldl_d_) {
    const double p = std::abs(d);
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  // Exact-zero test: hi is a max of absolute values, so == 0 is precise.
  return hi == 0.0 ? 0.0 : lo / hi;  // ace-lint: allow(float-equality)
}

}  // namespace ace::linalg
