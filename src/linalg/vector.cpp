#include "linalg/vector.hpp"

#include <cmath>
#include <stdexcept>

namespace ace::linalg {

namespace {
void require_same_size(const Vector& a, const Vector& b, const char* op) {
  if (a.size() != b.size())
    throw std::invalid_argument(std::string("Vector ") + op +
                                ": size mismatch");
}
}  // namespace

Vector& Vector::operator+=(const Vector& rhs) {
  require_same_size(*this, rhs, "+=");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  require_same_size(*this, rhs, "-=");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

double Vector::dot(const Vector& rhs) const {
  require_same_size(*this, rhs, "dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += data_[i] * rhs.data_[i];
  return acc;
}

double Vector::norm2() const { return std::sqrt(dot(*this)); }

double Vector::norm_inf() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

}  // namespace ace::linalg
