#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contract.hpp"

namespace ace::linalg {

CholeskyDecomposition::CholeskyDecomposition(const Matrix& a)
    : l_(a.rows(), a.cols()) {
  if (!a.square())
    throw std::invalid_argument("CholeskyDecomposition: matrix must be square");
  const std::size_t n = a.rows();
#if ACE_CONTRACTS_ENABLED
  // Cholesky only exists for symmetric matrices; an asymmetric input would
  // silently factor its lower triangle as if it were the whole story.
  {
    const double tol = 1e-9 * std::max(a.max_abs(), 1.0);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < r; ++c)
        ACE_REQUIRE(std::abs(a(r, c) - a(c, r)) <= tol,
                    "Cholesky input must be symmetric");
  }
#endif
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c <= r; ++c) {
      double acc = a(r, c);
      for (std::size_t k = 0; k < c; ++k) acc -= l_(r, k) * l_(c, k);
      if (r == c) {
        if (acc <= 0.0) {
          failed_ = true;
          return;
        }
        l_(r, c) = std::sqrt(acc);
      } else {
        l_(r, c) = acc / l_(c, c);
      }
    }
  }
}

Vector CholeskyDecomposition::solve(const Vector& b) const {
  if (failed_)
    throw std::runtime_error("CholeskyDecomposition::solve: not SPD");
  const std::size_t n = size();
  if (b.size() != n)
    throw std::invalid_argument("CholeskyDecomposition::solve: size mismatch");
  // L·y = b
  Vector y(n);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[r];
    for (std::size_t c = 0; c < r; ++c) acc -= l_(r, c) * y[c];
    y[r] = acc / l_(r, r);
  }
  // Lᵀ·x = y
  Vector x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= l_(c, ri) * x[c];
    x[ri] = acc / l_(ri, ri);
  }
  return x;
}

}  // namespace ace::linalg
