#include "linalg/solve.hpp"

#include <cmath>

#include "linalg/lu.hpp"

namespace ace::linalg {

namespace {

bool acceptable(const Vector& v, double max_norm) {
  for (std::size_t i = 0; i < v.size(); ++i)
    if (!std::isfinite(v[i]) || std::abs(v[i]) > max_norm) return false;
  return true;
}

std::optional<Vector> try_solve(const Matrix& a, const Vector& b,
                                double max_norm, double& rcond_out) {
  LuDecomposition lu(a);
  if (lu.singular()) return std::nullopt;
  Vector x = lu.solve(b);
  if (!acceptable(x, max_norm)) return std::nullopt;
  rcond_out = lu.rcond_estimate();
  return x;
}

}  // namespace

std::optional<Vector> robust_solve(const Matrix& a, const Vector& b,
                                   SolveReport& report, std::size_t border,
                                   double initial_ridge, double max_ridge,
                                   double max_solution_norm) {
  report = SolveReport{};
  double rcond = 0.0;
  if (auto x = try_solve(a, b, max_solution_norm, rcond)) {
    report.ok = true;
    report.rcond = rcond;
    return x;
  }

  const std::size_t n = a.rows();
  const std::size_t core = border <= n ? n - border : 0;
  const double scale = std::max(a.max_abs(), 1.0);
  for (double ridge = initial_ridge; ridge <= max_ridge; ridge *= 100.0) {
    Matrix regularized = a;
    for (std::size_t i = 0; i < core; ++i)
      regularized(i, i) += ridge * scale;
    if (auto x = try_solve(regularized, b, max_solution_norm, rcond)) {
      report.ok = true;
      report.regularized = true;
      report.ridge = ridge * scale;
      report.rcond = rcond;
      return x;
    }
  }
  return std::nullopt;
}

}  // namespace ace::linalg
