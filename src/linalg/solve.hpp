// High-level robust solve used by the kriging estimator.
//
// The bordered variogram matrix Γ (paper Eq. 9) can become numerically
// singular when support configurations are nearly collinear or the fitted
// variogram degenerates. robust_solve() first attempts a plain pivoted LU
// solve and, on singularity, retries with growing Tikhonov (ridge)
// regularization on the non-border block. The caller can detect the
// fallback (and e.g. fall back to simulation) through the report.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace ace::linalg {

/// Outcome of robust_solve().
struct SolveReport {
  bool ok = false;            ///< Solution produced.
  bool regularized = false;   ///< Ridge fallback was needed.
  double ridge = 0.0;         ///< Ridge magnitude actually used.
  double rcond = 0.0;         ///< Pivot-ratio condition estimate of the solve.
};

/// Solve A·x = b with LU; on singularity — or when the solution's
/// max-abs entry exceeds `max_solution_norm` (the signature of a
/// near-singular system producing garbage) — retry with A + ridge·I
/// (ridge grows geometrically up to max_ridge). `border` marks how many
/// trailing rows/cols form a Lagrange border that must NOT be regularized
/// (kriging's unbiasedness constraint rows).
///
/// Returns nullopt (report.ok = false) if no attempt produced a finite,
/// norm-bounded solution.
std::optional<Vector> robust_solve(const Matrix& a, const Vector& b,
                                   SolveReport& report,
                                   std::size_t border = 0,
                                   double initial_ridge = 1e-10,
                                   double max_ridge = 1e-2,
                                   double max_solution_norm = 1e6);

}  // namespace ace::linalg
