#include "linalg/lu.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/contract.hpp"

namespace ace::linalg {

LuDecomposition::LuDecomposition(Matrix a, double pivot_tolerance)
    : lu_(std::move(a)) {
  if (!lu_.square())
    throw std::invalid_argument("LuDecomposition: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  const double scale = std::max(lu_.max_abs(), 1e-300);
  for (std::size_t k = 0; k < n; ++k) {
    // Pivot search in column k.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag <= pivot_tolerance * scale) {
      singular_ = true;
      return;
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu_(k, c), lu_(pivot_row, c));
      std::swap(perm_[k], perm_[pivot_row]);
      perm_sign_ = -perm_sign_;
    }
    const double pivot = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;  // ace-lint: allow(float-equality)
      for (std::size_t c = k + 1; c < n; ++c)
        lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  if (singular_)
    throw std::runtime_error("LuDecomposition::solve: singular matrix");
  const std::size_t n = size();
  if (b.size() != n)
    throw std::invalid_argument("LuDecomposition::solve: size mismatch");

  // Forward substitution on permuted b (L has unit diagonal).
  Vector y(n);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * y[c];
    y[r] = acc;
  }
  // Back substitution through U.
  Vector x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    // The factorization bailed to singular_ on any degenerate pivot, so a
    // zero divisor here means the object's invariant was corrupted.
    ACE_INVARIANT(lu_(ri, ri) != 0.0,  // ace-lint: allow(float-equality)
                  "non-singular LU must have non-zero pivots");
    double acc = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  if (b.rows() != size())
    throw std::invalid_argument("LuDecomposition::solve: row mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vector xc = solve(b.col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = xc[r];
  }
  return x;
}

double LuDecomposition::determinant() const {
  if (singular_) return 0.0;
  double det = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(size()));
}

Vector LuDecomposition::inverse_diagonal() const {
  const std::size_t n = size();
  Vector diag(n);
  Vector e(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) e[j] = (j == i) ? 1.0 : 0.0;
    diag[i] = solve(e)[i];
  }
  return diag;
}

double LuDecomposition::min_abs_pivot() const {
  if (singular_ || size() == 0) return 0.0;
  double lo = std::abs(lu_(0, 0));
  for (std::size_t i = 1; i < size(); ++i)
    lo = std::min(lo, std::abs(lu_(i, i)));
  return lo;
}

double LuDecomposition::max_abs_pivot() const {
  if (singular_ || size() == 0) return 0.0;
  double hi = std::abs(lu_(0, 0));
  for (std::size_t i = 1; i < size(); ++i)
    hi = std::max(hi, std::abs(lu_(i, i)));
  return hi;
}

double LuDecomposition::rcond_estimate() const {
  if (singular_ || size() == 0) return 0.0;
  double lo = std::abs(lu_(0, 0));
  double hi = lo;
  for (std::size_t i = 1; i < size(); ++i) {
    const double p = std::abs(lu_(i, i));
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  // Exact-zero test: hi is a max of absolute values, so == 0 is precise.
  return hi == 0.0 ? 0.0 : lo / hi;  // ace-lint: allow(float-equality)
}

}  // namespace ace::linalg
