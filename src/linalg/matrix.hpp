// Dense row-major double-precision matrix.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/vector.hpp"

namespace ace::linalg {

/// Dense row-major matrix of doubles with checked element access.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }
  bool square() const { return rows_ == cols_; }

  /// Checked element access.
  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  bool operator==(const Matrix& rhs) const = default;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);
  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }

  /// Matrix-vector product; throws on dimension mismatch.
  Vector operator*(const Vector& v) const;

  /// Matrix-matrix product; throws on dimension mismatch.
  Matrix operator*(const Matrix& rhs) const;

  Matrix transposed() const;

  /// Max-abs element (entrywise infinity norm surrogate).
  double max_abs() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Row as a Vector copy.
  Vector row(std::size_t r) const;
  /// Column as a Vector copy.
  Vector col(std::size_t c) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace ace::linalg
