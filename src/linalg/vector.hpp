// Dense double-precision vector.
//
// The kriging system (paper Eq. 7-10) is tiny — typically 3 to 10 support
// points — so the library favours clarity and bounds checking over SIMD.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace ace::linalg {

/// Dense vector of doubles with checked element access.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Checked access — throws std::out_of_range.
  double& operator[](std::size_t i) { return data_.at(i); }
  double operator[](std::size_t i) const { return data_.at(i); }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s);

  friend Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
  friend Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
  friend Vector operator*(Vector lhs, double s) { return lhs *= s; }
  friend Vector operator*(double s, Vector rhs) { return rhs *= s; }

  bool operator==(const Vector& rhs) const = default;

  /// Dot product; throws on size mismatch.
  double dot(const Vector& rhs) const;

  /// Euclidean norm.
  double norm2() const;

  /// Max-abs norm.
  double norm_inf() const;

 private:
  std::vector<double> data_;
};

}  // namespace ace::linalg
