// LU decomposition with partial pivoting — the workhorse behind the
// kriging system solve (the Γ matrix of paper Eq. 9 is symmetric but
// indefinite because of the Lagrange-multiplier border, so Cholesky does
// not apply; LU with pivoting does).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace ace::linalg {

/// LU factorization P·A = L·U with partial (row) pivoting.
///
/// Construction factorizes eagerly. `singular()` reports whether a pivot
/// collapsed below the relative tolerance; solves on a singular
/// factorization throw std::runtime_error.
class LuDecomposition {
 public:
  /// Factorize a square matrix. Throws std::invalid_argument if not square.
  explicit LuDecomposition(Matrix a, double pivot_tolerance = 1e-13);

  bool singular() const { return singular_; }
  std::size_t size() const { return lu_.rows(); }

  /// Solve A·x = b. Throws on singularity or size mismatch.
  Vector solve(const Vector& b) const;

  /// Solve for multiple right-hand sides (columns of B).
  Matrix solve(const Matrix& b) const;

  /// Determinant (0 if singular flag raised).
  double determinant() const;

  /// Explicit inverse — prefer solve(); used by tests for validation.
  Matrix inverse() const;

  /// Diagonal of A⁻¹, one unit-vector solve per entry against the existing
  /// factorization — O(n²) per entry, no refactorization. Together with a
  /// single solve of A·u = z this yields every leave-one-out residual of a
  /// kriging system via Dubrule's identity (kriging::KrigingSystem::
  /// loo_residuals), where each scratch refit would cost O(n³).
  Vector inverse_diagonal() const;

  /// Crude reciprocal condition estimate: min|pivot| / max|pivot|.
  double rcond_estimate() const;

  /// Smallest / largest |U diagonal| of the factorization (0 when
  /// singular or empty). BorderedLdlt folds these into its combined
  /// base-plus-Schur condition estimate.
  double min_abs_pivot() const;
  double max_abs_pivot() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
  bool singular_ = false;
};

}  // namespace ace::linalg
