// Cholesky factorization for symmetric positive-definite systems — used by
// the variogram least-squares fit (normal equations) where the Gram matrix
// is SPD.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace ace::linalg {

/// Cholesky factorization A = L·Lᵀ of a symmetric positive-definite matrix.
///
/// `failed()` reports loss of positive definiteness; solves then throw.
class CholeskyDecomposition {
 public:
  /// Factorize. Only the lower triangle of `a` is read.
  /// Throws std::invalid_argument if not square.
  explicit CholeskyDecomposition(const Matrix& a);

  bool failed() const { return failed_; }
  std::size_t size() const { return l_.rows(); }

  /// Solve A·x = b. Throws on failure flag or size mismatch.
  Vector solve(const Vector& b) const;

  /// Lower-triangular factor.
  const Matrix& l() const { return l_; }

 private:
  Matrix l_;
  bool failed_ = false;
};

}  // namespace ace::linalg
