// Fixed-point refinement of the HEVC motion-compensation dataflow
// (23 word-length variables) with kriging in the optimization loop —
// the paper's largest word-length benchmark, where interpolation saves
// ~90% of the simulations.
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/engine.hpp"
#include "dse/config.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main() {
  using namespace ace;

  core::HevcBenchOptions opt;
  opt.jobs = 12;  // 8×8 blocks; scaled down for a brisk demo.
  opt.lambda_min_db = 50.0;
  const auto bench = core::make_hevc_benchmark(opt);

  std::cout << "HEVC MC word-length refinement (Nv = " << bench.nv
            << ", constraint: noise <= -" << opt.lambda_min_db << " dB)\n\n";

  dse::PolicyOptions policy;
  policy.distance = 2;

  util::Stopwatch watch;
  core::ErrorEvaluationEngine engine(bench.simulate, policy, bench.metric);
  const auto result = engine.optimize_word_lengths(bench.min_plus_one);
  const double elapsed = watch.seconds();

  std::cout << "optimized word lengths: " << dse::to_string(result.w_res)
            << "\n"
            << "noise at solution: " << util::fmt(-result.final_lambda, 1)
            << " dB (constraint met: "
            << (result.constraint_met ? "yes" : "no") << ")\n\n";

  const auto& stats = engine.stats();
  util::TablePrinter table({"counter", "value"});
  table.add_row({"metric evaluations", std::to_string(stats.total)});
  table.add_row({"simulated", std::to_string(stats.simulated)});
  table.add_row({"kriging-interpolated", std::to_string(stats.interpolated)});
  table.add_row(
      {"interpolated share (%)",
       util::fmt(stats.interpolated_fraction() * 100.0, 2)});
  table.add_row({"mean support size j",
                 util::fmt(stats.neighbors_per_interpolation.mean(), 2)});
  table.add_row({"wall time (s)", util::fmt(elapsed, 2)});
  table.print(std::cout);

  std::cout << "\nwith 23 variables the L1 ball at d = 2 quickly fills with\n"
               "already-simulated neighbours, which is why the paper reports\n"
               "~87-96% of HEVC evaluations replaced by kriging\n";
  return 0;
}
