// Word-length optimization of a real DSP kernel (the paper's FIR
// benchmark) — exact simulation vs kriging-accelerated, side by side.
//
// Demonstrates: building a benchmark bundle, recording an exact
// trajectory, replaying it through the kriging policy at several
// distances, and reading the Table-I-style statistics.
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/table1.hpp"
#include "dse/config.hpp"
#include "util/table.hpp"

int main() {
  using namespace ace;

  core::SignalBenchOptions opt;
  opt.samples = 256;
  opt.lambda_min_db = 50.0;  // Output noise power must stay below −50 dB.
  const auto bench = core::make_fir_benchmark(opt);

  std::cout << "FIR word-length optimization (Nv = " << bench.nv
            << ", constraint: noise <= -" << opt.lambda_min_db << " dB)\n\n";

  const auto result = core::run_table1(bench, {2, 3, 4, 5});
  std::cout << "exact min+1 run: " << result.trajectory.size()
            << " configurations simulated, solution "
            << dse::to_string(result.exact_solution) << " at "
            << util::fmt(-result.exact_lambda, 1) << " dB noise\n\n";

  core::print_table1(std::cout, result);

  const auto timing = core::measure_speedup(bench, result, 3);
  std::cout << "\nat d = 3: one simulation costs "
            << util::fmt(timing.sim_seconds * 1e3, 3)
            << " ms, one interpolation "
            << util::fmt(timing.krig_seconds * 1e6, 2)
            << " us -> the whole refinement runs "
            << util::fmt(timing.speedup, 2) << "x faster\n";
  return 0;
}
