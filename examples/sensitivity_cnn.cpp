// Error-sensitivity analysis of a CNN (the paper's SqueezeNet benchmark):
// find the largest per-layer error powers the classifier tolerates while
// still agreeing with the error-free network on >= 90% of inputs —
// with kriging replacing most of the expensive network evaluations.
#include <cmath>
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/engine.hpp"
#include "nn/injection.hpp"
#include "util/table.hpp"

int main() {
  using namespace ace;

  core::CnnBenchOptions opt;
  opt.images = 120;  // Scaled-down input set for a fast demo.
  opt.pcl_min = 0.90;
  const auto bench = core::make_squeezenet_benchmark(opt);

  std::cout << "SqueezeNet-like error budgeting (10 injection sites, "
            << opt.images << " images, target agreement >= "
            << opt.pcl_min * 100.0 << "%)\n\n";

  dse::PolicyOptions policy;
  policy.distance = 3;
  core::ErrorEvaluationEngine engine(bench.simulate, policy, bench.metric);

  const auto result = engine.analyze_sensitivity(bench.sensitivity);
  if (!result.feasible) {
    std::cout << "even near-silent error sources break the target — "
                 "lower pcl_min or the base power\n";
    return 1;
  }

  util::TablePrinter table({"site", "layer", "level", "tolerated power"});
  const char* names[] = {"conv1",  "fire2", "fire3", "fire4", "fire5",
                         "fire6",  "fire7", "fire8", "fire9", "conv10"};
  for (std::size_t i = 0; i < result.levels.size(); ++i) {
    const double power =
        nn::power_from_level(result.levels[i], opt.base_power);
    table.add_row({std::to_string(i), names[i],
                   std::to_string(result.levels[i]),
                   util::fmt(power, 6)});
  }
  table.print(std::cout);

  const auto& stats = engine.stats();
  std::cout << "\nfinal agreement: " << util::fmt(result.final_lambda * 100, 2)
            << "%\n"
            << "network evaluations: " << stats.total << " ("
            << stats.simulated << " simulated, " << stats.interpolated
            << " kriged — "
            << util::fmt(stats.interpolated_fraction() * 100, 1)
            << "% avoided)\n"
            << "\nreading: a LOW level = LARGE tolerated error. Layers that\n"
               "end at low levels are robust; layers stuck at high levels\n"
               "dominate the classifier's error sensitivity.\n";
  return 0;
}
