// Quickstart: plug YOUR application into the kriging-based error
// evaluation engine in ~30 lines.
//
// You provide one thing: a deterministic simulator mapping an integer
// configuration of approximation sources (here: two word lengths) to a
// quality metric λ. The engine decides, per configuration, whether to
// simulate or to interpolate the metric by ordinary kriging from nearby
// already-simulated configurations — exactly the policy of the DATE 2020
// paper this library reproduces.
#include <iostream>

#include "core/engine.hpp"

int main() {
  using namespace ace;

  // A stand-in application: accuracy grows ~6 dB per bit on each of two
  // variables, with diminishing returns past 14 bits. Swap in your own
  // bit-accurate simulator here — anything deterministic works.
  auto my_simulator = [](const dse::Config& w) {
    double lambda = 0.0;
    for (int wl : w) lambda += 6.0 * std::min(wl, 14);
    return lambda;  // "accuracy" (higher is better)
  };

  // Policy knobs (paper Table I): search radius d and the minimum number
  // of simulated neighbours required before kriging replaces simulation.
  dse::PolicyOptions policy;
  policy.distance = 3;
  policy.nn_min = 1;

  core::ErrorEvaluationEngine engine(my_simulator, policy,
                                     dse::MetricKind::kAccuracyDb);

  // Run the classic min+1-bit word-length optimization through the engine:
  // every metric evaluation the optimizer requests is transparently
  // simulated-or-interpolated.
  dse::MinPlusOneOptions options;
  options.nv = 2;
  options.w_min = 2;
  options.w_max = 16;
  options.lambda_min = 150.0;  // Quality constraint λm.

  const auto result = engine.optimize_word_lengths(options);

  std::cout << "optimized word lengths: " << dse::to_string(result.w_res)
            << "\n"
            << "final accuracy: " << result.final_lambda
            << " (constraint " << options.lambda_min << ", met: "
            << (result.constraint_met ? "yes" : "no") << ")\n\n";

  const auto& stats = engine.stats();
  std::cout << "metric evaluations:   " << stats.total << "\n"
            << "  simulated:          " << stats.simulated << "\n"
            << "  kriging-interpolated: " << stats.interpolated << " ("
            << 100.0 * stats.interpolated_fraction() << "% saved)\n";
  return 0;
}
