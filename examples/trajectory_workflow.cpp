// Workflow example: simulate once, analyze forever.
//
// Exact DSE runs are the expensive part (the paper's SqueezeNet run took
// 98 hours). This example records the exact trajectory of an IIR
// refinement, saves it to CSV, reloads it, and replays it through the
// kriging policy at several distances and Nn,min values — without a
// single new simulation. This is how the repository's own Table I
// ablations work internally.
#include <cstdio>
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/table1.hpp"
#include "dse/trajectory_io.hpp"
#include "util/table.hpp"

int main() {
  using namespace ace;

  // ---- expensive phase: exact optimizer run, recorded ----------------
  core::SignalBenchOptions opt;
  opt.samples = 256;
  opt.w_max = 20;
  const auto bench = core::make_iir_benchmark(opt);

  dse::TrajectoryRecorder recorder(bench.simulate);
  const auto result = dse::min_plus_one(recorder.as_simulator(),
                                        bench.min_plus_one);
  std::cout << "exact run: " << recorder.unique_evaluations()
            << " simulations, solution " << dse::to_string(result.w_res)
            << "\n";

  const std::string path = "iir_trajectory.csv";
  dse::save_trajectory(recorder.trajectory(), path);
  std::cout << "trajectory saved to " << path << "\n\n";

  // ---- cheap phase: reload and sweep policy knobs offline ------------
  const auto trajectory = dse::load_trajectory(path);
  util::TablePrinter table({"d", "Nn,min", "p(%)", "j", "mu eps (bits)"});
  for (const int d : {2, 3, 4, 5}) {
    for (const std::size_t nn_min : {1u, 2u}) {
      dse::PolicyOptions options;
      options.distance = d;
      options.nn_min = nn_min;
      const auto report = dse::replay_with_kriging(
          trajectory, options, dse::MetricKind::kAccuracyDb);
      table.add_row({std::to_string(d), std::to_string(nn_min),
                     util::fmt_pct(report.interpolated_fraction(), 1),
                     util::fmt(report.mean_neighbors(), 2),
                     util::fmt(report.mean_epsilon(), 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nevery row above reused the same " << trajectory.size()
            << " recorded simulations\n";
  std::remove(path.c_str());
  return 0;
}
