#!/usr/bin/env bash
# Unified static-analysis gate — the single CI entry point.
#
# Always runs (no toolchain dependency beyond python3):
#   1. ace_lint.py --self-test   — the linter must catch 100% of the planted
#                                  violations with zero false positives;
#   2. ace_lint.py over src/     — the project lint rules (raw mutexes,
#                                  float equality, unseeded RNGs, iostream
#                                  logging, wall-clock time).
#
# Runs when a Clang toolchain is installed (skipped with a note otherwise,
# so the gate still passes on gcc-only machines):
#   3. tidy-preset build         — compiles everything with clang++
#                                  -Wthread-safety -Wthread-safety-beta
#                                  -Werror, proving the ACE_GUARDED_BY/
#                                  ACE_REQUIRES lock discipline and the
#                                  ACE_ACQUIRED_BEFORE/AFTER ordering
#                                  edges at compile time;
#   4. lock-order fixtures       — tests/static/lock_order_ordered.cpp
#                                  must be accepted and
#                                  lock_order_inversion.cpp rejected, so
#                                  the ordering enforcement itself is
#                                  regression-tested;
#   5. clang-tidy                — .clang-tidy checks over src/.
#
# Exit status is non-zero iff any step that actually ran failed.
set -euo pipefail

cd "$(dirname "$0")/.."

failures=0

step() {
  echo
  echo "=== $* ==="
}

step "ace-lint self-test"
if python3 tools/lint/ace_lint.py --self-test; then
  echo "ok: self-test passed"
else
  echo "FAIL: lint self-test" >&2
  failures=$((failures + 1))
fi

step "ace-lint over src/"
if python3 tools/lint/ace_lint.py; then
  echo "ok: lint clean"
else
  echo "FAIL: lint findings in src/" >&2
  failures=$((failures + 1))
fi

if command -v clang++ >/dev/null 2>&1; then
  step "thread-safety analysis (tidy preset: clang++ -Wthread-safety -Werror)"
  if cmake --preset tidy && cmake --build --preset tidy -j "$(nproc)"; then
    echo "ok: tidy build clean"
  else
    echo "FAIL: tidy-preset build" >&2
    failures=$((failures + 1))
  fi

  step "lock-order fixtures (acquired_before/after must reject inversion)"
  ts_flags=(-std=c++20 -fsyntax-only -Isrc
            -Wthread-safety -Wthread-safety-beta -Werror)
  fixtures_ok=1
  if clang++ "${ts_flags[@]}" tests/static/lock_order_ordered.cpp; then
    echo "ok: ordered fixture accepted"
  else
    echo "FAIL: correctly-ordered fixture rejected" >&2
    fixtures_ok=0
  fi
  if clang++ "${ts_flags[@]}" tests/static/lock_order_inversion.cpp \
      2>/dev/null; then
    echo "FAIL: inversion fixture accepted — ordering annotations are" \
         "not being enforced" >&2
    fixtures_ok=0
  else
    echo "ok: inversion fixture rejected"
  fi
  if [ "$fixtures_ok" -ne 1 ]; then
    failures=$((failures + 1))
  fi
else
  step "thread-safety analysis"
  echo "skip: clang++ not installed — -Wthread-safety (and the" \
       "tests/static lock-order fixtures) need Clang." \
       "The annotations still compile away under gcc."
fi

if command -v clang-tidy >/dev/null 2>&1 && [ -d build-tidy ]; then
  step "clang-tidy over src/"
  # The tidy preset exports compile_commands.json for this step.
  mapfile -t tidy_sources < <(find src -name '*.cpp' | sort)
  if clang-tidy -p build-tidy --quiet "${tidy_sources[@]}"; then
    echo "ok: clang-tidy clean"
  else
    echo "FAIL: clang-tidy" >&2
    failures=$((failures + 1))
  fi
else
  step "clang-tidy"
  echo "skip: clang-tidy not installed (or no build-tidy tree)."
fi

echo
if [ "$failures" -ne 0 ]; then
  echo "static analysis: $failures step(s) FAILED" >&2
  exit 1
fi
echo "static analysis: all executed steps passed"
