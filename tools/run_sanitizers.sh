#!/usr/bin/env bash
# Sanitized verification flow for the fault-tolerant evaluation subsystem.
#
# Builds the ASan+UBSan and TSan trees (CMakePresets: asan / tsan) and runs
# the dse / kriging / dist / util test subset under each. TSan specifically
# covers the concurrent surfaces: evaluate_batch on a pool, the collecting
# thread pool, the fault-injection counters, and the coordinator/worker
# reader threads plus the chaos-injected transports.
#
# Usage: tools/run_sanitizers.sh [address|thread|all]   (default: all)
set -euo pipefail

cd "$(dirname "$0")/.."
flavours="${1:-all}"

run_flavour() {
  preset="$1"
  echo "=== [$preset] configure + build ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "=== [$preset] dse/kriging/dist/serve/util test subset ==="
  # Run the gtest binaries directly: binary names carry the subsystem
  # prefix (ctest registers individual suite.case names, which don't).
  for bin in "build-$preset"/tests/test_util_* \
             "build-$preset"/tests/test_dse_* \
             "build-$preset"/tests/test_dist_* \
             "build-$preset"/tests/test_serve_* \
             "build-$preset"/tests/test_kriging_*; do
    [ -x "$bin" ] || continue
    echo "--- $bin"
    "$bin" --gtest_brief=1
  done
}

case "$flavours" in
  address) run_flavour asan ;;
  thread) run_flavour tsan ;;
  all)
    run_flavour asan
    run_flavour tsan
    ;;
  *)
    echo "usage: $0 [address|thread|all]" >&2
    exit 2
    ;;
esac
echo "sanitizer runs clean"
