// Suppressed plants: each would-be violation carries (or follows) an
// `ace-lint: allow(rule)` directive, so the linter must report NOTHING in
// this file — a finding here is a false positive against the suppression
// mechanism. Never compiled; fixture only.
#include <mutex>

namespace fixture {

// The wrapper-internals exemption is path-based (src/util/), so this file
// exercises the comment-based suppression instead.
std::mutex g_quiet_mutex;  // ace-lint: allow(raw-mutex)

bool exact_zero(double x) {
  // Exact-zero test is intentional here.
  return x == 0.0;  // ace-lint: allow(float-equality)
}

bool previous_line_form(double y) {
  // ace-lint: allow(float-equality)
  return y != 0.5;
}

int multiple_rules_one_directive(double z) {
  // ace-lint: allow(float-equality, iostream-logging)
  if (z == 1.0) printf("both suppressed\n");
  return 0;
}

double suppressed_distance_loop(const double* a, const double* b, int n) {
  // A canonical distance helper would carry this suppression.
  double acc = 0.0;
  for (int i = 0; i < n; ++i)
    acc += std::abs(a[i] - b[i]);  // ace-lint: allow(raw-distance-loop)
  return acc;
}

// Mentions inside comments and strings must not trip rules at all:
// std::cout << x; std::mt19937 gen; if (x == 0.0) {}
const char* kDoc = "std::mutex and rand() and x == 0.0 inside a string";

}  // namespace fixture
