// Planted gate-bypass violations. The basename matches the dse_gate
// scope, so the rule is active here — unlike in violations.cpp, whose
// nn_min mentions must stay silent (that file is outside the decision
// layer). This file is a fixture — it is never compiled.
#include <cstddef>

namespace fixture_dse_gate {

bool hardwired_decisions(std::size_t count, const Options& options) {
  if (count > options.nn_min) return true;           // expect(gate-bypass)
  if (options.nn_min <= count) return true;          // expect(gate-bypass)
  if (count >= options.gate_nn_floor) return true;   // expect(gate-bypass)
  const bool exact = count == options.nn_min;        // expect(gate-bypass)
  return exact;
}

void declarations_are_fine() {
  std::size_t nn_min = 1;     // assignment, not a comparison: silent
  std::size_t gate_nn_floor;  // declaration: silent
  gate_nn_floor = nn_min;     // plain assignment: silent
  (void)gate_nn_floor;
}

bool suppressed(std::size_t count, const Options& options) {
  // The gate implementations themselves live in acquisition.cpp (exempt
  // by path); anywhere else an intentional direct test must say so:
  return count > options.nn_min;  // ace-lint: allow(gate-bypass)
}

// Comments mentioning count > nn_min are fine; so are strings:
inline const char* kDoc = "interpolate only when count > nn_min";

}  // namespace fixture_dse_gate
