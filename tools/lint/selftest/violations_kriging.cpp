// Planted kriging-direct-solve violations. The basename matches the
// *_kriging.<ext> scope, so the rule is active here — unlike in
// violations.cpp, whose solver mentions must stay silent (that file is
// outside the estimator-wrapper scope). This file is a fixture — it is
// never compiled.
#include <optional>

namespace fixture_kriging {

void direct_solves() {
  auto w = linalg::robust_solve(gamma, rhs);      // expect(kriging-direct-solve)
  auto x = linalg::lu_solve(gamma, rhs);          // expect(kriging-direct-solve)
  linalg::LuDecomposition lu(gamma);              // expect(kriging-direct-solve)
  auto y = robust_solve(gamma, rhs);              // expect(kriging-direct-solve)
  auto z = lu_solve(gamma, rhs);                  // expect(kriging-direct-solve)
  LuDecomposition bare(gamma);                    // expect(kriging-direct-solve)
  (void)w; (void)x; (void)y; (void)z;
}

void suppressed_solve() {
  // ace-lint: allow(kriging-direct-solve)
  auto w = linalg::robust_solve(gamma, rhs);
  auto x = robust_solve(gamma, rhs);  // ace-lint: allow(kriging-direct-solve)
  (void)w; (void)x;
}

// Talking about linalg::robust_solve in a comment is fine; so is a string:
inline const char* kDoc = "calls linalg::robust_solve internally";

}  // namespace fixture_kriging
