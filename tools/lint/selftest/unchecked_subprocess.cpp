// Planted violations for the unchecked-syscall rule. The basename
// contains "subprocess", so the rule is in scope; sibling fixtures
// without that basename (and outside src/dist/) stay exempt.
//
// NOT REAL CODE — never compiled, only linted.

#include <unistd.h>

void leaky_teardown(int fd, int child) {
  close(fd);  // expect(unchecked-syscall)
  kill(child, 9);  // expect(unchecked-syscall)
  waitpid(child, nullptr, 0);  // expect(unchecked-syscall)
}

void leaky_plumbing(int* fds, int fd, const char* buf, int n) {
  pipe2(fds, 0);  // expect(unchecked-syscall)
  write(fd, buf, static_cast<unsigned long>(n));  // expect(unchecked-syscall)
  ::dup2(fds[0], 0);  // expect(unchecked-syscall)
}

int checked_calls_stay_silent(int fd, int child) {
  if (close(fd) != 0) return -1;       // checked: fine
  const int rc = kill(child, 9);       // captured: fine
  (void)waitpid(child, nullptr, 0);    // explicit discard: fine
  return rc;
}

void suppressed_plant(int fd) {
  close(fd);  // ace-lint: allow(unchecked-syscall)
}
