// Planted lint violations for `ace_lint.py --self-test`. Every marked
// line must be flagged with exactly the rule named in its marker;
// anything else flagged is a false positive. This file is a fixture — it
// is never compiled.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <random>

namespace fixture {

std::mutex g_mutex;  // expect(raw-mutex)

void locks() {
  const std::lock_guard<std::mutex> lock(g_mutex);  // expect(raw-mutex)
  std::unique_lock<std::mutex> relock(g_mutex);     // expect(raw-mutex)
}

bool float_compares(double x, float y) {
  if (x == 0.0) return true;        // expect(float-equality)
  if (y != 1.5f) return false;      // expect(float-equality)
  if (0.25 == x) return true;       // expect(float-equality)
  return x == 1e-9;                 // expect(float-equality)
}

void rngs() {
  std::random_device rd;            // expect(unseeded-rng)
  std::mt19937 gen;                 // expect(unseeded-rng)
  std::mt19937_64 gen64;            // expect(unseeded-rng)
  std::default_random_engine eng;   // expect(unseeded-rng)
  srand(42);                        // expect(unseeded-rng)
  const int r = rand();             // expect(unseeded-rng)
  (void)rd; (void)gen; (void)gen64; (void)eng; (void)r;
}

void logging(int value) {
  std::cout << "value = " << value << '\n';  // expect(iostream-logging)
  std::cerr << "oops\n";                     // expect(iostream-logging)
  printf("%d\n", value);                     // expect(iostream-logging)
}

void clocks() {
  const auto now = std::chrono::system_clock::now();  // expect(wallclock-time)
  const auto stamp = std::time(nullptr);              // expect(wallclock-time)
  (void)now; (void)stamp;
}

// kriging-direct-solve is scoped to *_kriging.* basenames; this file is
// outside the scope, so direct solver use here must stay unflagged (any
// finding would be a self-test false positive).
void out_of_scope_solver_use() {
  auto w = linalg::robust_solve(gamma, rhs);
  linalg::LuDecomposition lu(gamma);
  (void)w;
}

double raw_distance_loops(const double* a, const double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i)
    acc += std::abs(a[i] - b[i]);    // expect(raw-distance-loop)
  for (int i = 0; i < n; ++i)
    acc += fabs(b[i] - a[i]);        // expect(raw-distance-loop)
  // Accumulating a plain magnitude (no subtraction inside the abs) is not
  // a distance loop and must stay unflagged.
  for (int i = 0; i < n; ++i) acc += std::abs(a[i]);
  return acc;
}

}  // namespace fixture
