// Planted blocking-under-lock / cv-wait-foreign-lock violations for
// `ace_lint.py --self-test`. Exercises the guard-scope tracker: nested
// scopes, UniqueLock unlock()/lock() gaps, suppressed sites and the
// two-phase snapshot/render/commit idiom must all classify correctly.
// This file is a fixture — it is never compiled.
#include <condition_variable>
#include <string>
#include <vector>

namespace fixture {

struct Checkpoint {};
Checkpoint parse_checkpoint(const std::string&);
std::string serialize_checkpoint(const Checkpoint&);
std::vector<double> simulate_many(const std::vector<int>&);
double run_simulation(int);

struct Policy {
  void restore(const Checkpoint&);
};

util::Mutex g_mutex;
std::condition_variable g_cv;

void blocking_inside_guard(Policy& policy, const std::string& text) {
  const util::LockGuard lock(g_mutex);
  const Checkpoint c = parse_checkpoint(text);  // expect(blocking-under-lock)
  policy.restore(c);                            // expect(blocking-under-lock)
  (void)simulate_many({1, 2, 3});               // expect(blocking-under-lock)
  (void)run_simulation(7);                      // expect(blocking-under-lock)
}

void blocking_in_nested_scope(const Checkpoint& c) {
  std::string text;
  {
    const util::LockGuard lock(g_mutex);
    if (!text.empty()) {
      text = serialize_checkpoint(c);  // expect(blocking-under-lock)
    }
  }
  // The guard's scope closed above: clean.
  text = serialize_checkpoint(c);
}

void two_phase_gap_is_clean(Policy& policy, const std::string& text) {
  util::UniqueLock lock(g_mutex);
  lock.unlock();
  // Inside the unlock()/lock() gap: the slow work runs without the lock.
  const Checkpoint c = parse_checkpoint(text);
  policy.restore(c);
  lock.lock();
  policy.restore(c);  // expect(blocking-under-lock)
}

void suppressed_by_design(const std::vector<int>& configs) {
  const util::LockGuard lock(g_mutex);
  // ace-lint: allow(blocking-under-lock)
  (void)simulate_many(configs);
}

util::Mutex g_outer;

void wait_under_two_locks() {
  util::UniqueLock outer(g_outer);
  util::UniqueLock lock(g_mutex);
  lock.wait(g_cv);  // expect(cv-wait-foreign-lock)
}

void wait_under_one_lock_is_clean() {
  util::UniqueLock lock(g_mutex);
  lock.wait(g_cv);
  lock.wait_for(g_cv, {});
}

void wait_after_outer_released() {
  util::UniqueLock outer(g_outer);
  util::UniqueLock lock(g_mutex);
  lock.wait_for(g_cv, {});  // expect(cv-wait-foreign-lock)
  outer.unlock();
  lock.wait(g_cv);
}

}  // namespace fixture
