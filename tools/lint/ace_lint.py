#!/usr/bin/env python3
"""Project lint gate: style-level static analysis for invariants the
compiler cannot express.

Rules
-----
raw-mutex         std::mutex / std::lock_guard / std::unique_lock (and
                  friends) outside src/util/. All other code must use the
                  annotated util::Mutex wrappers so the Clang capability
                  analysis can prove the lock discipline.
float-equality    == / != against a floating-point literal. Exact float
                  comparison is almost always a tolerance bug; the rare
                  legitimate exact-zero tests carry a suppression.
unseeded-rng      std::random_device, rand()/srand(), or a
                  default-constructed standard engine. Every stochastic
                  component must be seeded explicitly for reproducibility.
iostream-logging  std::cout / std::cerr / printf in library code. The
                  library reports through return values and typed
                  exceptions; executables own the terminal.
wallclock-time    Wall-clock time sources (system_clock, time(), localtime,
                  ...). Timestamps make checkpoint/replay nondeterministic;
                  durations must use steady_clock.
kriging-direct-solve
                  linalg::robust_solve / lu_solve / LuDecomposition in an
                  estimator wrapper (*_kriging.cpp/.hpp). The wrappers must
                  route every solve through kriging::KrigingSystem — it
                  owns assembly, the ridge ladder, dedupe and the
                  factorization reuse; a direct solver call would fork the
                  numerics the factor cache relies on being identical.
raw-distance-loop Hand-rolled distance accumulation
                  (`acc += abs(a - b)` and friends) outside the SIMD
                  kernel layer (src/util/simd*). Scans and assembly must
                  go through the util::simd kernels or the canonical
                  l1_distance/l2_distance helpers so the blocked SoA
                  paths and the scalar paths cannot drift apart.
unchecked-syscall A pipe/process syscall (read, write, close, kill,
                  waitpid, ...) called in statement position — its return
                  value silently dropped — in the process-management layer
                  (src/dist/ and the subprocess utility). Every syscall
                  there must be checked or explicitly discarded with a
                  (void) cast: a swallowed EPIPE/EINTR is exactly the kind
                  of half-dead worker the coordinator has to detect.

Suppression
-----------
Append `// ace-lint: allow(rule)` to the offending line, or put it on the
line directly above. Several rules can be listed:
`// ace-lint: allow(float-equality, raw-mutex)`.

Self test
---------
`ace_lint.py --self-test` runs the linter over tools/lint/selftest/ and
verifies that every planted violation (marked `// expect(rule)`) is found,
nothing else is flagged, and suppressed plants stay silent.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_PATHS = [REPO_ROOT / "src"]
SELFTEST_DIR = Path(__file__).resolve().parent / "selftest"
CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

FLOAT_LIT = r"-?(?:(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)f?"

RULES = [
    (
        "raw-mutex",
        re.compile(
            r"std::(?:mutex|timed_mutex|recursive_mutex|shared_mutex"
            r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
        ),
        "raw standard mutex/lock type; use the annotated util::Mutex "
        "wrappers (util/mutex.hpp) outside src/util/",
    ),
    (
        "float-equality",
        re.compile(
            rf"(?:{FLOAT_LIT}\s*[!=]=)|(?:[!=]=\s*{FLOAT_LIT})"
        ),
        "exact floating-point comparison; use a tolerance, or suppress if "
        "the exact test is intentional",
    ),
    (
        "unseeded-rng",
        re.compile(
            r"std::random_device\b"
            r"|\bsrand\s*\("
            r"|(?<![\w:])rand\s*\(\s*\)"
            r"|std::(?:mt19937(?:_64)?|default_random_engine"
            r"|minstd_rand0?|ranlux\d+)\s+\w+\s*;"
        ),
        "nondeterministic or default-constructed RNG; seed explicitly "
        "(util::Rng) so experiments reproduce from their seed",
    ),
    (
        "iostream-logging",
        re.compile(r"std::cout\b|std::cerr\b|\bprintf\s*\("),
        "terminal output from library code; return data or throw typed "
        "errors instead",
    ),
    (
        "wallclock-time",
        re.compile(
            r"std::chrono::system_clock\b"
            r"|\bgettimeofday\s*\("
            r"|\blocaltime(?:_r)?\s*\("
            r"|\bgmtime(?:_r)?\s*\("
            r"|\bstrftime\s*\("
            r"|std::time\s*\("
            r"|(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
        ),
        "wall-clock time source; checkpoints and replay must be "
        "deterministic — use steady_clock for durations",
    ),
    (
        "kriging-direct-solve",
        re.compile(
            r"linalg::robust_solve\b"
            r"|linalg::lu_solve\b"
            r"|linalg::LuDecomposition\b"
            r"|\brobust_solve\s*\("
            r"|\blu_solve\s*\("
            r"|\bLuDecomposition\b"
        ),
        "direct linear solve in an estimator wrapper; route the solve "
        "through kriging::KrigingSystem (it owns assembly, the ridge "
        "ladder and factor reuse)",
    ),
    (
        "raw-distance-loop",
        re.compile(r"\+=\s*(?:std::)?f?abs\s*\([^)]*-"),
        "hand-rolled distance accumulation; use the util::simd kernels or "
        "the canonical l1_distance/l2_distance helpers so scan paths stay "
        "bit-identical",
    ),
    (
        "unchecked-syscall",
        re.compile(
            r"^\s*(?:::)?"
            r"(?:pipe2?|fork|execvp?|read|write|close|dup2|kill"
            r"|waitpid|poll|fcntl|signal)\s*\("
        ),
        "syscall return value dropped in the process-management layer; "
        "check it or discard explicitly with (void) — a swallowed "
        "EPIPE/EINTR hides a half-dead worker",
    ),
]

ALLOW_RE = re.compile(r"ace-lint:\s*allow\(([^)]*)\)")
EXPECT_RE = re.compile(r"expect\(([^)]*)\)")

# src/util/ is the one place the raw lock types may appear: the annotated
# wrappers are implemented there.
RAW_MUTEX_EXEMPT = re.compile(r"(?:^|/)src/util/[^/]+$")

# kriging-direct-solve is scoped *to* the estimator wrappers: any file
# whose basename matches *_kriging.<c++ ext> (ordinary_kriging.cpp,
# simple_kriging.cpp, universal_kriging.cpp — and the selftest fixture
# violations_kriging.cpp). Everywhere else the solver types are legal.
KRIGING_WRAPPER_SCOPE = re.compile(
    r"(?:^|/)[^/]*_kriging\.(?:cpp|hpp|cc|hh|cxx|h)$"
)

# The SIMD kernel layer is where the raw distance loops *live*; the
# scalar reference twins are the canonical loop by definition.
RAW_DISTANCE_EXEMPT = re.compile(r"(?:^|/)src/util/simd[^/]*$")

# unchecked-syscall is scoped to where the raw syscalls live: the
# coordinator/worker layer and the subprocess utility (the selftest
# fixture unchecked_subprocess.cpp matches by basename).
SYSCALL_SCOPE = re.compile(
    r"(?:^|/)src/dist/[^/]+$|(?:^|/)[^/]*subprocess[^/]*$"
)


def strip_code(line: str) -> str:
    """Remove string/char literals and comment text so rule patterns only
    see code. Keeps the line length roughly stable for readability."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            i += 1
            out.append('""' if quote == '"' else "''")
        elif c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is a line comment
        elif c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                break  # multi-line comment; caller tracks continuation
            i = end + 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: Path, line_no: int, rule: str, message: str):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        try:
            shown = self.path.relative_to(REPO_ROOT)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line_no}: [{self.rule}] {self.message}"


def allowed_rules(line: str) -> set[str]:
    m = ALLOW_RE.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",") if r.strip()}


def lint_file(path: Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [Finding(path, 0, "io-error", str(e))]

    findings: list[Finding] = []
    lines = text.splitlines()
    in_block_comment = False
    for idx, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end == -1:
                continue
            line = line[end + 2:]
            in_block_comment = False
        # A /* without */ on the (comment-stripped) line opens a block.
        code = strip_code(line)
        opener = line.rfind("/*")
        if opener != -1 and line.find("*/", opener + 2) == -1 and \
                "//" not in line[:opener]:
            in_block_comment = True

        allows = allowed_rules(raw)
        if idx > 1:
            allows |= allowed_rules(lines[idx - 2])

        for rule, pattern, message in RULES:
            if rule in allows:
                continue
            if rule == "raw-mutex" and RAW_MUTEX_EXEMPT.search(
                    path.as_posix()):
                continue
            if rule == "kriging-direct-solve" and \
                    not KRIGING_WRAPPER_SCOPE.search(path.as_posix()):
                continue
            if rule == "raw-distance-loop" and RAW_DISTANCE_EXEMPT.search(
                    path.as_posix()):
                continue
            if rule == "unchecked-syscall" and not SYSCALL_SCOPE.search(
                    path.as_posix()):
                continue
            if pattern.search(code):
                findings.append(Finding(path, idx, rule, message))
    return findings


def collect_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_file():
            files.append(p)
        elif p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*"))
                if f.is_file() and f.suffix in CXX_SUFFIXES
            )
        else:
            print(f"ace-lint: no such path: {p}", file=sys.stderr)
    return files


def run_lint(paths: list[Path]) -> int:
    findings: list[Finding] = []
    files = collect_files(paths)
    for f in files:
        findings.extend(lint_file(f))
    for finding in findings:
        print(finding)
    print(
        f"ace-lint: {len(files)} files, {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


def run_self_test() -> int:
    """The fixtures plant violations marked `// expect(rule)`; the linter
    must flag exactly the planted set — every plant found (100% recall)
    and nothing else (no false positives)."""
    fixtures = collect_files([SELFTEST_DIR])
    if not fixtures:
        print(f"ace-lint: no fixtures under {SELFTEST_DIR}", file=sys.stderr)
        return 1

    expected: set[tuple[str, int, str]] = set()
    for f in fixtures:
        for idx, raw in enumerate(f.read_text().splitlines(), start=1):
            m = EXPECT_RE.search(raw)
            if m:
                for rule in m.group(1).split(","):
                    expected.add((f.name, idx, rule.strip()))

    actual: set[tuple[str, int, str]] = set()
    for f in fixtures:
        for finding in lint_file(f):
            actual.add((finding.path.name, finding.line_no, finding.rule))

    missed = expected - actual
    spurious = actual - expected
    for name, line, rule in sorted(missed):
        print(f"self-test MISS: {name}:{line} expected [{rule}]")
    for name, line, rule in sorted(spurious):
        print(f"self-test FALSE POSITIVE: {name}:{line} flagged [{rule}]")
    detected = len(expected - missed)
    print(
        f"ace-lint self-test: {detected}/{len(expected)} planted violations "
        f"detected, {len(spurious)} false positive(s)",
        file=sys.stderr,
    )
    return 0 if not missed and not spurious else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: src/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter against the planted "
                             "fixtures in tools/lint/selftest/")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test()
    return run_lint(args.paths or DEFAULT_PATHS)


if __name__ == "__main__":
    sys.exit(main())
