#!/usr/bin/env python3
"""Project lint gate: style-level static analysis for invariants the
compiler cannot express.

Rules
-----
raw-mutex         std::mutex / std::lock_guard / std::unique_lock (and
                  friends) outside src/util/. All other code must use the
                  annotated util::Mutex wrappers so the Clang capability
                  analysis can prove the lock discipline.
float-equality    == / != against a floating-point literal. Exact float
                  comparison is almost always a tolerance bug; the rare
                  legitimate exact-zero tests carry a suppression.
unseeded-rng      std::random_device, rand()/srand(), or a
                  default-constructed standard engine. Every stochastic
                  component must be seeded explicitly for reproducibility.
iostream-logging  std::cout / std::cerr / printf in library code. The
                  library reports through return values and typed
                  exceptions; executables own the terminal.
wallclock-time    Wall-clock time sources (system_clock, time(), localtime,
                  ...). Timestamps make checkpoint/replay nondeterministic;
                  durations must use steady_clock.
kriging-direct-solve
                  linalg::robust_solve / lu_solve / LuDecomposition in an
                  estimator wrapper (*_kriging.cpp/.hpp). The wrappers must
                  route every solve through kriging::KrigingSystem — it
                  owns assembly, the ridge ladder, dedupe and the
                  factorization reuse; a direct solver call would fork the
                  numerics the factor cache relies on being identical.
raw-distance-loop Hand-rolled distance accumulation
                  (`acc += abs(a - b)` and friends) outside the SIMD
                  kernel layer (src/util/simd*). Scans and assembly must
                  go through the util::simd kernels or the canonical
                  l1_distance/l2_distance helpers so the blocked SoA
                  paths and the scalar paths cannot drift apart.
unchecked-syscall A pipe/process syscall (read, write, close, kill,
                  waitpid, ...) called in statement position — its return
                  value silently dropped — in the process-management layer
                  (src/dist/ and the subprocess utility). Every syscall
                  there must be checked or explicitly discarded with a
                  (void) cast: a swallowed EPIPE/EINTR is exactly the kind
                  of half-dead worker the coordinator has to detect.
blocking-under-lock
                  A blocking operation — simulator invocation, checkpoint
                  parse/serialize/replay, file or subprocess I/O, thread
                  join — inside the scope of a util::LockGuard/UniqueLock.
                  Work that can take milliseconds to seconds must not run
                  under a library mutex: every other client of that lock
                  stalls for the duration (the serve manager's old
                  replay-under-lock was exactly this). Tracks unlock()/
                  lock() gaps on UniqueLock, so the two-phase "snapshot
                  under lock, render outside" idiom is clean. Sites where
                  holding the lock is the documented design (the policy
                  mutex across phase-2 simulation, the serializing backend
                  wrapper) carry a justified suppression.
cv-wait-foreign-lock
                  A condition-variable wait while more than one guard is
                  active: the wait releases only its own mutex, so every
                  other held lock stays held for the entire sleep — a
                  deadlock if the waking thread needs one of them.

Suppression
-----------
Append `// ace-lint: allow(rule)` to the offending line, or put it on the
line directly above. Several rules can be listed:
`// ace-lint: allow(float-equality, raw-mutex)`.

Self test
---------
`ace_lint.py --self-test` runs the linter over tools/lint/selftest/ and
verifies that every planted violation (marked `// expect(rule)`) is found,
nothing else is flagged, and suppressed plants stay silent.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_PATHS = [REPO_ROOT / "src"]
SELFTEST_DIR = Path(__file__).resolve().parent / "selftest"
CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

FLOAT_LIT = r"-?(?:(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)f?"

RULES = [
    (
        "raw-mutex",
        re.compile(
            r"std::(?:mutex|timed_mutex|recursive_mutex|shared_mutex"
            r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
        ),
        "raw standard mutex/lock type; use the annotated util::Mutex "
        "wrappers (util/mutex.hpp) outside src/util/",
    ),
    (
        "float-equality",
        re.compile(
            rf"(?:{FLOAT_LIT}\s*[!=]=)|(?:[!=]=\s*{FLOAT_LIT})"
        ),
        "exact floating-point comparison; use a tolerance, or suppress if "
        "the exact test is intentional",
    ),
    (
        "unseeded-rng",
        re.compile(
            r"std::random_device\b"
            r"|\bsrand\s*\("
            r"|(?<![\w:])rand\s*\(\s*\)"
            r"|std::(?:mt19937(?:_64)?|default_random_engine"
            r"|minstd_rand0?|ranlux\d+)\s+\w+\s*;"
        ),
        "nondeterministic or default-constructed RNG; seed explicitly "
        "(util::Rng) so experiments reproduce from their seed",
    ),
    (
        "iostream-logging",
        re.compile(r"std::cout\b|std::cerr\b|\bprintf\s*\("),
        "terminal output from library code; return data or throw typed "
        "errors instead",
    ),
    (
        "wallclock-time",
        re.compile(
            r"std::chrono::system_clock\b"
            r"|\bgettimeofday\s*\("
            r"|\blocaltime(?:_r)?\s*\("
            r"|\bgmtime(?:_r)?\s*\("
            r"|\bstrftime\s*\("
            r"|std::time\s*\("
            r"|(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
        ),
        "wall-clock time source; checkpoints and replay must be "
        "deterministic — use steady_clock for durations",
    ),
    (
        "kriging-direct-solve",
        re.compile(
            r"linalg::robust_solve\b"
            r"|linalg::lu_solve\b"
            r"|linalg::LuDecomposition\b"
            r"|\brobust_solve\s*\("
            r"|\blu_solve\s*\("
            r"|\bLuDecomposition\b"
        ),
        "direct linear solve in an estimator wrapper; route the solve "
        "through kriging::KrigingSystem (it owns assembly, the ridge "
        "ladder and factor reuse)",
    ),
    (
        "raw-distance-loop",
        re.compile(r"\+=\s*(?:std::)?f?abs\s*\([^)]*-"),
        "hand-rolled distance accumulation; use the util::simd kernels or "
        "the canonical l1_distance/l2_distance helpers so scan paths stay "
        "bit-identical",
    ),
    (
        "gate-bypass",
        re.compile(
            r"\b(?:nn_min|gate_nn_floor)\b\s*(?:[<>]=?|[!=]=)"
            r"|(?:[<>]=?|[!=]=)\s*(?:\w+(?:\.|->))*(?:nn_min|gate_nn_floor)\b"
        ),
        "direct neighbour-count threshold comparison outside the "
        "acquisition seam; route simulate-vs-interpolate decisions through "
        "dse::AcquisitionGate (make_gate / attempt / accept)",
    ),
    (
        "unchecked-syscall",
        re.compile(
            r"^\s*(?:::)?"
            r"(?:pipe2?|fork|execvp?|read|write|close|dup2|kill"
            r"|waitpid|poll|fcntl|signal)\s*\("
        ),
        "syscall return value dropped in the process-management layer; "
        "check it or discard explicitly with (void) — a swallowed "
        "EPIPE/EINTR hides a half-dead worker",
    ),
]

ALLOW_RE = re.compile(r"ace-lint:\s*allow\(([^)]*)\)")
EXPECT_RE = re.compile(r"expect\(([^)]*)\)")

# --------------------------------------------------------------------------
# Scope-aware rules. Unlike RULES these are stateful: a brace-depth tracker
# follows every util::LockGuard / util::UniqueLock declaration through its
# scope (including UniqueLock unlock()/lock() gaps), and the rules below
# fire only while at least one guard is active.

GUARD_DECL_RE = re.compile(
    r"\b(?:util::)?(?:LockGuard|UniqueLock)\s+(\w+)\s*[({]")
GUARD_UNLOCK_RE = re.compile(r"\b(\w+)\.unlock\s*\(")
GUARD_RELOCK_RE = re.compile(r"\b(\w+)\.lock\s*\(")
CV_WAIT_RE = re.compile(r"\b\w+\.wait(?:_for)?\s*\(")

BLOCKING_PATTERNS = [
    (re.compile(r"\bsimulate_many\s*\("), "batch simulation"),
    (re.compile(r"\bsimulate\s*\("), "simulator invocation"),
    (re.compile(r"\brun_simulation\s*\("), "simulator invocation"),
    (re.compile(r"\bcall_with_retry\s*\("), "retried simulator call"),
    (re.compile(r"\bparse_checkpoint\s*\("), "checkpoint parse"),
    (re.compile(r"\bserialize_checkpoint\s*\("), "checkpoint render"),
    (re.compile(r"\b(?:save|load)_checkpoint\s*\("), "checkpoint file I/O"),
    (re.compile(r"(?:\.|->)restore\s*\("), "checkpoint replay"),
    (re.compile(r"std::[io]fstream\b"), "file stream I/O"),
    (re.compile(r"\bfopen\s*\("), "file I/O"),
    (re.compile(r"\bwaitpid\s*\("), "subprocess wait"),
    (re.compile(r"(?:\.|->)join\s*\("), "thread join"),
]

BLOCKING_MESSAGE = (
    "{what} inside a lock scope; every other client of that mutex stalls "
    "for the duration — snapshot under the lock, do the slow work outside, "
    "commit under the lock (or suppress where holding the lock is the "
    "documented design)"
)

CV_WAIT_MESSAGE = (
    "condition-variable wait while holding another lock; the wait releases "
    "only its own mutex, so the outer lock is held for the whole sleep"
)


class _Guard:
    """One LockGuard/UniqueLock declaration being tracked through its
    scope."""

    def __init__(self, name: str, depth: int):
        self.name = name
        self.depth = depth  # Brace depth of the enclosing scope.
        self.active = True  # False inside an unlock()/lock() gap.

# src/util/ is the one place the raw lock types may appear: the annotated
# wrappers are implemented there.
RAW_MUTEX_EXEMPT = re.compile(r"(?:^|/)src/util/[^/]+$")

# kriging-direct-solve is scoped *to* the estimator wrappers: any file
# whose basename matches *_kriging.<c++ ext> (ordinary_kriging.cpp,
# simple_kriging.cpp, universal_kriging.cpp — and the selftest fixture
# violations_kriging.cpp). Everywhere else the solver types are legal.
KRIGING_WRAPPER_SCOPE = re.compile(
    r"(?:^|/)[^/]*_kriging\.(?:cpp|hpp|cc|hh|cxx|h)$"
)

# The SIMD kernel layer is where the raw distance loops *live*; the
# scalar reference twins are the canonical loop by definition.
RAW_DISTANCE_EXEMPT = re.compile(r"(?:^|/)src/util/simd[^/]*$")

# gate-bypass is scoped to the decision layer: src/dse/ outside the
# acquisition seam itself (acquisition.hpp/.cpp implement the gates, so
# the nn_min/gate_nn_floor comparisons legitimately live there). The
# selftest fixture violations_dse_gate.cpp matches by basename.
GATE_SCOPE = re.compile(r"(?:^|/)src/dse/[^/]+$|(?:^|/)[^/]*dse_gate[^/]*$")
GATE_EXEMPT = re.compile(r"(?:^|/)acquisition\.(?:cpp|hpp|cc|hh|cxx|h)$")

# unchecked-syscall is scoped to where the raw syscalls live: the
# coordinator/worker layer and the subprocess utility (the selftest
# fixture unchecked_subprocess.cpp matches by basename).
SYSCALL_SCOPE = re.compile(
    r"(?:^|/)src/dist/[^/]+$|(?:^|/)[^/]*subprocess[^/]*$"
)


def strip_code(line: str) -> str:
    """Remove string/char literals and comment text so rule patterns only
    see code. Keeps the line length roughly stable for readability."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            i += 1
            out.append('""' if quote == '"' else "''")
        elif c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is a line comment
        elif c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                break  # multi-line comment; caller tracks continuation
            i = end + 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: Path, line_no: int, rule: str, message: str):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        try:
            shown = self.path.relative_to(REPO_ROOT)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line_no}: [{self.rule}] {self.message}"


def allowed_rules(line: str) -> set[str]:
    m = ALLOW_RE.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",") if r.strip()}


def scan_guard_scopes(code: str, depth: int, guards: list[_Guard],
                      allows: set[str]) -> tuple[int, list[tuple[str, str]]]:
    """Walk one comment/string-stripped line positionally: guard
    declarations, unlock()/lock() gaps, blocking calls and CV waits, each
    judged against the guard state at its own column (so `lock.unlock();
    slow(); lock.lock();` on one line is clean). Mutates `guards`;
    returns (depth after the line, [(rule, message), ...])."""
    events: list[tuple[int, str, str]] = []
    for m in GUARD_DECL_RE.finditer(code):
        events.append((m.start(), "decl", m.group(1)))
    for m in GUARD_UNLOCK_RE.finditer(code):
        events.append((m.start(), "unlock", m.group(1)))
    for m in GUARD_RELOCK_RE.finditer(code):
        events.append((m.start(), "relock", m.group(1)))
    if "cv-wait-foreign-lock" not in allows:
        for m in CV_WAIT_RE.finditer(code):
            events.append((m.start(), "wait", ""))
    if "blocking-under-lock" not in allows:
        for pattern, what in BLOCKING_PATTERNS:
            for m in pattern.finditer(code):
                events.append((m.start(), "blocking", what))

    found: list[tuple[str, str]] = []
    for pos, kind, payload in sorted(events):
        if kind == "decl":
            at = depth + code[:pos].count("{") - code[:pos].count("}")
            guards.append(_Guard(payload, at))
        elif kind == "unlock":
            for g in reversed(guards):
                if g.name == payload and g.active:
                    g.active = False
                    break
        elif kind == "relock":
            for g in reversed(guards):
                if g.name == payload and not g.active:
                    g.active = True
                    break
        elif kind == "wait":
            if sum(1 for g in guards if g.active) >= 2:
                found.append(("cv-wait-foreign-lock", CV_WAIT_MESSAGE))
        elif any(g.active for g in guards):
            found.append(("blocking-under-lock",
                          BLOCKING_MESSAGE.format(what=payload)))

    depth += code.count("{") - code.count("}")
    guards[:] = [g for g in guards if g.depth <= depth]
    return depth, found


def lint_file(path: Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [Finding(path, 0, "io-error", str(e))]

    findings: list[Finding] = []
    lines = text.splitlines()
    in_block_comment = False
    depth = 0
    guards: list[_Guard] = []
    for idx, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end == -1:
                continue
            line = line[end + 2:]
            in_block_comment = False
        # A /* without */ on the (comment-stripped) line opens a block.
        code = strip_code(line)
        opener = line.rfind("/*")
        if opener != -1 and line.find("*/", opener + 2) == -1 and \
                "//" not in line[:opener]:
            in_block_comment = True

        allows = allowed_rules(raw)
        if idx > 1:
            allows |= allowed_rules(lines[idx - 2])

        for rule, pattern, message in RULES:
            if rule in allows:
                continue
            if rule == "raw-mutex" and RAW_MUTEX_EXEMPT.search(
                    path.as_posix()):
                continue
            if rule == "kriging-direct-solve" and \
                    not KRIGING_WRAPPER_SCOPE.search(path.as_posix()):
                continue
            if rule == "raw-distance-loop" and RAW_DISTANCE_EXEMPT.search(
                    path.as_posix()):
                continue
            if rule == "gate-bypass" and (
                    not GATE_SCOPE.search(path.as_posix())
                    or GATE_EXEMPT.search(path.as_posix())):
                continue
            if rule == "unchecked-syscall" and not SYSCALL_SCOPE.search(
                    path.as_posix()):
                continue
            if pattern.search(code):
                findings.append(Finding(path, idx, rule, message))

        depth, scoped = scan_guard_scopes(code, depth, guards, allows)
        for rule, message in scoped:
            findings.append(Finding(path, idx, rule, message))
    return findings


def collect_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_file():
            files.append(p)
        elif p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*"))
                if f.is_file() and f.suffix in CXX_SUFFIXES
            )
        else:
            print(f"ace-lint: no such path: {p}", file=sys.stderr)
    return files


def run_lint(paths: list[Path]) -> int:
    findings: list[Finding] = []
    files = collect_files(paths)
    for f in files:
        findings.extend(lint_file(f))
    for finding in findings:
        print(finding)
    print(
        f"ace-lint: {len(files)} files, {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


def run_self_test() -> int:
    """The fixtures plant violations marked `// expect(rule)`; the linter
    must flag exactly the planted set — every plant found (100% recall)
    and nothing else (no false positives)."""
    fixtures = collect_files([SELFTEST_DIR])
    if not fixtures:
        print(f"ace-lint: no fixtures under {SELFTEST_DIR}", file=sys.stderr)
        return 1

    expected: set[tuple[str, int, str]] = set()
    for f in fixtures:
        for idx, raw in enumerate(f.read_text().splitlines(), start=1):
            m = EXPECT_RE.search(raw)
            if m:
                for rule in m.group(1).split(","):
                    expected.add((f.name, idx, rule.strip()))

    actual: set[tuple[str, int, str]] = set()
    for f in fixtures:
        for finding in lint_file(f):
            actual.add((finding.path.name, finding.line_no, finding.rule))

    missed = expected - actual
    spurious = actual - expected
    for name, line, rule in sorted(missed):
        print(f"self-test MISS: {name}:{line} expected [{rule}]")
    for name, line, rule in sorted(spurious):
        print(f"self-test FALSE POSITIVE: {name}:{line} flagged [{rule}]")
    detected = len(expected - missed)
    print(
        f"ace-lint self-test: {detected}/{len(expected)} planted violations "
        f"detected, {len(spurious)} false positive(s)",
        file=sys.stderr,
    )
    return 0 if not missed and not spurious else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: src/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter against the planted "
                             "fixtures in tools/lint/selftest/")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test()
    return run_lint(args.paths or DEFAULT_PATHS)


if __name__ == "__main__":
    sys.exit(main())
