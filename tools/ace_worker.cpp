// The distributed evaluation worker binary.
//
// Speaks the dist wire protocol on stdin/stdout (stderr stays free for
// diagnostics) and simulates with a named kernel from dist/kernels.hpp:
//
//   ace_worker --kernel lattice
//
// The optional fault-injection flags wrap the kernel in the same
// deterministic FaultInjectingSimulator the in-process benches use, so a
// chaos sweep can make real subprocess workers misbehave on schedule:
//
//   ace_worker --kernel lattice --fault-seed 7 --throw-p 0.1
//              --nan-p 0.05 --faulty-calls 1000000
//
// Exit codes mirror dist::serve(): 0 clean, 1 handshake/usage failure,
// 2 poisoned stream.
#include <cstdlib>
#include <iostream>
#include <string>

#include "dist/kernels.hpp"
#include "dist/worker.hpp"
#include "dse/fault_injection.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --kernel <name> [--fault-seed N] [--throw-p P] [--nan-p P]"
               " [--latency-p P] [--latency-ms N] [--faulty-calls N]\n"
               "kernels:";
  for (const std::string& name : ace::dist::kernel_names())
    std::cerr << ' ' << name;
  std::cerr << '\n';
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string kernel;
  ace::dse::FaultInjectionOptions faults;
  bool inject = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--kernel" && has_value) {
      kernel = argv[++i];
    } else if (arg == "--fault-seed" && has_value) {
      faults.seed = std::strtoull(argv[++i], nullptr, 10);
      inject = true;
    } else if (arg == "--throw-p" && has_value) {
      faults.throw_probability = std::strtod(argv[++i], nullptr);
      inject = true;
    } else if (arg == "--nan-p" && has_value) {
      faults.nan_probability = std::strtod(argv[++i], nullptr);
      inject = true;
    } else if (arg == "--latency-p" && has_value) {
      faults.latency_probability = std::strtod(argv[++i], nullptr);
      inject = true;
    } else if (arg == "--latency-ms" && has_value) {
      faults.latency_ms =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--faulty-calls" && has_value) {
      faults.faulty_calls =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      return usage(argv[0]);
    }
  }
  if (kernel.empty()) return usage(argv[0]);

  ace::dse::SimulatorFn simulate;
  try {
    simulate = ace::dist::find_kernel(kernel);
  } catch (const std::invalid_argument& error) {
    std::cerr << argv[0] << ": " << error.what() << '\n';
    return usage(argv[0]);
  }
  if (inject)
    simulate = ace::dse::FaultInjectingSimulator(std::move(simulate), faults);

  std::ios::sync_with_stdio(false);
  ace::dist::StreamChannel channel(std::cin, std::cout);
  return ace::dist::serve(channel, simulate);
}
