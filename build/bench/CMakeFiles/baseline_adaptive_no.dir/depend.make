# Empty dependencies file for baseline_adaptive_no.
# This may be replaced when dependencies are built.
