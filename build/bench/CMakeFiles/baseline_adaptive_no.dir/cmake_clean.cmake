file(REMOVE_RECURSE
  "CMakeFiles/baseline_adaptive_no.dir/baseline_adaptive_no.cpp.o"
  "CMakeFiles/baseline_adaptive_no.dir/baseline_adaptive_no.cpp.o.d"
  "baseline_adaptive_no"
  "baseline_adaptive_no.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_adaptive_no.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
