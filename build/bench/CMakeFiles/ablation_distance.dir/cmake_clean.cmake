file(REMOVE_RECURSE
  "CMakeFiles/ablation_distance.dir/ablation_distance.cpp.o"
  "CMakeFiles/ablation_distance.dir/ablation_distance.cpp.o.d"
  "ablation_distance"
  "ablation_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
