# Empty dependencies file for table1_fft.
# This may be replaced when dependencies are built.
