file(REMOVE_RECURSE
  "CMakeFiles/table1_fft.dir/table1_fft.cpp.o"
  "CMakeFiles/table1_fft.dir/table1_fft.cpp.o.d"
  "table1_fft"
  "table1_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
