# Empty dependencies file for ablation_nnmin.
# This may be replaced when dependencies are built.
