file(REMOVE_RECURSE
  "CMakeFiles/ablation_nnmin.dir/ablation_nnmin.cpp.o"
  "CMakeFiles/ablation_nnmin.dir/ablation_nnmin.cpp.o.d"
  "ablation_nnmin"
  "ablation_nnmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nnmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
