file(REMOVE_RECURSE
  "CMakeFiles/table1_iir_sensitivity.dir/table1_iir_sensitivity.cpp.o"
  "CMakeFiles/table1_iir_sensitivity.dir/table1_iir_sensitivity.cpp.o.d"
  "table1_iir_sensitivity"
  "table1_iir_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_iir_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
