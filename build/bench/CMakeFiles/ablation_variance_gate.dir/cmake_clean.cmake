file(REMOVE_RECURSE
  "CMakeFiles/ablation_variance_gate.dir/ablation_variance_gate.cpp.o"
  "CMakeFiles/ablation_variance_gate.dir/ablation_variance_gate.cpp.o.d"
  "ablation_variance_gate"
  "ablation_variance_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_variance_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
