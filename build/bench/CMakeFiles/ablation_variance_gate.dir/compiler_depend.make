# Empty compiler generated dependencies file for ablation_variance_gate.
# This may be replaced when dependencies are built.
