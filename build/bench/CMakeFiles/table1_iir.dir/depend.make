# Empty dependencies file for table1_iir.
# This may be replaced when dependencies are built.
