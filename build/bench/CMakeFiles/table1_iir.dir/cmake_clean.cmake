file(REMOVE_RECURSE
  "CMakeFiles/table1_iir.dir/table1_iir.cpp.o"
  "CMakeFiles/table1_iir.dir/table1_iir.cpp.o.d"
  "table1_iir"
  "table1_iir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_iir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
