file(REMOVE_RECURSE
  "CMakeFiles/table1_fir.dir/table1_fir.cpp.o"
  "CMakeFiles/table1_fir.dir/table1_fir.cpp.o.d"
  "table1_fir"
  "table1_fir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
