# Empty compiler generated dependencies file for table1_fir.
# This may be replaced when dependencies are built.
