file(REMOVE_RECURSE
  "CMakeFiles/table1_hevc.dir/table1_hevc.cpp.o"
  "CMakeFiles/table1_hevc.dir/table1_hevc.cpp.o.d"
  "table1_hevc"
  "table1_hevc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_hevc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
