# Empty compiler generated dependencies file for table1_hevc.
# This may be replaced when dependencies are built.
