file(REMOVE_RECURSE
  "CMakeFiles/variogram_fit.dir/variogram_fit.cpp.o"
  "CMakeFiles/variogram_fit.dir/variogram_fit.cpp.o.d"
  "variogram_fit"
  "variogram_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variogram_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
