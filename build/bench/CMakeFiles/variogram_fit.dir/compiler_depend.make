# Empty compiler generated dependencies file for variogram_fit.
# This may be replaced when dependencies are built.
