# Empty compiler generated dependencies file for annealing_kriging.
# This may be replaced when dependencies are built.
