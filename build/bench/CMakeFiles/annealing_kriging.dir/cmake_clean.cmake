file(REMOVE_RECURSE
  "CMakeFiles/annealing_kriging.dir/annealing_kriging.cpp.o"
  "CMakeFiles/annealing_kriging.dir/annealing_kriging.cpp.o.d"
  "annealing_kriging"
  "annealing_kriging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annealing_kriging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
