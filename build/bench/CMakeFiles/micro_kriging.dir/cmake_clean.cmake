file(REMOVE_RECURSE
  "CMakeFiles/micro_kriging.dir/micro_kriging.cpp.o"
  "CMakeFiles/micro_kriging.dir/micro_kriging.cpp.o.d"
  "micro_kriging"
  "micro_kriging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kriging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
