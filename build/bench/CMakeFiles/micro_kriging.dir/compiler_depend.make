# Empty compiler generated dependencies file for micro_kriging.
# This may be replaced when dependencies are built.
