file(REMOVE_RECURSE
  "CMakeFiles/decision_divergence.dir/decision_divergence.cpp.o"
  "CMakeFiles/decision_divergence.dir/decision_divergence.cpp.o.d"
  "decision_divergence"
  "decision_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decision_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
