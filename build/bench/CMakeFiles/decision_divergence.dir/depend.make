# Empty dependencies file for decision_divergence.
# This may be replaced when dependencies are built.
