# Empty dependencies file for speedup.
# This may be replaced when dependencies are built.
