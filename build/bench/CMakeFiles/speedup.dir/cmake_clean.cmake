file(REMOVE_RECURSE
  "CMakeFiles/speedup.dir/speedup.cpp.o"
  "CMakeFiles/speedup.dir/speedup.cpp.o.d"
  "speedup"
  "speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
