# Empty compiler generated dependencies file for fig1_fir_surface.
# This may be replaced when dependencies are built.
