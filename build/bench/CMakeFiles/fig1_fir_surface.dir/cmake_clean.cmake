file(REMOVE_RECURSE
  "CMakeFiles/fig1_fir_surface.dir/fig1_fir_surface.cpp.o"
  "CMakeFiles/fig1_fir_surface.dir/fig1_fir_surface.cpp.o.d"
  "fig1_fir_surface"
  "fig1_fir_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_fir_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
