# Empty compiler generated dependencies file for pareto_quality_cost.
# This may be replaced when dependencies are built.
