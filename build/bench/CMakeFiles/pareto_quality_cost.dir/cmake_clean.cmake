file(REMOVE_RECURSE
  "CMakeFiles/pareto_quality_cost.dir/pareto_quality_cost.cpp.o"
  "CMakeFiles/pareto_quality_cost.dir/pareto_quality_cost.cpp.o.d"
  "pareto_quality_cost"
  "pareto_quality_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_quality_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
