file(REMOVE_RECURSE
  "CMakeFiles/baseline_analytical.dir/baseline_analytical.cpp.o"
  "CMakeFiles/baseline_analytical.dir/baseline_analytical.cpp.o.d"
  "baseline_analytical"
  "baseline_analytical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
