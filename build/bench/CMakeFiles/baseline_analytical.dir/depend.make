# Empty dependencies file for baseline_analytical.
# This may be replaced when dependencies are built.
