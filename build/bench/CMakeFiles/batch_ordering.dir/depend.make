# Empty dependencies file for batch_ordering.
# This may be replaced when dependencies are built.
