file(REMOVE_RECURSE
  "CMakeFiles/batch_ordering.dir/batch_ordering.cpp.o"
  "CMakeFiles/batch_ordering.dir/batch_ordering.cpp.o.d"
  "batch_ordering"
  "batch_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
