# Empty compiler generated dependencies file for table1_dct.
# This may be replaced when dependencies are built.
