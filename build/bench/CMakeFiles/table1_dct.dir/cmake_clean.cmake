file(REMOVE_RECURSE
  "CMakeFiles/table1_dct.dir/table1_dct.cpp.o"
  "CMakeFiles/table1_dct.dir/table1_dct.cpp.o.d"
  "table1_dct"
  "table1_dct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_dct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
