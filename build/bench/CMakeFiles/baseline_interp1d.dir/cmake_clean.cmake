file(REMOVE_RECURSE
  "CMakeFiles/baseline_interp1d.dir/baseline_interp1d.cpp.o"
  "CMakeFiles/baseline_interp1d.dir/baseline_interp1d.cpp.o.d"
  "baseline_interp1d"
  "baseline_interp1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_interp1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
