# Empty dependencies file for baseline_interp1d.
# This may be replaced when dependencies are built.
