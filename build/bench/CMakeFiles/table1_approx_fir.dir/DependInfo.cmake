
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_approx_fir.cpp" "bench/CMakeFiles/table1_approx_fir.dir/table1_approx_fir.cpp.o" "gcc" "bench/CMakeFiles/table1_approx_fir.dir/table1_approx_fir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/approx/CMakeFiles/ace_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/ace_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/ace_video.dir/DependInfo.cmake"
  "/root/repo/build/src/fixedpoint/CMakeFiles/ace_fixedpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ace_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/ace_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ace_util.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ace_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/kriging/CMakeFiles/ace_kriging.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ace_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
