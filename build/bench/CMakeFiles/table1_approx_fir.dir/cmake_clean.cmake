file(REMOVE_RECURSE
  "CMakeFiles/table1_approx_fir.dir/table1_approx_fir.cpp.o"
  "CMakeFiles/table1_approx_fir.dir/table1_approx_fir.cpp.o.d"
  "table1_approx_fir"
  "table1_approx_fir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_approx_fir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
