# Empty dependencies file for table1_approx_fir.
# This may be replaced when dependencies are built.
