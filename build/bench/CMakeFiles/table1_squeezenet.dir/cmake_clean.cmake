file(REMOVE_RECURSE
  "CMakeFiles/table1_squeezenet.dir/table1_squeezenet.cpp.o"
  "CMakeFiles/table1_squeezenet.dir/table1_squeezenet.cpp.o.d"
  "table1_squeezenet"
  "table1_squeezenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_squeezenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
