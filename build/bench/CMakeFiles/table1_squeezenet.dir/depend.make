# Empty dependencies file for table1_squeezenet.
# This may be replaced when dependencies are built.
