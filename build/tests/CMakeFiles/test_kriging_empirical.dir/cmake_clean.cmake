file(REMOVE_RECURSE
  "CMakeFiles/test_kriging_empirical.dir/test_kriging_empirical.cpp.o"
  "CMakeFiles/test_kriging_empirical.dir/test_kriging_empirical.cpp.o.d"
  "test_kriging_empirical"
  "test_kriging_empirical.pdb"
  "test_kriging_empirical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kriging_empirical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
