# Empty compiler generated dependencies file for test_kriging_empirical.
# This may be replaced when dependencies are built.
