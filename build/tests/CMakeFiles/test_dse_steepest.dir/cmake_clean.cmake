file(REMOVE_RECURSE
  "CMakeFiles/test_dse_steepest.dir/test_dse_steepest.cpp.o"
  "CMakeFiles/test_dse_steepest.dir/test_dse_steepest.cpp.o.d"
  "test_dse_steepest"
  "test_dse_steepest.pdb"
  "test_dse_steepest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_steepest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
