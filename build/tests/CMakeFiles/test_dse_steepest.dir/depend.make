# Empty dependencies file for test_dse_steepest.
# This may be replaced when dependencies are built.
