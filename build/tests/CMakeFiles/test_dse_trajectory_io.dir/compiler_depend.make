# Empty compiler generated dependencies file for test_dse_trajectory_io.
# This may be replaced when dependencies are built.
