file(REMOVE_RECURSE
  "CMakeFiles/test_dse_trajectory_io.dir/test_dse_trajectory_io.cpp.o"
  "CMakeFiles/test_dse_trajectory_io.dir/test_dse_trajectory_io.cpp.o.d"
  "test_dse_trajectory_io"
  "test_dse_trajectory_io.pdb"
  "test_dse_trajectory_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_trajectory_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
