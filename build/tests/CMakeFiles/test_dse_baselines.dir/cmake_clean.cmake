file(REMOVE_RECURSE
  "CMakeFiles/test_dse_baselines.dir/test_dse_baselines.cpp.o"
  "CMakeFiles/test_dse_baselines.dir/test_dse_baselines.cpp.o.d"
  "test_dse_baselines"
  "test_dse_baselines.pdb"
  "test_dse_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
