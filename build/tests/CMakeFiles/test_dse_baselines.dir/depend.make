# Empty dependencies file for test_dse_baselines.
# This may be replaced when dependencies are built.
