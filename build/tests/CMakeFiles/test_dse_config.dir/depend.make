# Empty dependencies file for test_dse_config.
# This may be replaced when dependencies are built.
