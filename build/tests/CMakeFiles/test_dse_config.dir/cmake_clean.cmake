file(REMOVE_RECURSE
  "CMakeFiles/test_dse_config.dir/test_dse_config.cpp.o"
  "CMakeFiles/test_dse_config.dir/test_dse_config.cpp.o.d"
  "test_dse_config"
  "test_dse_config.pdb"
  "test_dse_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
