file(REMOVE_RECURSE
  "CMakeFiles/test_noise_model.dir/test_noise_model.cpp.o"
  "CMakeFiles/test_noise_model.dir/test_noise_model.cpp.o.d"
  "test_noise_model"
  "test_noise_model.pdb"
  "test_noise_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
