file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_cholesky_qr.dir/test_linalg_cholesky_qr.cpp.o"
  "CMakeFiles/test_linalg_cholesky_qr.dir/test_linalg_cholesky_qr.cpp.o.d"
  "test_linalg_cholesky_qr"
  "test_linalg_cholesky_qr.pdb"
  "test_linalg_cholesky_qr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_cholesky_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
