# Empty dependencies file for test_linalg_cholesky_qr.
# This may be replaced when dependencies are built.
