file(REMOVE_RECURSE
  "CMakeFiles/test_noise_analysis.dir/test_noise_analysis.cpp.o"
  "CMakeFiles/test_noise_analysis.dir/test_noise_analysis.cpp.o.d"
  "test_noise_analysis"
  "test_noise_analysis.pdb"
  "test_noise_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
