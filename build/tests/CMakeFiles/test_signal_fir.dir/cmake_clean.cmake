file(REMOVE_RECURSE
  "CMakeFiles/test_signal_fir.dir/test_signal_fir.cpp.o"
  "CMakeFiles/test_signal_fir.dir/test_signal_fir.cpp.o.d"
  "test_signal_fir"
  "test_signal_fir.pdb"
  "test_signal_fir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signal_fir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
