# Empty compiler generated dependencies file for test_signal_fir.
# This may be replaced when dependencies are built.
