file(REMOVE_RECURSE
  "CMakeFiles/test_dse_trajectory.dir/test_dse_trajectory.cpp.o"
  "CMakeFiles/test_dse_trajectory.dir/test_dse_trajectory.cpp.o.d"
  "test_dse_trajectory"
  "test_dse_trajectory.pdb"
  "test_dse_trajectory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
