file(REMOVE_RECURSE
  "CMakeFiles/test_policy_invariants.dir/test_policy_invariants.cpp.o"
  "CMakeFiles/test_policy_invariants.dir/test_policy_invariants.cpp.o.d"
  "test_policy_invariants"
  "test_policy_invariants.pdb"
  "test_policy_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
