# Empty compiler generated dependencies file for test_policy_invariants.
# This may be replaced when dependencies are built.
