# Empty compiler generated dependencies file for test_dse_doe.
# This may be replaced when dependencies are built.
