file(REMOVE_RECURSE
  "CMakeFiles/test_dse_doe.dir/test_dse_doe.cpp.o"
  "CMakeFiles/test_dse_doe.dir/test_dse_doe.cpp.o.d"
  "test_dse_doe"
  "test_dse_doe.pdb"
  "test_dse_doe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_doe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
