file(REMOVE_RECURSE
  "CMakeFiles/test_core_table1_extended.dir/test_core_table1_extended.cpp.o"
  "CMakeFiles/test_core_table1_extended.dir/test_core_table1_extended.cpp.o.d"
  "test_core_table1_extended"
  "test_core_table1_extended.pdb"
  "test_core_table1_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_table1_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
