# Empty compiler generated dependencies file for test_core_table1_extended.
# This may be replaced when dependencies are built.
