# Empty compiler generated dependencies file for test_dse_policy.
# This may be replaced when dependencies are built.
