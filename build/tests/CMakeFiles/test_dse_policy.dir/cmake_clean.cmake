file(REMOVE_RECURSE
  "CMakeFiles/test_dse_policy.dir/test_dse_policy.cpp.o"
  "CMakeFiles/test_dse_policy.dir/test_dse_policy.cpp.o.d"
  "test_dse_policy"
  "test_dse_policy.pdb"
  "test_dse_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
