# Empty dependencies file for test_linalg_solve.
# This may be replaced when dependencies are built.
