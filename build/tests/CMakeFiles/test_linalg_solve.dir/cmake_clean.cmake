file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_solve.dir/test_linalg_solve.cpp.o"
  "CMakeFiles/test_linalg_solve.dir/test_linalg_solve.cpp.o.d"
  "test_linalg_solve"
  "test_linalg_solve.pdb"
  "test_linalg_solve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
