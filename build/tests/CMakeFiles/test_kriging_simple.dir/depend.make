# Empty dependencies file for test_kriging_simple.
# This may be replaced when dependencies are built.
