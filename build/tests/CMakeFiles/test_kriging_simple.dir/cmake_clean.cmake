file(REMOVE_RECURSE
  "CMakeFiles/test_kriging_simple.dir/test_kriging_simple.cpp.o"
  "CMakeFiles/test_kriging_simple.dir/test_kriging_simple.cpp.o.d"
  "test_kriging_simple"
  "test_kriging_simple.pdb"
  "test_kriging_simple[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kriging_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
