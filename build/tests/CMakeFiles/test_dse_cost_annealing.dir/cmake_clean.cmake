file(REMOVE_RECURSE
  "CMakeFiles/test_dse_cost_annealing.dir/test_dse_cost_annealing.cpp.o"
  "CMakeFiles/test_dse_cost_annealing.dir/test_dse_cost_annealing.cpp.o.d"
  "test_dse_cost_annealing"
  "test_dse_cost_annealing.pdb"
  "test_dse_cost_annealing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_cost_annealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
