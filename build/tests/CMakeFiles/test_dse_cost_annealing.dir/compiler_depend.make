# Empty compiler generated dependencies file for test_dse_cost_annealing.
# This may be replaced when dependencies are built.
