file(REMOVE_RECURSE
  "CMakeFiles/test_signal_fft.dir/test_signal_fft.cpp.o"
  "CMakeFiles/test_signal_fft.dir/test_signal_fft.cpp.o.d"
  "test_signal_fft"
  "test_signal_fft.pdb"
  "test_signal_fft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signal_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
