# Empty compiler generated dependencies file for test_signal_fft.
# This may be replaced when dependencies are built.
