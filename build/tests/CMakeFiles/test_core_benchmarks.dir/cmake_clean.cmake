file(REMOVE_RECURSE
  "CMakeFiles/test_core_benchmarks.dir/test_core_benchmarks.cpp.o"
  "CMakeFiles/test_core_benchmarks.dir/test_core_benchmarks.cpp.o.d"
  "test_core_benchmarks"
  "test_core_benchmarks.pdb"
  "test_core_benchmarks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
