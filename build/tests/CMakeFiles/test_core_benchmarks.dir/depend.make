# Empty dependencies file for test_core_benchmarks.
# This may be replaced when dependencies are built.
