file(REMOVE_RECURSE
  "CMakeFiles/test_kriging_fit.dir/test_kriging_fit.cpp.o"
  "CMakeFiles/test_kriging_fit.dir/test_kriging_fit.cpp.o.d"
  "test_kriging_fit"
  "test_kriging_fit.pdb"
  "test_kriging_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kriging_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
