# Empty compiler generated dependencies file for test_kriging_fit.
# This may be replaced when dependencies are built.
