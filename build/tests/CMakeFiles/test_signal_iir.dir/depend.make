# Empty dependencies file for test_signal_iir.
# This may be replaced when dependencies are built.
