file(REMOVE_RECURSE
  "CMakeFiles/test_signal_iir.dir/test_signal_iir.cpp.o"
  "CMakeFiles/test_signal_iir.dir/test_signal_iir.cpp.o.d"
  "test_signal_iir"
  "test_signal_iir.pdb"
  "test_signal_iir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signal_iir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
