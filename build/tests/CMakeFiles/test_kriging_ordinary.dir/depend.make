# Empty dependencies file for test_kriging_ordinary.
# This may be replaced when dependencies are built.
