file(REMOVE_RECURSE
  "CMakeFiles/test_kriging_ordinary.dir/test_kriging_ordinary.cpp.o"
  "CMakeFiles/test_kriging_ordinary.dir/test_kriging_ordinary.cpp.o.d"
  "test_kriging_ordinary"
  "test_kriging_ordinary.pdb"
  "test_kriging_ordinary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kriging_ordinary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
