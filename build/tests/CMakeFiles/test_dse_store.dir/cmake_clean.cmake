file(REMOVE_RECURSE
  "CMakeFiles/test_dse_store.dir/test_dse_store.cpp.o"
  "CMakeFiles/test_dse_store.dir/test_dse_store.cpp.o.d"
  "test_dse_store"
  "test_dse_store.pdb"
  "test_dse_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
