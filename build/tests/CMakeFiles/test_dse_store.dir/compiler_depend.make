# Empty compiler generated dependencies file for test_dse_store.
# This may be replaced when dependencies are built.
