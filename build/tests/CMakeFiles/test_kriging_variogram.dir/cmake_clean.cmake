file(REMOVE_RECURSE
  "CMakeFiles/test_kriging_variogram.dir/test_kriging_variogram.cpp.o"
  "CMakeFiles/test_kriging_variogram.dir/test_kriging_variogram.cpp.o.d"
  "test_kriging_variogram"
  "test_kriging_variogram.pdb"
  "test_kriging_variogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kriging_variogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
