# Empty compiler generated dependencies file for test_kriging_variogram.
# This may be replaced when dependencies are built.
