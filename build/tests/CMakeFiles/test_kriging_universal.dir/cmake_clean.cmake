file(REMOVE_RECURSE
  "CMakeFiles/test_kriging_universal.dir/test_kriging_universal.cpp.o"
  "CMakeFiles/test_kriging_universal.dir/test_kriging_universal.cpp.o.d"
  "test_kriging_universal"
  "test_kriging_universal.pdb"
  "test_kriging_universal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kriging_universal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
