# Empty dependencies file for test_kriging_universal.
# This may be replaced when dependencies are built.
