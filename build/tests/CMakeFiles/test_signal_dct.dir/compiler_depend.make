# Empty compiler generated dependencies file for test_signal_dct.
# This may be replaced when dependencies are built.
