file(REMOVE_RECURSE
  "CMakeFiles/test_signal_dct.dir/test_signal_dct.cpp.o"
  "CMakeFiles/test_signal_dct.dir/test_signal_dct.cpp.o.d"
  "test_signal_dct"
  "test_signal_dct.pdb"
  "test_signal_dct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signal_dct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
