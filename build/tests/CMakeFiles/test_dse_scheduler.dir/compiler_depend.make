# Empty compiler generated dependencies file for test_dse_scheduler.
# This may be replaced when dependencies are built.
