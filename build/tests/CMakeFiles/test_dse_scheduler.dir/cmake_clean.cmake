file(REMOVE_RECURSE
  "CMakeFiles/test_dse_scheduler.dir/test_dse_scheduler.cpp.o"
  "CMakeFiles/test_dse_scheduler.dir/test_dse_scheduler.cpp.o.d"
  "test_dse_scheduler"
  "test_dse_scheduler.pdb"
  "test_dse_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
