# Empty compiler generated dependencies file for test_dse_minplus.
# This may be replaced when dependencies are built.
