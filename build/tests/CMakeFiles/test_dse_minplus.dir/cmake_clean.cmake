file(REMOVE_RECURSE
  "CMakeFiles/test_dse_minplus.dir/test_dse_minplus.cpp.o"
  "CMakeFiles/test_dse_minplus.dir/test_dse_minplus.cpp.o.d"
  "test_dse_minplus"
  "test_dse_minplus.pdb"
  "test_dse_minplus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_minplus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
