file(REMOVE_RECURSE
  "CMakeFiles/test_property_kriging.dir/test_property_kriging.cpp.o"
  "CMakeFiles/test_property_kriging.dir/test_property_kriging.cpp.o.d"
  "test_property_kriging"
  "test_property_kriging.pdb"
  "test_property_kriging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_kriging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
