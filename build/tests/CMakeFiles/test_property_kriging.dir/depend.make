# Empty dependencies file for test_property_kriging.
# This may be replaced when dependencies are built.
