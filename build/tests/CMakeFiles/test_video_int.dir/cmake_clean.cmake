file(REMOVE_RECURSE
  "CMakeFiles/test_video_int.dir/test_video_int.cpp.o"
  "CMakeFiles/test_video_int.dir/test_video_int.cpp.o.d"
  "test_video_int"
  "test_video_int.pdb"
  "test_video_int[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_video_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
