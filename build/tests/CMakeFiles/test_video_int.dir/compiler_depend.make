# Empty compiler generated dependencies file for test_video_int.
# This may be replaced when dependencies are built.
