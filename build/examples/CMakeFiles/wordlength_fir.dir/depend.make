# Empty dependencies file for wordlength_fir.
# This may be replaced when dependencies are built.
