file(REMOVE_RECURSE
  "CMakeFiles/wordlength_fir.dir/wordlength_fir.cpp.o"
  "CMakeFiles/wordlength_fir.dir/wordlength_fir.cpp.o.d"
  "wordlength_fir"
  "wordlength_fir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordlength_fir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
