# Empty dependencies file for sensitivity_cnn.
# This may be replaced when dependencies are built.
