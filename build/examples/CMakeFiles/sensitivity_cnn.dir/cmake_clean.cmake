file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_cnn.dir/sensitivity_cnn.cpp.o"
  "CMakeFiles/sensitivity_cnn.dir/sensitivity_cnn.cpp.o.d"
  "sensitivity_cnn"
  "sensitivity_cnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
