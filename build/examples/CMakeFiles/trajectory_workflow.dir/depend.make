# Empty dependencies file for trajectory_workflow.
# This may be replaced when dependencies are built.
