file(REMOVE_RECURSE
  "CMakeFiles/trajectory_workflow.dir/trajectory_workflow.cpp.o"
  "CMakeFiles/trajectory_workflow.dir/trajectory_workflow.cpp.o.d"
  "trajectory_workflow"
  "trajectory_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
