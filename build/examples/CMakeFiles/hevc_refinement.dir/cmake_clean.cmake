file(REMOVE_RECURSE
  "CMakeFiles/hevc_refinement.dir/hevc_refinement.cpp.o"
  "CMakeFiles/hevc_refinement.dir/hevc_refinement.cpp.o.d"
  "hevc_refinement"
  "hevc_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hevc_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
