# Empty compiler generated dependencies file for hevc_refinement.
# This may be replaced when dependencies are built.
