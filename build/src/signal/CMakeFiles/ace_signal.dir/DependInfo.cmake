
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/biquad.cpp" "src/signal/CMakeFiles/ace_signal.dir/biquad.cpp.o" "gcc" "src/signal/CMakeFiles/ace_signal.dir/biquad.cpp.o.d"
  "/root/repo/src/signal/dct.cpp" "src/signal/CMakeFiles/ace_signal.dir/dct.cpp.o" "gcc" "src/signal/CMakeFiles/ace_signal.dir/dct.cpp.o.d"
  "/root/repo/src/signal/fft.cpp" "src/signal/CMakeFiles/ace_signal.dir/fft.cpp.o" "gcc" "src/signal/CMakeFiles/ace_signal.dir/fft.cpp.o.d"
  "/root/repo/src/signal/fir.cpp" "src/signal/CMakeFiles/ace_signal.dir/fir.cpp.o" "gcc" "src/signal/CMakeFiles/ace_signal.dir/fir.cpp.o.d"
  "/root/repo/src/signal/generator.cpp" "src/signal/CMakeFiles/ace_signal.dir/generator.cpp.o" "gcc" "src/signal/CMakeFiles/ace_signal.dir/generator.cpp.o.d"
  "/root/repo/src/signal/iir.cpp" "src/signal/CMakeFiles/ace_signal.dir/iir.cpp.o" "gcc" "src/signal/CMakeFiles/ace_signal.dir/iir.cpp.o.d"
  "/root/repo/src/signal/noise_analysis.cpp" "src/signal/CMakeFiles/ace_signal.dir/noise_analysis.cpp.o" "gcc" "src/signal/CMakeFiles/ace_signal.dir/noise_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fixedpoint/CMakeFiles/ace_fixedpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
