# Empty compiler generated dependencies file for ace_signal.
# This may be replaced when dependencies are built.
