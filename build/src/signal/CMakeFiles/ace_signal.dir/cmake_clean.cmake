file(REMOVE_RECURSE
  "CMakeFiles/ace_signal.dir/biquad.cpp.o"
  "CMakeFiles/ace_signal.dir/biquad.cpp.o.d"
  "CMakeFiles/ace_signal.dir/dct.cpp.o"
  "CMakeFiles/ace_signal.dir/dct.cpp.o.d"
  "CMakeFiles/ace_signal.dir/fft.cpp.o"
  "CMakeFiles/ace_signal.dir/fft.cpp.o.d"
  "CMakeFiles/ace_signal.dir/fir.cpp.o"
  "CMakeFiles/ace_signal.dir/fir.cpp.o.d"
  "CMakeFiles/ace_signal.dir/generator.cpp.o"
  "CMakeFiles/ace_signal.dir/generator.cpp.o.d"
  "CMakeFiles/ace_signal.dir/iir.cpp.o"
  "CMakeFiles/ace_signal.dir/iir.cpp.o.d"
  "CMakeFiles/ace_signal.dir/noise_analysis.cpp.o"
  "CMakeFiles/ace_signal.dir/noise_analysis.cpp.o.d"
  "libace_signal.a"
  "libace_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
