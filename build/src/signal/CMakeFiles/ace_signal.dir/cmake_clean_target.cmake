file(REMOVE_RECURSE
  "libace_signal.a"
)
