file(REMOVE_RECURSE
  "CMakeFiles/ace_video.dir/frame.cpp.o"
  "CMakeFiles/ace_video.dir/frame.cpp.o.d"
  "CMakeFiles/ace_video.dir/hevc_mc.cpp.o"
  "CMakeFiles/ace_video.dir/hevc_mc.cpp.o.d"
  "CMakeFiles/ace_video.dir/hevc_mc_int.cpp.o"
  "CMakeFiles/ace_video.dir/hevc_mc_int.cpp.o.d"
  "libace_video.a"
  "libace_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
