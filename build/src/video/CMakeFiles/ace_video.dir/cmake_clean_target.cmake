file(REMOVE_RECURSE
  "libace_video.a"
)
