
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/frame.cpp" "src/video/CMakeFiles/ace_video.dir/frame.cpp.o" "gcc" "src/video/CMakeFiles/ace_video.dir/frame.cpp.o.d"
  "/root/repo/src/video/hevc_mc.cpp" "src/video/CMakeFiles/ace_video.dir/hevc_mc.cpp.o" "gcc" "src/video/CMakeFiles/ace_video.dir/hevc_mc.cpp.o.d"
  "/root/repo/src/video/hevc_mc_int.cpp" "src/video/CMakeFiles/ace_video.dir/hevc_mc_int.cpp.o" "gcc" "src/video/CMakeFiles/ace_video.dir/hevc_mc_int.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fixedpoint/CMakeFiles/ace_fixedpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
