# Empty dependencies file for ace_video.
# This may be replaced when dependencies are built.
