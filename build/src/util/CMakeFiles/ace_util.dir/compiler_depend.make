# Empty compiler generated dependencies file for ace_util.
# This may be replaced when dependencies are built.
