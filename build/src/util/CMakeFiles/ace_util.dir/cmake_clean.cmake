file(REMOVE_RECURSE
  "CMakeFiles/ace_util.dir/csv.cpp.o"
  "CMakeFiles/ace_util.dir/csv.cpp.o.d"
  "CMakeFiles/ace_util.dir/rng.cpp.o"
  "CMakeFiles/ace_util.dir/rng.cpp.o.d"
  "CMakeFiles/ace_util.dir/stats.cpp.o"
  "CMakeFiles/ace_util.dir/stats.cpp.o.d"
  "CMakeFiles/ace_util.dir/table.cpp.o"
  "CMakeFiles/ace_util.dir/table.cpp.o.d"
  "libace_util.a"
  "libace_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
