file(REMOVE_RECURSE
  "CMakeFiles/ace_fixedpoint.dir/format.cpp.o"
  "CMakeFiles/ace_fixedpoint.dir/format.cpp.o.d"
  "CMakeFiles/ace_fixedpoint.dir/noise_model.cpp.o"
  "CMakeFiles/ace_fixedpoint.dir/noise_model.cpp.o.d"
  "CMakeFiles/ace_fixedpoint.dir/quantizer.cpp.o"
  "CMakeFiles/ace_fixedpoint.dir/quantizer.cpp.o.d"
  "CMakeFiles/ace_fixedpoint.dir/range_tracker.cpp.o"
  "CMakeFiles/ace_fixedpoint.dir/range_tracker.cpp.o.d"
  "libace_fixedpoint.a"
  "libace_fixedpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_fixedpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
