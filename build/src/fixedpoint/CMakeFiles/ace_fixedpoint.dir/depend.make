# Empty dependencies file for ace_fixedpoint.
# This may be replaced when dependencies are built.
