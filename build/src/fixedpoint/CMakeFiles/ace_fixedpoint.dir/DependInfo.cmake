
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fixedpoint/format.cpp" "src/fixedpoint/CMakeFiles/ace_fixedpoint.dir/format.cpp.o" "gcc" "src/fixedpoint/CMakeFiles/ace_fixedpoint.dir/format.cpp.o.d"
  "/root/repo/src/fixedpoint/noise_model.cpp" "src/fixedpoint/CMakeFiles/ace_fixedpoint.dir/noise_model.cpp.o" "gcc" "src/fixedpoint/CMakeFiles/ace_fixedpoint.dir/noise_model.cpp.o.d"
  "/root/repo/src/fixedpoint/quantizer.cpp" "src/fixedpoint/CMakeFiles/ace_fixedpoint.dir/quantizer.cpp.o" "gcc" "src/fixedpoint/CMakeFiles/ace_fixedpoint.dir/quantizer.cpp.o.d"
  "/root/repo/src/fixedpoint/range_tracker.cpp" "src/fixedpoint/CMakeFiles/ace_fixedpoint.dir/range_tracker.cpp.o" "gcc" "src/fixedpoint/CMakeFiles/ace_fixedpoint.dir/range_tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
