file(REMOVE_RECURSE
  "libace_fixedpoint.a"
)
