# CMake generated Testfile for 
# Source directory: /root/repo/src/fixedpoint
# Build directory: /root/repo/build/src/fixedpoint
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
