file(REMOVE_RECURSE
  "CMakeFiles/ace_core.dir/benchmarks.cpp.o"
  "CMakeFiles/ace_core.dir/benchmarks.cpp.o.d"
  "CMakeFiles/ace_core.dir/engine.cpp.o"
  "CMakeFiles/ace_core.dir/engine.cpp.o.d"
  "CMakeFiles/ace_core.dir/table1.cpp.o"
  "CMakeFiles/ace_core.dir/table1.cpp.o.d"
  "libace_core.a"
  "libace_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
