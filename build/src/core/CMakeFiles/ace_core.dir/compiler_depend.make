# Empty compiler generated dependencies file for ace_core.
# This may be replaced when dependencies are built.
