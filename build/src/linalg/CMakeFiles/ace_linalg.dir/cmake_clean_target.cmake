file(REMOVE_RECURSE
  "libace_linalg.a"
)
