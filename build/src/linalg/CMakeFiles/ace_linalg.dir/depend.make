# Empty dependencies file for ace_linalg.
# This may be replaced when dependencies are built.
