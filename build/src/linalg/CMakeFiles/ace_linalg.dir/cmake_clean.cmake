file(REMOVE_RECURSE
  "CMakeFiles/ace_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/ace_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/ace_linalg.dir/lu.cpp.o"
  "CMakeFiles/ace_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/ace_linalg.dir/matrix.cpp.o"
  "CMakeFiles/ace_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/ace_linalg.dir/qr.cpp.o"
  "CMakeFiles/ace_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/ace_linalg.dir/solve.cpp.o"
  "CMakeFiles/ace_linalg.dir/solve.cpp.o.d"
  "CMakeFiles/ace_linalg.dir/vector.cpp.o"
  "CMakeFiles/ace_linalg.dir/vector.cpp.o.d"
  "libace_linalg.a"
  "libace_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
