
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/approx/adders.cpp" "src/approx/CMakeFiles/ace_approx.dir/adders.cpp.o" "gcc" "src/approx/CMakeFiles/ace_approx.dir/adders.cpp.o.d"
  "/root/repo/src/approx/characterize.cpp" "src/approx/CMakeFiles/ace_approx.dir/characterize.cpp.o" "gcc" "src/approx/CMakeFiles/ace_approx.dir/characterize.cpp.o.d"
  "/root/repo/src/approx/multipliers.cpp" "src/approx/CMakeFiles/ace_approx.dir/multipliers.cpp.o" "gcc" "src/approx/CMakeFiles/ace_approx.dir/multipliers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
