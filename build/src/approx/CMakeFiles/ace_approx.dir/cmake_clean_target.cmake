file(REMOVE_RECURSE
  "libace_approx.a"
)
