file(REMOVE_RECURSE
  "CMakeFiles/ace_approx.dir/adders.cpp.o"
  "CMakeFiles/ace_approx.dir/adders.cpp.o.d"
  "CMakeFiles/ace_approx.dir/characterize.cpp.o"
  "CMakeFiles/ace_approx.dir/characterize.cpp.o.d"
  "CMakeFiles/ace_approx.dir/multipliers.cpp.o"
  "CMakeFiles/ace_approx.dir/multipliers.cpp.o.d"
  "libace_approx.a"
  "libace_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
