# Empty compiler generated dependencies file for ace_approx.
# This may be replaced when dependencies are built.
