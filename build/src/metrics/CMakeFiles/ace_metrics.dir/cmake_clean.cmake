file(REMOVE_RECURSE
  "CMakeFiles/ace_metrics.dir/classification.cpp.o"
  "CMakeFiles/ace_metrics.dir/classification.cpp.o.d"
  "CMakeFiles/ace_metrics.dir/error_metrics.cpp.o"
  "CMakeFiles/ace_metrics.dir/error_metrics.cpp.o.d"
  "CMakeFiles/ace_metrics.dir/noise_power.cpp.o"
  "CMakeFiles/ace_metrics.dir/noise_power.cpp.o.d"
  "libace_metrics.a"
  "libace_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
