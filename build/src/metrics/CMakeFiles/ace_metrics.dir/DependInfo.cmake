
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/classification.cpp" "src/metrics/CMakeFiles/ace_metrics.dir/classification.cpp.o" "gcc" "src/metrics/CMakeFiles/ace_metrics.dir/classification.cpp.o.d"
  "/root/repo/src/metrics/error_metrics.cpp" "src/metrics/CMakeFiles/ace_metrics.dir/error_metrics.cpp.o" "gcc" "src/metrics/CMakeFiles/ace_metrics.dir/error_metrics.cpp.o.d"
  "/root/repo/src/metrics/noise_power.cpp" "src/metrics/CMakeFiles/ace_metrics.dir/noise_power.cpp.o" "gcc" "src/metrics/CMakeFiles/ace_metrics.dir/noise_power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
