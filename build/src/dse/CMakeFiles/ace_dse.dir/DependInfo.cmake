
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dse/adaptive_simulation.cpp" "src/dse/CMakeFiles/ace_dse.dir/adaptive_simulation.cpp.o" "gcc" "src/dse/CMakeFiles/ace_dse.dir/adaptive_simulation.cpp.o.d"
  "/root/repo/src/dse/annealing.cpp" "src/dse/CMakeFiles/ace_dse.dir/annealing.cpp.o" "gcc" "src/dse/CMakeFiles/ace_dse.dir/annealing.cpp.o.d"
  "/root/repo/src/dse/config.cpp" "src/dse/CMakeFiles/ace_dse.dir/config.cpp.o" "gcc" "src/dse/CMakeFiles/ace_dse.dir/config.cpp.o.d"
  "/root/repo/src/dse/cost.cpp" "src/dse/CMakeFiles/ace_dse.dir/cost.cpp.o" "gcc" "src/dse/CMakeFiles/ace_dse.dir/cost.cpp.o.d"
  "/root/repo/src/dse/doe.cpp" "src/dse/CMakeFiles/ace_dse.dir/doe.cpp.o" "gcc" "src/dse/CMakeFiles/ace_dse.dir/doe.cpp.o.d"
  "/root/repo/src/dse/interp1d.cpp" "src/dse/CMakeFiles/ace_dse.dir/interp1d.cpp.o" "gcc" "src/dse/CMakeFiles/ace_dse.dir/interp1d.cpp.o.d"
  "/root/repo/src/dse/kriging_policy.cpp" "src/dse/CMakeFiles/ace_dse.dir/kriging_policy.cpp.o" "gcc" "src/dse/CMakeFiles/ace_dse.dir/kriging_policy.cpp.o.d"
  "/root/repo/src/dse/min_plus_one.cpp" "src/dse/CMakeFiles/ace_dse.dir/min_plus_one.cpp.o" "gcc" "src/dse/CMakeFiles/ace_dse.dir/min_plus_one.cpp.o.d"
  "/root/repo/src/dse/scheduler.cpp" "src/dse/CMakeFiles/ace_dse.dir/scheduler.cpp.o" "gcc" "src/dse/CMakeFiles/ace_dse.dir/scheduler.cpp.o.d"
  "/root/repo/src/dse/sim_store.cpp" "src/dse/CMakeFiles/ace_dse.dir/sim_store.cpp.o" "gcc" "src/dse/CMakeFiles/ace_dse.dir/sim_store.cpp.o.d"
  "/root/repo/src/dse/steepest_descent.cpp" "src/dse/CMakeFiles/ace_dse.dir/steepest_descent.cpp.o" "gcc" "src/dse/CMakeFiles/ace_dse.dir/steepest_descent.cpp.o.d"
  "/root/repo/src/dse/trajectory.cpp" "src/dse/CMakeFiles/ace_dse.dir/trajectory.cpp.o" "gcc" "src/dse/CMakeFiles/ace_dse.dir/trajectory.cpp.o.d"
  "/root/repo/src/dse/trajectory_io.cpp" "src/dse/CMakeFiles/ace_dse.dir/trajectory_io.cpp.o" "gcc" "src/dse/CMakeFiles/ace_dse.dir/trajectory_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kriging/CMakeFiles/ace_kriging.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ace_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ace_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ace_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
