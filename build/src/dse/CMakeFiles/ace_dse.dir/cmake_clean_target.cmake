file(REMOVE_RECURSE
  "libace_dse.a"
)
