file(REMOVE_RECURSE
  "CMakeFiles/ace_dse.dir/adaptive_simulation.cpp.o"
  "CMakeFiles/ace_dse.dir/adaptive_simulation.cpp.o.d"
  "CMakeFiles/ace_dse.dir/annealing.cpp.o"
  "CMakeFiles/ace_dse.dir/annealing.cpp.o.d"
  "CMakeFiles/ace_dse.dir/config.cpp.o"
  "CMakeFiles/ace_dse.dir/config.cpp.o.d"
  "CMakeFiles/ace_dse.dir/cost.cpp.o"
  "CMakeFiles/ace_dse.dir/cost.cpp.o.d"
  "CMakeFiles/ace_dse.dir/doe.cpp.o"
  "CMakeFiles/ace_dse.dir/doe.cpp.o.d"
  "CMakeFiles/ace_dse.dir/interp1d.cpp.o"
  "CMakeFiles/ace_dse.dir/interp1d.cpp.o.d"
  "CMakeFiles/ace_dse.dir/kriging_policy.cpp.o"
  "CMakeFiles/ace_dse.dir/kriging_policy.cpp.o.d"
  "CMakeFiles/ace_dse.dir/min_plus_one.cpp.o"
  "CMakeFiles/ace_dse.dir/min_plus_one.cpp.o.d"
  "CMakeFiles/ace_dse.dir/scheduler.cpp.o"
  "CMakeFiles/ace_dse.dir/scheduler.cpp.o.d"
  "CMakeFiles/ace_dse.dir/sim_store.cpp.o"
  "CMakeFiles/ace_dse.dir/sim_store.cpp.o.d"
  "CMakeFiles/ace_dse.dir/steepest_descent.cpp.o"
  "CMakeFiles/ace_dse.dir/steepest_descent.cpp.o.d"
  "CMakeFiles/ace_dse.dir/trajectory.cpp.o"
  "CMakeFiles/ace_dse.dir/trajectory.cpp.o.d"
  "CMakeFiles/ace_dse.dir/trajectory_io.cpp.o"
  "CMakeFiles/ace_dse.dir/trajectory_io.cpp.o.d"
  "libace_dse.a"
  "libace_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
