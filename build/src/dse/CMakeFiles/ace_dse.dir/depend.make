# Empty dependencies file for ace_dse.
# This may be replaced when dependencies are built.
