file(REMOVE_RECURSE
  "CMakeFiles/ace_nn.dir/dataset.cpp.o"
  "CMakeFiles/ace_nn.dir/dataset.cpp.o.d"
  "CMakeFiles/ace_nn.dir/injection.cpp.o"
  "CMakeFiles/ace_nn.dir/injection.cpp.o.d"
  "CMakeFiles/ace_nn.dir/layers.cpp.o"
  "CMakeFiles/ace_nn.dir/layers.cpp.o.d"
  "CMakeFiles/ace_nn.dir/squeezenet.cpp.o"
  "CMakeFiles/ace_nn.dir/squeezenet.cpp.o.d"
  "CMakeFiles/ace_nn.dir/tensor.cpp.o"
  "CMakeFiles/ace_nn.dir/tensor.cpp.o.d"
  "libace_nn.a"
  "libace_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
