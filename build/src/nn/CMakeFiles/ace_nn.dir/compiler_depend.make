# Empty compiler generated dependencies file for ace_nn.
# This may be replaced when dependencies are built.
