file(REMOVE_RECURSE
  "libace_nn.a"
)
