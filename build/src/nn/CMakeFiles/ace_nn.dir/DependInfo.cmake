
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/dataset.cpp" "src/nn/CMakeFiles/ace_nn.dir/dataset.cpp.o" "gcc" "src/nn/CMakeFiles/ace_nn.dir/dataset.cpp.o.d"
  "/root/repo/src/nn/injection.cpp" "src/nn/CMakeFiles/ace_nn.dir/injection.cpp.o" "gcc" "src/nn/CMakeFiles/ace_nn.dir/injection.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/ace_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/ace_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/squeezenet.cpp" "src/nn/CMakeFiles/ace_nn.dir/squeezenet.cpp.o" "gcc" "src/nn/CMakeFiles/ace_nn.dir/squeezenet.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/ace_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/ace_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ace_util.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ace_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
