# Empty dependencies file for ace_kriging.
# This may be replaced when dependencies are built.
