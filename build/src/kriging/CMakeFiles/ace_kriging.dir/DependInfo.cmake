
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kriging/empirical_variogram.cpp" "src/kriging/CMakeFiles/ace_kriging.dir/empirical_variogram.cpp.o" "gcc" "src/kriging/CMakeFiles/ace_kriging.dir/empirical_variogram.cpp.o.d"
  "/root/repo/src/kriging/fit.cpp" "src/kriging/CMakeFiles/ace_kriging.dir/fit.cpp.o" "gcc" "src/kriging/CMakeFiles/ace_kriging.dir/fit.cpp.o.d"
  "/root/repo/src/kriging/ordinary_kriging.cpp" "src/kriging/CMakeFiles/ace_kriging.dir/ordinary_kriging.cpp.o" "gcc" "src/kriging/CMakeFiles/ace_kriging.dir/ordinary_kriging.cpp.o.d"
  "/root/repo/src/kriging/simple_kriging.cpp" "src/kriging/CMakeFiles/ace_kriging.dir/simple_kriging.cpp.o" "gcc" "src/kriging/CMakeFiles/ace_kriging.dir/simple_kriging.cpp.o.d"
  "/root/repo/src/kriging/universal_kriging.cpp" "src/kriging/CMakeFiles/ace_kriging.dir/universal_kriging.cpp.o" "gcc" "src/kriging/CMakeFiles/ace_kriging.dir/universal_kriging.cpp.o.d"
  "/root/repo/src/kriging/variogram_model.cpp" "src/kriging/CMakeFiles/ace_kriging.dir/variogram_model.cpp.o" "gcc" "src/kriging/CMakeFiles/ace_kriging.dir/variogram_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/ace_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
