file(REMOVE_RECURSE
  "CMakeFiles/ace_kriging.dir/empirical_variogram.cpp.o"
  "CMakeFiles/ace_kriging.dir/empirical_variogram.cpp.o.d"
  "CMakeFiles/ace_kriging.dir/fit.cpp.o"
  "CMakeFiles/ace_kriging.dir/fit.cpp.o.d"
  "CMakeFiles/ace_kriging.dir/ordinary_kriging.cpp.o"
  "CMakeFiles/ace_kriging.dir/ordinary_kriging.cpp.o.d"
  "CMakeFiles/ace_kriging.dir/simple_kriging.cpp.o"
  "CMakeFiles/ace_kriging.dir/simple_kriging.cpp.o.d"
  "CMakeFiles/ace_kriging.dir/universal_kriging.cpp.o"
  "CMakeFiles/ace_kriging.dir/universal_kriging.cpp.o.d"
  "CMakeFiles/ace_kriging.dir/variogram_model.cpp.o"
  "CMakeFiles/ace_kriging.dir/variogram_model.cpp.o.d"
  "libace_kriging.a"
  "libace_kriging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_kriging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
