file(REMOVE_RECURSE
  "libace_kriging.a"
)
