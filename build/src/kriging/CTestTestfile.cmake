# CMake generated Testfile for 
# Source directory: /root/repo/src/kriging
# Build directory: /root/repo/build/src/kriging
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
