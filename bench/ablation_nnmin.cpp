// Reproduces the closing ablation of Sec. IV: raising Nn,min (the minimum
// neighbour count required before kriging replaces a simulation) reduces
// the interpolated fraction while slightly reducing interpolation error.
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/table1.hpp"
#include "util/table.hpp"

namespace {

void sweep(const ace::core::ApplicationBenchmark& bench,
           ace::util::TablePrinter& table) {
  for (const std::size_t nn_min : {1u, 2u, 3u}) {
    ace::dse::PolicyOptions base;
    base.nn_min = nn_min;
    const auto result = ace::core::run_table1(bench, {3}, base);
    const auto& row = result.rows.front();
    table.add_row({bench.name, std::to_string(nn_min),
                   ace::util::fmt(row.p_percent, 2),
                   ace::util::fmt(row.j_mean, 2),
                   ace::util::fmt(row.eps_max, 2),
                   ace::util::fmt(row.eps_mean, 2)});
  }
}

}  // namespace

int main() {
  std::cout << "=== Sec. IV ablation: Nn,min at d = 3 ===\n";
  ace::util::TablePrinter table(
      {"benchmark", "Nn,min", "p(%)", "j", "max eps", "mu eps"});
  sweep(ace::core::make_fir_benchmark(), table);
  sweep(ace::core::make_iir_benchmark(), table);
  sweep(ace::core::make_fft_benchmark(), table);
  table.print(std::cout);
  std::cout << "\npaper: Nn,min = 2 'only reduces the number of\n"
               "configurations that can be interpolated while slightly\n"
               "increasing the interpolation error' vs the default\n";
  return 0;
}
