// Tentpole: parallel batch evaluation of candidate competitions. Each
// min+1 greedy step evaluates Nv independent +1-bit candidates; with a
// latency-bound simulator (bit-accurate simulations take milliseconds to
// hours) the policy's batch engine overlaps those simulations on a thread
// pool. The reduction is index-ordered, so the parallel run must produce
// bit-identical decisions to the serial one — this bench checks that and
// reports the throughput ratio (target: >= 2x with 4 workers at Nv >= 8).
#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <thread>

#include "dse/kriging_policy.hpp"
#include "dse/min_plus_one.hpp"
#include "dse/scheduler.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr auto kSimLatency = std::chrono::milliseconds(2);

/// Deterministic smooth accuracy surface with per-variable weights, plus a
/// fixed latency per call standing in for a slow bit-accurate simulator.
ace::dse::SimulatorFn make_simulator(std::size_t nv, int w_max) {
  return [nv, w_max](const ace::dse::Config& w) {
    std::this_thread::sleep_for(kSimLatency);
    double acc = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < nv; ++i) {
      const double weight = 1.0 + 0.05 * static_cast<double>(i);
      acc += weight * static_cast<double>(w[i]);
      norm += weight * static_cast<double>(w_max);
    }
    return acc / norm;
  };
}

struct RunResult {
  ace::dse::MinPlusOneResult optimum;
  ace::dse::PolicyStats stats;
  double seconds = 0.0;
};

RunResult run(std::size_t nv, ace::util::ThreadPool* pool) {
  ace::dse::MinPlusOneOptions opt;
  opt.nv = nv;
  opt.w_max = 12;
  opt.w_min = 4;
  opt.lambda_min = 0.5;

  ace::dse::PolicyOptions policy_opt;
  policy_opt.distance = 3;
  ace::dse::KrigingPolicy policy(policy_opt);
  const auto simulate = make_simulator(nv, opt.w_max);
  const auto evaluate =
      ace::dse::policy_batch_evaluator(policy, simulate, pool);

  RunResult result;
  const auto t0 = Clock::now();
  result.optimum = ace::dse::optimize_word_lengths(
      evaluate, opt, ace::dse::Config(nv, opt.w_min));
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.stats = policy.stats();
  return result;
}

}  // namespace

int main() {
  std::cout << "=== Parallel candidate competitions (4 workers, "
            << kSimLatency.count() << " ms/sim) ===\n";
  ace::util::TablePrinter table({"Nv", "steps", "sims", "interp",
                                 "serial (s)", "parallel (s)", "speedup"});
  bool all_identical = true;
  bool all_fast = true;
  ace::dse::PolicyStats last_stats;
  for (const std::size_t nv : {8u, 16u, 23u}) {
    const RunResult serial = run(nv, nullptr);
    ace::util::ThreadPool pool(4);
    const RunResult parallel = run(nv, &pool);
    last_stats = parallel.stats;

    const bool identical =
        serial.optimum.decisions == parallel.optimum.decisions &&
        serial.optimum.w_res == parallel.optimum.w_res &&
        serial.optimum.final_lambda == parallel.optimum.final_lambda;
    all_identical = all_identical && identical;
    const double speedup = serial.seconds / parallel.seconds;
    all_fast = all_fast && speedup >= 2.0;

    table.add_row({std::to_string(nv),
                   std::to_string(serial.optimum.decisions.size()),
                   std::to_string(serial.stats.simulated),
                   std::to_string(serial.stats.interpolated),
                   ace::util::fmt(serial.seconds, 3),
                   ace::util::fmt(parallel.seconds, 3),
                   ace::util::fmt(speedup, 2) +
                       (identical ? "" : "  DECISIONS DIVERGE")});
    if (!identical)
      std::cerr << "FAIL: parallel decisions diverge from serial at Nv="
                << nv << "\n";
  }
  table.print(std::cout);
  std::cout << "\nidentical decisions: " << (all_identical ? "yes" : "NO")
            << ", >=2x on every size: " << (all_fast ? "yes" : "NO")
            << "\nthe pool overlaps simulation latency; the index-ordered"
            << "\nreduction keeps results bit-identical to the serial run\n";
  std::cout << "\nconditioning (last parallel run): rcond mean="
            << ace::util::fmt_sci(last_stats.rcond_per_solve.mean())
            << " min=" << ace::util::fmt_sci(last_stats.rcond_per_solve.min())
            << " ridge_fallbacks=" << last_stats.ridge_fallbacks
            << " full_factorizations=" << last_stats.full_factorizations
            << "\n(every interpolation reports its pivot-ratio condition"
            << "\nestimate; a falling mean or a rising ridge count flags a"
            << "\nconditioning regression before solves start failing)\n";
  std::cout << "\nfault counters (last parallel run): simulator_faults="
            << last_stats.simulator_faults << " retries=" << last_stats.retries
            << " timeouts=" << last_stats.timeouts
            << " quarantined=" << last_stats.quarantined
            << " checkpoints_written=" << last_stats.checkpoints_written
            << "\n(all zero on this clean workload: the fault subsystem is"
            << "\npure bookkeeping until a simulator actually misbehaves —"
            << "\nsee bench/fault_recovery for the faulted counterpart)\n";
  return all_identical ? 0 : 1;
}
