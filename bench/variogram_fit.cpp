// Methodological bench (Sec. III-A): quality of the semi-variogram
// identification per benchmark. Builds the exact-run trajectory, computes
// the empirical semi-variogram of the accuracy field over the explored
// configurations, fits every parametric family, and reports the weighted
// SSE of each, flagging the model the policy would select.
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/table1.hpp"
#include "dse/config.hpp"
#include "kriging/empirical_variogram.hpp"
#include "kriging/fit.hpp"
#include "util/table.hpp"

namespace {

void analyze(const ace::core::ApplicationBenchmark& bench,
             ace::util::TablePrinter& table) {
  const auto result = ace::core::run_table1(bench, {3});
  std::vector<std::vector<double>> points;
  points.reserve(result.trajectory.size());
  for (const auto& c : result.trajectory.configs)
    points.push_back(ace::dse::to_real(c));
  const ace::kriging::EmpiricalVariogram ev(points, result.trajectory.values,
                                            ace::kriging::l1_distance);
  const auto fits = ace::kriging::fit_all(ev);
  for (std::size_t i = 0; i < fits.size(); ++i) {
    table.add_row({bench.name, ace::kriging::family_name(fits[i].family),
                   ace::util::fmt(fits[i].weighted_sse, 3),
                   i == 0 ? "<- selected" : ""});
  }
}

}  // namespace

int main() {
  std::cout << "=== Sec. III-A: semi-variogram identification ===\n";
  ace::util::TablePrinter table({"benchmark", "family", "weighted SSE", ""});
  {
    ace::core::SignalBenchOptions o;
    o.samples = 256;
    analyze(ace::core::make_fir_benchmark(o), table);
    analyze(ace::core::make_iir_benchmark(o), table);
    analyze(ace::core::make_fft_benchmark(o), table);
  }
  {
    ace::core::CnnBenchOptions o;
    o.images = 60;
    analyze(ace::core::make_squeezenet_benchmark(o), table);
  }
  table.print(std::cout);
  std::cout << "\nlower SSE = better fit of γ̂(d); the policy picks the\n"
               "lowest-SSE family once per application (paper Sec. III-A)\n";
  return 0;
}
