// Extension: evaluation-order scheduling for batch DSE. The policy's
// interpolated fraction depends on the order a known batch is evaluated
// in; a maximin (farthest-point-first) spine lets the dense remainder
// interpolate. Measured on dense lattice clouds around each benchmark's
// solution region.
#include <iostream>

#include "core/benchmarks.hpp"
#include "dse/scheduler.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

/// GA-generation-like batch: each candidate mutates a couple of the
/// centre's coordinates by ±1..±2 (population members cluster tightly, as
/// real evolutionary DSE populations do — uniform clouds in many
/// dimensions would place every pair beyond any practical L1 radius).
std::vector<ace::dse::Config> cloud_around(const ace::dse::Config& center,
                                           std::size_t count, int lo, int hi,
                                           ace::util::Rng& rng) {
  std::vector<ace::dse::Config> batch;
  while (batch.size() < count) {
    ace::dse::Config c = center;
    const int mutations = rng.uniform_int(1, 2);
    for (int m = 0; m < mutations; ++m) {
      auto& v = c[rng.index(c.size())];
      v = std::clamp(v + (rng.bernoulli(0.5) ? 1 : -1) *
                             rng.uniform_int(1, 2),
                     lo, hi);
    }
    batch.push_back(std::move(c));
  }
  return batch;
}

void compare(const ace::core::ApplicationBenchmark& bench,
             ace::util::TablePrinter& table) {
  ace::util::Rng rng(4242);
  const auto& opt = bench.min_plus_one;
  const ace::dse::Config center(bench.nv, (opt.w_min + opt.w_max) / 2);
  const auto batch = cloud_around(center, 120, opt.w_min, opt.w_max, rng);

  ace::dse::PolicyOptions options;
  options.distance = 3;

  ace::dse::KrigingPolicy as_given(options);
  const std::size_t given =
      ace::dse::evaluate_batch(as_given, bench.simulate, batch);

  ace::dse::KrigingPolicy scheduled(options);
  const std::size_t maximin = ace::dse::evaluate_batch(
      scheduled, bench.simulate, ace::dse::maximin_order(batch));

  table.add_row({bench.name, std::to_string(batch.size()),
                 std::to_string(given),
                 ace::util::fmt_pct(static_cast<double>(given) /
                                        static_cast<double>(batch.size()),
                                    1),
                 std::to_string(maximin),
                 ace::util::fmt_pct(static_cast<double>(maximin) /
                                        static_cast<double>(batch.size()),
                                    1)});
}

}  // namespace

int main() {
  std::cout << "=== Extension: batch evaluation ordering (d = 3) ===\n";
  ace::util::TablePrinter table({"benchmark", "batch", "interp (given)",
                                 "p given (%)", "interp (maximin)",
                                 "p maximin (%)"});
  ace::core::SignalBenchOptions signal_opt;
  signal_opt.samples = 256;
  compare(ace::core::make_fir_benchmark(signal_opt), table);
  compare(ace::core::make_iir_benchmark(signal_opt), table);
  compare(ace::core::make_fft_benchmark(signal_opt), table);
  compare(ace::core::make_dct_benchmark(), table);
  table.print(std::cout);
  std::cout << "\na farthest-point-first spine simulates the spread-out\n"
               "configurations early so the dense remainder interpolates —\n"
               "useful whenever a DSE proposes candidates in batches\n";
  return 0;
}
