// Reproduces the Sec. IV observation that kriging-in-the-loop changes
// roughly 10% of the optimizer's greedy decisions while converging to a
// similar final configuration.
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/table1.hpp"
#include "dse/config.hpp"
#include "util/table.hpp"

namespace {

void report(const ace::core::ApplicationBenchmark& bench, int distance,
            ace::util::TablePrinter& table) {
  ace::dse::PolicyOptions options;
  options.distance = distance;
  const auto r = ace::core::run_decision_divergence(bench, options);
  table.add_row({bench.name, std::to_string(distance),
                 std::to_string(r.exact_steps),
                 std::to_string(r.kriging_steps),
                 ace::util::fmt(r.diverging_percent, 1),
                 std::to_string(r.result_l1_gap)});
}

}  // namespace

int main() {
  std::cout << "=== Sec. IV: optimizer decision divergence with kriging ===\n";
  ace::util::TablePrinter table({"benchmark", "d", "steps(exact)",
                                 "steps(kriging)", "diverging (%)",
                                 "final L1 gap"});
  for (int d = 2; d <= 4; ++d)
    report(ace::core::make_fir_benchmark(), d, table);
  for (int d = 2; d <= 3; ++d)
    report(ace::core::make_iir_benchmark(), d, table);
  {
    ace::core::SignalBenchOptions o;
    o.samples = 256;
    report(ace::core::make_fft_benchmark(o), 2, table);
  }
  table.print(std::cout);
  std::cout << "\npaper: ~10% of decisions differ; the greedy search\n"
               "compensates and lands on a similar result (small L1 gap)\n";
  return 0;
}
