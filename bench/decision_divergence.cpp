// Reproduces the Sec. IV observation that kriging-in-the-loop changes
// roughly 10% of the optimizer's greedy decisions while converging to a
// similar final configuration.
//
// It also doubles as the SIMD identity gate (DESIGN.md §10): every
// benchmark row is run with the vector kernels toggled off and on, and
// the two kriging-guided optimizer trajectories must match *exactly* —
// same step count, same divergence-vs-exact profile, same final
// configuration. The kernels are bit-identical to their scalar twins, so
// any mismatch here is a kernel regression, not round-off.
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/table1.hpp"
#include "dse/config.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

namespace {

bool g_simd_identical = true;

void report(const ace::core::ApplicationBenchmark& bench, int distance,
            ace::util::TablePrinter& table) {
  ace::dse::PolicyOptions options;
  options.distance = distance;

  ace::util::simd::set_enabled(false);
  const auto scalar = ace::core::run_decision_divergence(bench, options);
  ace::util::simd::set_enabled(true);
  const auto r = ace::core::run_decision_divergence(bench, options);

  const bool identical = scalar.exact_steps == r.exact_steps &&
                         scalar.kriging_steps == r.kriging_steps &&
                         scalar.diverging == r.diverging &&
                         scalar.exact_result == r.exact_result &&
                         scalar.kriging_result == r.kriging_result;
  g_simd_identical = g_simd_identical && identical;

  table.add_row({bench.name, std::to_string(distance),
                 std::to_string(r.exact_steps),
                 std::to_string(r.kriging_steps),
                 ace::util::fmt(r.diverging_percent, 1),
                 std::to_string(r.result_l1_gap),
                 identical ? "yes" : "NO"});
}

}  // namespace

int main() {
  std::cout << "=== Sec. IV: optimizer decision divergence with kriging ===\n";
  ace::util::TablePrinter table({"benchmark", "d", "steps(exact)",
                                 "steps(kriging)", "diverging (%)",
                                 "final L1 gap", "simd=scalar"});
  for (int d = 2; d <= 4; ++d)
    report(ace::core::make_fir_benchmark(), d, table);
  for (int d = 2; d <= 3; ++d)
    report(ace::core::make_iir_benchmark(), d, table);
  {
    ace::core::SignalBenchOptions o;
    o.samples = 256;
    report(ace::core::make_fft_benchmark(o), 2, table);
  }
  table.print(std::cout);
  std::cout << "\npaper: ~10% of decisions differ; the greedy search\n"
               "compensates and lands on a similar result (small L1 gap)\n";
  std::cout << "\nSIMD identity gate (backend: "
            << ace::util::simd::backend() << "): "
            << (g_simd_identical
                    ? "PASS — scalar and vector runs are decision-identical"
                    : "FAIL — scalar/vector trajectories diverged")
            << '\n';
  return g_simd_identical ? 0 : 1;
}
