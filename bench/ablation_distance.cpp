// Extension ablation: L1 (the paper's choice, Algs. 1-2 line 9) vs L2
// neighbourhood/variogram distance at the same radius. On an integer
// lattice the L2 ball is strictly contained in the L1 ball of equal
// radius, so L2 trades interpolated fraction for tighter support.
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/table1.hpp"
#include "util/table.hpp"

namespace {

void compare(const ace::core::ApplicationBenchmark& bench, int distance,
             ace::util::TablePrinter& table) {
  const auto with_metric = [&](bool l2) {
    ace::dse::PolicyOptions base;
    base.use_l2_distance = l2;
    return ace::core::run_table1(bench, {distance}, base).rows.front();
  };
  const auto l1 = with_metric(false);
  const auto l2 = with_metric(true);
  table.add_row({bench.name, std::to_string(distance),
                 ace::util::fmt(l1.p_percent, 1), ace::util::fmt(l1.eps_mean, 2),
                 ace::util::fmt(l2.p_percent, 1),
                 ace::util::fmt(l2.eps_mean, 2)});
}

}  // namespace

int main() {
  std::cout << "=== Extension ablation: L1 vs L2 neighbourhood distance ===\n";
  ace::util::TablePrinter table(
      {"benchmark", "d", "L1 p(%)", "L1 mu eps", "L2 p(%)", "L2 mu eps"});
  ace::core::SignalBenchOptions signal_opt;
  signal_opt.w_max = 20;
  for (int d : {2, 3, 4}) {
    compare(ace::core::make_iir_benchmark(signal_opt), d, table);
    compare(ace::core::make_fft_benchmark(), d, table);
  }
  table.print(std::cout);
  std::cout << "\nsame radius in both metrics; the L2 ball is smaller, so\n"
               "p drops but the retained neighbours are geometrically\n"
               "closer to the query\n";
  return 0;
}
