// Extension ablation: Latin-hypercube warm start of the simulated store.
// The paper's policy starts cold — the first configurations are always
// simulated. Pre-simulating a small space-filling design costs its own
// simulations but lets kriging engage from the optimizer's first step and
// stabilizes the variogram identification.
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/engine.hpp"
#include "dse/doe.hpp"
#include "util/table.hpp"

namespace {

struct RunCounts {
  std::size_t simulated = 0;
  std::size_t interpolated = 0;
  bool met = false;
};

RunCounts run(const ace::core::ApplicationBenchmark& bench,
              std::size_t design_points) {
  ace::dse::PolicyOptions options;
  options.distance = 3;
  ace::core::ErrorEvaluationEngine engine(bench.simulate, options,
                                          bench.metric);
  if (design_points > 0) {
    ace::util::Rng rng(12345);
    const ace::dse::Lattice lattice(bench.nv, bench.min_plus_one.w_min,
                                    bench.min_plus_one.w_max);
    const auto design =
        ace::dse::latin_hypercube_sample(lattice, design_points, rng);
    for (const auto& c : design) (void)engine.evaluate(c);
  }
  const auto result = engine.optimize_word_lengths(bench.min_plus_one);
  RunCounts counts;
  counts.simulated = engine.stats().simulated;
  counts.interpolated = engine.stats().interpolated;
  counts.met = result.constraint_met;
  return counts;
}

void compare(const ace::core::ApplicationBenchmark& bench,
             ace::util::TablePrinter& table) {
  const auto cold = run(bench, 0);
  const auto warm = run(bench, 2 * bench.nv);
  table.add_row({bench.name, std::to_string(cold.simulated),
                 std::to_string(cold.interpolated),
                 cold.met ? "yes" : "no", std::to_string(warm.simulated),
                 std::to_string(warm.interpolated),
                 warm.met ? "yes" : "no"});
}

}  // namespace

int main() {
  std::cout << "=== Extension ablation: LHS warm start (2*Nv points, d=3) "
               "===\n";
  ace::util::TablePrinter table({"benchmark", "cold sims", "cold krig",
                                 "cold ok", "warm sims", "warm krig",
                                 "warm ok"});
  ace::core::SignalBenchOptions signal_opt;
  signal_opt.w_max = 20;
  compare(ace::core::make_fir_benchmark(signal_opt), table);
  compare(ace::core::make_iir_benchmark(signal_opt), table);
  compare(ace::core::make_fft_benchmark(), table);
  compare(ace::core::make_dct_benchmark(), table);
  table.print(std::cout);
  std::cout << "\n'warm sims' includes the design points themselves; the\n"
               "interesting comparison is total simulations for a\n"
               "constraint-meeting result\n";
  return 0;
}
