// Multi-session service bench: replay hundreds of interleaved optimizer
// sessions (mixed FIR/IIR/FFT word-length problems) through
// serve::SessionManager and verify each session's decision sequence is
// bit-identical to running it standalone, while reporting service
// throughput and p50/p99 request latency.
//
// The knobs are deliberately hostile: more sessions than resident slots
// (park/resume churn on every rotation), a queue much smaller than the
// request volume (persistent backpressure), and several service threads
// sharing one simulation pool. If the determinism contract holds here, it
// holds.
//
// Output: human-readable summary plus BENCH_serve.json (the standing
// perf-trajectory artifact; CI uploads it, and a snapshot is committed).
// Exit code 1 on any per-session divergence.
#include <algorithm>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/benchmarks.hpp"
#include "dse/min_plus_one.hpp"
#include "dse/scheduler.hpp"
#include "serve/session.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace d = ace::dse;
namespace s = ace::serve;

constexpr std::size_t kSessions = 210;  // >= 200 per the acceptance bar.

/// Mixed workload: rotate FIR (Nv=2) / IIR (Nv=5) / FFT (Nv=10), varying
/// seed and constraint so no two sessions share a surface. Small lattices
/// and inputs keep a 2x(210-run) bench in seconds.
s::SessionSpec make_spec(std::size_t i) {
  ace::core::SignalBenchOptions opt;
  opt.samples = 64;  // FFT requires a multiple of 64.
  opt.seed = 1000 + static_cast<std::uint64_t>(i);
  opt.lambda_min_db = 28.0 + static_cast<double>(i % 7);
  opt.w_max = 10;
  opt.w_min = 2;
  ace::core::ApplicationBenchmark bench;
  switch (i % 3) {
    case 0: bench = ace::core::make_fir_benchmark(opt); break;
    case 1: bench = ace::core::make_iir_benchmark(opt); break;
    default: bench = ace::core::make_fft_benchmark(opt); break;
  }
  s::SessionSpec spec;
  spec.name = bench.name + " #" + std::to_string(i);
  spec.optimizer = s::OptimizerKind::kMinPlusOne;
  spec.min_plus = bench.min_plus_one;
  spec.simulate = bench.simulate;
  return spec;
}

d::MinPlusOneResult standalone(const s::SessionSpec& spec) {
  d::KrigingPolicy policy(spec.policy);
  const auto evaluate = d::policy_batch_evaluator(policy, spec.simulate);
  d::MinPlusOneCursor cursor = d::make_min_plus_one_cursor(spec.min_plus);
  while (d::min_plus_one_step(evaluate, spec.min_plus, cursor)) {
  }
  return d::min_plus_one_result(cursor, spec.min_plus);
}

bool identical(const d::MinPlusOneResult& a, const d::MinPlusOneResult& b) {
  return a.decisions == b.decisions && a.w_min == b.w_min &&
         a.w_res == b.w_res && a.constraint_met == b.constraint_met &&
         a.final_lambda == b.final_lambda;  // Bit-exact, not approximate.
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(rank, xs.size() - 1)];
}

}  // namespace

int main() {
  std::cout << "=== session_server: " << kSessions
            << " interleaved DSE sessions (FIR/IIR/FFT) ===\n";

  std::vector<s::SessionSpec> specs;
  specs.reserve(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) specs.push_back(make_spec(i));

  // Sequential reference: each session standalone, one after another.
  ace::util::Stopwatch watch;
  std::vector<d::MinPlusOneResult> reference;
  reference.reserve(kSessions);
  for (const auto& spec : specs) reference.push_back(standalone(spec));
  const double sequential_s = watch.seconds();

  // Concurrent service pass under residency pressure and backpressure.
  ace::util::ThreadPool pool(4);
  s::SessionManagerOptions options;
  options.service_threads = 4;
  options.queue_capacity = 32;
  options.resident_capacity = 16;
  options.pool = &pool;

  watch.restart();
  s::SessionManager manager(options);
  std::vector<s::SessionId> ids;
  ids.reserve(kSessions);
  for (const auto& spec : specs) ids.push_back(manager.create(spec));
  // Interleave: two rotations of short slices (every session gets parked
  // and resumed as its turn comes back around), then run each to the end.
  for (int round = 0; round < 2; ++round)
    for (const s::SessionId id : ids) (void)manager.submit(id, 3);
  for (const s::SessionId id : ids) (void)manager.submit(id, 100000);
  manager.drain();
  const double concurrent_s = watch.seconds();

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < kSessions; ++i) {
    if (!manager.progress(ids[i]).finished ||
        !identical(manager.min_plus_one_result(ids[i]), reference[i])) {
      ++mismatches;
      std::cout << "DIVERGED: session " << i << " (" << specs[i].name
                << ")\n";
    }
  }

  const s::ServeStats stats = manager.stats();
  const std::vector<double> latencies = manager.request_latencies_ms();
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double throughput =
      static_cast<double>(stats.steps) / std::max(concurrent_s, 1e-9);

  std::cout << "sessions:            " << kSessions << "\n"
            << "requests:            " << stats.requests << "\n"
            << "optimizer steps:     " << stats.steps << "\n"
            << "parks / resumes:     " << stats.parks << " / "
            << stats.resumes << "\n"
            << "backpressure waits:  " << stats.backpressure_waits << "\n"
            << "sequential wall:     " << sequential_s << " s\n"
            << "service wall:        " << concurrent_s << " s\n"
            << "throughput:          " << throughput << " steps/s\n"
            << "latency p50 / p99:   " << p50 << " / " << p99 << " ms\n"
            << "decision identity:   "
            << (mismatches == 0 ? "all sessions bit-identical"
                                : std::to_string(mismatches) + " DIVERGED")
            << "\n";

  std::ofstream json("BENCH_serve.json", std::ios::trunc);
  json << "{\n"
       << "  \"sessions\": " << kSessions << ",\n"
       << "  \"requests\": " << stats.requests << ",\n"
       << "  \"steps\": " << stats.steps << ",\n"
       << "  \"parks\": " << stats.parks << ",\n"
       << "  \"resumes\": " << stats.resumes << ",\n"
       << "  \"backpressure_waits\": " << stats.backpressure_waits << ",\n"
       << "  \"sequential_wall_s\": " << sequential_s << ",\n"
       << "  \"service_wall_s\": " << concurrent_s << ",\n"
       << "  \"throughput_steps_per_s\": " << throughput << ",\n"
       << "  \"latency_p50_ms\": " << p50 << ",\n"
       << "  \"latency_p99_ms\": " << p99 << ",\n"
       << "  \"divergent_sessions\": " << mismatches << "\n"
       << "}\n";
  json.flush();
  if (!json.good()) {
    std::cout << "warning: failed to write BENCH_serve.json\n";
    return 1;
  }
  return mismatches == 0 ? 0 : 1;
}
