// Fault-recovery bench for the robustness subsystem.
//
// Two claims are checked:
//   1. Happy-path overhead: on a clean workload, enabling the full retry
//      configuration (bounded attempts + backoff + deadline watchdog)
//      costs < 2% throughput over the single-attempt default — the guard
//      is bookkeeping, not a tax.
//   2. Graceful degradation: a fault-injected min+1 run (a) with
//      transient faults and a covering retry budget makes *bit-identical*
//      decisions to the clean run, and (b) with persistent faults still
//      completes, quarantining the broken configurations instead of
//      crashing or re-simulating them forever.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "dse/fault_injection.hpp"
#include "dse/kriging_policy.hpp"
#include "dse/min_plus_one.hpp"
#include "dse/scheduler.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// ~10 µs of real arithmetic per call: heavy enough that timing is stable,
/// light enough that the bench finishes instantly.
double busy_simulator(const ace::dse::Config& w) {
  double acc = 0.0;
  for (int k = 0; k < 600; ++k) {
    double x = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i)
      x += static_cast<double>(w[i]) * (1.0 + 0.05 * static_cast<double>(i));
    acc += std::sqrt(x + static_cast<double>(k));
  }
  return acc * 1e-4;
}

/// Pure-simulation policy options (kriging disabled): what's timed and
/// compared is the evaluation path itself, not interpolation luck.
ace::dse::PolicyOptions pure_simulation(ace::util::RetryOptions retry = {}) {
  ace::dse::PolicyOptions options;
  options.min_fit_points = 1000000;
  options.retry = retry;
  return options;
}

std::vector<ace::dse::Config> overhead_workload() {
  std::vector<ace::dse::Config> work;
  for (int x = 0; x < 16; ++x)
    for (int y = 0; y < 16; ++y)
      for (int z = 0; z < 8; ++z) work.push_back({x, y, z});
  return work;
}

/// Evaluate the whole workload through evaluate_batch; best-of-7 seconds.
double time_clean_run(const ace::util::RetryOptions& retry) {
  const std::vector<ace::dse::Config> work = overhead_workload();
  double best = 1e300;
  for (int rep = 0; rep < 7; ++rep) {
    ace::dse::KrigingPolicy policy(pure_simulation(retry));
    const auto t0 = Clock::now();
    for (std::size_t at = 0; at < work.size(); at += 64) {
      const std::vector<ace::dse::Config> batch(
          work.begin() + static_cast<long>(at),
          work.begin() + static_cast<long>(std::min(at + 64, work.size())));
      (void)policy.evaluate_batch(batch, busy_simulator);
    }
    best = std::min(best,
                    std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return best;
}

struct MinPlusSetup {
  ace::dse::MinPlusOneOptions options;
  MinPlusSetup() {
    options.nv = 6;
    options.w_max = 10;
    options.w_min = 2;
    options.lambda_min = 14.0;
  }
};

double lattice_lambda(const ace::dse::Config& w) {
  double acc = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i)
    acc += (0.4 + 0.03 * static_cast<double>(i)) * static_cast<double>(w[i]);
  return acc;
}

}  // namespace

int main() {
  int failures = 0;

  // --- 1. Happy-path overhead of the full retry configuration ------------
  ace::util::RetryOptions guarded;
  guarded.max_attempts = 3;
  guarded.base_backoff_ms = 0.05;
  guarded.deadline_ms = 250.0;
  const double base_s = time_clean_run({});
  const double guarded_s = time_clean_run(guarded);
  const double overhead_pct = 100.0 * (guarded_s / base_s - 1.0);

  std::cout << "=== Happy-path overhead (2048 clean simulations) ===\n"
            << "single-attempt default: " << ace::util::fmt(base_s, 4)
            << " s\nretry+deadline guard:   " << ace::util::fmt(guarded_s, 4)
            << " s\noverhead: " << ace::util::fmt(overhead_pct, 2)
            << " % (budget: < 2 %)\n\n";
  if (overhead_pct >= 2.0) {
    std::cerr << "FAIL: retry guard costs >= 2% on the happy path\n";
    ++failures;
  }

  // --- 2a. Decision identity under transient faults -----------------------
  const MinPlusSetup setup;
  ace::dse::KrigingPolicy clean(pure_simulation());
  const ace::dse::MinPlusOneResult reference = ace::dse::min_plus_one(
      ace::dse::policy_batch_evaluator(clean, lattice_lambda), setup.options);

  ace::util::RetryOptions covering;
  covering.max_attempts = 2;  // Transient depth below is 1: one retry covers.
  ace::dse::KrigingPolicy transient_policy(pure_simulation(covering));
  ace::dse::FaultInjectionOptions transient_faults;
  transient_faults.seed = 21;
  transient_faults.throw_probability = 0.5;
  transient_faults.nan_probability = 0.25;
  transient_faults.faulty_calls = 1;
  const ace::dse::FaultInjectingSimulator transient_sim(lattice_lambda,
                                                        transient_faults);
  const ace::dse::MinPlusOneResult transient_run = ace::dse::min_plus_one(
      ace::dse::policy_batch_evaluator(transient_policy, transient_sim),
      setup.options);

  const bool identical =
      transient_run.w_res == reference.w_res &&
      transient_run.w_min == reference.w_min &&
      transient_run.decisions == reference.decisions &&
      transient_run.final_lambda == reference.final_lambda;
  std::cout << "=== Transient faults + covering retry budget ===\n"
            << "injected throws/NaNs: " << transient_sim.injected_throws()
            << "/" << transient_sim.injected_nans()
            << ", retries: " << transient_policy.stats().retries
            << ", quarantined: " << transient_policy.stats().quarantined
            << "\ndecisions identical to clean run: "
            << (identical ? "yes" : "NO") << "\n\n";
  if (!identical || transient_policy.stats().retries == 0 ||
      transient_policy.stats().quarantined != 0) {
    std::cerr << "FAIL: transient-fault run should match the clean run "
                 "without quarantining\n";
    ++failures;
  }

  // --- 2b. Graceful completion under persistent faults --------------------
  ace::dse::KrigingPolicy persistent_policy(pure_simulation(covering));
  ace::dse::FaultInjectionOptions persistent_faults;
  persistent_faults.seed = 5;
  persistent_faults.throw_probability = 0.10;
  persistent_faults.faulty_calls = 1000000;  // Never recovers.
  const ace::dse::FaultInjectingSimulator persistent_sim(lattice_lambda,
                                                         persistent_faults);
  const ace::dse::MinPlusOneResult degraded = ace::dse::min_plus_one(
      ace::dse::policy_batch_evaluator(persistent_policy, persistent_sim),
      setup.options);
  const ace::dse::PolicyStats& ps = persistent_policy.stats();

  std::cout << "=== Persistent faults (10% of the lattice is broken) ===\n"
            << "simulator_faults=" << ps.simulator_faults
            << " retries=" << ps.retries << " timeouts=" << ps.timeouts
            << " quarantined=" << ps.quarantined
            << " checkpoints_written=" << ps.checkpoints_written
            << "\nrun completed: yes, steps=" << degraded.decisions.size()
            << ", constraint met: " << (degraded.constraint_met ? "yes" : "no")
            << "\nfaulted candidates carry lambda = -inf, so they lose every"
            << "\ncompetition; each broken configuration is simulated at most"
            << "\nonce per retry budget, then served from quarantine\n\n";
  if (ps.quarantined == 0) {
    std::cerr << "FAIL: persistent faults should quarantine configurations\n";
    ++failures;
  }
  // Quarantine must cap re-simulation: faulted attempts can never exceed
  // (quarantined configurations) x (retry budget).
  if (ps.simulator_faults > ps.quarantined * covering.max_attempts) {
    std::cerr << "FAIL: quarantined configurations were re-simulated\n";
    ++failures;
  }

  std::cout << (failures == 0 ? "all fault-recovery checks passed\n"
                              : "FAULT-RECOVERY CHECKS FAILED\n");
  return failures == 0 ? 0 : 1;
}
