// Extension: quality-vs-cost Pareto sweep (the outer loop of the paper's
// Eq. 1 in practice — designers sweep the quality constraint λm and read
// the implementation-cost curve). Each sweep point runs the min+1
// optimizer; the kriging column shows the simulations avoided at d = 3.
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/engine.hpp"
#include "dse/cost.hpp"
#include "util/table.hpp"

namespace {

void sweep(ace::core::ApplicationBenchmark bench,
           const std::vector<double>& lambda_mins,
           ace::util::TablePrinter& table) {
  for (const double lambda_min : lambda_mins) {
    bench.min_plus_one.lambda_min = lambda_min;

    // Exact run for the true Pareto point.
    std::size_t sims = 0;
    auto counted = [&](const ace::dse::Config& c) {
      ++sims;
      return bench.simulate(c);
    };
    const auto exact = ace::dse::min_plus_one(counted, bench.min_plus_one);

    // Kriging run for the evaluation savings.
    ace::dse::PolicyOptions policy;
    policy.distance = 3;
    ace::core::ErrorEvaluationEngine engine(bench.simulate, policy,
                                            bench.metric);
    (void)engine.optimize_word_lengths(bench.min_plus_one);

    table.add_row(
        {bench.name, ace::util::fmt(lambda_min, 0),
         ace::util::fmt(ace::dse::linear_cost(exact.w_res), 0),
         ace::util::fmt(ace::dse::quadratic_cost(exact.w_res), 0),
         ace::util::fmt(exact.final_lambda, 1), std::to_string(sims),
         std::to_string(engine.stats().simulated),
         ace::util::fmt_pct(engine.stats().interpolated_fraction(), 1)});
  }
}

}  // namespace

int main() {
  std::cout << "=== Extension: quality-vs-cost Pareto sweep (min+1, d=3) "
               "===\n";
  ace::util::TablePrinter table({"benchmark", "lambda_min (dB)",
                                 "cost sum(w)", "cost sum(w^2)", "lambda",
                                 "sims exact", "sims kriged", "kriged %"});
  ace::core::SignalBenchOptions signal_opt;
  signal_opt.w_max = 20;
  sweep(ace::core::make_iir_benchmark(signal_opt),
        {35.0, 40.0, 45.0, 50.0, 55.0, 60.0}, table);
  sweep(ace::core::make_dct_benchmark(), {40.0, 50.0, 60.0}, table);
  table.print(std::cout);
  std::cout << "\ncost rises with the quality constraint (the Pareto\n"
               "frontier of Eq. 1); kriging cuts the simulations needed to\n"
               "trace the whole curve\n";
  return 0;
}
