// Extension ablation: gating interpolation on the predicted kriging
// variance. The Table I tails (max ε) come from extrapolation-like
// interpolations whose support cannot back the estimate; the kriging
// variance flags exactly those, so rejecting high-variance interpolations
// should trim max ε at a modest cost in interpolated fraction.
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/table1.hpp"
#include "util/table.hpp"

namespace {

void sweep(const ace::core::ApplicationBenchmark& bench, int distance,
           ace::util::TablePrinter& table) {
  for (const double gate : {0.0, 2.0, 1.0, 0.5}) {
    ace::dse::PolicyOptions base;
    base.variance_gate = gate;
    const auto row =
        ace::core::run_table1(bench, {distance}, base).rows.front();
    table.add_row({bench.name, std::to_string(distance),
                   gate == 0.0 ? "off" : ace::util::fmt(gate, 1),
                   ace::util::fmt(row.p_percent, 1),
                   ace::util::fmt(row.eps_mean, 2),
                   ace::util::fmt(row.eps_max, 2)});
  }
}

}  // namespace

int main() {
  std::cout << "=== Extension ablation: kriging-variance gate (d = 5) ===\n";
  ace::util::TablePrinter table(
      {"benchmark", "d", "gate", "p(%)", "mu eps", "max eps"});
  ace::core::SignalBenchOptions signal_opt;
  signal_opt.w_max = 20;
  sweep(ace::core::make_iir_benchmark(signal_opt), 5, table);
  sweep(ace::core::make_fft_benchmark(), 5, table);
  sweep(ace::core::make_dct_benchmark(), 5, table);
  table.print(std::cout);
  std::cout << "\ngate = maximum kriging variance as a fraction of the λ\n"
               "sample variance; interpolations above it are simulated\n"
               "instead ('off' reproduces the paper's policy)\n";
  return 0;
}
