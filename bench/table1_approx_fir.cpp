// Extension benchmark: approximate-operator FIR (Nv = 4). The paper's
// introduction lists inexact adders/multipliers as an approximation
// source; here the DSE variables are the precision levels of truncated
// multipliers and lower-OR adders rather than word lengths — the same
// kriging policy serves this lattice unchanged.
#include "table1_common.hpp"

#include "core/benchmarks.hpp"

int main(int argc, char** argv) {
  return ace::benchdriver::run_table1_bench(
      ace::core::make_approx_fir_benchmark(), argc, argv);
}
