// Extension benchmark: error-sensitivity analysis on the IIR cascade
// (Nv = 5) — the paper's second optimization-problem type (demonstrated
// there on SqueezeNet) applied to a classical signal kernel, with the
// noise-power metric instead of a classification rate.
#include "table1_common.hpp"

#include "core/benchmarks.hpp"

int main(int argc, char** argv) {
  return ace::benchdriver::run_table1_bench(
      ace::core::make_iir_sensitivity_benchmark(), argc, argv);
}
