// Micro-benchmarks (google-benchmark): the per-call costs behind the
// paper's 10⁻⁶-second interpolation claim — the kriging solve as a
// function of support size, neighbour search, variogram fitting, and the
// bit-accurate simulation primitives it replaces.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <complex>
#include <vector>

#include "dse/sim_store.hpp"
#include "kriging/empirical_variogram.hpp"
#include "kriging/fit.hpp"
#include "kriging/ordinary_kriging.hpp"
#include "signal/fft.hpp"
#include "signal/fir.hpp"
#include "signal/generator.hpp"
#include "util/rng.hpp"

namespace {

std::vector<std::vector<double>> lattice_points(ace::util::Rng& rng,
                                                std::size_t n,
                                                std::size_t dim) {
  std::vector<std::vector<double>> pts;
  pts.reserve(n);
  while (pts.size() < n) {
    std::vector<double> p(dim);
    for (auto& x : p) x = rng.uniform_int(0, 16);
    if (std::find(pts.begin(), pts.end(), p) == pts.end())
      pts.push_back(std::move(p));
  }
  return pts;
}

void BM_KrigingSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ace::util::Rng rng(1);
  const auto pts = lattice_points(rng, n, 10);
  const auto vals = rng.uniform_vector(n, -60.0, -20.0);
  const ace::kriging::SphericalVariogram model(0.0, 10.0, 12.0);
  const std::vector<double> query(10, 8.0);
  for (auto _ : state) {
    auto r = ace::kriging::krige(pts, vals, query, model);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_KrigingSolve)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_NeighborSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ace::util::Rng rng(2);
  ace::dse::SimulationStore store;
  for (std::size_t i = 0; i < n; ++i) {
    ace::dse::Config c(10);
    for (auto& x : c) x = rng.uniform_int(2, 16);
    store.add(std::move(c), rng.uniform());
  }
  const ace::dse::Config query(10, 9);
  for (auto _ : state) {
    auto hits = store.neighbors_within(query, 3);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_NeighborSearch)->Arg(64)->Arg(512)->Arg(4096);

void BM_VariogramFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ace::util::Rng rng(3);
  const auto pts = lattice_points(rng, n, 5);
  std::vector<double> vals;
  for (const auto& p : pts) {
    double s = 0.0;
    for (double x : p) s += x;
    vals.push_back(-3.0 * s + rng.normal(0.0, 0.5));
  }
  const ace::kriging::EmpiricalVariogram ev(pts, vals);
  for (auto _ : state) {
    auto fit = ace::kriging::fit_best(ev);
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(BM_VariogramFit)->Arg(16)->Arg(64)->Arg(128);

void BM_FirSimulation(benchmark::State& state) {
  ace::util::Rng rng(4);
  const auto input = ace::signal::noisy_multitone(rng, 512);
  const ace::signal::FirFilter fir(ace::signal::design_lowpass_fir(64, 0.18));
  const ace::signal::QuantizedFirFilter q(fir);
  const std::vector<int> w = {10, 12};
  for (auto _ : state) {
    auto out = q.filter(input, w);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FirSimulation);

void BM_QuantizedFft64(benchmark::State& state) {
  ace::util::Rng rng(5);
  std::vector<std::complex<double>> frame(64);
  for (auto& v : frame)
    v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const ace::signal::QuantizedFft q(64, {frame});
  const std::vector<int> w(10, 12);
  for (auto _ : state) {
    auto out = q.transform(frame, w);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_QuantizedFft64);

}  // namespace

BENCHMARK_MAIN();
