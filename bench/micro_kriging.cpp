// Micro-benchmarks (google-benchmark): the per-call costs behind the
// paper's 10⁻⁶-second interpolation claim — the kriging solve as a
// function of support size, neighbour search, variogram fitting, and the
// bit-accurate simulation primitives it replaces.
//
// The *_Scan/_Assembly/_MultiRhs benchmarks form a roofline-ish suite for
// the SIMD/SoA layer (DESIGN.md §10): each streams the same data through
// the scalar reference twin (arg0 = 0, a TU compiled with
// auto-vectorization off) and the dispatching kernel (arg0 = 1), reporting
// bytes/s for the bandwidth-bound scans and items/s (solves/s) for the
// solver stages. EXPERIMENTS.md holds the measured table; CI regenerates
// BENCH_micro.json from this binary.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <complex>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "dse/sim_store.hpp"
#include "kriging/empirical_variogram.hpp"
#include "kriging/fit.hpp"
#include "kriging/ordinary_kriging.hpp"
#include "kriging/system.hpp"
#include "signal/fft.hpp"
#include "signal/fir.hpp"
#include "signal/generator.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

std::vector<std::vector<double>> lattice_points(ace::util::Rng& rng,
                                                std::size_t n,
                                                std::size_t dim) {
  // Hash-set dedupe: the previous std::find made this setup O(n²) in the
  // number of points, which dominated the large-n benchmark setups.
  std::vector<std::vector<double>> pts;
  pts.reserve(n);
  std::unordered_set<ace::dse::Config, ace::dse::ConfigHash> seen;
  while (pts.size() < n) {
    ace::dse::Config c(dim);
    for (auto& x : c) x = rng.uniform_int(0, 16);
    if (!seen.insert(c).second) continue;
    pts.push_back(ace::dse::to_real(c));
  }
  return pts;
}

void BM_KrigingSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ace::util::Rng rng(1);
  const auto pts = lattice_points(rng, n, 10);
  const auto vals = rng.uniform_vector(n, -60.0, -20.0);
  const ace::kriging::SphericalVariogram model(0.0, 10.0, 12.0);
  const std::vector<double> query(10, 8.0);
  for (auto _ : state) {
    auto r = ace::kriging::krige(pts, vals, query, model);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_KrigingSolve)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void fill_store(ace::dse::SimulationStore& store, std::size_t n,
                std::size_t dim, unsigned seed) {
  ace::util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    ace::dse::Config c(dim);
    for (auto& x : c) x = rng.uniform_int(2, 16);
    store.add(std::move(c), rng.uniform());
  }
}

void BM_NeighborSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ace::dse::SimulationStore store;
  fill_store(store, n, 10, 2);
  const ace::dse::Config query(10, 9);
  for (auto _ : state) {
    auto hits = store.neighbors_within(query, 3);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_NeighborSearch)->Arg(64)->Arg(512)->Arg(4096);

// The unindexed AoS linear scan — the baseline that shows what the
// coordinate-sum buckets and the blocked SoA scan actually buy.
void BM_NeighborSearchLinear(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ace::dse::SimulationStore store;
  fill_store(store, n, 10, 2);
  const ace::dse::Config query(10, 9);
  for (auto _ : state) {
    auto hits = store.neighbors_within_linear(query, 3);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_NeighborSearchLinear)->Arg(64)->Arg(512)->Arg(4096);

// Wide-radius search: the coordinate-sum band covers the whole store, so
// the store takes its blocked SoA path — arg0 toggles the SIMD backend to
// A/B the identical-result fast path against its scalar twin.
void BM_NeighborSearchWide(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(1));
  ace::dse::SimulationStore store;
  fill_store(store, n, 10, 2);
  const ace::dse::Config query(10, 9);
  ace::util::simd::set_enabled(state.range(0) != 0);
  for (auto _ : state) {
    auto hits = store.neighbors_within(query, 60);
    benchmark::DoNotOptimize(hits);
  }
  ace::util::simd::set_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(state.range(0) != 0 ? ace::util::simd::backend() : "scalar");
}
BENCHMARK(BM_NeighborSearchWide)->Args({0, 4096})->Args({1, 4096});

// L1 distance scan over SoA int columns (the store's blocked-scan kernel):
// bytes/s is the roofline axis — the kernel streams count·dim int32 loads
// per pass.
void BM_L1DistanceScan(benchmark::State& state) {
  constexpr std::size_t dim = 16;
  const auto n = static_cast<std::size_t>(state.range(1));
  ace::util::Rng rng(6);
  std::vector<std::vector<int>> cols(dim, std::vector<int>(n));
  for (auto& c : cols)
    for (auto& x : c) x = rng.uniform_int(0, 16);
  std::vector<const int*> ptrs(dim);
  for (std::size_t d = 0; d < dim; ++d) ptrs[d] = cols[d].data();
  const std::vector<int> query(dim, 8);
  std::vector<int> out(n);
  ace::util::simd::set_enabled(state.range(0) != 0);
  for (auto _ : state) {
    ace::util::simd::l1_distances_i32(ptrs.data(), dim, query.data(), n,
                                      out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  ace::util::simd::set_enabled(true);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * dim * sizeof(int)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(state.range(0) != 0 ? ace::util::simd::backend() : "scalar");
}
BENCHMARK(BM_L1DistanceScan)->Args({0, 4096})->Args({1, 4096})
    ->Args({0, 65536})->Args({1, 65536});

// The vectorizable stage of γ-vector/variogram-block assembly: query →
// support distances over f64 SoA columns at Nv = 16 (KrigingSystem's
// distances_to). The γ(d) map on top is identical scalar work on both
// paths, so the distance stage is where the scalar-vs-SIMD ratio lives.
void BM_GammaAssemblyScan(benchmark::State& state) {
  constexpr std::size_t dim = 16;
  const auto n = static_cast<std::size_t>(state.range(1));
  ace::util::Rng rng(7);
  std::vector<std::vector<double>> cols(dim, std::vector<double>(n));
  for (auto& c : cols)
    for (auto& x : c) x = static_cast<double>(rng.uniform_int(0, 16));
  std::vector<const double*> ptrs(dim);
  for (std::size_t d = 0; d < dim; ++d) ptrs[d] = cols[d].data();
  const std::vector<double> query(dim, 8.0);
  std::vector<double> out(n);
  ace::util::simd::set_enabled(state.range(0) != 0);
  for (auto _ : state) {
    ace::util::simd::l1_distances_f64(ptrs.data(), dim, query.data(), n,
                                      out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  ace::util::simd::set_enabled(true);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * dim * sizeof(double)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(state.range(0) != 0 ? ace::util::simd::backend() : "scalar");
}
BENCHMARK(BM_GammaAssemblyScan)->Args({0, 4096})->Args({1, 4096})
    ->Args({0, 65536})->Args({1, 65536});

// Multi-RHS ladder (query_batch, one shared factorization) vs the same
// queries solved one at a time. Items/s is solves/s.
void BM_MultiRhsSolve(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  const auto nq = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t support = 32;
  ace::util::Rng rng(8);
  const auto pts = lattice_points(rng, support, 10);
  const auto vals = rng.uniform_vector(support, -60.0, -20.0);
  const ace::kriging::SphericalVariogram model(0.0, 10.0, 12.0);
  std::vector<std::vector<double>> queries;
  for (std::size_t q = 0; q < nq; ++q) {
    std::vector<double> x(10);
    for (auto& v : x) v = rng.uniform(0.0, 16.0);
    queries.push_back(std::move(x));
  }
  ace::kriging::KrigingSystem system(
      ace::kriging::SystemSpec{ace::kriging::SystemKind::kOrdinary}, pts,
      vals, model);
  for (auto _ : state) {
    if (batched) {
      auto r = system.query_batch(queries);
      benchmark::DoNotOptimize(r);
    } else {
      for (const auto& q : queries) {
        auto r = system.query(q);
        benchmark::DoNotOptimize(r);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nq));
  state.SetLabel(batched ? "batched" : "per-query");
}
BENCHMARK(BM_MultiRhsSolve)->Args({0, 16})->Args({1, 16})
    ->Args({0, 64})->Args({1, 64});

void BM_VariogramFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ace::util::Rng rng(3);
  const auto pts = lattice_points(rng, n, 5);
  std::vector<double> vals;
  for (const auto& p : pts) {
    double s = 0.0;
    for (double x : p) s += x;
    vals.push_back(-3.0 * s + rng.normal(0.0, 0.5));
  }
  const ace::kriging::EmpiricalVariogram ev(pts, vals);
  for (auto _ : state) {
    auto fit = ace::kriging::fit_best(ev);
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(BM_VariogramFit)->Arg(16)->Arg(64)->Arg(128);

void BM_FirSimulation(benchmark::State& state) {
  ace::util::Rng rng(4);
  const auto input = ace::signal::noisy_multitone(rng, 512);
  const ace::signal::FirFilter fir(ace::signal::design_lowpass_fir(64, 0.18));
  const ace::signal::QuantizedFirFilter q(fir);
  const std::vector<int> w = {10, 12};
  for (auto _ : state) {
    auto out = q.filter(input, w);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FirSimulation);

void BM_QuantizedFft64(benchmark::State& state) {
  ace::util::Rng rng(5);
  std::vector<std::complex<double>> frame(64);
  for (auto& v : frame)
    v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const ace::signal::QuantizedFft q(64, {frame});
  const std::vector<int> w(10, 12);
  for (auto _ : state) {
    auto out = q.transform(frame, w);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_QuantizedFft64);

}  // namespace

BENCHMARK_MAIN();
