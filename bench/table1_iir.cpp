// Reproduces Table I, IIR row group (8th-order IIR, Nv = 5, noise power).
#include "table1_common.hpp"

#include "core/benchmarks.hpp"

int main(int argc, char** argv) {
  // Nmax = 20 reproduces the paper's trajectory density best (see
  // EXPERIMENTS.md).
  ace::core::SignalBenchOptions opt;
  opt.w_max = 20;
  return ace::benchdriver::run_table1_bench(
      ace::core::make_iir_benchmark(opt), argc, argv);
}
