// Extension benchmark (beyond the paper's Table I): 8×8 2-D DCT word-length
// refinement, Nv = 6 — a medium-dimensional workload between the paper's
// IIR (Nv = 5) and FFT (Nv = 10) rows.
#include "table1_common.hpp"

#include "core/benchmarks.hpp"

int main(int argc, char** argv) {
  return ace::benchdriver::run_table1_bench(
      ace::core::make_dct_benchmark(), argc, argv);
}
