// Reproduces Table I, SqueezeNet row group (error-sensitivity analysis,
// Nv = 10, classification-agreement metric, relative ε).
#include "table1_common.hpp"

#include "core/benchmarks.hpp"

int main(int argc, char** argv) {
  return ace::benchdriver::run_table1_bench(
      ace::core::make_squeezenet_benchmark(), argc, argv);
}
