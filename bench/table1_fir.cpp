// Reproduces Table I, FIR row group (64-tap FIR, Nv = 2, noise power).
#include "table1_common.hpp"

#include "core/benchmarks.hpp"

int main(int argc, char** argv) {
  // Nmax = 20 reproduces the paper's trajectory density best (the paper
  // does not state its Nmax; see EXPERIMENTS.md).
  ace::core::SignalBenchOptions opt;
  opt.w_max = 20;
  return ace::benchdriver::run_table1_bench(
      ace::core::make_fir_benchmark(opt), argc, argv);
}
