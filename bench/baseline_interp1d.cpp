// Baseline comparison (paper Sec. II): per-variable 1-D interpolation in
// the style of Sedano et al. [18] vs kriging, replayed over identical
// trajectories. The paper's critique — 1-D methods "do not consider a
// Nv-dimension hypercube" — becomes the p(%) gap below.
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/table1.hpp"
#include "dse/interp1d.hpp"
#include "util/table.hpp"

namespace {

void compare(const ace::core::ApplicationBenchmark& bench, int distance,
             ace::util::TablePrinter& table) {
  // One exact trajectory, two replays.
  ace::dse::TrajectoryRecorder recorder(bench.simulate);
  const auto table1 = ace::core::run_table1(bench, {distance});

  ace::dse::Interp1dOptions baseline;
  baseline.max_span = distance;
  const auto oned = ace::dse::replay_with_interp1d(table1.trajectory,
                                                   baseline, bench.metric);
  const auto& krig = table1.rows.front();
  table.add_row({bench.name, std::to_string(distance),
                 ace::util::fmt(krig.p_percent, 1),
                 ace::util::fmt(krig.eps_mean, 2),
                 ace::util::fmt_pct(oned.interpolated_fraction(), 1),
                 ace::util::fmt(oned.mean_epsilon(), 2)});
}

}  // namespace

int main() {
  std::cout << "=== Baseline: kriging vs 1-D per-variable interpolation "
               "===\n";
  ace::util::TablePrinter table({"benchmark", "d / span", "kriging p(%)",
                                 "kriging mu eps", "1-D p(%)",
                                 "1-D mu eps"});
  ace::core::SignalBenchOptions signal_opt;
  signal_opt.w_max = 20;
  for (int d : {2, 3}) {
    compare(ace::core::make_fir_benchmark(signal_opt), d, table);
    compare(ace::core::make_iir_benchmark(signal_opt), d, table);
    compare(ace::core::make_fft_benchmark(), d, table);
  }
  {
    ace::core::HevcBenchOptions o;
    o.jobs = 12;
    compare(ace::core::make_hevc_benchmark(o), 2, table);
  }
  table.print(std::cout);
  std::cout << "\n1-D interpolation only serves configurations reachable\n"
               "along a single axis from stored points; kriging uses the\n"
               "full Nv-dimensional neighbourhood (the paper's argument\n"
               "against its ref [18])\n";
  return 0;
}
