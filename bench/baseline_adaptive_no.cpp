// Baseline/companion technique (paper ref [14]): adaptive observation
// counts. Kriging reduces Nλ (metric evaluations); inferential statistics
// reduce No (observations per evaluation). This bench measures the No
// savings on the FIR benchmark and shows the two levers compose.
#include <cmath>
#include <iostream>

#include "dse/adaptive_simulation.hpp"
#include "metrics/noise_power.hpp"
#include "signal/fir.hpp"
#include "signal/generator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace ace;

  std::cout << "=== Ref [14] baseline: adaptive observation count (FIR) "
               "===\n";

  util::Rng rng(42);
  const std::size_t total = 4096;
  const auto input = signal::noisy_multitone(rng, total);
  const signal::FirFilter fir(signal::design_lowpass_fir(64, 0.18));
  const signal::QuantizedFirFilter quantized(fir);
  const auto reference = fir.filter(input);

  util::TablePrinter table({"w (mpy, add)", "full P (dB)", "adaptive P (dB)",
                            "gap (bits)", "No used", "No total",
                            "saving (%)"});
  util::RunningStats savings;
  for (const auto [w0, w1] :
       {std::pair{8, 10}, std::pair{10, 10}, std::pair{10, 12},
        std::pair{12, 12}, std::pair{12, 14}, std::pair{14, 16}}) {
    const auto approx = quantized.filter(input, {w0, w1});
    const double full = metrics::noise_power(approx, reference);

    dse::AdaptiveSimOptions options;
    options.batch = 128;
    options.relative_half_width = 0.1;
    const auto adaptive = dse::adaptive_mean(
        [&](std::size_t i) {
          const double e = approx[i] - reference[i];
          return e * e;
        },
        total, options);

    const double saving =
        1.0 - static_cast<double>(adaptive.observations) /
                  static_cast<double>(total);
    savings.add(saving);
    table.add_row({"(" + std::to_string(w0) + ", " + std::to_string(w1) + ")",
                   util::fmt(metrics::to_db(full), 1),
                   util::fmt(metrics::to_db(adaptive.mean), 1),
                   util::fmt(std::abs(std::log2(adaptive.mean / full)), 3),
                   std::to_string(adaptive.observations),
                   std::to_string(total), util::fmt_pct(saving, 1)});
  }
  table.print(std::cout);
  std::cout << "\nmean observation saving: " << util::fmt_pct(savings.mean(), 1)
            << "% at <= 0.15-bit estimation gap. Combined with kriging's\n"
               "evaluation saving p, the total simulation-time reduction is\n"
               "(1 - p) * (1 - saving) of the naive cost (paper Eq. 2)\n";
  return 0;
}
