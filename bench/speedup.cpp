// Reproduces the timing analysis of Sec. IV: per-evaluation simulation vs
// interpolation cost and the end-to-end optimization speed-up at each
// benchmark's interpolated fraction (the paper quotes ÷2 for FIR/IIR, ÷5
// for FFT, ÷10 for HEVC and SqueezeNet).
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/table1.hpp"
#include "util/table.hpp"

namespace {

void report(const ace::core::ApplicationBenchmark& bench, int distance,
            ace::util::TablePrinter& table) {
  const auto result = ace::core::run_table1(bench, {distance});
  const auto timing = ace::core::measure_speedup(bench, result, distance);
  table.add_row({bench.name, std::to_string(distance),
                 ace::util::fmt(timing.sim_seconds * 1e3, 3),
                 ace::util::fmt(timing.krig_seconds * 1e6, 2),
                 ace::util::fmt(timing.p * 100.0, 2),
                 ace::util::fmt(timing.speedup, 2)});
}

}  // namespace

int main() {
  std::cout << "=== Sec. IV timing: simulation vs kriging interpolation ===\n";
  ace::util::TablePrinter table({"benchmark", "d", "t_sim (ms)",
                                 "t_krig (us)", "p (%)", "speedup"});

  report(ace::core::make_fir_benchmark(), 3, table);
  report(ace::core::make_iir_benchmark(), 2, table);
  report(ace::core::make_fft_benchmark(), 2, table);

  {
    ace::core::HevcBenchOptions o;
    o.jobs = 12;  // Keep the timing bench snappy.
    report(ace::core::make_hevc_benchmark(o), 2, table);
  }
  {
    ace::core::CnnBenchOptions o;
    o.images = 80;
    report(ace::core::make_squeezenet_benchmark(o), 3, table);
  }

  table.print(std::cout);
  std::cout << "\nspeedup = 1 / ((1 - p) + p * t_krig / t_sim): the paper's\n"
               "time-division claims (/2 .. /10) follow from p alone since\n"
               "t_krig << t_sim\n";
  return 0;
}
