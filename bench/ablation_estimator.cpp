// Extension ablation: ordinary kriging (the paper's estimator, constant
// unknown mean) vs universal kriging with a linear drift. Word-length
// accuracy surfaces trend strongly (≈6 dB per bit), so modelling the trend
// should cut the interpolation error — especially at larger d where the
// support sits farther from the query.
#include <iostream>
#include <memory>

#include "core/benchmarks.hpp"
#include "core/table1.hpp"
#include "dse/sim_store.hpp"
#include "kriging/empirical_variogram.hpp"
#include "kriging/fit.hpp"
#include "kriging/simple_kriging.hpp"
#include "kriging/universal_kriging.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

void compare(const ace::core::ApplicationBenchmark& bench, int distance,
             ace::util::TablePrinter& table) {
  const auto with_drift = [&](ace::kriging::DriftKind drift) {
    ace::dse::PolicyOptions base;
    base.drift = drift;
    return ace::core::run_table1(bench, {distance}, base).rows.front();
  };
  const auto ok = with_drift(ace::kriging::DriftKind::kConstant);
  const auto uk = with_drift(ace::kriging::DriftKind::kLinear);
  table.add_row({bench.name, std::to_string(distance),
                 ace::util::fmt(ok.p_percent, 1), ace::util::fmt(ok.eps_mean, 2),
                 ace::util::fmt(ok.eps_max, 2), ace::util::fmt(uk.p_percent, 1),
                 ace::util::fmt(uk.eps_mean, 2),
                 ace::util::fmt(uk.eps_max, 2)});
}

/// Head-to-head OK vs *simple* kriging (the paper's prose says "simple
/// kriging" while its equations are ordinary kriging): replay the
/// trajectory once, and on every configuration both estimators can
/// serve, score both against the truth.
void simple_vs_ordinary(const ace::core::ApplicationBenchmark& bench,
                        int distance, ace::util::TablePrinter& table) {
  namespace k = ace::kriging;
  namespace d = ace::dse;
  const auto result = ace::core::run_table1(bench, {distance});
  const auto& trajectory = result.trajectory;

  d::SimulationStore store;
  ace::util::RunningStats ok_eps, sk_eps;
  std::unique_ptr<k::VariogramModel> model;
  double sill = 1.0;
  double mean = 0.0;

  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    const auto& config = trajectory.configs[i];
    const double truth = trajectory.values[i];
    const auto hood = store.neighbors_within(config, distance);

    bool interpolated = false;
    if (hood.count() > 1 && store.size() >= 10) {
      if (!model) {
        std::vector<std::vector<double>> pts;
        for (const auto& c : store.configs()) pts.push_back(d::to_real(c));
        const k::EmpiricalVariogram ev(pts, store.values());
        model = k::fit_best(ev).model;
        sill = std::max(ev.value_variance(), 1e-9);
        mean = ace::util::mean(store.values());
      }
      std::vector<std::vector<double>> pts;
      std::vector<double> vals;
      store.gather(hood, pts, vals);
      const auto ok = k::krige(pts, vals, d::to_real(config), *model);
      const auto sk = k::simple_krige(pts, vals, d::to_real(config), *model,
                                      sill, mean);
      if (ok && sk) {
        interpolated = true;
        ok_eps.add(d::interpolation_epsilon(ok->estimate, truth,
                                            bench.metric));
        sk_eps.add(d::interpolation_epsilon(sk->estimate, truth,
                                            bench.metric));
      }
    }
    if (!interpolated) store.add(config, truth);
  }
  if (ok_eps.count() == 0) return;
  table.add_row({bench.name, std::to_string(distance),
                 std::to_string(ok_eps.count()),
                 ace::util::fmt(ok_eps.mean(), 2),
                 ace::util::fmt(sk_eps.mean(), 2)});
}

}  // namespace

int main() {
  std::cout << "=== Extension ablation: ordinary vs universal kriging ===\n";
  ace::util::TablePrinter table({"benchmark", "d", "OK p(%)", "OK mu",
                                 "OK max", "UK p(%)", "UK mu", "UK max"});
  ace::core::SignalBenchOptions signal_opt;
  signal_opt.w_max = 20;
  for (int d : {3, 5}) {
    compare(ace::core::make_fir_benchmark(signal_opt), d, table);
    compare(ace::core::make_iir_benchmark(signal_opt), d, table);
    compare(ace::core::make_fft_benchmark(), d, table);
    compare(ace::core::make_dct_benchmark(), d, table);
  }
  {
    ace::core::HevcBenchOptions o;
    o.jobs = 12;
    compare(ace::core::make_hevc_benchmark(o), 3, table);
  }
  table.print(std::cout);

  std::cout << "\n--- ordinary vs simple kriging (same served configs) ---\n";
  ace::util::TablePrinter sk_table(
      {"benchmark", "d", "configs", "OK mu eps", "SK mu eps"});
  simple_vs_ordinary(ace::core::make_fir_benchmark(signal_opt), 3, sk_table);
  simple_vs_ordinary(ace::core::make_iir_benchmark(signal_opt), 3, sk_table);
  simple_vs_ordinary(ace::core::make_fft_benchmark(), 3, sk_table);
  sk_table.print(std::cout);
  std::cout << "\nSK pins the mean to the store average (the paper's prose\n"
               "says 'simple kriging'; its equations are OK) — the pinned\n"
               "mean drags trending-surface estimates toward it\n";

  std::cout << "\neps in equivalent bits (Eq. 11). UK = regression kriging\n"
               "with a globally fitted linear trend. Finding: the trend\n"
               "rarely helps — word-length accuracy surfaces are only\n"
               "piecewise-trending (per-variable slopes until one source\n"
               "dominates, then a plateau), so the global fit misjudges\n"
               "local structure and the paper's constant-mean ordinary\n"
               "kriging is the more robust default\n";
  return 0;
}
