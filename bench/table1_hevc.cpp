// Reproduces Table I, HEVC row group (motion compensation, Nv = 23,
// noise power, λm = −50 dB as in the paper).
#include "table1_common.hpp"

#include "core/benchmarks.hpp"

int main(int argc, char** argv) {
  return ace::benchdriver::run_table1_bench(
      ace::core::make_hevc_benchmark(), argc, argv);
}
