// Factorization-cache bench (ISSUE 5): the min+1 FIR run is driven twice
// through the KrigingPolicy — once on the direct path (factor cache off,
// every interpolation factorizes a fresh all-in-base system) and once with
// the policy-level FactorCache enabled, where overlapping neighbourhoods
// reuse or incrementally extend cached factorizations.
//
// The cache must be invisible to the optimizer: the decision stream and
// the final configurations have to be bit-identical on both paths.
// Interpolated λ values themselves agree only to roundoff (~1e-13): an
// incrementally maintained factorization orders its floating-point
// operations differently from the direct all-in-base LU. That roundoff
// never feeds back — interpolations are not stored — so decisions stay
// bit-identical; the final reported λ is checked to 1e-9 relative. The
// win is measured in full factorizations avoided — the gate requires a
// >= 30% reduction on the FIR run (the IIR row is informational).
#include <cmath>
#include <cstddef>
#include <iostream>
#include <string>

#include "core/benchmarks.hpp"
#include "dse/kriging_policy.hpp"
#include "dse/min_plus_one.hpp"
#include "dse/scheduler.hpp"
#include "util/table.hpp"

namespace {

constexpr std::size_t kCacheCapacity = 8;

struct RunResult {
  ace::dse::MinPlusOneResult optimum;
  ace::dse::PolicyStats stats;
};

RunResult run(const ace::core::ApplicationBenchmark& bench,
              std::size_t cache_capacity) {
  ace::dse::PolicyOptions opt;
  opt.factor_cache_capacity = cache_capacity;
  ace::dse::KrigingPolicy policy(opt);
  const auto evaluate =
      ace::dse::policy_batch_evaluator(policy, bench.simulate);
  RunResult result;
  result.optimum = ace::dse::min_plus_one(evaluate, bench.min_plus_one);
  result.stats = policy.stats();
  return result;
}

}  // namespace

int main() {
  std::cout << "=== Factor cache vs direct solve (capacity "
            << kCacheCapacity << ") ===\n";

  // w_max = 20 matches the Table I FIR sizing (densest trajectory).
  ace::core::SignalBenchOptions signal;
  signal.w_max = 20;

  ace::util::TablePrinter table({"bench", "interp", "direct fact",
                                 "cached fact", "hits", "extends",
                                 "reduction", "identical"});
  bool all_identical = true;
  double fir_reduction = 0.0;
  bool first = true;
  for (const auto& bench : {ace::core::make_fir_benchmark(signal),
                            ace::core::make_iir_benchmark(signal)}) {
    const RunResult direct = run(bench, 0);
    const RunResult cached = run(bench, kCacheCapacity);

    const double lambda_scale =
        std::max(std::fabs(direct.optimum.final_lambda), 1.0);
    const bool identical =
        direct.optimum.decisions == cached.optimum.decisions &&
        direct.optimum.w_min == cached.optimum.w_min &&
        direct.optimum.w_res == cached.optimum.w_res &&
        direct.optimum.constraint_met == cached.optimum.constraint_met &&
        std::fabs(direct.optimum.final_lambda - cached.optimum.final_lambda) <=
            1e-9 * lambda_scale;
    all_identical = all_identical && identical;

    const double base =
        static_cast<double>(direct.stats.full_factorizations);
    const double reduction =
        base == 0.0 ? 0.0
                    : 1.0 - static_cast<double>(
                                cached.stats.full_factorizations) /
                                base;
    if (first) fir_reduction = reduction;
    first = false;

    table.add_row({bench.name,
                   std::to_string(direct.stats.interpolated),
                   std::to_string(direct.stats.full_factorizations),
                   std::to_string(cached.stats.full_factorizations),
                   std::to_string(cached.stats.factor_cache_hits),
                   std::to_string(cached.stats.factor_extends),
                   ace::util::fmt(100.0 * reduction, 1) + " %",
                   identical ? "yes" : "NO"});
    if (!identical)
      std::cerr << "FAIL: cached decisions diverge from direct on "
                << bench.name << "\n";

    std::cout << bench.name << " conditioning (direct run): rcond mean = "
              << ace::util::fmt_sci(direct.stats.rcond_per_solve.mean())
              << ", min = "
              << ace::util::fmt_sci(direct.stats.rcond_per_solve.min())
              << ", ridge fallbacks = " << direct.stats.ridge_fallbacks
              << " / " << direct.stats.interpolated << " interpolations\n";
  }
  std::cout << "\n";
  table.print(std::cout);

  const bool enough = fir_reduction >= 0.30;
  std::cout << "\nidentical decisions on both paths: "
            << (all_identical ? "yes" : "NO")
            << "\nFIR full-factorization reduction: "
            << ace::util::fmt(100.0 * fir_reduction, 1)
            << " % (gate: >= 30 %" << (enough ? ", met" : ", NOT MET")
            << ")\nthe cache reuses and incrementally extends bordered"
            << "\nfactorizations across overlapping neighbourhoods; the"
            << "\ndirect path refactorizes every query from scratch\n";
  return (all_identical && enough) ? 0 : 1;
}
