// Reproduces Table I, FFT row group (64-point FFT, Nv = 10, noise power).
#include "table1_common.hpp"

#include "core/benchmarks.hpp"

int main(int argc, char** argv) {
  return ace::benchdriver::run_table1_bench(
      ace::core::make_fft_benchmark(), argc, argv);
}
