// Extension: the paper claims the evaluation method is optimizer-agnostic
// ("can be used for other AC DSE"). This bench drives a simulated-
// annealing DSE — whose scattered evaluation pattern is much harder on
// the neighbourhood policy than the greedy min+1 walk — with and without
// kriging, and compares against min+1.
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/engine.hpp"
#include "dse/annealing.hpp"
#include "dse/cost.hpp"
#include "util/table.hpp"

namespace {

struct Row {
  std::string label;
  std::size_t simulated = 0;
  std::size_t interpolated = 0;
  double cost = 0.0;
  double lambda = 0.0;
  bool feasible = false;
};

Row run_annealing(const ace::core::ApplicationBenchmark& bench,
                  bool with_kriging) {
  const ace::dse::Lattice lattice(bench.nv, bench.min_plus_one.w_min,
                                  bench.min_plus_one.w_max);
  ace::dse::AnnealingOptions options;
  options.lambda_min = bench.min_plus_one.lambda_min;
  options.iterations = 3000;
  options.seed = 2024;

  Row row;
  if (with_kriging) {
    ace::dse::PolicyOptions policy;
    policy.distance = 2;
    ace::core::ErrorEvaluationEngine engine(bench.simulate, policy,
                                            bench.metric);
    const auto r =
        ace::dse::simulated_annealing(engine.as_evaluator(), lattice, options);

    // Kriging error near the constraint boundary can leave the returned
    // solution marginally infeasible under exact simulation; standard
    // practice is an exact verify-and-repair climb (counted below).
    ace::dse::Config solution = r.best;
    std::size_t repair_sims = 1;
    double exact_lambda = bench.simulate(solution);
    while (exact_lambda < options.lambda_min) {
      std::size_t grow = solution.size();
      for (std::size_t i = 0; i < solution.size(); ++i)
        if (solution[i] < lattice.upper) {
          grow = i;
          break;
        }
      if (grow == solution.size()) break;
      ++solution[grow];
      exact_lambda = bench.simulate(solution);
      ++repair_sims;
    }

    row.label = bench.name + " SA+kriging";
    row.simulated = engine.stats().simulated + repair_sims;
    row.interpolated = engine.stats().interpolated;
    row.cost = options.cost(solution);
    row.lambda = exact_lambda;
    row.feasible = exact_lambda >= options.lambda_min;
  } else {
    std::size_t sims = 0;
    auto counted = [&](const ace::dse::Config& c) {
      ++sims;
      return bench.simulate(c);
    };
    const auto r = ace::dse::simulated_annealing(counted, lattice, options);
    row.label = bench.name + " SA exact";
    row.simulated = sims;
    row.cost = r.best_cost;
    row.lambda = r.best_lambda;
    row.feasible = r.feasible;
  }
  return row;
}

Row run_min_plus_one(const ace::core::ApplicationBenchmark& bench) {
  std::size_t sims = 0;
  auto counted = [&](const ace::dse::Config& c) {
    ++sims;
    return bench.simulate(c);
  };
  const auto r = ace::dse::min_plus_one(counted, bench.min_plus_one);
  Row row;
  row.label = bench.name + " min+1 exact";
  row.simulated = sims;
  row.cost = ace::dse::linear_cost(r.w_res);
  row.lambda = r.final_lambda;
  row.feasible = r.constraint_met;
  return row;
}

void emit(const Row& row, ace::util::TablePrinter& table) {
  table.add_row({row.label, std::to_string(row.simulated),
                 std::to_string(row.interpolated),
                 ace::util::fmt(row.cost, 0), ace::util::fmt(row.lambda, 1),
                 row.feasible ? "yes" : "no"});
}

}  // namespace

int main() {
  std::cout << "=== Extension: simulated-annealing DSE with kriging ===\n";
  ace::util::TablePrinter table({"run", "simulated", "kriged",
                                 "cost (sum w)", "lambda", "feasible"});
  ace::core::SignalBenchOptions signal_opt;
  signal_opt.w_max = 20;
  for (const auto& bench : {ace::core::make_iir_benchmark(signal_opt),
                            ace::core::make_fft_benchmark()}) {
    emit(run_min_plus_one(bench), table);
    emit(run_annealing(bench, false), table);
    emit(run_annealing(bench, true), table);
  }
  table.print(std::cout);
  std::cout << "\nSA explores far more configurations than min+1; kriging\n"
               "absorbs most of them. 'lambda' for SA+kriging is re-checked\n"
               "with an exact simulation of the returned solution\n";
  return 0;
}
