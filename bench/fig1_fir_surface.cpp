// Reproduces Fig. 1: the noise-power surface (dB) of the 64-tap FIR filter
// as a function of the adder and multiplier output word-lengths.
//
// Prints the surface as a grid (rows: adder WL, columns: multiplier WL) and
// writes out/fig1_surface.csv (relative to the working directory) for
// external plotting. Generated output stays out of the source tree: out/
// is git-ignored.
#include <filesystem>
#include <iostream>

#include "metrics/noise_power.hpp"
#include "signal/fir.hpp"
#include "signal/generator.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ace;

  constexpr int kWMin = 2;
  constexpr int kWMax = 16;
  util::Rng rng(42);
  const auto input = signal::noisy_multitone(rng, 512);
  const signal::FirFilter fir(signal::design_lowpass_fir(64, 0.18));
  const signal::QuantizedFirFilter quantized(fir);
  const auto reference = fir.filter(input);

  std::cout << "=== Fig. 1: FIR noise power (dB) vs word lengths ===\n";
  std::cout << "rows: adder WL w1 = " << kWMin << ".." << kWMax
            << "; columns: multiplier WL w0 = " << kWMin << ".." << kWMax
            << "\n\n";

  std::vector<std::string> headers = {"w_add\\w_mpy"};
  for (int w0 = kWMin; w0 <= kWMax; ++w0)
    headers.push_back(std::to_string(w0));
  util::TablePrinter table(headers);

  std::filesystem::create_directories("out");
  util::CsvWriter csv("out/fig1_surface.csv");
  csv.write_row(std::vector<std::string>{"w_add", "w_mpy", "noise_power_db"});

  for (int w1 = kWMin; w1 <= kWMax; ++w1) {
    std::vector<std::string> row = {std::to_string(w1)};
    for (int w0 = kWMin; w0 <= kWMax; ++w0) {
      const auto approx = quantized.filter(input, {w0, w1});
      const double p_db =
          metrics::to_db(metrics::noise_power(approx, reference));
      row.push_back(util::fmt(p_db, 1));
      csv.write_row(std::vector<double>{static_cast<double>(w1),
                                        static_cast<double>(w0), p_db});
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nsurface written to out/fig1_surface.csv\n";
  std::cout << "expected shape: monotone decrease along both axes with an\n"
               "L-shaped plateau where one word length dominates the error\n";
  return 0;
}
