// Shared driver for the Table I benches: runs the exact optimizer once,
// replays at d = 2..5, prints the paper-layout rows plus context.
#pragma once

#include <iostream>

#include "core/table1.hpp"
#include "dse/config.hpp"
#include "util/stopwatch.hpp"

namespace ace::benchdriver {

inline int run_table1_bench(const core::ApplicationBenchmark& bench,
                            const dse::PolicyOptions& base = {}) {
  std::cout << "=== Table I (" << bench.name << ", Nv = " << bench.nv
            << ") ===\n";
  util::Stopwatch watch;
  const auto result = core::run_table1(bench, {2, 3, 4, 5}, base);
  std::cout << "exact optimizer: " << result.trajectory.size()
            << " distinct configurations simulated, solution "
            << dse::to_string(result.exact_solution)
            << ", lambda = " << result.exact_lambda << "\n\n";
  core::print_table1(std::cout, result);
  std::cout << "\ntotal wall time: " << watch.seconds() << " s\n";
  return 0;
}

}  // namespace ace::benchdriver
