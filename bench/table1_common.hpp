// Shared driver for the Table I benches: parses the gate/option flags
// every table1 bench accepts (one parser here, not per-file copies), runs
// the exact optimizer once, replays at d = 2..5, prints the paper-layout
// rows plus context.
#pragma once

#include <cstring>
#include <exception>
#include <iostream>
#include <string>

#include "core/table1.hpp"
#include "dse/acquisition.hpp"
#include "dse/config.hpp"
#include "util/stopwatch.hpp"

namespace ace::benchdriver {

/// Parse one `--flag=value` acquisition option into `options`. Returns
/// false when the flag is not recognised (value parse errors throw).
inline bool parse_gate_flag(const std::string& arg,
                            dse::PolicyOptions& options) {
  const auto value_of = [&](const char* prefix) {
    return arg.substr(std::strlen(prefix));
  };
  if (arg.rfind("--gate=", 0) == 0) {
    const std::string name = value_of("--gate=");
    for (const dse::GateKind kind :
         {dse::GateKind::kNeighbourCount, dse::GateKind::kVariance,
          dse::GateKind::kLooCalibrated, dse::GateKind::kSequentialDesign}) {
      if (name == dse::gate_name(kind)) {
        options.gate = kind;
        return true;
      }
    }
    return false;
  }
  if (arg.rfind("--nn-min=", 0) == 0) {
    options.nn_min = std::stoul(value_of("--nn-min="));
    return true;
  }
  if (arg.rfind("--gate-nn-floor=", 0) == 0) {
    options.gate_nn_floor = std::stoul(value_of("--gate-nn-floor="));
    return true;
  }
  if (arg.rfind("--variance-gate=", 0) == 0) {
    options.variance_gate = std::stod(value_of("--variance-gate="));
    return true;
  }
  if (arg.rfind("--loo-gate=", 0) == 0) {
    options.loo_gate = std::stod(value_of("--loo-gate="));
    return true;
  }
  if (arg.rfind("--seq-confidence=", 0) == 0) {
    options.seq_confidence = std::stod(value_of("--seq-confidence="));
    return true;
  }
  if (arg.rfind("--nugget=", 0) == 0) {
    options.noise_nugget = std::stod(value_of("--nugget="));
    return true;
  }
  return false;
}

/// Parse all argv gate flags into `options`; prints usage and returns
/// false on an unknown flag or a bad value.
inline bool parse_gate_options(int argc, char** argv,
                               dse::PolicyOptions& options) {
  for (int i = 1; i < argc; ++i) {
    try {
      if (!parse_gate_flag(argv[i], options)) {
        std::cerr << "unknown flag: " << argv[i]
                  << "\nusage: [--gate=neighbour-count|variance|"
                     "loo-calibrated|sequential-design] [--nn-min=K]"
                     " [--gate-nn-floor=K] [--variance-gate=X]"
                     " [--loo-gate=X] [--seq-confidence=Z] [--nugget=T2]\n";
        return false;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value in flag: " << argv[i] << '\n';
      return false;
    }
  }
  return true;
}

/// The sequential-design gate protects a decision threshold; default it to
/// the benchmark's own accuracy constraint unless the caller pinned one.
inline void default_gate_lambda_min(const core::ApplicationBenchmark& bench,
                                    dse::PolicyOptions& options) {
  if (options.gate == dse::GateKind::kSequentialDesign &&
      !options.gate_lambda_min) {
    options.gate_lambda_min =
        bench.optimizer == core::OptimizerKind::kMinPlusOne
            ? bench.min_plus_one.lambda_min
            : bench.sensitivity.lambda_min;
  }
}

inline int run_table1_bench(const core::ApplicationBenchmark& bench,
                            int argc = 0, char** argv = nullptr,
                            dse::PolicyOptions base = {}) {
  if (!parse_gate_options(argc, argv, base)) return 2;
  default_gate_lambda_min(bench, base);
  std::cout << "=== Table I (" << bench.name << ", Nv = " << bench.nv
            << ", gate = " << dse::make_gate(base)->name() << ") ===\n";
  util::Stopwatch watch;
  const auto result = core::run_table1(bench, {2, 3, 4, 5}, base);
  std::cout << "exact optimizer: " << result.trajectory.size()
            << " distinct configurations simulated, solution "
            << dse::to_string(result.exact_solution)
            << ", lambda = " << result.exact_lambda << "\n\n";
  core::print_table1(std::cout, result);
  std::cout << "\ntotal wall time: " << watch.seconds() << " s\n";
  return 0;
}

}  // namespace ace::benchdriver
