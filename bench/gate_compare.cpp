// Gate-comparison bench (unifies the former ablation_nnmin and
// ablation_variance_gate binaries): run each kernel's optimizer end to
// end with kriging in the loop once per acquisition gate and score the
// gates by simulations spent vs the quality of the final λ_min decision,
// all against a fully exact reference run.
//
// Scoring: a run's λ_min decision is correct when the *true* (simulated)
// λ of its final configuration sits on the same side of λ_min as the
// exact optimizer's solution, and its cost (Σ word lengths / levels) does
// not exceed the baseline's — i.e. no gate may buy simulation savings by
// overshooting the refinement. An adaptive gate "beats" the paper's
// nn_min baseline on a kernel when its decision is correct and it used
// strictly fewer simulations.
//
// Doubles as the acquisition-seam identity gate: on every kernel the
// legacy option spelling (default gate + variance_gate > 0) must be
// decision-identical to the explicit --gate=variance spelling that
// make_gate resolves it to.
//
// Output: human-readable tables plus BENCH_gates.json (the checked-in
// copy is a committed snapshot of this output). Exit 1 unless the
// identity holds on every kernel AND at least one adaptive gate beats
// the baseline on >= 2 kernels.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "core/benchmarks.hpp"
#include "core/engine.hpp"
#include "dse/acquisition.hpp"
#include "dse/config.hpp"
#include "dse/trajectory.hpp"
#include "util/table.hpp"

namespace {

namespace core = ace::core;
namespace dse = ace::dse;

/// One optimizer run (exact or gated) reduced to what the scoring needs.
struct RunScore {
  std::string gate;
  std::size_t simulated = 0;     ///< True simulator invocations.
  std::size_t interpolated = 0;  ///< Evaluations served by kriging.
  dse::Config solution;
  double true_lambda = 0.0;      ///< λ(solution) under the exact simulator.
  bool feasible = false;         ///< true_lambda >= λ_min.
  int cost = 0;                  ///< Σ solution (bits / levels).
  int l1_gap = 0;                ///< L1 distance to the exact solution.
  std::vector<std::size_t> decisions;
  std::size_t loo_rejections = 0;
  std::size_t sequential_rejections = 0;
  std::size_t variance_rejections = 0;
  bool decision_ok = false;      ///< Same feasibility verdict as exact.
  bool beats_baseline = false;
};

struct KernelReport {
  std::string kernel;
  double lambda_min = 0.0;
  std::size_t exact_simulations = 0;
  dse::Config exact_solution;
  double exact_lambda = 0.0;
  bool exact_feasible = false;
  bool legacy_spelling_identical = false;  ///< variance_gate absorption.
  std::vector<RunScore> gates;
};

int cost_of(const dse::Config& c) {
  return std::accumulate(c.begin(), c.end(), 0);
}

double lambda_min_of(const core::ApplicationBenchmark& bench) {
  return bench.optimizer == core::OptimizerKind::kMinPlusOne
             ? bench.min_plus_one.lambda_min
             : bench.sensitivity.lambda_min;
}

/// Drive the benchmark's optimizer through a kriging engine with the
/// given options; truth-check the final configuration afterwards.
RunScore run_gated(const core::ApplicationBenchmark& bench,
                   const dse::PolicyOptions& options) {
  core::ErrorEvaluationEngine engine(bench.simulate, options, bench.metric);
  RunScore score;
  score.gate = dse::make_gate(options)->name();
  if (bench.optimizer == core::OptimizerKind::kMinPlusOne) {
    const auto result = engine.optimize_word_lengths(bench.min_plus_one);
    score.solution = result.w_res;
    score.decisions = result.decisions;
  } else {
    const auto result = engine.analyze_sensitivity(bench.sensitivity);
    score.solution = result.levels;
    score.decisions = result.decisions;
  }
  const dse::PolicyStats stats = engine.stats();
  score.simulated = stats.simulated;
  score.interpolated = stats.interpolated;
  score.loo_rejections = stats.loo_rejections;
  score.sequential_rejections = stats.sequential_rejections;
  score.variance_rejections = stats.variance_rejections;
  score.true_lambda = bench.simulate(score.solution);
  score.feasible = score.true_lambda >= lambda_min_of(bench);
  score.cost = cost_of(score.solution);
  return score;
}

dse::PolicyOptions gated_options(dse::GateKind kind, double lambda_min) {
  dse::PolicyOptions options;
  options.gate = kind;
  switch (kind) {
    case dse::GateKind::kNeighbourCount:
      break;  // Paper defaults (nn_min = 1).
    case dse::GateKind::kVariance:
      options.variance_gate = 0.5;
      break;
    case dse::GateKind::kLooCalibrated:
      options.gate_nn_floor = 1;
      options.loo_gate = 1.0;
      break;
    case dse::GateKind::kSequentialDesign:
      options.gate_nn_floor = 1;
      options.seq_confidence = 2.0;
      options.gate_lambda_min = lambda_min;
      break;
  }
  return options;
}

KernelReport run_kernel(const core::ApplicationBenchmark& bench) {
  KernelReport report;
  report.kernel = bench.name;
  report.lambda_min = lambda_min_of(bench);

  // Exact reference: every distinct configuration simulated once.
  {
    dse::TrajectoryRecorder recorder(bench.simulate);
    auto evaluate = recorder.as_simulator();
    if (bench.optimizer == core::OptimizerKind::kMinPlusOne) {
      const auto result = dse::min_plus_one(evaluate, bench.min_plus_one);
      report.exact_solution = result.w_res;
      report.exact_lambda = result.final_lambda;
    } else {
      const auto result =
          dse::steepest_descent_budgeting(evaluate, bench.sensitivity);
      report.exact_solution = result.levels;
      report.exact_lambda = result.final_lambda;
    }
    report.exact_simulations = recorder.trajectory().size();
    report.exact_feasible = report.exact_lambda >= report.lambda_min;
  }

  for (const dse::GateKind kind :
       {dse::GateKind::kNeighbourCount, dse::GateKind::kVariance,
        dse::GateKind::kLooCalibrated, dse::GateKind::kSequentialDesign}) {
    RunScore score =
        run_gated(bench, gated_options(kind, report.lambda_min));
    score.l1_gap = dse::l1_distance(score.solution, report.exact_solution);
    score.decision_ok = score.feasible == report.exact_feasible;
    report.gates.push_back(std::move(score));
  }

  // Identity: the legacy spelling (default gate + variance_gate) must be
  // decision-identical to the explicit variance gate it resolves to.
  {
    dse::PolicyOptions legacy;
    legacy.variance_gate = 0.5;
    const RunScore legacy_run = run_gated(bench, legacy);
    const RunScore& explicit_run = report.gates[1];
    report.legacy_spelling_identical =
        legacy_run.gate == explicit_run.gate &&
        legacy_run.decisions == explicit_run.decisions &&
        legacy_run.solution == explicit_run.solution &&
        legacy_run.simulated == explicit_run.simulated &&
        legacy_run.variance_rejections == explicit_run.variance_rejections;
  }

  // Beat rule vs the paper baseline (gates[0]): a correct λ_min decision
  // with strictly fewer simulations, and — when the baseline's decision
  // is itself correct — no extra refinement cost either (a wrong-decision
  // baseline's cost is not a meaningful bar: it underspent by stopping at
  // an infeasible configuration).
  const RunScore& baseline = report.gates[0];
  for (std::size_t i = 1; i < report.gates.size(); ++i) {
    RunScore& g = report.gates[i];
    g.beats_baseline = g.decision_ok && g.simulated < baseline.simulated &&
                       (!baseline.decision_ok || g.cost <= baseline.cost);
  }
  return report;
}

void print_report(const KernelReport& report, ace::util::TablePrinter& table) {
  for (const RunScore& g : report.gates) {
    table.add_row(
        {report.kernel, g.gate, std::to_string(g.simulated),
         std::to_string(g.interpolated), ace::util::fmt(g.true_lambda, 3),
         g.decision_ok ? "yes" : "NO", std::to_string(g.cost),
         std::to_string(g.l1_gap), g.beats_baseline ? "yes" : "-"});
  }
}

void write_json(std::ostream& os, const std::vector<KernelReport>& kernels,
                bool identity_ok, std::size_t kernels_beaten, bool pass) {
  os << "{\n  \"kernels\": [\n";
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    const KernelReport& r = kernels[k];
    os << "    {\n"
       << "      \"kernel\": \"" << r.kernel << "\",\n"
       << "      \"lambda_min\": " << r.lambda_min << ",\n"
       << "      \"exact_simulations\": " << r.exact_simulations << ",\n"
       << "      \"exact_lambda\": " << r.exact_lambda << ",\n"
       << "      \"exact_feasible\": " << (r.exact_feasible ? "true" : "false")
       << ",\n"
       << "      \"exact_cost\": " << cost_of(r.exact_solution) << ",\n"
       << "      \"legacy_variance_spelling_identical\": "
       << (r.legacy_spelling_identical ? "true" : "false") << ",\n"
       << "      \"gates\": [\n";
    for (std::size_t i = 0; i < r.gates.size(); ++i) {
      const RunScore& g = r.gates[i];
      os << "        {\"gate\": \"" << g.gate << "\","
         << " \"simulations\": " << g.simulated << ","
         << " \"interpolated\": " << g.interpolated << ","
         << " \"true_lambda\": " << g.true_lambda << ","
         << " \"lambda_decision_ok\": " << (g.decision_ok ? "true" : "false")
         << ","
         << " \"cost\": " << g.cost << ","
         << " \"l1_gap_to_exact\": " << g.l1_gap << ","
         << " \"variance_rejections\": " << g.variance_rejections << ","
         << " \"loo_rejections\": " << g.loo_rejections << ","
         << " \"sequential_rejections\": " << g.sequential_rejections << ","
         << " \"beats_baseline\": " << (g.beats_baseline ? "true" : "false")
         << "}" << (i + 1 < r.gates.size() ? "," : "") << "\n";
    }
    os << "      ]\n    }" << (k + 1 < kernels.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"legacy_spelling_identity\": " << (identity_ok ? "true" : "false")
     << ",\n"
     << "  \"kernels_beaten_by_best_adaptive_gate\": " << kernels_beaten
     << ",\n"
     << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
}

}  // namespace

int main() {
  std::cout << "=== Acquisition-gate comparison (decision quality per "
               "simulation) ===\n";

  std::vector<KernelReport> kernels;
  {
    core::SignalBenchOptions fir;
    fir.w_max = 20;
    kernels.push_back(run_kernel(core::make_fir_benchmark(fir)));
  }
  kernels.push_back(run_kernel(core::make_iir_benchmark()));
  {
    core::SignalBenchOptions fft;
    fft.samples = 256;
    kernels.push_back(run_kernel(core::make_fft_benchmark(fft)));
  }
  {
    core::CnnBenchOptions cnn;
    cnn.images = 100;  // Reduced for smoke runtime; metric stays noisy.
    kernels.push_back(run_kernel(core::make_squeezenet_benchmark(cnn)));
  }

  ace::util::TablePrinter table({"kernel", "gate", "sims", "interp",
                                 "true lambda", "decision ok", "cost",
                                 "L1 gap", "beats nn_min"});
  bool identity_ok = true;
  std::size_t loo_beats = 0, seq_beats = 0;
  for (const KernelReport& r : kernels) {
    print_report(r, table);
    identity_ok = identity_ok && r.legacy_spelling_identical;
    for (const RunScore& g : r.gates) {
      if (!g.beats_baseline) continue;
      if (g.gate == dse::gate_name(dse::GateKind::kLooCalibrated))
        ++loo_beats;
      if (g.gate == dse::gate_name(dse::GateKind::kSequentialDesign))
        ++seq_beats;
    }
  }
  table.print(std::cout);

  // The pass bar counts only the NEW adaptive gates (the variance gate
  // predates the acquisition seam): one of them must win on >= 2 kernels.
  const std::size_t kernels_beaten = std::max(loo_beats, seq_beats);
  const bool pass = identity_ok && kernels_beaten >= 2;
  std::cout << "\nlegacy variance_gate spelling identical to explicit "
               "variance gate: "
            << (identity_ok ? "yes (all kernels)" : "NO") << '\n'
            << "kernels beaten per adaptive gate: loo-calibrated "
            << loo_beats << ", sequential-design " << seq_beats
            << " (need >= 2 for one of them)\n"
            << (pass ? "PASS" : "FAIL") << '\n';

  std::ofstream json("BENCH_gates.json", std::ios::trunc);
  write_json(json, kernels, identity_ok, kernels_beaten, pass);
  json.flush();
  if (!json.good()) {
    std::cout << "warning: failed to write BENCH_gates.json\n";
    return 1;
  }
  return pass ? 0 : 1;
}
