// Baseline comparison (paper Sec. I-II): analytical noise modeling vs
// kriging-interpolated simulation on the FIR benchmark. The classical
// white-noise model predicts the output noise power in closed form —
// instantly, with zero simulations — but its assumptions (independent,
// white, non-saturating sources) drift from bit-true behaviour; kriging
// interpolates the *measured* surface instead.
#include <cmath>
#include <iostream>

#include "core/benchmarks.hpp"
#include "core/table1.hpp"
#include "fixedpoint/noise_model.hpp"
#include "metrics/noise_power.hpp"
#include "signal/generator.hpp"
#include "signal/iir.hpp"
#include "signal/noise_analysis.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

/// Analytical-vs-kriging comparison on the IIR cascade: the closed-form
/// model needs impulse-response energy gains (signal/noise_analysis);
/// measured over the same exact trajectory the kriging replay uses.
void iir_section(ace::util::TablePrinter& table) {
  using namespace ace;
  core::SignalBenchOptions opt;
  opt.w_max = 20;
  const auto bench = core::make_iir_benchmark(opt);
  const auto result = core::run_table1(bench, {3});

  // Rebuild the same filter/calibration the benchmark factory uses so the
  // analytical model sees identical integer-bit assignments.
  util::Rng rng(opt.seed);
  const auto input = signal::noisy_multitone(rng, opt.samples);
  const signal::IirCascade iir(signal::design_butterworth_lowpass(8, 0.12));
  const signal::QuantizedIirCascade quantized(iir, input);

  util::RunningStats analytical_eps;
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    const auto& wcfg = result.trajectory.configs[i];
    const std::vector<int> w(wcfg.begin(), wcfg.end());
    const double simulated = metrics::from_db(-result.trajectory.values[i]);
    const double predicted = signal::predict_iir_noise(
        iir.sections(), w, quantized.accumulator_integer_bits(),
        quantized.data_integer_bits());
    analytical_eps.add(std::abs(std::log2(predicted / simulated)));
  }

  util::RunningStats kriging_eps;
  dse::PolicyOptions options;
  options.distance = 3;
  const auto replay =
      dse::replay_with_kriging(result.trajectory, options, bench.metric);
  for (const auto& r : replay.records)
    if (r.interpolated) kriging_eps.add(r.epsilon);

  table.add_row({"IIR analytical",
                 std::to_string(analytical_eps.count()) + " (all)",
                 util::fmt(analytical_eps.mean(), 2),
                 util::fmt(analytical_eps.max(), 2), "0"});
  table.add_row(
      {"IIR kriging (d=3)", std::to_string(kriging_eps.count()),
       util::fmt(kriging_eps.mean(), 2), util::fmt(kriging_eps.max(), 2),
       std::to_string(result.trajectory.size() - kriging_eps.count())});
}

}  // namespace

int main() {
  using namespace ace;

  std::cout << "=== Baseline: analytical noise model vs kriging ===\n";

  core::SignalBenchOptions opt;
  opt.w_max = 20;
  const auto bench = core::make_fir_benchmark(opt);
  const auto result = core::run_table1(bench, {3});

  // Analytical prediction error over the same trajectory (both in
  // equivalent bits, Eq. 11). The FIR sites are <w0, iwl 0> products and
  // <w1, iwl 1> accumulator entries over 64 taps (see benchmarks.cpp).
  util::RunningStats analytical_eps;
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    const auto& w = result.trajectory.configs[i];
    const double simulated =
        metrics::from_db(-result.trajectory.values[i]);
    const double predicted =
        fixedpoint::predict_fir_noise(w[0], 0, w[1], 1, 64);
    analytical_eps.add(std::abs(std::log2(predicted / simulated)));
  }

  util::RunningStats kriging_eps;
  {
    dse::PolicyOptions options;
    options.distance = 3;
    const auto replay = dse::replay_with_kriging(result.trajectory, options,
                                                 bench.metric);
    for (const auto& r : replay.records)
      if (r.interpolated) kriging_eps.add(r.epsilon);
  }

  util::TablePrinter table(
      {"estimator", "configs served", "mu eps (bits)", "max eps (bits)",
       "simulations needed"});
  table.add_row({"FIR analytical",
                 std::to_string(analytical_eps.count()) + " (all)",
                 util::fmt(analytical_eps.mean(), 2),
                 util::fmt(analytical_eps.max(), 2), "0"});
  table.add_row(
      {"FIR kriging (d=3)", std::to_string(kriging_eps.count()),
       util::fmt(kriging_eps.mean(), 2), util::fmt(kriging_eps.max(), 2),
       std::to_string(result.trajectory.size() - kriging_eps.count())});
  iir_section(table);
  table.print(std::cout);

  std::cout << "\nthe analytical model needs no simulation at all but its\n"
               "error is a systematic model bias; kriging's error is\n"
               "local interpolation noise around measured truth — and it\n"
               "generalizes to metrics with no analytical model (the\n"
               "paper's motivation)\n";
  return 0;
}
