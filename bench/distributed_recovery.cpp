// Distributed-recovery bench: the decision-identity proof for the
// coordinator/worker evaluation path.
//
// Three claims are checked:
//   1. Chaos sweep: a min+1 optimization whose batch evaluation is sharded
//      across chaos-injected workers (random kills at protocol points,
//      garbage frames, stragglers past their lease) makes *bit-identical*
//      decisions to the single-process run — for every failure mode and
//      every seed. Recovery is allowed to cost re-dispatches, respawns and
//      local fallbacks; it is never allowed to change an answer.
//   2. Persistent simulator faults quarantine at the coordinator: a broken
//      configuration is shipped at most once per retry budget, and the run
//      still matches the equivalent single-process fault-injected run.
//   3. Happy-path overhead: sharding a clean workload to 4 subprocess
//      workers over pipes costs < 10% wall clock versus the in-process
//      thread-pool backend (same kernel, same batching).
//
// Flags: --chaos (skip the subprocess overhead section), --seeds N
// (default 8), --worker PATH (default: <bindir>/../tools/ace_worker).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dist/chaos.hpp"
#include "dist/coordinator.hpp"
#include "dist/in_process.hpp"
#include "dist/kernels.hpp"
#include "dse/batch_sim.hpp"
#include "dse/fault_injection.hpp"
#include "dse/kriging_policy.hpp"
#include "dse/min_plus_one.hpp"
#include "dse/scheduler.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;
namespace dist = ace::dist;
namespace dse = ace::dse;

/// Pure-simulation policy options (kriging disabled): every candidate goes
/// through the evaluation backend, so backend identity is what's tested.
dse::PolicyOptions pure_simulation(ace::util::RetryOptions retry) {
  dse::PolicyOptions options;
  options.min_fit_points = 1000000;
  options.retry = retry;
  return options;
}

dse::MinPlusOneOptions min_plus_setup() {
  dse::MinPlusOneOptions options;
  options.nv = 6;
  options.w_max = 10;
  options.w_min = 2;
  options.lambda_min = 14.0;
  return options;
}

bool identical_runs(const dse::MinPlusOneResult& a,
                    const dse::MinPlusOneResult& b) {
  return a.w_res == b.w_res && a.w_min == b.w_min &&
         a.decisions == b.decisions && a.final_lambda == b.final_lambda &&
         a.constraint_met == b.constraint_met;
}

/// One min+1 run with batch evaluation sharded through a coordinator whose
/// worker transports are wrapped in the given chaos options.
struct ChaosRun {
  dse::MinPlusOneResult result;
  dist::DistStats stats;
  bool degraded = false;
};

ChaosRun chaos_run(const dse::SimulatorFn& kernel,
                   const ace::util::RetryOptions& retry,
                   dist::ChaosOptions chaos, dist::DistOptions options) {
  options.retry = retry;
  auto spawned = std::make_shared<std::atomic<std::uint64_t>>(0);
  dist::Coordinator coordinator(
      [kernel, chaos, spawned]() -> std::unique_ptr<dist::Transport> {
        dist::ChaosOptions per_worker = chaos;
        per_worker.seed = chaos.seed + 1000 * spawned->fetch_add(1);
        return std::make_unique<dist::FaultInjectingTransport>(
            std::make_unique<dist::InProcessTransport>(kernel), per_worker);
      },
      kernel, options);
  dse::KrigingPolicy policy(pure_simulation(retry));
  ChaosRun run;
  run.result =
      dse::min_plus_one(dse::policy_batch_evaluator(policy, coordinator),
                        min_plus_setup());
  run.stats = coordinator.stats();
  run.degraded = coordinator.degraded();
  return run;
}

/// Time simulate_many over the whole workload in policy-sized chunks.
double time_backend(dse::BatchSimulator& backend,
                    const std::vector<dse::Config>& work) {
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = Clock::now();
    for (std::size_t at = 0; at < work.size(); at += 64) {
      const std::vector<dse::Config> chunk(
          work.begin() + static_cast<long>(at),
          work.begin() + static_cast<long>(std::min(at + 64, work.size())));
      (void)backend.simulate_many(chunk);
    }
    best = std::min(best,
                    std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool chaos_only = false;
  std::size_t seeds = 8;
  std::string worker_binary;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--chaos") {
      chaos_only = true;
    } else if (arg == "--seeds" && i + 1 < argc) {
      seeds = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--worker" && i + 1 < argc) {
      worker_binary = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--chaos] [--seeds N] [--worker PATH]\n";
      return 2;
    }
  }
  if (worker_binary.empty()) {
    worker_binary = (std::filesystem::path(argv[0]).parent_path() / ".." /
                     "tools" / "ace_worker")
                        .string();
  }

  int failures = 0;
  ace::util::RetryOptions retry;
  retry.max_attempts = 2;

  // --- Single-process reference: the decisions every run must match ------
  const dse::SimulatorFn lattice = dist::find_kernel("lattice");
  dse::KrigingPolicy clean(pure_simulation(retry));
  const dse::MinPlusOneResult reference = dse::min_plus_one(
      dse::policy_batch_evaluator(clean, lattice), min_plus_setup());

  // --- 1. Chaos sweep: every failure mode, every seed --------------------
  struct Mode {
    const char* name;
    dist::ChaosOptions chaos;
    dist::DistOptions options;
  };
  std::vector<Mode> modes(3);
  modes[0].name = "kill";  // Workers die mid-protocol, both directions.
  modes[0].chaos.kill_on_send = 0.03;
  modes[0].chaos.kill_on_recv = 0.03;
  modes[1].name = "garbage";  // Frames corrupted on the way back.
  modes[1].chaos.garbage = 0.05;
  modes[2].name = "stall";  // Stragglers held past a short lease.
  modes[2].chaos.stall = 0.10;
  modes[2].chaos.stall_hold = std::chrono::milliseconds(40);
  modes[2].options.lease_ms = std::chrono::milliseconds(20);
  for (Mode& mode : modes) {
    mode.options.workers = 3;
    mode.options.respawn_budget = 256;
  }

  std::cout << "=== Chaos sweep: " << seeds
            << " seeds x {kill, garbage, stall} vs single-process ===\n";
  for (const Mode& mode : modes) {
    std::size_t matched = 0;
    dist::DistStats total;
    for (std::size_t seed = 1; seed <= seeds; ++seed) {
      dist::ChaosOptions chaos = mode.chaos;
      chaos.seed = 0x9000u + 131 * seed;
      const ChaosRun run = chaos_run(lattice, retry, chaos, mode.options);
      if (identical_runs(run.result, reference)) ++matched;
      total.dispatches += run.stats.dispatches;
      total.redispatches += run.stats.redispatches;
      total.steals += run.stats.steals;
      total.lease_expiries += run.stats.lease_expiries;
      total.worker_deaths += run.stats.worker_deaths;
      total.respawns += run.stats.respawns;
      total.corrupt_frames += run.stats.corrupt_frames;
      total.truncated_frames += run.stats.truncated_frames;
      total.local_fallbacks += run.stats.local_fallbacks;
    }
    const std::size_t injected = total.worker_deaths + total.corrupt_frames +
                                 total.truncated_frames +
                                 total.lease_expiries;
    std::cout << mode.name << ": " << matched << "/" << seeds
              << " seeds bit-identical | deaths=" << total.worker_deaths
              << " respawns=" << total.respawns
              << " corrupt=" << total.corrupt_frames
              << " truncated=" << total.truncated_frames
              << " expiries=" << total.lease_expiries
              << " steals=" << total.steals
              << " redispatches=" << total.redispatches
              << " local=" << total.local_fallbacks << "\n";
    if (matched != seeds) {
      std::cerr << "FAIL: " << mode.name
                << " chaos changed the decision sequence\n";
      ++failures;
    }
    if (injected == 0) {
      std::cerr << "FAIL: " << mode.name
                << " chaos injected nothing across the sweep\n";
      ++failures;
    }
  }
  std::cout << "\n";

  // --- 2. Persistent simulator faults quarantine at the coordinator ------
  dse::FaultInjectionOptions persistent;
  persistent.seed = 5;
  persistent.throw_probability = 0.10;
  persistent.faulty_calls = 1000000;  // Never recovers.

  // Reference: the same faulting simulator, single-process. Faulting is a
  // pure function of (seed, config), so separate instances agree.
  dse::KrigingPolicy local_policy(pure_simulation(retry));
  const dse::FaultInjectingSimulator local_faulty(lattice, persistent);
  const dse::MinPlusOneResult faulty_reference = dse::min_plus_one(
      dse::policy_batch_evaluator(local_policy, local_faulty), min_plus_setup());

  const dse::FaultInjectingSimulator dist_faulty(lattice, persistent);
  dist::DistOptions faulty_options;
  faulty_options.workers = 3;
  faulty_options.retry = retry;
  dist::Coordinator faulty_coordinator(
      [&dist_faulty]() -> std::unique_ptr<dist::Transport> {
        return std::make_unique<dist::InProcessTransport>(dist_faulty);
      },
      dist_faulty, faulty_options);
  dse::KrigingPolicy dist_policy(pure_simulation(retry));
  const dse::MinPlusOneResult faulty_run = dse::min_plus_one(
      dse::policy_batch_evaluator(dist_policy, faulty_coordinator),
      min_plus_setup());
  const dse::PolicyStats& ps = dist_policy.stats();

  std::cout << "=== Persistent faults through the coordinator ===\n"
            << "identical to single-process fault-injected run: "
            << (identical_runs(faulty_run, faulty_reference) ? "yes" : "NO")
            << "\nquarantined=" << ps.quarantined
            << " simulator_faults=" << ps.simulator_faults
            << " redispatches=" << faulty_coordinator.stats().redispatches
            << " quarantine_hits=" << faulty_coordinator.stats().quarantine_hits
            << "\n\n";
  if (!identical_runs(faulty_run, faulty_reference)) {
    std::cerr << "FAIL: coordinator diverged under persistent faults\n";
    ++failures;
  }
  if (ps.quarantined == 0) {
    std::cerr << "FAIL: persistent faults should quarantine configurations\n";
    ++failures;
  }
  // A simulator fault is a *result*, not a transport failure: it must never
  // trigger re-dispatch, and quarantine caps simulation per broken config.
  if (faulty_coordinator.stats().redispatches != 0) {
    std::cerr << "FAIL: simulator faults caused transport re-dispatch\n";
    ++failures;
  }
  if (ps.simulator_faults > ps.quarantined * retry.max_attempts) {
    std::cerr << "FAIL: quarantined configurations were re-simulated\n";
    ++failures;
  }

  // --- 3. Happy-path overhead: 4 subprocess workers vs in-process --------
  if (chaos_only) {
    std::cout << (failures == 0 ? "all distributed-recovery checks passed\n"
                                : "DISTRIBUTED-RECOVERY CHECKS FAILED\n");
    return failures == 0 ? 0 : 1;
  }
  if (!std::filesystem::exists(worker_binary)) {
    std::cerr << "FAIL: worker binary not found: " << worker_binary
              << " (pass --worker or build the tools/ directory)\n";
    return 1;
  }

  std::vector<dse::Config> work;
  for (int x = 0; x < 8; ++x)
    for (int y = 0; y < 8; ++y)
      for (int z = 0; z < 8; ++z) work.push_back({x, y, z});

  const dse::SimulatorFn busy = dist::find_kernel("busy-lattice");
  ace::util::ThreadPool pool(4);
  dse::PooledBatchSimulator pooled(busy, retry, &pool);

  dist::DistOptions subprocess_options;
  subprocess_options.workers = 4;
  subprocess_options.retry = retry;
  const std::unique_ptr<dist::Coordinator> subprocess =
      dist::make_subprocess_coordinator(worker_binary, "busy-lattice", busy,
                                        subprocess_options);

  // Warm both backends (spawns + handshakes land outside the timed runs)
  // and cross-check values bitwise while we are at it.
  const std::vector<dse::Config> warmup(work.begin(), work.begin() + 64);
  const auto pooled_calls = pooled.simulate_many(warmup);
  const auto dist_calls = subprocess->simulate_many(warmup);
  for (std::size_t i = 0; i < warmup.size(); ++i) {
    if (pooled_calls[i].value != dist_calls[i].value) {
      std::cerr << "FAIL: subprocess worker value diverges at " << i << "\n";
      ++failures;
      break;
    }
  }

  const double pooled_s = time_backend(pooled, work);
  const double dist_s = time_backend(*subprocess, work);
  const double overhead_pct = 100.0 * (dist_s / pooled_s - 1.0);
  std::cout << "=== Happy-path overhead (" << work.size()
            << " busy-lattice simulations) ===\n"
            << "in-process pool(4):    " << ace::util::fmt(pooled_s, 4)
            << " s\nsubprocess workers(4): " << ace::util::fmt(dist_s, 4)
            << " s\noverhead: " << ace::util::fmt(overhead_pct, 2)
            << " % (budget: < 10 %)\n"
            << "worker deaths during timing: "
            << subprocess->stats().worker_deaths << "\n\n";
  if (overhead_pct >= 10.0) {
    std::cerr << "FAIL: subprocess sharding costs >= 10% on the happy path\n";
    ++failures;
  }
  if (subprocess->degraded()) {
    std::cerr << "FAIL: subprocess coordinator degraded on a clean run\n";
    ++failures;
  }

  std::cout << (failures == 0 ? "all distributed-recovery checks passed\n"
                              : "DISTRIBUTED-RECOVERY CHECKS FAILED\n");
  return failures == 0 ? 0 : 1;
}
