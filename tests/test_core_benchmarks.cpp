#include "core/benchmarks.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

namespace c = ace::core;
namespace d = ace::dse;

c::SignalBenchOptions tiny_signal() {
  c::SignalBenchOptions o;
  o.samples = 128;
  return o;
}

TEST(FirBenchmark, ShapeAndDeterminism) {
  const auto bench = c::make_fir_benchmark(tiny_signal());
  EXPECT_EQ(bench.name, "FIR");
  EXPECT_EQ(bench.nv, 2u);
  EXPECT_EQ(bench.metric, d::MetricKind::kAccuracyDb);
  EXPECT_EQ(bench.optimizer, c::OptimizerKind::kMinPlusOne);
  const d::Config w = {10, 10};
  EXPECT_DOUBLE_EQ(bench.simulate(w), bench.simulate(w));
}

TEST(FirBenchmark, AccuracyImprovesWithWiderWords) {
  const auto bench = c::make_fir_benchmark(tiny_signal());
  EXPECT_LT(bench.simulate({6, 6}), bench.simulate({12, 12}));
  EXPECT_LT(bench.simulate({8, 8}), bench.simulate({14, 14}));
}

TEST(FirBenchmark, IndependentInstancesAgree) {
  // Same seed -> same simulator behaviour (cross-instance determinism).
  const auto a = c::make_fir_benchmark(tiny_signal());
  const auto b = c::make_fir_benchmark(tiny_signal());
  EXPECT_DOUBLE_EQ(a.simulate({9, 11}), b.simulate({9, 11}));
}

TEST(IirBenchmark, ShapeAndMonotonicity) {
  const auto bench = c::make_iir_benchmark(tiny_signal());
  EXPECT_EQ(bench.name, "IIR");
  EXPECT_EQ(bench.nv, 5u);
  const d::Config narrow(5, 8), wide(5, 14);
  EXPECT_LT(bench.simulate(narrow), bench.simulate(wide));
}

TEST(FftBenchmark, ShapeAndMonotonicity) {
  const auto bench = c::make_fft_benchmark(tiny_signal());
  EXPECT_EQ(bench.name, "FFT");
  EXPECT_EQ(bench.nv, 10u);
  const d::Config narrow(10, 8), wide(10, 14);
  EXPECT_LT(bench.simulate(narrow), bench.simulate(wide));
}

TEST(HevcBenchmark, ShapeAndMonotonicity) {
  c::HevcBenchOptions o;
  o.jobs = 4;
  const auto bench = c::make_hevc_benchmark(o);
  EXPECT_EQ(bench.name, "HEVC");
  EXPECT_EQ(bench.nv, 23u);
  const d::Config narrow(23, 8), wide(23, 14);
  EXPECT_LT(bench.simulate(narrow), bench.simulate(wide));
  EXPECT_DOUBLE_EQ(bench.simulate(narrow), bench.simulate(narrow));
}

TEST(SqueezeNetBenchmark, ShapeAndQualitySemantics) {
  c::CnnBenchOptions o;
  o.images = 30;
  o.classes = 5;
  const auto bench = c::make_squeezenet_benchmark(o);
  EXPECT_EQ(bench.name, "SqueezeNet");
  EXPECT_EQ(bench.nv, 10u);
  EXPECT_EQ(bench.metric, d::MetricKind::kQualityRate);
  EXPECT_EQ(bench.optimizer, c::OptimizerKind::kSensitivity);

  // Near-silent sources: agreement ~1. Loud sources: lower agreement.
  const d::Config quiet(10, o.level_max);
  const d::Config loud(10, 0);
  const double q_quiet = bench.simulate(quiet);
  const double q_loud = bench.simulate(loud);
  EXPECT_GT(q_quiet, 0.9);
  EXPECT_LE(q_quiet, 1.0);
  EXPECT_LT(q_loud, q_quiet);
  // Deterministic.
  EXPECT_DOUBLE_EQ(bench.simulate(loud), q_loud);
}

TEST(IirSensitivityBenchmark, ShapeAndMonotonicity) {
  c::IirSensitivityOptions o;
  o.samples = 128;
  const auto bench = c::make_iir_sensitivity_benchmark(o);
  EXPECT_EQ(bench.name, "IIR-sens");
  EXPECT_EQ(bench.nv, 5u);  // 4 sections + input source.
  EXPECT_EQ(bench.optimizer, c::OptimizerKind::kSensitivity);
  // Quieter sources (higher level) -> higher accuracy.
  const d::Config quiet(5, 20), loud(5, 4);
  EXPECT_GT(bench.simulate(quiet), bench.simulate(loud));
  EXPECT_DOUBLE_EQ(bench.simulate(loud), bench.simulate(loud));
}

TEST(ApproxFirBenchmark, ShapeAndMonotonicity) {
  c::ApproxFirBenchOptions o;
  o.samples = 128;
  const auto bench = c::make_approx_fir_benchmark(o);
  EXPECT_EQ(bench.name, "ApproxFIR");
  EXPECT_EQ(bench.nv, 4u);
  // More precise operators (higher v) -> higher accuracy.
  const d::Config rough(4, 4), fine(4, 12);
  EXPECT_LT(bench.simulate(rough), bench.simulate(fine));
  EXPECT_DOUBLE_EQ(bench.simulate(rough), bench.simulate(rough));
  // Validation.
  c::ApproxFirBenchOptions bad;
  bad.taps = 3;
  EXPECT_THROW((void)c::make_approx_fir_benchmark(bad),
               std::invalid_argument);
  bad = {};
  bad.v_min = 14;
  EXPECT_THROW((void)c::make_approx_fir_benchmark(bad),
               std::invalid_argument);
}

TEST(DctBenchmark, ShapeAndMonotonicity) {
  c::DctBenchOptions o;
  o.blocks = 6;
  const auto bench = c::make_dct_benchmark(o);
  EXPECT_EQ(bench.name, "DCT");
  EXPECT_EQ(bench.nv, 6u);
  const d::Config narrow(6, 8), wide(6, 14);
  EXPECT_LT(bench.simulate(narrow), bench.simulate(wide));
}

TEST(FftBenchmark, RejectsTooFewSamples) {
  c::SignalBenchOptions o;
  o.samples = 32;
  EXPECT_THROW((void)c::make_fft_benchmark(o), std::invalid_argument);
}

}  // namespace
