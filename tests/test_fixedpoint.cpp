#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "fixedpoint/format.hpp"
#include "fixedpoint/quantizer.hpp"
#include "fixedpoint/range_tracker.hpp"
#include "util/rng.hpp"

namespace {

using ace::fixedpoint::Format;
using ace::fixedpoint::OverflowMode;
using ace::fixedpoint::Quantizer;
using ace::fixedpoint::RangeTracker;
using ace::fixedpoint::RoundingMode;

TEST(Format, ConstructionValidation) {
  EXPECT_THROW(Format(1, 0), std::invalid_argument);
  EXPECT_THROW(Format(53, 0), std::invalid_argument);
  EXPECT_THROW(Format(8, -1), std::invalid_argument);
  EXPECT_THROW(Format(8, 8), std::invalid_argument);
  EXPECT_NO_THROW(Format(8, 7));
  EXPECT_NO_THROW(Format(2, 0));
}

TEST(Format, DerivedQuantities) {
  const Format f(8, 3);  // 1 sign, 3 integer, 4 fractional.
  EXPECT_EQ(f.fractional_bits(), 4);
  EXPECT_DOUBLE_EQ(f.step(), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(f.min_value(), -8.0);
  EXPECT_DOUBLE_EQ(f.max_value(), 8.0 - 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(f.rounding_noise_power(), (1.0 / 256.0) / 12.0);
  EXPECT_DOUBLE_EQ(f.truncation_noise_power(), (1.0 / 256.0) / 3.0);
  EXPECT_EQ(f.to_string(), "<8,3>");
}

TEST(Format, ClampedIntegerBitsKeepsConstructible) {
  // A word too narrow for the requested range keeps sign + max integer
  // bits: <2, iwl>=... clamps to iwl = 1.
  const Format f = Format::with_clamped_integer_bits(2, 3);
  EXPECT_EQ(f.word_length(), 2);
  EXPECT_EQ(f.integer_bits(), 1);
  EXPECT_EQ(f.fractional_bits(), 0);
  // Wide enough words pass through unchanged.
  const Format g = Format::with_clamped_integer_bits(8, 3);
  EXPECT_EQ(g.integer_bits(), 3);
  // Negative requests clamp to zero.
  const Format h = Format::with_clamped_integer_bits(8, -2);
  EXPECT_EQ(h.integer_bits(), 0);
}

TEST(Quantizer, ClampedFormatSaturatesOutOfRangeValues) {
  const Quantizer q{Format::with_clamped_integer_bits(3, 5)};  // <3,2>.
  EXPECT_DOUBLE_EQ(q(100.0), Format(3, 2).max_value());
  EXPECT_DOUBLE_EQ(q(-100.0), -4.0);
}

TEST(Quantizer, RoundNearestGridValues) {
  const Quantizer q{Format(8, 3)};  // step 1/16.
  EXPECT_DOUBLE_EQ(q(0.0), 0.0);
  EXPECT_DOUBLE_EQ(q(1.0 / 16.0), 1.0 / 16.0);
  // 0.03 and −0.03 are both nearer to 0 than to ±1/16 (half step = 1/32).
  EXPECT_DOUBLE_EQ(q(0.03), 0.0);
  EXPECT_DOUBLE_EQ(q(-0.03), 0.0);
  // 0.04 crosses the 1/32 midpoint: rounds up to 1/16.
  EXPECT_DOUBLE_EQ(q(0.04), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(q(-0.04), -1.0 / 16.0);
}

TEST(Quantizer, TruncationFloorsTowardMinusInfinity) {
  const Quantizer q{Format(8, 3), RoundingMode::kTruncate};
  EXPECT_DOUBLE_EQ(q(0.99 / 16.0), 0.0);
  EXPECT_DOUBLE_EQ(q(-0.01), -1.0 / 16.0);
  EXPECT_DOUBLE_EQ(q(3.0 / 16.0), 3.0 / 16.0);
}

TEST(Quantizer, SaturationClampsAtRangeEdges) {
  const Quantizer q{Format(6, 2)};  // Range [-4, 4 - 1/8].
  EXPECT_DOUBLE_EQ(q(100.0), 4.0 - 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(q(-100.0), -4.0);
}

TEST(Quantizer, WrapIsPeriodic) {
  const Quantizer q{Format(6, 2), RoundingMode::kRoundNearest,
                    OverflowMode::kWrap};
  // Span is 8; value 4 wraps to -4.
  EXPECT_DOUBLE_EQ(q(4.0), -4.0);
  EXPECT_DOUBLE_EQ(q(4.0 + 8.0), -4.0);
  EXPECT_DOUBLE_EQ(q(-4.0 - 8.0), -4.0);
  // In-range values unaffected.
  EXPECT_DOUBLE_EQ(q(1.5), 1.5);
}

TEST(Quantizer, ErrorBoundedByStep) {
  ace::util::Rng rng(5);
  const Format f(10, 1);
  const Quantizer qr{f};
  const Quantizer qt{f, RoundingMode::kTruncate};
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(-1.9, 1.9);
    EXPECT_LE(std::abs(qr(x) - x), f.step() / 2.0 + 1e-15);
    const double terr = x - qt(x);
    EXPECT_GE(terr, -1e-15);
    EXPECT_LT(terr, f.step() + 1e-15);
  }
}

/// Property: quantization is idempotent across formats and modes.
class QuantizerIdempotenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, RoundingMode>> {};

TEST_P(QuantizerIdempotenceTest, QuantizeTwiceEqualsOnce) {
  const auto [w, iwl, mode] = GetParam();
  if (iwl > w - 1) GTEST_SKIP();
  const Quantizer q{Format(w, iwl), mode};
  ace::util::Rng rng(static_cast<std::uint64_t>(w * 100 + iwl));
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-4.0, 4.0);
    const double once = q(x);
    EXPECT_DOUBLE_EQ(q(once), once);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FormatsAndModes, QuantizerIdempotenceTest,
    ::testing::Combine(::testing::Values(2, 4, 8, 12, 16, 24),
                       ::testing::Values(0, 1, 3),
                       ::testing::Values(RoundingMode::kRoundNearest,
                                         RoundingMode::kTruncate)));

/// Property: widening the word length never increases quantization error.
class QuantizerMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerMonotoneTest, WiderWordSmallerError) {
  const int w = GetParam();
  ace::util::Rng rng(77);
  const Quantizer narrow{Format(w, 2)};
  const Quantizer wide{Format(w + 2, 2)};
  double err_narrow = 0.0, err_wide = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-3.9, 3.9);
    err_narrow += std::abs(narrow(x) - x);
    err_wide += std::abs(wide(x) - x);
  }
  EXPECT_LE(err_wide, err_narrow);
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantizerMonotoneTest,
                         ::testing::Values(4, 6, 8, 10, 12, 14));

TEST(RangeTracker, TracksMaximaAndDerivesIntegerBits) {
  RangeTracker t(3);
  EXPECT_THROW(RangeTracker(0), std::invalid_argument);
  t.observe(0, 0.4);
  t.observe(0, -0.7);
  t.observe(1, 3.9);
  EXPECT_DOUBLE_EQ(t.max_abs(0), 0.7);
  EXPECT_DOUBLE_EQ(t.max_abs(1), 3.9);
  EXPECT_DOUBLE_EQ(t.max_abs(2), 0.0);
  EXPECT_EQ(t.integer_bits(0), 0);   // |0.7| < 1.
  EXPECT_EQ(t.integer_bits(1), 2);   // |3.9| < 4.
  EXPECT_EQ(t.integer_bits(2), 0);   // Unobserved.
  EXPECT_EQ(t.integer_bits(1, 1), 3);
  const auto all = t.all_integer_bits();
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(all[1], 2);
}

TEST(RangeTracker, ObserveReturnsValueUnchanged) {
  RangeTracker t(1);
  EXPECT_DOUBLE_EQ(t.observe(0, -2.25), -2.25);
  EXPECT_THROW(t.observe(1, 0.0), std::out_of_range);
}

TEST(RangeTracker, ExactPowersOfTwoNeedTheNextBit) {
  RangeTracker t(1);
  t.observe(0, 2.0);
  // |2.0| needs iwl such that 2 < 2^iwl is violated at iwl=1; ceil(log2(2+eps))=2...
  EXPECT_GE(t.integer_bits(0), 1);
}

}  // namespace
