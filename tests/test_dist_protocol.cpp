#include "dist/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "dist/in_process.hpp"
#include "dist/worker.hpp"
#include "dse/fault.hpp"

namespace {

namespace dist = ace::dist;
namespace d = ace::dse;
namespace u = ace::util;

double tiny_kernel(const d::Config& w) {
  double acc = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i)
    acc += static_cast<double>(w[i]) * (1.0 + static_cast<double>(i));
  return acc;
}

TEST(DistFrame, RoundTripAndChecksum) {
  const std::string framed = dist::encode_frame("TASK 1 2 3 4");
  EXPECT_EQ(dist::decode_frame(framed), "TASK 1 2 3 4");
  // The trailer is " ~" + 16 hex digits.
  ASSERT_GT(framed.size(), 18u);
  EXPECT_EQ(framed[framed.size() - 18], ' ');
  EXPECT_EQ(framed[framed.size() - 17], '~');
}

TEST(DistFrame, MissingTrailerIsTruncation) {
  try {
    (void)dist::decode_frame("TASK 1 2 3");
    FAIL() << "frame without trailer decoded";
  } catch (const d::PayloadError& error) {
    EXPECT_EQ(error.code(), d::FaultCode::kTruncatedPayload);
  }
  // A frame cut inside its trailer is truncation too.
  const std::string framed = dist::encode_frame("QUIT");
  try {
    (void)dist::decode_frame(framed.substr(0, framed.size() - 4));
    FAIL() << "frame with partial trailer decoded";
  } catch (const d::PayloadError& error) {
    EXPECT_EQ(error.code(), d::FaultCode::kTruncatedPayload);
  }
}

TEST(DistFrame, CorruptionIsRejected) {
  std::string framed = dist::encode_frame("OUT 7 0 1 0 0 0x1p+3");
  framed[4] ^= 1;  // Flip a payload byte; the checksum must catch it.
  try {
    (void)dist::decode_frame(framed);
    FAIL() << "corrupted frame decoded";
  } catch (const d::PayloadError& error) {
    EXPECT_EQ(error.code(), d::FaultCode::kCorruptPayload);
  }
}

TEST(DistProtocol, HelloCarriesRetryOptionsExactly) {
  u::RetryOptions retry;
  retry.max_attempts = 4;
  retry.base_backoff_ms = 0.1;  // Non-terminating binary fraction.
  retry.backoff_multiplier = 3.5;
  retry.max_backoff_ms = 1.0 / 3.0;
  retry.jitter_fraction = 0.05;
  retry.jitter_seed = 0xdeadbeefcafeull;
  retry.deadline_ms = 250.25;
  const dist::WireMessage msg =
      dist::parse_message(dist::decode_frame(dist::encode_hello(retry)));
  ASSERT_EQ(msg.type, dist::MsgType::kHello);
  EXPECT_TRUE(msg.retry == retry);  // Bitwise: hexfloat round trip.
}

TEST(DistProtocol, TaskAndOutcomeRoundTrip) {
  const d::Config config{3, -1, 12, 0};
  const dist::WireMessage task =
      dist::parse_message(dist::decode_frame(dist::encode_task(42, config)));
  ASSERT_EQ(task.type, dist::MsgType::kTask);
  EXPECT_EQ(task.id, 42u);
  EXPECT_EQ(task.config, config);

  u::GuardedCall call;
  call.value = -1.0 / 3.0;
  call.fault = u::CallFault::kNone;
  call.attempts = 2;
  call.faulted_attempts = 1;
  call.timeouts = 1;
  call.message = "transient: lost my marbles (twice)";
  const dist::WireMessage out =
      dist::parse_message(dist::decode_frame(dist::encode_outcome(42, call)));
  ASSERT_EQ(out.type, dist::MsgType::kOutcome);
  EXPECT_EQ(out.id, 42u);
  EXPECT_EQ(out.call.value, call.value);  // Bitwise.
  EXPECT_EQ(out.call.fault, call.fault);
  EXPECT_EQ(out.call.attempts, call.attempts);
  EXPECT_EQ(out.call.faulted_attempts, call.faulted_attempts);
  EXPECT_EQ(out.call.timeouts, call.timeouts);
  EXPECT_EQ(out.call.message, call.message);
}

TEST(DistProtocol, NonFiniteValuesSurviveTheWire) {
  for (const double v : {std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity(),
                         5e-324, -0.0}) {
    u::GuardedCall call;
    call.value = v;
    call.attempts = 1;
    const dist::WireMessage out =
        dist::parse_message(dist::decode_frame(dist::encode_outcome(1, call)));
    EXPECT_EQ(std::signbit(out.call.value), std::signbit(v));
    EXPECT_EQ(out.call.value, v);
  }
  u::GuardedCall nan_call;
  nan_call.value = std::numeric_limits<double>::quiet_NaN();
  nan_call.fault = u::CallFault::kNonFinite;
  nan_call.attempts = 1;
  nan_call.faulted_attempts = 1;
  const dist::WireMessage out = dist::parse_message(
      dist::decode_frame(dist::encode_outcome(1, nan_call)));
  EXPECT_TRUE(std::isnan(out.call.value));
}

TEST(DistProtocol, MalformedPayloadsAreTyped) {
  const auto expect_corrupt = [](const std::string& payload) {
    try {
      (void)dist::parse_message(dist::decode_frame(dist::encode_frame(payload)));
      FAIL() << "parsed: " << payload;
    } catch (const d::PayloadError& error) {
      EXPECT_EQ(error.code(), d::FaultCode::kCorruptPayload) << payload;
    }
  };
  expect_corrupt("FROB 1 2 3");            // Unknown verb.
  expect_corrupt("TASK 1");                // Missing dimension count.
  expect_corrupt("TASK 1 2 3");            // Fewer coordinates than declared.
  expect_corrupt("TASK 1 2 3 4 5");        // More coordinates than declared.
  expect_corrupt("TASK x 1 3");            // Non-numeric id.
  expect_corrupt("OUT 1 99 1 0 0 0x1p+0"); // Fault code out of range.
  expect_corrupt("OUT 1 0 1 0 0 zzz");     // Bad value.
  expect_corrupt("HELLO 99 1 0x0p+0 0x1p+1 0x1p+6 0x1p-2 1 0x0p+0");  // Version.
  expect_corrupt("PING");                  // Missing nonce.
  expect_corrupt("QUIT now");              // Trailing token.
}

// End-to-end over the real serve() loop on a thread: handshake, task,
// ping, graceful quit.
TEST(DistWorker, ServeSpeaksTheProtocol) {
  dist::InProcessTransport transport(tiny_kernel);
  u::RetryOptions retry;
  retry.max_attempts = 2;
  ASSERT_TRUE(transport.send_line(dist::encode_hello(retry)));

  std::string line;
  ASSERT_EQ(transport.recv_line(line, std::chrono::milliseconds(2000)),
            dist::Transport::Recv::kLine);
  EXPECT_EQ(dist::parse_message(dist::decode_frame(line)).type,
            dist::MsgType::kReady);

  const d::Config config{2, 5};
  ASSERT_TRUE(transport.send_line(dist::encode_task(9, config)));
  ASSERT_EQ(transport.recv_line(line, std::chrono::milliseconds(2000)),
            dist::Transport::Recv::kLine);
  const dist::WireMessage out = dist::parse_message(dist::decode_frame(line));
  ASSERT_EQ(out.type, dist::MsgType::kOutcome);
  EXPECT_EQ(out.id, 9u);
  EXPECT_TRUE(out.call.ok());
  EXPECT_EQ(out.call.value, tiny_kernel(config));  // Bitwise.

  ASSERT_TRUE(transport.send_line(dist::encode_ping(77)));
  ASSERT_EQ(transport.recv_line(line, std::chrono::milliseconds(2000)),
            dist::Transport::Recv::kLine);
  const dist::WireMessage pong = dist::parse_message(dist::decode_frame(line));
  EXPECT_EQ(pong.type, dist::MsgType::kPong);
  EXPECT_EQ(pong.id, 77u);

  ASSERT_TRUE(transport.send_line(dist::encode_quit()));
  EXPECT_EQ(transport.recv_line(line, std::chrono::milliseconds(2000)),
            dist::Transport::Recv::kEof);
}

// A frame that fails its checksum poisons the stream: the worker reports
// ERR and exits.
TEST(DistWorker, CorruptFrameDrawsErrAndExit) {
  dist::InProcessTransport transport(tiny_kernel);
  ASSERT_TRUE(transport.send_line(dist::encode_hello({})));
  std::string line;
  ASSERT_EQ(transport.recv_line(line, std::chrono::milliseconds(2000)),
            dist::Transport::Recv::kLine);

  ASSERT_TRUE(transport.send_line("TASK 1 1 1"));  // No checksum trailer.
  ASSERT_EQ(transport.recv_line(line, std::chrono::milliseconds(2000)),
            dist::Transport::Recv::kLine);
  EXPECT_EQ(dist::parse_message(dist::decode_frame(line)).type,
            dist::MsgType::kErr);
  EXPECT_EQ(transport.recv_line(line, std::chrono::milliseconds(2000)),
            dist::Transport::Recv::kEof);
}

}  // namespace
