#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"
#include "util/rng.hpp"

namespace {

using ace::linalg::CholeskyDecomposition;
using ace::linalg::Matrix;
using ace::linalg::QrDecomposition;
using ace::linalg::Vector;

Matrix random_spd(ace::util::Rng& rng, std::size_t n) {
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.uniform(-1.0, 1.0);
  Matrix spd = b.transposed() * b;
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;
  return spd;
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(CholeskyDecomposition(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, FactorizesKnownSpd) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  CholeskyDecomposition chol(a);
  ASSERT_FALSE(chol.failed());
  EXPECT_NEAR(chol.l()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(chol.l()(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(chol.l()(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, FailsOnIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // Eigenvalues 3 and -1.
  CholeskyDecomposition chol(a);
  EXPECT_TRUE(chol.failed());
  EXPECT_THROW((void)chol.solve(Vector{1.0, 1.0}), std::runtime_error);
}

TEST(Cholesky, SolveSizeMismatch) {
  CholeskyDecomposition chol(Matrix::identity(3));
  EXPECT_THROW((void)chol.solve(Vector{1.0}), std::invalid_argument);
}

class CholeskyResidualTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskyResidualTest, SolvesRandomSpdSystems) {
  ace::util::Rng rng(GetParam() * 7919 + 1);
  const std::size_t n = GetParam();
  const Matrix a = random_spd(rng, n);
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = rng.uniform(-3.0, 3.0);
  CholeskyDecomposition chol(a);
  ASSERT_FALSE(chol.failed());
  const Vector x = chol.solve(b);
  EXPECT_LT((a * x - b).norm_inf(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyResidualTest,
                         ::testing::Values<std::size_t>(1, 2, 4, 7, 12, 20));

TEST(Qr, RejectsUnderdetermined) {
  EXPECT_THROW(QrDecomposition(Matrix(2, 3)), std::invalid_argument);
}

TEST(Qr, SolvesSquareSystemExactly) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector x = QrDecomposition(a).solve(Vector{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Qr, LeastSquaresMatchesNormalEquations) {
  // Fit y = a + b·t to 4 points; classic closed form.
  Matrix a{{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  Vector y{1.0, 2.2, 2.9, 4.1};
  const Vector beta = ace::linalg::least_squares(a, y);
  // Closed form via normal equations: slope = 1.0, intercept = 1.05.
  EXPECT_NEAR(beta[1], 1.0, 1e-9);
  EXPECT_NEAR(beta[0], 1.05, 1e-9);
}

TEST(Qr, DetectsRankDeficiency) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  QrDecomposition qr(a);
  EXPECT_TRUE(qr.rank_deficient());
  EXPECT_THROW((void)qr.solve(Vector{1.0, 2.0, 3.0}), std::runtime_error);
}

TEST(Qr, SolveSizeMismatch) {
  QrDecomposition qr(Matrix::identity(3));
  EXPECT_THROW((void)qr.solve(Vector{1.0}), std::invalid_argument);
}

TEST(Qr, ResidualOrthogonalToColumns) {
  ace::util::Rng rng(23);
  Matrix a(10, 3);
  for (std::size_t r = 0; r < 10; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  Vector b(10);
  for (std::size_t i = 0; i < 10; ++i) b[i] = rng.uniform(-1.0, 1.0);
  const Vector x = QrDecomposition(a).solve(b);
  const Vector residual = a * x - b;
  // Least-squares optimality: Aᵀ·r = 0.
  const Vector at_r = a.transposed() * residual;
  EXPECT_LT(at_r.norm_inf(), 1e-10);
}

}  // namespace
