#include "dse/config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

namespace {

namespace d = ace::dse;

TEST(ConfigDistance, L1Basics) {
  EXPECT_EQ(d::l1_distance({1, 2, 3}, {1, 2, 3}), 0);
  EXPECT_EQ(d::l1_distance({0, 0}, {3, -4}), 7);
  EXPECT_EQ(d::l1_distance({10}, {7}), 3);
  EXPECT_THROW((void)d::l1_distance({1}, {1, 2}), std::invalid_argument);
}

TEST(ConfigToReal, ConvertsExactly) {
  const auto r = d::to_real({-2, 0, 7});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], -2.0);
  EXPECT_DOUBLE_EQ(r[2], 7.0);
  EXPECT_TRUE(d::to_real({}).empty());
}

TEST(ConfigToString, Formats) {
  EXPECT_EQ(d::to_string({1, 2, 3}), "(1, 2, 3)");
  EXPECT_EQ(d::to_string({}), "()");
  EXPECT_EQ(d::to_string({-5}), "(-5)");
}

TEST(ConfigHash, DistinguishesPermutations) {
  d::ConfigHash h;
  EXPECT_NE(h({1, 2}), h({2, 1}));
  EXPECT_EQ(h({3, 4, 5}), h({3, 4, 5}));
  // Usable as an unordered_set key.
  std::unordered_set<d::Config, d::ConfigHash> set;
  set.insert({1, 2});
  set.insert({1, 2});
  set.insert({2, 1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Lattice, ValidationAndContains) {
  EXPECT_THROW(d::Lattice(0, 2, 16), std::invalid_argument);
  EXPECT_THROW(d::Lattice(3, 5, 4), std::invalid_argument);
  const d::Lattice lat(3, 2, 16);
  EXPECT_TRUE(lat.contains({2, 16, 9}));
  EXPECT_FALSE(lat.contains({1, 8, 8}));
  EXPECT_FALSE(lat.contains({2, 17, 8}));
  EXPECT_FALSE(lat.contains({2, 8}));  // Wrong dimensionality.
}

TEST(Lattice, UniformConfig) {
  const d::Lattice lat(4, 2, 16);
  EXPECT_EQ(lat.uniform(5), (d::Config{5, 5, 5, 5}));
  EXPECT_THROW((void)lat.uniform(1), std::invalid_argument);
  EXPECT_THROW((void)lat.uniform(17), std::invalid_argument);
}

}  // namespace
