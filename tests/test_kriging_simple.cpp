#include "kriging/simple_kriging.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "kriging/variogram_model.hpp"

namespace {

namespace k = ace::kriging;

TEST(SimpleKriging, Validation) {
  const k::SphericalVariogram model(0.0, 1.0, 4.0);
  EXPECT_THROW((void)k::simple_krige({}, {}, {0.0}, model, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(
      (void)k::simple_krige({{0.0}}, {1.0, 2.0}, {0.0}, model, 1.0, 0.0),
      std::invalid_argument);
  EXPECT_THROW(
      (void)k::simple_krige({{0.0}}, {1.0}, {0.0}, model, 0.0, 0.0),
      std::invalid_argument);
  EXPECT_THROW(
      (void)k::simple_krige({{0.0, 1.0}}, {1.0}, {0.0}, model, 1.0, 0.0),
      std::invalid_argument);
}

TEST(SimpleKriging, ExactAtSupportPoints) {
  const k::SphericalVariogram model(0.0, 2.0, 6.0);
  const std::vector<std::vector<double>> pts = {{0.0}, {2.0}, {5.0}};
  const std::vector<double> vals = {1.0, -2.0, 4.0};
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto r = k::simple_krige(pts, vals, pts[i], model, 2.0, 1.0);
    ASSERT_TRUE(r.has_value());
    if (r->regularized) continue;
    EXPECT_NEAR(r->estimate, vals[i], 1e-7) << "support point " << i;
    EXPECT_NEAR(r->variance, 0.0, 1e-7);
  }
}

TEST(SimpleKriging, FarQueryRevertsToTheMean) {
  // Beyond the variogram range the covariance vanishes: the estimate is
  // exactly the supplied mean — the defining property of simple kriging
  // (ordinary kriging reverts to the *local support* average instead).
  const k::SphericalVariogram model(0.0, 2.0, 3.0);
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}};
  const std::vector<double> vals = {10.0, 12.0};
  const double mean = 4.0;
  const auto r = k::simple_krige(pts, vals, {100.0}, model, 2.0, mean);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->estimate, mean, 1e-9);
  // Variance reverts to the sill.
  EXPECT_NEAR(r->variance, 2.0, 1e-9);
}

TEST(SimpleKriging, WeightsDoNotNeedToSumToOne) {
  const k::ExponentialVariogram model(0.0, 1.5, 4.0);
  const std::vector<std::vector<double>> pts = {{0.0}, {2.0}, {4.0}};
  const std::vector<double> vals = {3.0, 5.0, 2.0};
  const auto r = k::simple_krige(pts, vals, {6.0}, model, 1.5, 3.0);
  ASSERT_TRUE(r.has_value());
  double sum = 0.0;
  for (double w : r->weights) sum += w;
  EXPECT_LT(sum, 1.0);  // Mass shifts toward the prior mean.
  EXPECT_GT(sum, 0.0);
}

TEST(SimpleKriging, BiasedMeanBiasesTheEstimate) {
  // Same geometry, two different prior means: the far-field estimates
  // differ by exactly the mean difference.
  const k::GaussianVariogram model(0.0, 1.0, 2.0);
  const std::vector<std::vector<double>> pts = {{0.0}};
  const std::vector<double> vals = {5.0};
  const auto lo = k::simple_krige(pts, vals, {50.0}, model, 1.0, 0.0);
  const auto hi = k::simple_krige(pts, vals, {50.0}, model, 1.0, 10.0);
  ASSERT_TRUE(lo.has_value());
  ASSERT_TRUE(hi.has_value());
  EXPECT_NEAR(hi->estimate - lo->estimate, 10.0, 1e-9);
}

TEST(SimpleKriging, MatchesOrdinaryKrigingWhenMeanIsTrue) {
  // With the exact field mean supplied and support close to the query,
  // SK and OK agree closely (they differ only in how the mean is handled).
  const k::SphericalVariogram model(0.0, 2.0, 8.0);
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {2.0}, {3.0}};
  const std::vector<double> vals = {4.0, 6.0, 5.0, 7.0};
  const double mean = (4.0 + 6.0 + 5.0 + 7.0) / 4.0;
  const auto sk = k::simple_krige(pts, vals, {1.5}, model, 2.0, mean);
  const auto ok = k::krige(pts, vals, {1.5}, model);
  ASSERT_TRUE(sk.has_value());
  ASSERT_TRUE(ok.has_value());
  EXPECT_NEAR(sk->estimate, ok->estimate, 0.3);
}

}  // namespace
