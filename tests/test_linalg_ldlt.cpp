// BorderedLdlt: the incremental bordered factorization under
// kriging::KrigingSystem. The load-bearing properties are (a) base-only
// solves are bit-identical to a plain pivoted LU and (b) any sequence of
// append/remove edits reproduces the from-scratch solution of the
// assembled matrix to tight tolerance.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "linalg/ldlt.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "util/rng.hpp"

namespace {

namespace la = ace::linalg;

/// Random symmetric, strictly diagonally dominant matrix (so every
/// leading block and every Schur complement stays comfortably regular).
la::Matrix random_spd(std::size_t n, ace::util::Rng& rng) {
  la::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) = static_cast<double>(n) + 1.0 + rng.uniform(0.0, 1.0);
  return a;
}

la::Vector random_rhs(std::size_t n, ace::util::Rng& rng) {
  la::Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = rng.uniform(-5.0, 5.0);
  return b;
}

/// Leading m×m block of a.
la::Matrix leading_block(const la::Matrix& a, std::size_t m) {
  la::Matrix b(m, m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j) b(i, j) = a(i, j);
  return b;
}

void expect_matches_scratch(const la::BorderedLdlt& f, const la::Vector& b,
                            double tol) {
  ASSERT_TRUE(f.ok());
  const la::LuDecomposition scratch(f.assembled());
  ASSERT_FALSE(scratch.singular());
  const la::Vector expect = scratch.solve(b);
  const la::Vector got = f.solve(b);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], expect[i], tol) << "component " << i;
}

TEST(BorderedLdlt, BaseOnlySolveIsBitIdenticalToLu) {
  ace::util::Rng rng(17);
  const la::Matrix a = random_spd(6, rng);
  const la::Vector b = random_rhs(6, rng);
  const la::BorderedLdlt f(a);
  ASSERT_TRUE(f.ok());
  const la::Vector expect = la::LuDecomposition(a).solve(b);
  const la::Vector got = f.solve(b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(got[i], expect[i]);
  EXPECT_EQ(f.rcond_estimate(), la::LuDecomposition(a).rcond_estimate());
}

TEST(BorderedLdlt, AppendReproducesFromScratchSolve) {
  ace::util::Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(trial % 5);
    const std::size_t base = 1 + static_cast<std::size_t>(trial % 3);
    const la::Matrix full = random_spd(n + base, rng);
    la::BorderedLdlt f(leading_block(full, base));
    ASSERT_TRUE(f.ok());
    for (std::size_t k = base; k < base + n; ++k) {
      std::vector<double> coupling(k);
      for (std::size_t i = 0; i < k; ++i) coupling[i] = full(k, i);
      ASSERT_TRUE(f.append_point(coupling, full(k, k)));
    }
    EXPECT_EQ(f.size(), base + n);
    EXPECT_EQ(f.appended(), n);
    expect_matches_scratch(f, random_rhs(base + n, rng), 1e-10);
  }
}

TEST(BorderedLdlt, RemoveReproducesFromScratchSolve) {
  ace::util::Rng rng(31);
  const std::size_t base = 2, extra = 5;
  const la::Matrix full = random_spd(base + extra, rng);
  la::BorderedLdlt f(leading_block(full, base));
  for (std::size_t k = base; k < base + extra; ++k) {
    std::vector<double> coupling(k);
    for (std::size_t i = 0; i < k; ++i) coupling[i] = full(k, i);
    ASSERT_TRUE(f.append_point(coupling, full(k, k)));
  }
  // Drop the middle appended point, then the (new) first one.
  ASSERT_TRUE(f.remove_point(2));
  EXPECT_EQ(f.appended(), extra - 1);
  expect_matches_scratch(f, random_rhs(f.size(), rng), 1e-10);
  ASSERT_TRUE(f.remove_point(0));
  EXPECT_EQ(f.appended(), extra - 2);
  expect_matches_scratch(f, random_rhs(f.size(), rng), 1e-10);
}

TEST(BorderedLdlt, RandomEditSequencesMatchScratch) {
  ace::util::Rng rng(47);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t pool = 8;
    const la::Matrix full = random_spd(pool, rng);
    la::BorderedLdlt f(leading_block(full, 2));
    ASSERT_TRUE(f.ok());
    // Track which pool rows the appended slots currently hold so couplings
    // can be regenerated after removals shuffle positions.
    std::vector<std::size_t> held = {0, 1};
    std::vector<std::size_t> appended_rows;
    for (int edit = 0; edit < 24; ++edit) {
      const bool can_remove = !appended_rows.empty();
      const bool do_remove = can_remove && rng.uniform(0.0, 1.0) < 0.4;
      if (do_remove) {
        const std::size_t slot = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(appended_rows.size()) - 1));
        ASSERT_TRUE(f.remove_point(slot));
        held.erase(held.begin() + static_cast<std::ptrdiff_t>(2 + slot));
        appended_rows.erase(appended_rows.begin() +
                            static_cast<std::ptrdiff_t>(slot));
      } else if (held.size() < pool) {
        std::size_t row = 0;
        do {
          row = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(pool) - 1));
        } while (std::find(held.begin(), held.end(), row) != held.end());
        std::vector<double> coupling(f.size());
        for (std::size_t i = 0; i < held.size(); ++i)
          coupling[i] = full(row, held[i]);
        ASSERT_TRUE(f.append_point(coupling, full(row, row)));
        held.push_back(row);
        appended_rows.push_back(row);
      }
      expect_matches_scratch(f, random_rhs(f.size(), rng), 1e-9);
    }
  }
}

TEST(BorderedLdlt, AppendShiftLandsOnAppendedDiagonalsOnly) {
  ace::util::Rng rng(5);
  const la::Matrix full = random_spd(4, rng);
  const double shift = 0.25;
  la::BorderedLdlt f(leading_block(full, 2), shift);
  std::vector<double> c2 = {full(2, 0), full(2, 1)};
  ASSERT_TRUE(f.append_point(c2, full(2, 2)));
  const la::Matrix& a = f.assembled();
  EXPECT_EQ(a(0, 0), full(0, 0));          // base diagonal untouched
  EXPECT_EQ(a(2, 2), full(2, 2) + shift);  // appended diagonal shifted
  expect_matches_scratch(f, random_rhs(3, rng), 1e-10);
}

TEST(BorderedLdlt, DegenerateAppendIsRejectedAndFactorSurvives) {
  ace::util::Rng rng(9);
  const la::Matrix full = random_spd(3, rng);
  la::BorderedLdlt f(full);
  ASSERT_TRUE(f.ok());
  // A row identical to an existing one has a zero Schur pivot.
  std::vector<double> dup = {full(0, 0), full(0, 1), full(0, 2)};
  EXPECT_FALSE(f.append_point(dup, full(0, 0)));
  EXPECT_EQ(f.appended(), 0u);
  expect_matches_scratch(f, random_rhs(3, rng), 1e-12);
}

TEST(BorderedLdlt, InverseDiagonalMatchesLuAcrossEdits) {
  // At zero appends the diagonal-of-inverse walks the same refined solve
  // path as the LU version, entry for entry; after appends/removals it
  // must still match a from-scratch LU inverse of the assembled matrix.
  ace::util::Rng rng(61);
  const std::size_t base = 4;
  const std::size_t extra = 3;
  const la::Matrix full = random_spd(base + extra, rng);
  la::BorderedLdlt f(leading_block(full, base));
  ASSERT_TRUE(f.ok());
  {
    const la::Vector got = f.inverse_diagonal();
    const la::Vector expect =
        la::LuDecomposition(leading_block(full, base)).inverse_diagonal();
    for (std::size_t i = 0; i < base; ++i) EXPECT_EQ(got[i], expect[i]);
  }
  for (std::size_t k = 0; k < extra; ++k) {
    std::vector<double> coupling(base + k);
    for (std::size_t i = 0; i < base + k; ++i)
      coupling[i] = full(base + k, i);
    ASSERT_TRUE(f.append_point(coupling, full(base + k, base + k)));
  }
  ASSERT_TRUE(f.remove_point(1));  // Down-date the middle appended row.
  const la::Vector got = f.inverse_diagonal();
  const la::Matrix inv = la::LuDecomposition(f.assembled()).inverse();
  ASSERT_EQ(got.size(), f.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], inv(i, i), 1e-10) << "entry " << i;
}

TEST(BorderedLdlt, InverseDiagonalThrowsOnSingularBase) {
  la::Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  const la::BorderedLdlt f(a);
  ASSERT_FALSE(f.ok());
  EXPECT_THROW((void)f.inverse_diagonal(), std::runtime_error);
}

TEST(BorderedLdlt, SingularBaseReportsNotOk) {
  la::Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  const la::BorderedLdlt f(a);
  EXPECT_FALSE(f.ok());
}

TEST(BorderedLdlt, RemoveRejectsOutOfRange) {
  ace::util::Rng rng(3);
  la::BorderedLdlt f(random_spd(3, rng));
  EXPECT_FALSE(f.remove_point(0));  // nothing appended yet
}

}  // namespace
